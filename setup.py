"""Setup shim for environments whose pip lacks the `wheel` package.

The canonical metadata lives in pyproject.toml; this file only enables
legacy `pip install -e . --no-build-isolation` / `setup.py develop` flows.
"""

from setuptools import setup

setup()
