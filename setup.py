"""Packaging for the VersaSlot reproduction.

The core package is dependency-free; ``repro[fast]`` pulls in numpy for
the vectorized workload-sampling backend (``repro.workloads.sampling``).
Without the extra, every sampler transparently falls back to the
pure-python backend and produces byte-identical samples — only slower.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.6.0",
    description=(
        "Discrete-event reproduction of VersaSlot (DAC 2025): "
        "spatio-temporal FPGA sharing with Big.Little slots"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=[],
    extras_require={
        # Vectorized workload generation; optional because the python
        # backend is sample-identical (see tests/test_sampling.py).
        "fast": ["numpy"],
        "test": ["pytest", "hypothesis"],
    },
)
