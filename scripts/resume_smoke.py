#!/usr/bin/env python3
"""Resume-equivalence smoke: an interrupted fleet campaign, resumed, must
be byte-identical to an uninterrupted one.

The CI gate behind the durable event store's core promise:

1. run a fleet campaign cleanly into one store;
2. run the same campaign into a second store and SIGKILL the process
   partway (after at least one record has landed, before the last);
3. rerun with ``--resume``;
4. assert the records, the rollup table, and the projection-backed
   replay report are identical between the clean and the resumed store
   (raw file bytes for the JSONL backend).

Artifacts (stdout captures + replay JSON of both stores) land in
``--workdir`` so a mismatch uploads everything needed to triage.
"""

import argparse
import json
import os
import signal
import sqlite3
import subprocess
import sys
import time
from pathlib import Path


def run_cli(args, check=True):
    proc = subprocess.run(
        [sys.executable, "-m", "repro", *args],
        text=True, capture_output=True,
    )
    if check and proc.returncode != 0:
        print(f"command failed ({proc.returncode}): repro {' '.join(args)}")
        print(proc.stdout)
        print(proc.stderr, file=sys.stderr)
        sys.exit(1)
    return proc


def record_count(path: Path, backend: str) -> int:
    """Persisted record count, read without touching the store's writer."""
    if not path.exists():
        return 0
    if backend == "sqlite":
        try:
            with sqlite3.connect(f"file:{path}?mode=ro", uri=True) as conn:
                row = conn.execute(
                    "SELECT COUNT(*) FROM notifications WHERE kind = 'record'"
                ).fetchone()
                return int(row[0])
        except sqlite3.Error:
            return 0
    try:
        lines = [ln for ln in path.read_text().splitlines() if ln.strip()]
    except OSError:
        return 0
    return max(0, len(lines) - 1)  # minus the schema header line


def interrupted_run(cmd, out: Path, backend: str, timeout_s: float = 180.0):
    """Launch the campaign and SIGKILL it once >= 1 record has landed.

    Returns True when the kill landed while the process was still
    running (i.e. the run was genuinely interrupted partway).
    """
    proc = subprocess.Popen(
        cmd, text=True, stdout=subprocess.PIPE, stderr=subprocess.PIPE
    )
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            return False  # finished before we could interrupt it
        if record_count(out, backend) >= 1:
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=60)
            return True
        time.sleep(0.02)
    proc.kill()
    proc.wait(timeout=60)
    print("error: interrupted run hit the watchdog timeout", file=sys.stderr)
    sys.exit(1)


def replay_payload(path: Path) -> dict:
    proc = run_cli(["replay", str(path), "--json"])
    return json.loads(proc.stdout)


def rollup_table(stdout: str) -> str:
    """The rollup table block (everything before the first blank line)."""
    return stdout.split("\n\n", 1)[0]


def fail(workdir: Path, what: str, clean, resumed) -> None:
    (workdir / "clean.capture").write_text(str(clean))
    (workdir / "resumed.capture").write_text(str(resumed))
    print(f"MISMATCH: {what} differs between clean and resumed runs")
    print(f"  artifacts: {workdir}/clean.capture vs {workdir}/resumed.capture")
    sys.exit(1)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--backend", choices=("jsonl", "sqlite"),
                        default="jsonl")
    parser.add_argument("--scenario", default="fleet-smoke")
    parser.add_argument("--apps", type=int, default=120,
                        help="arrival-stream size (bigger = wider kill window)")
    parser.add_argument("--workdir", default="results/resume-smoke")
    args = parser.parse_args()

    workdir = Path(args.workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    suffix = "sqlite" if args.backend == "sqlite" else "jsonl"
    clean_out = workdir / f"clean.{suffix}"
    resumed_out = workdir / f"resumed.{suffix}"
    for stale in workdir.glob("*"):
        if stale.is_file():
            stale.unlink()

    base = [
        sys.executable, "-m", "repro", "fleet", "run", args.scenario,
        "--apps", str(args.apps), "--snapshot-every", "1",
        "--store-backend", args.backend,
    ]

    print(f"[1/4] clean run -> {clean_out}")
    clean = subprocess.run(
        base + ["--out", str(clean_out)], text=True, capture_output=True
    )
    if clean.returncode != 0:
        print(clean.stdout)
        print(clean.stderr, file=sys.stderr)
        return 1
    (workdir / "clean.stdout").write_text(clean.stdout)

    print(f"[2/4] interrupted run (SIGKILL mid-campaign) -> {resumed_out}")
    interrupted = interrupted_run(
        base + ["--out", str(resumed_out)], resumed_out, args.backend
    )
    partial = record_count(resumed_out, args.backend)
    total = record_count(clean_out, args.backend)
    print(f"      killed with {partial}/{total} record(s) persisted "
          f"(interrupted={interrupted})")
    if not interrupted or partial >= total:
        print("error: the run completed before the kill landed; raise "
              "--apps so cells take long enough to interrupt",
              file=sys.stderr)
        return 1

    print("[3/4] resume")
    resume = subprocess.run(
        base + ["--out", str(resumed_out), "--resume"],
        text=True, capture_output=True,
    )
    if resume.returncode != 0:
        print(resume.stdout)
        print(resume.stderr, file=sys.stderr)
        return 1
    (workdir / "resumed.stdout").write_text(resume.stdout)
    if "resume:" not in resume.stdout:
        fail(workdir, "resume accounting line", clean.stdout, resume.stdout)

    print("[4/4] compare records / rollups / projection report")
    if args.backend == "jsonl":
        if clean_out.read_bytes() != resumed_out.read_bytes():
            fail(workdir, "results-file bytes",
                 clean_out.read_text(), resumed_out.read_text())
    clean_replay = replay_payload(clean_out)
    resumed_replay = replay_payload(resumed_out)
    for payload in (clean_replay, resumed_replay):
        payload.pop("path", None)
    (workdir / "clean.replay.json").write_text(json.dumps(clean_replay))
    (workdir / "resumed.replay.json").write_text(json.dumps(resumed_replay))
    if clean_replay != resumed_replay:
        fail(workdir, "projection replay report", clean_replay, resumed_replay)
    if clean_replay["skipped_lines"] != 0:
        fail(workdir, "skipped-line count (must be 0)", clean_replay, resumed_replay)
    if rollup_table(clean.stdout) != rollup_table(resume.stdout):
        fail(workdir, "fleet rollup table",
             rollup_table(clean.stdout), rollup_table(resume.stdout))
    for store in (clean_out, resumed_out):
        run_cli(["store", "verify", str(store)])

    print(f"resume smoke OK ({args.backend}): interrupted at "
          f"{partial}/{total} records, resumed run byte-identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
