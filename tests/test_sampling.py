"""Sample-identity of the batched RNG layer.

The vectorized workload path is only admissible because every
:class:`BatchSampler` block reproduces the exact ``random.Random`` draw
stream.  These tests pin that equivalence per primitive (including the
word-buffer bookkeeping around rejection sampling), prove the fleet
generators backend-invariant, and check the numpy guard rails.
"""

import random

import pytest

from repro.fleet import FleetWorkload
from repro.fleet.workload import FLEET_WORKLOAD_KINDS
from repro.workloads import Condition
from repro.workloads.sampling import BatchSampler, _seed_key_words, numpy_or_none

HAS_NUMPY = numpy_or_none() is not None

needs_numpy = pytest.mark.skipif(not HAS_NUMPY, reason="numpy not installed")

SEED = "fleet/bursty/7/0"


# ----------------------------------------------------------------------
# Per-primitive equivalence against random.Random
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "backend", ["python"] + (["numpy"] if HAS_NUMPY else [])
)
class TestPrimitiveIdentity:
    def test_random_and_uniform(self, backend):
        sampler = BatchSampler(SEED, backend=backend)
        rng = random.Random(SEED)
        assert sampler.random_block(64) == [rng.random() for _ in range(64)]
        assert sampler.uniform_block(2.5, 9.0, 64) == [
            rng.uniform(2.5, 9.0) for _ in range(64)
        ]

    @pytest.mark.parametrize("bound", [1, 2, 7, 23, 33, 64, 1000])
    def test_randbelow_rejection_exact(self, backend, bound):
        """Bounds just past powers of two maximize rejection pressure."""
        sampler = BatchSampler(SEED, backend=backend)
        rng = random.Random(SEED)
        assert sampler.randbelow_block(bound, 300) == [
            rng._randbelow(bound) for _ in range(300)
        ]

    def test_randint_and_choice(self, backend):
        sampler = BatchSampler(SEED, backend=backend)
        rng = random.Random(SEED)
        assert sampler.randint_block(5, 30, 200) == [
            rng.randint(5, 30) for _ in range(200)
        ]
        options = list(range(23))
        assert sampler.choice_indices(23, 200) == [
            rng.choice(options) for _ in range(200)
        ]

    def test_weighted_indices(self, backend):
        weights = [1.0 / (rank + 1) ** 1.4 for rank in range(23)]
        sampler = BatchSampler(SEED, backend=backend)
        rng = random.Random(SEED)
        population = list(range(23))
        assert sampler.weighted_indices(weights, 300) == [
            rng.choices(population, weights=weights)[0] for _ in range(300)
        ]

    def test_pareto(self, backend):
        sampler = BatchSampler(SEED, backend=backend)
        rng = random.Random(SEED)
        assert sampler.pareto_block(1.6, 300) == [
            rng.paretovariate(1.6) for _ in range(300)
        ]

    def test_interleaved_blocks_share_one_stream(self, backend):
        """Block boundaries (and rejection leftovers in the word buffer)
        never shift the stream position."""
        sampler = BatchSampler(SEED, backend=backend)
        rng = random.Random(SEED)
        assert sampler.random_block(3) == [rng.random() for _ in range(3)]
        assert sampler.randbelow_block(33, 50) == [
            rng._randbelow(33) for _ in range(50)
        ]
        assert sampler.uniform_block(0.0, 1.0, 5) == [
            rng.uniform(0.0, 1.0) for _ in range(5)
        ]
        assert sampler.randbelow_block(5, 1) == [rng._randbelow(5)]
        assert sampler.random_block(2) == [rng.random() for _ in range(2)]

    def test_empty_blocks_consume_nothing(self, backend):
        sampler = BatchSampler(SEED, backend=backend)
        rng = random.Random(SEED)
        assert sampler.random_block(0) == []
        assert sampler.randbelow_block(7, 0) == []
        assert sampler.weighted_indices([1.0, 2.0], 0) == []
        assert sampler.pareto_block(1.6, 0) == []
        assert sampler.random_block(1) == [rng.random()]


# ----------------------------------------------------------------------
# Backend invariance of the fleet generators
# ----------------------------------------------------------------------
@needs_numpy
class TestFleetBackendInvariance:
    @pytest.mark.parametrize("kind", FLEET_WORKLOAD_KINDS)
    @pytest.mark.parametrize("condition", [Condition.LOOSE, Condition.STRESS])
    def test_arrivals_identical_across_backends(self, kind, condition):
        workload = FleetWorkload(kind=kind, condition=condition, n_apps=48)
        for seed in (1, 7):
            fast = workload.arrivals(seed, backend="numpy")
            slow = workload.arrivals(seed, backend="python")
            auto = workload.arrivals(seed)
            assert fast == slow == auto


# ----------------------------------------------------------------------
# Guard rails
# ----------------------------------------------------------------------
class TestGuards:
    def test_string_seed_required(self):
        with pytest.raises(TypeError, match="string seed"):
            BatchSampler(42)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown sampler backend"):
            BatchSampler(SEED, backend="cuda")

    def test_bad_bound_rejected(self):
        with pytest.raises(ValueError, match="bound must be positive"):
            BatchSampler(SEED, backend="python").randbelow_block(0, 3)

    def test_numpy_backend_without_numpy_raises(self, monkeypatch):
        import repro.workloads.sampling as sampling

        monkeypatch.setattr(sampling, "_numpy_module", None)
        with pytest.raises(RuntimeError, match="numpy is not installed"):
            BatchSampler(SEED, backend="numpy")

    def test_auto_without_numpy_falls_back(self, monkeypatch):
        import repro.workloads.sampling as sampling

        monkeypatch.setattr(sampling, "_numpy_module", None)
        sampler = BatchSampler(SEED, backend="auto")
        assert sampler.backend == "python"
        rng = random.Random(SEED)
        assert sampler.random_block(4) == [rng.random() for _ in range(4)]

    def test_seed_key_words_shape(self):
        words = _seed_key_words(SEED)
        assert all(0 <= word <= 0xFFFFFFFF for word in words)
        # seed bytes + a 64-byte sha512 digest always exceed 16 words
        assert len(words) >= 16
