"""Behavioural tests for the baseline schedulers on small workloads."""

import pytest

from repro.apps import ApplicationInstance, BENCHMARKS, reset_instance_ids
from repro.config import DEFAULT_PARAMETERS
from repro.fpga import BoardConfig, FPGABoard, SlotKind
from repro.schedulers import (
    BaselineScheduler,
    FCFSScheduler,
    NimblockScheduler,
    RoundRobinScheduler,
    allocate_slots_milp,
    optimal_big_slots,
    optimal_little_slots,
)
from repro.sim import Engine


@pytest.fixture(autouse=True)
def _fresh_ids():
    reset_instance_ids()


def make_board(config=BoardConfig.ONLY_LITTLE):
    engine = Engine()
    return engine, FPGABoard(engine, config, DEFAULT_PARAMETERS, name="test")


def submit_and_run(scheduler, engine, specs, spacing_ms=0.0, until=50_000_000):
    def driver():
        for index, (name, batch) in enumerate(specs):
            if index and spacing_ms:
                yield engine.timeout(spacing_ms)
            scheduler.submit(ApplicationInstance(BENCHMARKS[name], batch, engine.now))

    engine.process(driver())
    engine.run(until=until)
    return scheduler.stats


class TestBaselineScheduler:
    def test_single_app_service_time(self):
        engine, board = make_board()
        scheduler = BaselineScheduler(board)
        stats = submit_and_run(scheduler, engine, [("3DR", 10)])
        assert stats.completions == 1
        record = stats.responses[0]
        # full PR + restart + ideal pipeline over all stages
        from repro.apps import pipelined_exec_time

        expected = (
            DEFAULT_PARAMETERS.full_pr_ms
            + DEFAULT_PARAMETERS.full_restart_overhead_ms
            + pipelined_exec_time(BENCHMARKS["3DR"].tasks, 10)
        )
        assert record.response_ms == pytest.approx(expected, rel=1e-6)

    def test_fifo_queueing(self):
        engine, board = make_board()
        scheduler = BaselineScheduler(board)
        stats = submit_and_run(scheduler, engine, [("3DR", 10), ("IC", 10)])
        assert stats.completions == 2
        first, second = stats.responses
        assert second.finish_time > first.finish_time
        # second app queued behind the first
        assert second.response_ms > first.response_ms

    def test_drained_flag(self):
        engine, board = make_board()
        scheduler = BaselineScheduler(board)
        submit_and_run(scheduler, engine, [("3DR", 5)])
        assert scheduler.is_drained


class TestFCFSScheduler:
    def test_completes_all_apps(self):
        engine, board = make_board()
        scheduler = FCFSScheduler(board)
        stats = submit_and_run(scheduler, engine, [("IC", 8), ("3DR", 6), ("LeNet", 5)])
        assert stats.completions == 3
        assert all(r.response_ms > 0 for r in stats.responses)

    def test_reservation_is_one_slot_per_task(self):
        engine, board = make_board()
        scheduler = FCFSScheduler(board)
        scheduler.submit(ApplicationInstance(BENCHMARKS["IC"], 10, 0.0))
        engine.run(until=500.0)
        app = scheduler.apps[0]
        assert app.alloc_little == BENCHMARKS["IC"].task_count

    def test_strict_fifo_head_blocking(self):
        engine, board = make_board()
        scheduler = FCFSScheduler(board)
        # OF takes 8 of 8 slots; the next two apps must wait.
        scheduler.submit(ApplicationInstance(BENCHMARKS["OF"], 20, 0.0))
        scheduler.submit(ApplicationInstance(BENCHMARKS["3DR"], 20, 0.0))
        engine.run(until=300.0)
        of_run, tdr_run = scheduler.apps
        assert of_run.alloc_little == 8
        assert tdr_run.alloc_little == 0

    def test_pr_count_one_per_task(self):
        engine, board = make_board()
        scheduler = FCFSScheduler(board)
        stats = submit_and_run(scheduler, engine, [("IC", 5)])
        assert stats.pr_count == BENCHMARKS["IC"].task_count


class TestRoundRobinScheduler:
    def test_completes_all_apps(self):
        engine, board = make_board()
        scheduler = RoundRobinScheduler(board)
        stats = submit_and_run(scheduler, engine, [("IC", 8), ("AN", 6), ("OF", 5)])
        assert stats.completions == 3

    def test_breadth_first_allocation(self):
        engine, board = make_board()
        scheduler = RoundRobinScheduler(board)
        scheduler.submit(ApplicationInstance(BENCHMARKS["OF"], 20, 0.0))
        scheduler.submit(ApplicationInstance(BENCHMARKS["IC"], 20, 0.0))
        engine.run(until=150.0)
        of_run, ic_run = scheduler.apps
        # both apps hold slots: no head-of-line monopolization
        assert of_run.alloc_little >= 1
        assert ic_run.alloc_little >= 1
        assert of_run.alloc_little + ic_run.alloc_little <= 8

    def test_rotation_evicts_under_pressure(self):
        engine, board = make_board()
        scheduler = RoundRobinScheduler(board)
        # More apps than slots: some wait with zero allocation, which is
        # what triggers the quantum rotation.
        specs = [("OF", 30), ("AN", 30), ("IC", 30), ("LeNet", 30), ("3DR", 30),
                 ("OF", 30), ("AN", 30), ("IC", 30), ("LeNet", 30), ("3DR", 30)]
        stats = submit_and_run(scheduler, engine, specs)
        assert stats.completions == 10
        assert stats.preemptions >= 1


class TestNimblockScheduler:
    def test_completes_all_apps(self):
        engine, board = make_board()
        scheduler = NimblockScheduler(board)
        stats = submit_and_run(scheduler, engine, [("IC", 8), ("AN", 6), ("OF", 5)])
        assert stats.completions == 3

    def test_optimal_allocation_bounded_by_ilp(self):
        engine, board = make_board()
        scheduler = NimblockScheduler(board)
        scheduler.submit(ApplicationInstance(BENCHMARKS["3DR"], 20, 0.0))
        scheduler.submit(ApplicationInstance(BENCHMARKS["IC"], 20, 0.0))
        engine.run(until=100.0)
        tdr, ic = scheduler.apps
        assert tdr.alloc_little >= optimal_little_slots(
            BENCHMARKS["3DR"], 20, DEFAULT_PARAMETERS.little_pr_ms, 8
        )

    def test_single_core_blocks_launches(self):
        engine, board = make_board()
        scheduler = NimblockScheduler(board)
        specs = [("IC", 20), ("AN", 20), ("OF", 20)]
        stats = submit_and_run(scheduler, engine, specs)
        assert stats.launch_blocked > 0

    def test_allocation_invariant_never_exceeds_fabric(self):
        engine, board = make_board()
        scheduler = NimblockScheduler(board)
        violations = []

        def checker():
            while True:
                yield engine.timeout(50.0)
                used = sum(a.used_little for a in scheduler.active_apps())
                if used > scheduler.little_total:
                    violations.append((engine.now, used))
                if scheduler.stats.completions >= 4:
                    return

        engine.process(checker())
        submit_and_run(scheduler, engine, [("IC", 10), ("OF", 10), ("AN", 10), ("3DR", 10)])
        assert violations == []


class TestILP:
    def test_optimal_little_within_bounds(self):
        for name, spec in BENCHMARKS.items():
            o = optimal_little_slots(spec, 20, DEFAULT_PARAMETERS.little_pr_ms, 8)
            assert 1 <= o <= min(spec.task_count, 8)

    def test_optimal_big_zero_without_bundles(self):
        from repro.apps import ApplicationSpec, TaskSpec
        from repro.fpga import ResourceVector

        plain = ApplicationSpec(
            "p", tuple(TaskSpec(f"t{i}", i, 5.0, ResourceVector(0.5, 0.5)) for i in range(2))
        )
        assert optimal_big_slots(plain, 10, 200.0, 2) == 0

    def test_optimal_big_bounded_by_bundles(self):
        o = optimal_big_slots(BENCHMARKS["OF"], 20, DEFAULT_PARAMETERS.big_pr_ms, 2)
        assert 1 <= o <= 2

    def test_batch_size_validated(self):
        with pytest.raises(ValueError):
            optimal_little_slots(BENCHMARKS["IC"], 0, 100.0, 8)

    def test_milp_respects_budget(self):
        pytest.importorskip("scipy")
        apps = [(BENCHMARKS["IC"], 10), (BENCHMARKS["3DR"], 10), (BENCHMARKS["OF"], 10)]
        counts = allocate_slots_milp(apps, 8, DEFAULT_PARAMETERS.little_pr_ms)
        assert sum(counts) <= 8
        assert all(c >= 1 for c in counts)

    def test_milp_more_slots_helps_when_available(self):
        pytest.importorskip("scipy")
        apps = [(BENCHMARKS["IC"], 20)]
        counts = allocate_slots_milp(apps, 8, DEFAULT_PARAMETERS.little_pr_ms)
        assert counts[0] >= 3

    def test_milp_rejects_overload(self):
        apps = [(BENCHMARKS["IC"], 10)] * 9
        with pytest.raises(ValueError, match="queue"):
            allocate_slots_milp(apps, 8, 100.0)

    def test_milp_empty(self):
        assert allocate_slots_milp([], 8, 100.0) == []


class TestRuntimeInvariants:
    def test_pipeline_order_respected(self):
        """Item b of stage k never completes before item b of stage k-1."""
        engine, board = make_board()
        scheduler = NimblockScheduler(board)
        scheduler.submit(ApplicationInstance(BENCHMARKS["IC"], 12, 0.0))
        engine.run(until=50_000_000)
        app = scheduler.apps[0]
        assert app.finished
        assert all(count == 12 for count in app.done_counts)

    def test_preempted_work_not_lost(self):
        engine, board = make_board()
        scheduler = NimblockScheduler(board)
        specs = [("OF", 30), ("AN", 30), ("IC", 30), ("LeNet", 30), ("3DR", 30), ("OF", 30)]
        stats = submit_and_run(scheduler, engine, specs)
        assert stats.completions == 6
        # Preemption causes re-PRs: more loads than tasks.
        total_tasks = sum(BENCHMARKS[name].task_count for name, _ in specs)
        if stats.preemptions:
            assert stats.pr_count > total_tasks

    def test_slots_all_released_after_drain(self):
        engine, board = make_board()
        scheduler = FCFSScheduler(board)
        submit_and_run(scheduler, engine, [("IC", 8), ("OF", 6)])
        assert all(slot.is_idle for slot in board.slots)

    def test_submit_closed_intake_rejected(self):
        engine, board = make_board()
        scheduler = FCFSScheduler(board)
        scheduler.close_intake()
        with pytest.raises(RuntimeError, match="intake"):
            scheduler.submit(ApplicationInstance(BENCHMARKS["IC"], 5, 0.0))

    def test_extract_waiting_apps(self):
        engine, board = make_board()
        scheduler = FCFSScheduler(board)
        scheduler.submit(ApplicationInstance(BENCHMARKS["OF"], 20, 0.0))
        scheduler.submit(ApplicationInstance(BENCHMARKS["IC"], 20, 0.0))
        scheduler.submit(ApplicationInstance(BENCHMARKS["AN"], 20, 0.0))
        engine.run(until=300.0)  # OF holds all slots; IC/AN not started
        moved = scheduler.extract_waiting_apps()
        names = {inst.spec.name for inst in moved}
        assert "OF" not in names
        assert names <= {"IC", "AN"}
        assert scheduler.stats.migrations_out == len(moved)
        engine.run(until=50_000_000)
        assert scheduler.stats.completions == 3 - len(moved)
