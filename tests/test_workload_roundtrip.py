"""Workload serialization round-trips (workloads/trace.py + phases.py).

The trace format must preserve arrivals *bit-exactly*: a serialized and
replayed sequence has to drive a simulation to the identical outcome, or
archived workloads silently stop reproducing published numbers.
"""

import pytest

from repro.apps import reset_instance_ids
from repro.experiments.runner import run_sequence
from repro.workloads import (
    Condition,
    Phase,
    PhasedWorkload,
    WorkloadSpec,
    dumps,
    load,
    loads,
    poisson_sequence,
    ramp_workload,
    save,
)


@pytest.fixture(autouse=True)
def _fresh_ids():
    reset_instance_ids()


class TestPhasedRoundTrip:
    def test_phased_workload_round_trips(self):
        workload = PhasedWorkload(
            [Phase(6, 100.0, 200.0), Phase(4, 10.0, 20.0), Phase(5, 500.0, 500.0)],
            seed=17,
        )
        arrivals = workload.generate()
        assert loads(dumps(arrivals)) == arrivals

    def test_ramp_workload_round_trips(self):
        arrivals = ramp_workload(
            3, 24, relaxed_ms=(800.0, 1000.0), dense_ms=(100.0, 150.0)
        )
        assert loads(dumps(arrivals)) == arrivals

    def test_poisson_round_trips_float_precision(self):
        """Exponential intervals produce full-precision floats; the text
        format must round-trip them exactly (repr round-trip)."""
        arrivals = poisson_sequence(5, 40, mean_interval_ms=123.456)
        replayed = loads(dumps(arrivals))
        assert replayed == arrivals
        assert [a.time_ms for a in replayed] == [a.time_ms for a in arrivals]

    def test_file_round_trip(self, tmp_path):
        arrivals = PhasedWorkload([Phase(8, 50.0, 120.0)], seed=2).generate()
        path = tmp_path / "phased.trace"
        save(arrivals, path)
        assert load(path) == arrivals

    def test_workload_spec_sequence_round_trips(self):
        spec = WorkloadSpec(Condition.STANDARD, n_apps=12, sequence_count=2)
        for index in range(spec.sequence_count):
            arrivals = spec.sequence(seed=4, index=index)
            assert loads(dumps(arrivals)) == arrivals


class TestReplayDrivesIdenticalSimulation:
    def test_replayed_arrivals_simulate_identically(self):
        """generate -> serialize -> replay -> simulate == simulate(original)."""
        arrivals = ramp_workload(
            9, 8, relaxed_ms=(400.0, 600.0), dense_ms=(80.0, 120.0)
        )
        replayed = loads(dumps(arrivals))
        reset_instance_ids()
        original_result = run_sequence("Nimblock", arrivals)
        reset_instance_ids()
        replayed_result = run_sequence("Nimblock", replayed)
        assert replayed_result.responses.samples_ms == (
            original_result.responses.samples_ms
        )
        assert replayed_result.makespan_ms == original_result.makespan_ms
        assert replayed_result.stats.pr_count == original_result.stats.pr_count


class TestPhaseValidation:
    def test_phase_rejects_bad_counts_and_intervals(self):
        with pytest.raises(ValueError, match="count"):
            Phase(0, 10.0, 20.0)
        with pytest.raises(ValueError, match="interval"):
            Phase(1, 0.0, 20.0)
        with pytest.raises(ValueError, match="interval"):
            Phase(1, 30.0, 20.0)

    def test_phased_workload_needs_phases(self):
        with pytest.raises(ValueError, match="at least one phase"):
            PhasedWorkload([], seed=1)

    def test_total_apps_sums_phases(self):
        workload = PhasedWorkload(
            [Phase(5, 10.0, 20.0), Phase(7, 10.0, 20.0)], seed=1
        )
        assert workload.total_apps == 12
        assert len(workload.generate()) == 12
