"""Property-based tests (hypothesis) on core invariants."""

import random

from hypothesis import given, settings, strategies as st

from repro.core.bundling import parallel_time_ms, serial_preferred, serial_time_ms
from repro.fpga import ResourceVector
from repro.sim import Engine, Resource
from repro.workloads import Condition, WorkloadGenerator, dumps, loads

# ---------------------------------------------------------------------------
# Simulation kernel
# ---------------------------------------------------------------------------

durations = st.lists(
    st.floats(min_value=0.1, max_value=50.0, allow_nan=False), min_size=1, max_size=12
)


@given(durations=durations, capacity=st.integers(min_value=1, max_value=4))
@settings(max_examples=60, deadline=None)
def test_resource_never_oversubscribed(durations, capacity):
    """At no point do granted units exceed capacity, and all work completes."""
    engine = Engine()
    resource = Resource(engine, capacity=capacity)
    completed = []
    violations = []

    def worker(duration):
        request = resource.acquire()
        yield request
        if resource.in_use > capacity:
            violations.append(resource.in_use)
        yield engine.timeout(duration)
        resource.release()
        completed.append(duration)

    for duration in durations:
        engine.process(worker(duration))
    engine.run()
    assert violations == []
    assert len(completed) == len(durations)
    assert resource.in_use == 0


@given(durations=durations)
@settings(max_examples=60, deadline=None)
def test_unit_resource_serializes_total_time(durations):
    """A mutex's makespan equals the sum of hold times."""
    engine = Engine()
    resource = Resource(engine, capacity=1)

    def worker(duration):
        request = resource.acquire()
        yield request
        yield engine.timeout(duration)
        resource.release()

    for duration in durations:
        engine.process(worker(duration))
    engine.run()
    assert engine.now == sum(durations) or abs(engine.now - sum(durations)) < 1e-6


@given(
    delays=st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=20)
)
@settings(max_examples=60, deadline=None)
def test_engine_clock_monotone(delays):
    engine = Engine()
    observed = []

    def watcher(delay):
        yield engine.timeout(delay)
        observed.append(engine.now)

    for delay in delays:
        engine.process(watcher(delay))
    engine.run()
    assert observed == sorted(observed)
    assert len(observed) == len(delays)


# ---------------------------------------------------------------------------
# Resource vectors
# ---------------------------------------------------------------------------

vectors = st.builds(
    ResourceVector,
    st.floats(min_value=0.0, max_value=10.0),
    st.floats(min_value=0.0, max_value=10.0),
)


@given(a=vectors, b=vectors)
@settings(max_examples=100)
def test_resvec_addition_commutative(a, b):
    assert (a + b).lut == (b + a).lut
    assert (a + b).ff == (b + a).ff


@given(v=vectors, factor=st.floats(min_value=0.0, max_value=5.0))
@settings(max_examples=100)
def test_resvec_scale_monotone(v, factor):
    scaled = v.scale(factor)
    assert scaled.lut == v.lut * factor
    assert scaled.ff == v.ff * factor


@given(a=vectors, b=vectors)
@settings(max_examples=100)
def test_resvec_fits_within_sum(a, b):
    assert a.fits_within(a + b)


# ---------------------------------------------------------------------------
# Bundling criterion
# ---------------------------------------------------------------------------

bundle_times = st.lists(
    st.floats(min_value=0.5, max_value=100.0), min_size=2, max_size=4
)


@given(times=bundle_times, batch=st.integers(min_value=1, max_value=60))
@settings(max_examples=200)
def test_criterion_picks_faster_mode(times, batch):
    """The serial/parallel choice always picks the smaller modeled latency."""
    serial = serial_time_ms(times, batch)
    parallel = parallel_time_ms(times, batch)
    if serial_preferred(times, batch):
        assert serial <= parallel
    else:
        assert parallel <= serial


@given(times=bundle_times)
@settings(max_examples=100)
def test_parallel_wins_for_large_batches(times):
    """With enough items, pipelining always amortizes its fill (strict skew)."""
    if sum(times) > max(times) * 1.01:  # strictly more than one busy stage
        big_batch = 10_000
        assert not serial_preferred(times, big_batch)


# ---------------------------------------------------------------------------
# Workloads
# ---------------------------------------------------------------------------


@given(seed=st.integers(min_value=0, max_value=10_000),
       n=st.integers(min_value=1, max_value=40))
@settings(max_examples=50, deadline=None)
def test_workload_trace_roundtrip(seed, n):
    condition = random.Random(seed).choice(list(Condition))
    arrivals = WorkloadGenerator(seed).sequence(condition, n_apps=n)
    assert loads(dumps(arrivals)) == arrivals


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=50, deadline=None)
def test_workload_batches_in_range(seed):
    arrivals = WorkloadGenerator(seed).sequence(Condition.STRESS, n_apps=30)
    assert all(5 <= a.batch_size <= 30 for a in arrivals)


# ---------------------------------------------------------------------------
# Algorithm 1 invariants (driven with random fake populations)
# ---------------------------------------------------------------------------


@given(data=st.data())
@settings(max_examples=80, deadline=None)
def test_allocation_never_exceeds_fabric(data):
    from tests.test_core_allocation import FakeApp, FakeScheduler, run_allocation

    n_wait = data.draw(st.integers(min_value=0, max_value=6))
    n_little = data.draw(st.integers(min_value=0, max_value=3))
    apps_wait = [
        FakeApp(
            i,
            tasks_left=data.draw(st.integers(min_value=1, max_value=9)),
            bundles_left=data.draw(st.integers(min_value=0, max_value=3)),
            can_bundle=data.draw(st.booleans()),
        )
        for i in range(n_wait)
    ]
    apps_little = []
    committed = 0
    little_budget = 4  # keep the generated starting state consistent
    for j in range(n_little):
        app = FakeApp(
            100 + j,
            tasks_left=data.draw(st.integers(min_value=1, max_value=9)),
            bundles_left=0,
            can_bundle=False,
            started=data.draw(st.booleans()),
        )
        app.alloc_little = data.draw(
            st.integers(min_value=0, max_value=min(2, little_budget))
        )
        little_budget -= app.alloc_little
        committed += app.alloc_little if app.started else 0
        apps_little.append(app)
    sched = FakeScheduler(
        c_wait=apps_wait, s_little=apps_little, committed=min(committed, 4)
    )
    run_allocation(sched, o_big=data.draw(st.integers(min_value=1, max_value=2)),
                   o_little=data.draw(st.integers(min_value=1, max_value=4)))
    # Little-slot promises never exceed the fabric.
    promised = sum(
        min(app.alloc_little, app.unfinished_task_count()) for app in sched.s_little
    )
    assert promised <= sched.little_total
    # Big binding never exceeds the number of Big slots plus time-sharing
    # admissions (one reservation per bound app).
    assert len([a for a in sched.s_big if a.unfinished_bundle_count()]) <= \
        sched.big_total + len(apps_wait)
    # No app is in two queues at once.
    for app in apps_wait + apps_little:
        membership = sum(app in q for q in (sched.c_wait, sched.s_big, sched.s_little))
        assert membership == 1
