"""The durable event store: recorders, snapshots, resume, projections.

The store contract under test, end to end:

* both recorders (JSONL sidecar and SQLite) persist one globally ordered
  notification log of records, telemetry events and snapshots, and read
  it back identically after a reopen;
* ``ResultsStore.extend`` on a brand-new path writes the same header line
  ``write`` does, so every results file is self-describing (pinned by a
  byte-level round trip);
* an interrupted campaign resumed with ``resume=True`` skips the cells
  the store already holds, re-executes the rest, and ends bit-identical
  to an uninterrupted run — serial and process backends, both recorders;
* reports fold as *incremental* projections (only past-watermark
  notifications are consumed, counted and asserted) and match both a
  full rebuild and the batch reference implementations exactly.
"""

import json

import pytest

from repro.campaign import (
    CampaignRunner,
    ProcessBackend,
    ResultsStore,
    Scenario,
    SerialBackend,
)
from repro.campaign.results import results_header
from repro.experiments import Fig5Result, fig6_from_records
from repro.experiments.fig5 import reductions_from_records
from repro.fleet import Fleet, get_fleet_scenario
from repro.metrics.report import summarize_records
from repro.store import (
    CampaignSnapshot,
    CampaignStore,
    DEFAULT_SNAPSHOT_EVERY,
    FigureProjection,
    FleetRollupProjection,
    JsonlRecorder,
    KIND_EVENT,
    KIND_RECORD,
    KIND_SNAPSHOT,
    Notification,
    RecordSummaryProjection,
    SqliteRecorder,
    TelemetryCounterProjection,
    cell_key,
    execute_with_store,
    is_sqlite_path,
    open_store,
    update_projections,
    verify_store_projections,
)
from repro.telemetry import load_events, replay_aggregation, replay_notifications
from repro.telemetry.sinks import RecorderEventSink
from repro.workloads.generator import Condition, WorkloadSpec

BACKENDS = ("jsonl", "sqlite")


def _suffix(backend: str) -> str:
    return "sqlite" if backend == "sqlite" else "jsonl"


def _scenario(name: str = "storecase", sequences: int = 2) -> Scenario:
    return Scenario(
        name=name,
        workload=WorkloadSpec(
            Condition.STRESS, n_apps=3, sequence_count=sequences
        ),
        systems=("Baseline", "VersaSlot-OL"),
    )


@pytest.fixture(scope="module")
def campaign_records():
    """(cells, records) of one small deterministic campaign (4 cells)."""
    cells = CampaignRunner().cells_for(_scenario())
    return cells, SerialBackend().run(cells)


@pytest.fixture(scope="module")
def event_log(tmp_path_factory):
    """One cell's telemetry event-log path (typed JSONL stream)."""
    events_dir = tmp_path_factory.mktemp("events")
    runner = CampaignRunner(events_dir=events_dir)
    scenario = Scenario(
        name="storeevents",
        workload=WorkloadSpec(Condition.LOOSE, n_apps=2, sequence_count=1),
        systems=("FCFS",),
    )
    runner.run(scenario)
    (path,) = list(events_dir.glob("*.jsonl"))
    return path


class InterruptingBackend:
    """Wraps a backend; simulates a crash after ``fail_after`` cells."""

    def __init__(self, inner, fail_after: int) -> None:
        self.inner = inner
        self.fail_after = fail_after
        self.executed = 0

    def run(self, cells):
        if self.executed >= self.fail_after:
            raise RuntimeError("simulated crash")
        self.executed += len(cells)
        return self.inner.run(cells)


class TestRecorders:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_mixed_kind_roundtrip_survives_reopen(
        self, tmp_path, backend, campaign_records
    ):
        _, records = campaign_records
        path = tmp_path / f"log.{_suffix(backend)}"
        with open_store(path, backend=backend) as store:
            ids = store.append_records(records[:2])
            assert ids == [1, 2]
            store.recorder.append([(KIND_SNAPSHOT, {"schema": 1,
                                                    "completed": [],
                                                    "digest": {},
                                                    "cells": [],
                                                    "covered_id": 2})])
            ids = store.append_records(records[2:])
            assert ids == [4, 5]
            before = [(n.id, n.kind, n.payload) for n in store.select()]
        with open_store(path, backend=backend) as store:
            after = [(n.id, n.kind, n.payload) for n in store.select()]
            assert after == before
            assert [n.id for n in store.select()] == [1, 2, 3, 4, 5]
            assert store.max_id() == 5
            assert store.counts() == {"record": 4, "snapshot": 1}
            # select honors (start, limit) over the global order
            window = store.select(start=2, limit=2)
            assert [n.id for n in window] == [2, 3]
            loaded = store.load()
            assert [r.to_dict() for r in loaded] == \
                [r.to_dict() for r in records]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_unknown_kind_rejected(self, tmp_path, backend):
        with open_store(tmp_path / f"log.{_suffix(backend)}",
                        backend=backend) as store:
            with pytest.raises(ValueError, match="unknown notification kind"):
                store.recorder.append([("bogus", {})])

    def test_notification_validates_kind(self):
        with pytest.raises(ValueError):
            Notification(id=1, kind="bogus", payload={})

    def test_sqlite_sniffing(self, tmp_path):
        assert is_sqlite_path("results/x.sqlite")
        assert is_sqlite_path("results/x.db")
        assert not is_sqlite_path("results/x.jsonl")
        # no suffix hint: the file magic decides
        magic = tmp_path / "mystery"
        magic.write_bytes(b"SQLite format 3\x00" + b"\x00" * 16)
        assert is_sqlite_path(magic)
        with pytest.raises(ValueError, match="unknown store backend"):
            open_store(tmp_path / "x.jsonl", backend="parquet")

    def test_jsonl_recorder_wraps_legacy_results_file(
        self, tmp_path, campaign_records
    ):
        _, records = campaign_records
        legacy = ResultsStore(tmp_path / "legacy.jsonl")
        legacy.write(records)
        with open_store(legacy.path) as store:
            assert isinstance(store.recorder, JsonlRecorder)
            assert store.counts() == {"record": len(records)}
            assert [r.to_dict() for r in store.load()] == \
                [r.to_dict() for r in records]
        # the wrap is non-destructive: the plain loader still works and
        # the results file itself carries no sidecar noise
        assert [r.to_dict() for r in ResultsStore(legacy.path).load()] == \
            [r.to_dict() for r in records]

    def test_jsonl_sidecar_heals_out_of_band_appends(
        self, tmp_path, campaign_records
    ):
        _, records = campaign_records
        path = tmp_path / "healed.jsonl"
        with open_store(path) as store:
            store.append_records(records[:2])
        # a legacy writer appends directly to the results file,
        # bypassing the sidecar
        ResultsStore(path).extend(records[2:])
        with open_store(path) as store:
            assert store.counts()["record"] == len(records)
            assert [r.to_dict() for r in store.load()] == \
                [r.to_dict() for r in records]


class TestResultsFileHeader:
    def test_extend_on_fresh_path_writes_the_same_header_as_write(
        self, tmp_path, campaign_records
    ):
        _, records = campaign_records
        written = ResultsStore(tmp_path / "written.jsonl")
        written.write(records)
        extended = ResultsStore(tmp_path / "extended.jsonl")
        extended.extend(records)
        assert written.path.read_bytes() == extended.path.read_bytes()
        first = json.loads(extended.path.read_text().splitlines()[0])
        assert first == results_header()
        assert [r.to_dict() for r in ResultsStore(extended.path).load()] == \
            [r.to_dict() for r in records]

    def test_appending_to_existing_file_writes_no_second_header(
        self, tmp_path, campaign_records
    ):
        _, records = campaign_records
        store = ResultsStore(tmp_path / "r.jsonl")
        store.extend(records[:1])
        store.extend(records[1:])
        lines = store.path.read_text().splitlines()
        headers = [ln for ln in lines if json.loads(ln) == results_header()]
        assert len(headers) == 1
        assert len(lines) == 1 + len(records)


class TestSnapshotsAndResume:
    def test_snapshot_roundtrip(self):
        snapshot = CampaignSnapshot(
            completed=("a|b|seq0|seed1|shard-1",),
            digest={"count": 3},
            cells=({"scenario": "a"},),
            covered_id=7,
        )
        assert CampaignSnapshot.from_dict(snapshot.to_dict()) == snapshot

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_snapshot_cadence_and_tail_bound(
        self, tmp_path, backend, campaign_records
    ):
        cells, _ = campaign_records
        path = tmp_path / f"snap.{_suffix(backend)}"
        with open_store(path, backend=backend) as store:
            outcome = execute_with_store(
                SerialBackend(), cells, store=store, snapshot_every=2
            )
            assert outcome.snapshots == 2
            counts = store.counts()
            assert counts["record"] == len(cells)
            assert counts["snapshot"] == 2
            snapshot = store.latest_snapshot()
            assert len(snapshot.completed) == len(cells)
            assert set(snapshot.completed) == {cell_key(c) for c in cells}
            # the newest snapshot is the log head: resume's tail scan
            # reads only the snapshot notification itself (its id is
            # covered_id + 1), never the snapshotted record prefix
            completed, tail = store.completed_cells()
            assert tail == 1
            assert len(completed) == len(cells)

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("jobs", (1, 2))
    def test_interrupted_then_resumed_is_bit_identical(
        self, tmp_path, backend, jobs, campaign_records
    ):
        cells, clean_records = campaign_records
        clean_path = tmp_path / f"clean.{_suffix(backend)}"
        with open_store(clean_path, backend=backend) as store:
            execute_with_store(
                SerialBackend(), cells, store=store, snapshot_every=2
            )

        resumed_path = tmp_path / f"resumed.{_suffix(backend)}"
        store = open_store(resumed_path, backend=backend)
        crash = InterruptingBackend(SerialBackend(), fail_after=2)
        with pytest.raises(RuntimeError, match="simulated crash"):
            execute_with_store(
                crash, cells, store=store, snapshot_every=2
            )
        store.close()
        assert open_store(resumed_path, backend=backend).counts()["record"] == 2

        resume_backend = (
            SerialBackend() if jobs == 1 else ProcessBackend(jobs=jobs)
        )
        with open_store(resumed_path, backend=backend) as store:
            outcome = execute_with_store(
                resume_backend, cells, store=store,
                snapshot_every=2, resume=True,
            )
        assert outcome.resumed == 2
        assert outcome.executed == 2
        assert [r.to_dict() for r in outcome.records] == \
            [r.to_dict() for r in clean_records]
        if backend == "jsonl":
            # the results file (records + header) is byte-identical to
            # the uninterrupted run's
            assert resumed_path.read_bytes() == clean_path.read_bytes()
        else:
            with open_store(resumed_path, backend=backend) as a, \
                    open_store(clean_path, backend=backend) as b:
                assert [r.to_dict() for r in a.load()] == \
                    [r.to_dict() for r in b.load()]
        # projections converge to the same state on both stores
        for path in (clean_path, resumed_path):
            with open_store(path, backend=backend) as store:
                assert verify_store_projections(store) == []

    def test_resume_skips_everything_on_a_complete_store(
        self, tmp_path, campaign_records
    ):
        cells, _ = campaign_records
        path = tmp_path / "done.jsonl"
        runner = CampaignRunner(store=str(path), snapshot_every=2)
        runner.run_cells(cells)
        before = path.read_bytes()
        again = CampaignRunner(store=str(path), resume=True)
        again.run_cells(cells)
        assert again.last_outcome.resumed == len(cells)
        assert again.last_outcome.executed == 0
        assert path.read_bytes() == before

    def test_resume_reexecutes_failed_cells(self, tmp_path, campaign_records):
        from repro.campaign import failure_record

        cells, _ = campaign_records
        path = tmp_path / "failed.sqlite"
        with open_store(path) as store:
            store.append_records(
                [failure_record(cells[0], "worker crashed")]
            )
            outcome = execute_with_store(
                SerialBackend(), cells, store=store, resume=True
            )
        assert outcome.resumed == 0
        assert outcome.executed == len(cells)
        assert not any(r.failed for r in outcome.records)

    def test_resume_rejects_duplicate_cells(self, tmp_path, campaign_records):
        cells, _ = campaign_records
        with open_store(tmp_path / "dup.jsonl") as store:
            with pytest.raises(ValueError, match="duplicate cells"):
                execute_with_store(
                    SerialBackend(), [cells[0], cells[0]],
                    store=store, resume=True,
                )

    def test_durability_features_require_a_store(self, campaign_records):
        cells, _ = campaign_records
        with pytest.raises(ValueError, match="need a persistent store"):
            execute_with_store(SerialBackend(), cells, resume=True)
        with pytest.raises(ValueError, match="snapshot_every"):
            execute_with_store(SerialBackend(), cells, snapshot_every=-1)

    def test_plain_path_stays_legacy_jsonl(self, tmp_path, campaign_records):
        # No durability flags -> a path resolves to the plain ResultsStore
        # (no sidecar files appear next to default campaign output).
        cells, _ = campaign_records
        path = tmp_path / "legacy.jsonl"
        runner = CampaignRunner(store=str(path))
        assert isinstance(runner.store, ResultsStore)
        runner.run_cells(cells[:1])
        assert not (tmp_path / "legacy.jsonl.nlog").exists()
        # Asking for resume upgrades the same path to the event store.
        upgraded = CampaignRunner(store=str(path), resume=True)
        assert isinstance(upgraded.store, CampaignStore)

    def test_default_snapshot_cadence_is_sane(self):
        assert DEFAULT_SNAPSHOT_EVERY >= 1


class TestProjections:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_incremental_fold_consumes_only_the_tail(
        self, tmp_path, backend, campaign_records
    ):
        _, records = campaign_records
        path = tmp_path / f"proj.{_suffix(backend)}"
        with open_store(path, backend=backend) as store:
            store.append_records(records[:3])
            first = RecordSummaryProjection().load(store)
            assert first.apply(store) == 3
            assert first.watermark == 3

            store.append_records(records[3:])
            second = RecordSummaryProjection().load(store)
            assert second.watermark == 3  # persisted state restored
            folded = second.apply(store)
            assert folded == len(records) - 3  # tail only, never the prefix
            assert second.last_fold_count == folded

            rebuilt = RecordSummaryProjection()
            rebuilt.rebuild(store)
            assert second.state_dict() == rebuilt.state_dict()
            assert second.render() == rebuilt.render()
            assert verify_store_projections(store) == []

    def test_summary_projection_matches_batch_renderer(self, campaign_records):
        _, records = campaign_records
        projection = RecordSummaryProjection()
        for record in records:
            projection.fold_record(record)
        assert projection.render() == summarize_records(records)

    def test_summary_projection_state_survives_json(self, campaign_records):
        _, records = campaign_records
        projection = RecordSummaryProjection()
        for record in records:
            projection.fold_record(record)
        state = json.loads(json.dumps(projection.state_dict()))
        restored = RecordSummaryProjection()
        restored.restore_state(state)
        assert restored.render() == projection.render()

    def test_figure_projection_matches_batch_figures(self, campaign_records):
        _, records = campaign_records
        projection = FigureProjection()
        for record in records:
            projection.fold_record(record)
        assert projection.render_fig5() == \
            Fig5Result.from_records(records).reductions
        assert projection.render_fig6() == \
            fig6_from_records(records).relative_tails

    def test_figure_projection_matches_batch_error_paths(
        self, campaign_records
    ):
        _, records = campaign_records
        no_baseline = [r for r in records if r.system != "Baseline"]
        projection = FigureProjection()
        for record in no_baseline:
            projection.fold_record(record)
        with pytest.raises(KeyError) as from_projection:
            projection.render_fig5()
        with pytest.raises(KeyError) as from_batch:
            reductions_from_records(no_baseline)
        assert str(from_projection.value) == str(from_batch.value)

    def test_fleet_rollup_projection_matches_fleet_run(self, tmp_path):
        scenario = get_fleet_scenario("fleet-smoke")
        path = tmp_path / "fleet.sqlite"
        result = Fleet(scenario).run(store=str(path), snapshot_every=1)
        with open_store(path) as store:
            assert verify_store_projections(store) == []
            projection = FleetRollupProjection()
            projection.rebuild(store)
            per_shard, overall = projection.render_rollups()
        assert per_shard == result.rollup.per_shard
        assert overall == result.rollup.overall

    def test_telemetry_projection_matches_jsonl_replay(
        self, tmp_path, event_log
    ):
        events = load_events(event_log)
        assert events
        path = tmp_path / "events.sqlite"
        with open_store(path) as store:
            sink = RecorderEventSink(store, batch_size=16)
            for event in events:
                sink.handle(event)
            sink.close()
            assert sink.events_written == len(events)
            assert store.counts() == {"event": len(events)}

            projection = TelemetryCounterProjection()
            projection.rebuild(store)
            _, reference = replay_aggregation(event_log)
            assert projection.counters() == reference.counters()
            assert projection.digest.to_dict() == reference.digest.to_dict()
            # the replay helper folds the same stream off the store
            replayed = replay_notifications(store)
            assert replayed.counters() == reference.counters()

    def test_update_projections_reports_folded_counts(
        self, tmp_path, campaign_records
    ):
        _, records = campaign_records
        with open_store(tmp_path / "u.jsonl") as store:
            store.append_records(records)
            folded = update_projections(store)
            assert set(folded) == {
                "summary", "fleet-rollup", "figures", "telemetry"
            }
            assert all(n == len(records) for n in folded.values())
            # idempotent: a second pass folds nothing
            assert all(
                n == 0 for n in update_projections(store).values()
            )


class TestStoreCli:
    def _build_store(self, tmp_path, records, backend="sqlite"):
        path = tmp_path / f"cli.{_suffix(backend)}"
        with open_store(path, backend=backend) as store:
            store.append_records(records)
            update_projections(store)
        return path

    def test_inspect_json(self, tmp_path, capsys, campaign_records):
        from repro.cli import main

        _, records = campaign_records
        path = self._build_store(tmp_path, records)
        assert main(["store", "inspect", str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"] == {"record": len(records)}
        assert payload["projections"]["summary"] == len(records)

    def test_verify_clean_and_corrupted(self, tmp_path, capsys,
                                        campaign_records):
        from repro.cli import main

        _, records = campaign_records
        path = self._build_store(tmp_path, records)
        assert main(["store", "verify", str(path)]) == 0
        assert main(["verify", "--store", str(path)]) == 0
        # a stale projection (right watermark, wrong state) must be caught
        with open_store(path) as store:
            store.set_projection(
                "summary", store.max_id(),
                RecordSummaryProjection().state_dict(),
            )
        assert main(["store", "verify", str(path)]) == 1
        assert "summary" in capsys.readouterr().err

    def test_export_converts_between_backends(self, tmp_path, capsys,
                                              campaign_records):
        from repro.cli import main

        _, records = campaign_records
        source = self._build_store(tmp_path, records, backend="jsonl")
        dest = tmp_path / "converted.sqlite"
        assert main(["store", "export", str(source), str(dest)]) == 0
        with open_store(dest) as store:
            assert isinstance(store.recorder, SqliteRecorder)
            assert [r.to_dict() for r in store.load()] == \
                [r.to_dict() for r in records]
            assert verify_store_projections(store) == []

    def test_ingest_events(self, tmp_path, capsys, event_log):
        from repro.cli import main

        path = tmp_path / "ingest.sqlite"
        with open_store(path):
            pass
        assert main(["store", "ingest", str(path), str(event_log)]) == 0
        with open_store(path) as store:
            assert store.counts()["event"] == len(load_events(event_log))

    def test_replay_reads_sqlite_stores(self, tmp_path, capsys,
                                        campaign_records):
        from repro.cli import main

        _, records = campaign_records
        path = self._build_store(tmp_path, records)
        assert main(["replay", str(path)]) == 0
        assert "Campaign records" in capsys.readouterr().out
        assert main(["replay", str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["records"] == len(records)
        assert payload["skipped_lines"] == 0

    def test_replay_missing_store_is_operator_error(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["replay", str(tmp_path / "absent.sqlite")]) == 2
        assert main(["store", "inspect", str(tmp_path / "nope.sqlite")]) == 2


class TestEventNotificationKinds:
    def test_kind_constants_are_the_wire_values(self):
        assert KIND_RECORD == "record"
        assert KIND_EVENT == "event"
        assert KIND_SNAPSHOT == "snapshot"
