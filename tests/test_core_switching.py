"""Unit tests for D_switch (Eq. 1) and the Schmitt-trigger switch loop."""

import pytest

from repro.apps import ApplicationInstance, BENCHMARKS, reset_instance_ids
from repro.config import DEFAULT_PARAMETERS
from repro.core.dswitch import DSwitchCalculator
from repro.core.switching import SchmittTrigger, SwitchDecision
from repro.fpga import BoardConfig, FPGABoard
from repro.schedulers import NimblockScheduler
from repro.sim import Engine


@pytest.fixture(autouse=True)
def _fresh_ids():
    reset_instance_ids()


class TestSchmittTrigger:
    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            SchmittTrigger(threshold_up=0.01, threshold_down=0.1)
        with pytest.raises(ValueError):
            SchmittTrigger(threshold_up=1.5, threshold_down=0.1)

    def test_up_switch_at_t1(self):
        trigger = SchmittTrigger(threshold_up=0.1, threshold_down=0.0125)
        event = trigger.update(0.0, 0.11)
        assert event.decision is SwitchDecision.TO_BIG_LITTLE
        assert trigger.mode is BoardConfig.BIG_LITTLE

    def test_down_switch_at_t2(self):
        trigger = SchmittTrigger(mode=BoardConfig.BIG_LITTLE)
        event = trigger.update(0.0, 0.01)
        assert event.decision is SwitchDecision.TO_ONLY_LITTLE
        assert trigger.mode is BoardConfig.ONLY_LITTLE

    def test_hysteresis_prevents_oscillation(self):
        trigger = SchmittTrigger(threshold_up=0.1, threshold_down=0.0125)
        # Oscillate inside the buffer zone: no switches should fire.
        for i, value in enumerate([0.05, 0.09, 0.03, 0.08, 0.02, 0.09]):
            event = trigger.update(float(i), value)
            assert event.decision is SwitchDecision.HOLD
        assert trigger.switch_count == 0

    def test_full_cycle(self):
        trigger = SchmittTrigger()
        assert trigger.update(0.0, 0.15).decision is SwitchDecision.TO_BIG_LITTLE
        assert trigger.update(1.0, 0.05).decision is SwitchDecision.HOLD
        assert trigger.update(2.0, 0.01).decision is SwitchDecision.TO_ONLY_LITTLE
        assert trigger.switch_count == 2

    def test_prewarm_anticipates_rising(self):
        trigger = SchmittTrigger()
        trigger.update(0.0, 0.02)
        event = trigger.update(1.0, 0.05)  # rising, inside buffer zone
        assert event.prewarm is BoardConfig.BIG_LITTLE

    def test_prewarm_anticipates_falling_in_big_little(self):
        trigger = SchmittTrigger(mode=BoardConfig.BIG_LITTLE)
        trigger.update(0.0, 0.08)
        event = trigger.update(1.0, 0.05)  # falling toward T2
        assert event.prewarm is BoardConfig.ONLY_LITTLE

    def test_no_prewarm_outside_buffer(self):
        trigger = SchmittTrigger()
        trigger.update(0.0, 0.005)
        event = trigger.update(1.0, 0.006)
        assert event.prewarm is None

    def test_value_range_validated(self):
        with pytest.raises(ValueError):
            SchmittTrigger().update(0.0, 1.5)


class TestDSwitchCalculator:
    def _loaded_scheduler(self):
        engine = Engine()
        board = FPGABoard(engine, BoardConfig.ONLY_LITTLE, DEFAULT_PARAMETERS)
        scheduler = NimblockScheduler(board)
        for name in ("IC", "AN", "OF"):
            scheduler.submit(ApplicationInstance(BENCHMARKS[name], 10, 0.0))
        engine.run(until=3000.0)
        return engine, scheduler

    def test_compute_in_unit_range(self):
        engine, scheduler = self._loaded_scheduler()
        calc = DSwitchCalculator()
        sample = calc.compute(scheduler)
        assert 0.0 <= sample.value <= 1.0
        assert sample.window_pr > 0

    def test_window_resets_after_compute(self):
        engine, scheduler = self._loaded_scheduler()
        calc = DSwitchCalculator()
        calc.compute(scheduler)
        assert scheduler.stats.window_pr == 0
        assert scheduler.stats.window_blocked == 0

    def test_zero_when_no_pr(self):
        engine = Engine()
        board = FPGABoard(engine, BoardConfig.ONLY_LITTLE, DEFAULT_PARAMETERS)
        scheduler = NimblockScheduler(board)
        calc = DSwitchCalculator()
        sample = calc.compute(scheduler)
        assert sample.value == 0.0

    def test_period_gating(self):
        engine, scheduler = self._loaded_scheduler()
        calc = DSwitchCalculator(period=4, min_window_pr=0)
        results = [calc.on_candidate_update(scheduler) for _ in range(8)]
        emitted = [r for r in results if r is not None]
        assert len(emitted) == 2

    def test_min_window_suppresses_noise(self):
        engine = Engine()
        board = FPGABoard(engine, BoardConfig.ONLY_LITTLE, DEFAULT_PARAMETERS)
        scheduler = NimblockScheduler(board)
        calc = DSwitchCalculator(period=1, min_window_pr=5)
        # no PRs recorded yet: every update is suppressed
        assert calc.on_candidate_update(scheduler) is None
        assert calc.samples == []

    def test_worst_case_batch_one(self):
        """N_batch == N_apps (batch 1 each) maximizes the queue factor."""
        engine = Engine()
        board = FPGABoard(engine, BoardConfig.ONLY_LITTLE, DEFAULT_PARAMETERS)
        scheduler = NimblockScheduler(board)
        for name in ("IC", "AN"):
            scheduler.submit(ApplicationInstance(BENCHMARKS[name], 1, 0.0))
        engine.run(until=1200.0)
        calc = DSwitchCalculator()
        sample = calc.compute(scheduler)
        if sample.candidate_apps:
            assert sample.candidate_batch == sample.candidate_apps
