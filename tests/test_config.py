"""Unit tests for the platform parameter set."""

import pytest

from repro.config import DEFAULT_PARAMETERS, ParameterSweep, SystemParameters


class TestSystemParameters:
    def test_pr_time_scales_with_size(self):
        params = SystemParameters()
        assert params.pr_time_ms(145.0) == pytest.approx(1000.0)

    def test_pr_time_rejects_non_positive(self):
        with pytest.raises(ValueError):
            SystemParameters().pr_time_ms(0.0)

    def test_big_bitstream_twice_little(self):
        params = DEFAULT_PARAMETERS
        assert params.big_pr_ms == pytest.approx(2.0 * params.little_pr_ms)

    def test_full_pr_largest(self):
        params = DEFAULT_PARAMETERS
        assert params.full_pr_ms > params.big_pr_ms > params.little_pr_ms

    def test_transfer_time(self):
        params = SystemParameters(aurora_bandwidth_mbps=1000.0)
        assert params.transfer_time_ms(1.0) == pytest.approx(1.0)

    def test_transfer_rejects_negative(self):
        with pytest.raises(ValueError):
            DEFAULT_PARAMETERS.transfer_time_ms(-1.0)

    def test_with_overrides_returns_new_instance(self):
        base = DEFAULT_PARAMETERS
        tweaked = base.with_overrides(pcap_bandwidth_mbps=290.0)
        assert tweaked.pcap_bandwidth_mbps == 290.0
        assert base.pcap_bandwidth_mbps == 145.0
        assert tweaked.little_pr_ms == pytest.approx(base.little_pr_ms / 2.0)

    def test_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_PARAMETERS.pcap_bandwidth_mbps = 1.0

    def test_schmitt_thresholds_sane(self):
        params = DEFAULT_PARAMETERS
        assert 0 < params.switch_threshold_down < params.switch_threshold_up < 1

    def test_override_leak_hazard_closed(self):
        """One run's overrides must never alias into another run's params.

        ``DEFAULT_PARAMETERS`` is a single module-level object handed to
        every run; it stays safe because the dataclass is frozen and every
        override path returns a *new* instance, and because schedulers
        resolve ``params=None`` per-instance instead of binding the shared
        object as a default argument.
        """
        import dataclasses

        assert dataclasses.fields(SystemParameters)  # is a dataclass
        with pytest.raises(dataclasses.FrozenInstanceError):
            DEFAULT_PARAMETERS.pr_failure_rate = 0.5
        tweaked = DEFAULT_PARAMETERS.with_overrides(pr_failure_rate=0.5)
        assert tweaked is not DEFAULT_PARAMETERS
        assert DEFAULT_PARAMETERS.pr_failure_rate == 0.0

    def test_scheduler_default_params_resolved_per_instance(self):
        from repro.fpga import BoardConfig, FPGABoard
        from repro.schedulers import FCFSScheduler
        from repro.sim import Engine

        engine = Engine()
        board = FPGABoard(engine, BoardConfig.ONLY_LITTLE, DEFAULT_PARAMETERS)
        scheduler = FCFSScheduler(board)
        assert scheduler.params == DEFAULT_PARAMETERS


class TestParameterSweep:
    def test_materialize_includes_default(self):
        sweep = ParameterSweep()
        out = sweep.materialize()
        assert out["default"] is DEFAULT_PARAMETERS

    def test_variations_applied(self):
        sweep = ParameterSweep()
        sweep.add("fast-pcap", pcap_bandwidth_mbps=290.0)
        sweep.add("slow-link", aurora_bandwidth_mbps=100.0)
        out = sweep.materialize()
        assert out["fast-pcap"].pcap_bandwidth_mbps == 290.0
        assert out["slow-link"].aurora_bandwidth_mbps == 100.0
        assert len(out) == 3
