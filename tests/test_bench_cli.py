"""The ``repro bench`` harness: trajectory file, baseline gate, CLI wiring."""

import json

import pytest

from repro import bench
from repro.cli import main


def run_cli(*argv):
    return main(list(argv))


@pytest.fixture()
def quick_args(tmp_path):
    """Fast harness invocation: one round, only the cheapest benchmark."""
    out = tmp_path / "BENCH_kernel.json"
    return out, [
        "bench", "--quick", "--rounds", "1",
        "--only", "kernel_event_throughput",
        "--out", str(out),
    ]


class TestHarness:
    def test_run_benches_measures_registered_names(self):
        results = bench.run_benches(
            quick=True, rounds=1, names=["kernel_event_throughput"]
        )
        assert [r.name for r in results] == ["kernel_event_throughput"]
        result = results[0]
        assert result.unit == "events"
        assert result.units_per_iter == 5000
        assert result.best_s > 0
        assert result.throughput > 0

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError, match="unknown benchmark"):
            bench.run_benches(names=["bogus"])

    def test_quick_excludes_slow_benches(self):
        quick_names = {
            spec.name for spec in bench.BENCHES if spec.quick
        }
        assert "fig5_micro" not in quick_names
        assert "kernel_event_throughput" in quick_names

    def test_only_overrides_quick_selection(self):
        # An explicitly named benchmark runs even when --quick would
        # normally exclude it (quick still shortens rounds).
        results = bench.run_benches(quick=True, rounds=1, names=["fig5_micro"])
        assert [r.name for r in results] == ["fig5_micro"]


class TestTrajectoryFile:
    def test_append_creates_and_accumulates(self, tmp_path):
        path = tmp_path / "BENCH_kernel.json"
        results = bench.run_benches(
            quick=True, rounds=1, names=["kernel_event_throughput"]
        )
        bench.append_entry(path, bench.make_entry(results, note="one", quick=True))
        data = bench.append_entry(
            path, bench.make_entry(results, note="two", quick=True)
        )
        assert data["schema"] == bench.BENCH_SCHEMA
        notes = [entry["note"] for entry in data["history"]]
        assert notes == ["one", "two"]
        on_disk = json.loads(path.read_text())
        assert on_disk == data
        entry = on_disk["history"][-1]
        assert "kernel_event_throughput" in entry["results"]
        assert entry["results"]["kernel_event_throughput"]["throughput"] > 0

    def test_malformed_trajectory_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": "other", "history": []}')
        with pytest.raises(ValueError, match="trajectory"):
            bench.load_trajectory(path)


class TestBaselineGate:
    def _entry_with_throughput(self, name, throughput):
        return {
            "note": "synthetic", "quick": True,
            "results": {name: {"throughput": throughput, "unit": "events"}},
        }

    def _result(self, name, throughput):
        return bench.BenchResult(
            name=name, unit="events", units_per_iter=1000, iters=1,
            rounds=1, best_s=1000 / throughput, mean_s=1000 / throughput,
        )

    def test_within_tolerance_passes(self):
        baseline = self._entry_with_throughput("k", 1000.0)
        failures = bench.compare_to_baseline(
            [self._result("k", 800.0)], baseline, max_regression=0.30
        )
        assert failures == []

    def test_large_regression_fails(self):
        baseline = self._entry_with_throughput("k", 1000.0)
        failures = bench.compare_to_baseline(
            [self._result("k", 600.0)], baseline, max_regression=0.30
        )
        assert len(failures) == 1
        assert "k:" in failures[0]

    def test_unknown_benchmarks_ignored(self):
        baseline = self._entry_with_throughput("other", 1000.0)
        failures = bench.compare_to_baseline(
            [self._result("k", 1.0)], baseline, max_regression=0.30
        )
        assert failures == []


class TestCLI:
    def test_bench_writes_trajectory(self, quick_args, capsys):
        out, argv = quick_args
        assert run_cli(*argv) == 0
        data = json.loads(out.read_text())
        assert len(data["history"]) == 1
        assert "kernel_event_throughput" in data["history"][0]["results"]
        assert "appended entry #1" in capsys.readouterr().out

    def test_bench_gates_against_baseline(self, quick_args, tmp_path, capsys):
        out, argv = quick_args
        # Record a first entry, then gate a second run against it: the
        # same machine moments apart is comfortably inside 30%.
        assert run_cli(*argv) == 0
        assert run_cli(*argv, "--baseline", str(out)) == 0
        assert "no regression" in capsys.readouterr().out
        # An inflated synthetic baseline must fail the gate (exit 1).
        inflated = tmp_path / "inflated.json"
        data = json.loads(out.read_text())
        entry = data["history"][-1]
        entry["results"]["kernel_event_throughput"]["throughput"] *= 100
        inflated.write_text(json.dumps({"schema": bench.BENCH_SCHEMA,
                                        "history": [entry]}))
        assert run_cli(*argv, "--baseline", str(inflated)) == 1
        assert "throughput regression" in capsys.readouterr().err

    def test_no_write_leaves_trajectory_alone(self, quick_args):
        out, argv = quick_args
        assert run_cli(*argv, "--no-write") == 0
        assert not out.exists()

    def test_missing_baseline_is_an_operator_error(self, quick_args, tmp_path):
        out, argv = quick_args
        empty = tmp_path / "empty.json"
        empty.write_text(json.dumps({"schema": bench.BENCH_SCHEMA, "history": []}))
        assert run_cli(*argv, "--baseline", str(empty)) == 2

    def test_unknown_only_is_an_operator_error(self, tmp_path):
        assert run_cli(
            "bench", "--only", "bogus", "--no-write",
            "--out", str(tmp_path / "x.json"),
        ) == 2


class TestRoundsMismatchRefusal:
    def _entry(self, name, throughput, rounds):
        return {
            "note": "synthetic", "quick": True,
            "results": {name: {
                "throughput": throughput, "unit": "events", "rounds": rounds,
            }},
        }

    def _result(self, name, rounds):
        return bench.BenchResult(
            name=name, unit="events", units_per_iter=1000, iters=1,
            rounds=rounds, best_s=1.0, mean_s=1.0,
        )

    def test_mismatched_rounds_reported(self):
        mismatches = bench.rounds_mismatches(
            [self._result("k", 2)], self._entry("k", 1000.0, 12)
        )
        assert len(mismatches) == 1
        assert "--rounds 12" in mismatches[0]

    def test_matching_rounds_pass(self):
        assert bench.rounds_mismatches(
            [self._result("k", 12)], self._entry("k", 1000.0, 12)
        ) == []

    def test_legacy_entries_without_rounds_pass(self):
        # Pre-refusal trajectory entries lack per-result rounds; they
        # stay comparable (the loose ratio gate is all we have for them).
        entry = self._entry("k", 1000.0, 12)
        del entry["results"]["k"]["rounds"]
        assert bench.rounds_mismatches([self._result("k", 2)], entry) == []

    def test_cli_refuses_mismatched_baseline(self, tmp_path, capsys):
        out = tmp_path / "BENCH_kernel.json"
        argv = ["bench", "--quick", "--only", "kernel_event_throughput",
                "--out", str(out)]
        assert run_cli(*argv, "--rounds", "2") == 0
        assert run_cli(*argv, "--rounds", "1", "--no-write",
                       "--baseline", str(out)) == 2
        assert "round-count mismatch" in capsys.readouterr().err

    def test_cli_refusal_never_appends(self, tmp_path):
        # A refused comparison must not record its off-protocol
        # measurement: the trajectory would accumulate entries no later
        # gate could use.
        out = tmp_path / "BENCH_kernel.json"
        argv = ["bench", "--quick", "--only", "kernel_event_throughput",
                "--out", str(out)]
        assert run_cli(*argv, "--rounds", "2") == 0
        before = out.read_bytes()
        assert run_cli(*argv, "--rounds", "1", "--baseline", str(out)) == 2
        assert out.read_bytes() == before


class TestCampaignPayloads:
    def test_new_payloads_registered(self):
        names = {spec.name for spec in bench.BENCHES}
        assert {"campaign_cell_overhead", "fleet_short_cells"} <= names
        compare_names = {name for name, _ in bench.COMPARE_BENCHES}
        assert {"campaign_cell_overhead", "fleet_short_cells"} <= compare_names
        assert bench.COMPARE_FLOORS["campaign_cell_overhead"] >= 0.8
        assert bench.COMPARE_FLOORS["fleet_short_cells"] >= 0.8

    def test_campaign_cell_overhead_counts_cells(self):
        assert bench._bench_campaign_cell_overhead() == 12

    def test_fleet_short_cells_counts_cells(self):
        assert bench._bench_fleet_short_cells() > 0

    def test_kernel_name_round_trips_registry_factories(self):
        from repro.sim import Engine, WheelEngine
        from repro.verify.reference import ReferenceEngine

        assert bench._kernel_name(None) == "default"
        assert bench._kernel_name(WheelEngine) == "wheel"
        assert bench._kernel_name(Engine) == "heap"
        assert bench._kernel_name(ReferenceEngine) == "reference"
        with pytest.raises(KeyError):
            bench._kernel_name(object)

    def test_compare_result_records_rounds(self):
        results = bench.run_compare("wheel", "heap", rounds=1)
        assert results and all(r.rounds == 1 for r in results)
        table = bench.format_compare_table(results)
        assert "1 rounds" in table


class TestProfileMode:
    def test_profile_writes_report(self, tmp_path):
        reports = bench.run_profile(
            names=["kernel_event_throughput"], out_dir=str(tmp_path)
        )
        assert len(reports) == 1
        name, path, top_text = reports[0]
        assert name == "kernel_event_throughput"
        assert path == tmp_path / "profile_kernel_event_throughput.txt"
        full = path.read_text()
        assert "cumulative" in full
        # The terminal summary leads with the hotspot column header.
        assert top_text.lstrip().startswith("ncalls")
        assert "_bench_event_throughput" in top_text

    def test_profile_cli_is_side_effect_free(self, tmp_path, capsys):
        out = tmp_path / "BENCH_kernel.json"
        assert run_cli(
            "bench", "--profile", "--only", "kernel_event_throughput",
            "--profile-dir", str(tmp_path / "profiles"), "--out", str(out),
        ) == 0
        captured = capsys.readouterr()
        assert "profiled 1 payload(s)" in captured.out
        assert not out.exists()  # profiling never touches the trajectory
        assert (tmp_path / "profiles"
                / "profile_kernel_event_throughput.txt").exists()

    def test_profile_unknown_name_is_an_operator_error(self, tmp_path):
        assert run_cli(
            "bench", "--profile", "--only", "bogus",
            "--profile-dir", str(tmp_path),
        ) == 2
