"""Campaign backend robustness: crashed workers, hung cells, retries.

A bare ``multiprocessing.Pool.map`` hangs forever when a worker dies
mid-task; the process backend must instead detect the death, retry the
cell deterministically in isolation, and surface a persistent failure as
a failure record so the healthy records survive.  The crash/hang cells
here override ``resolve_arrivals`` — the first cell-specific code a
worker runs — to simulate a worker dying inside the simulation.
"""

import dataclasses
import os
import time

import pytest

from repro.campaign import (
    CampaignRunner,
    ProcessBackend,
    ResultsStore,
    RunRecord,
    Scenario,
    SerialBackend,
    failure_record,
)
from repro.campaign.backend import CampaignCell
from repro.metrics.report import summarize_records
from repro.workloads.generator import Condition, WorkloadSpec

#: Flag-file path shared with forked workers (set per-test before the
#: pool forks; workers inherit the module state).
_FLAG = {"path": ""}


def _clone_as(cls, cell: CampaignCell):
    kwargs = {
        f.name: getattr(cell, f.name)
        for f in dataclasses.fields(cell)
        if f.init
    }
    return cls(**kwargs)


class CrashOnceCell(CampaignCell):
    """Dies abruptly on first execution, succeeds on the retry."""

    def resolve_arrivals(self):
        if not os.path.exists(_FLAG["path"]):
            open(_FLAG["path"], "w").close()
            os._exit(1)
        return super().resolve_arrivals()


class AlwaysCrashCell(CampaignCell):
    def resolve_arrivals(self):
        os._exit(1)


class HangCell(CampaignCell):
    def resolve_arrivals(self):
        time.sleep(300)
        return super().resolve_arrivals()


class RaisingCell(CampaignCell):
    def resolve_arrivals(self):
        raise ValueError("simulation-level error")


def _cells(n_sequences: int = 3):
    return CampaignRunner().cells_for(Scenario(
        name="robustness",
        workload=WorkloadSpec(
            Condition.LOOSE, n_apps=2, sequence_count=n_sequences
        ),
        systems=("FCFS",),
    ))


class TestProcessBackendRobustness:
    def test_crashed_worker_retries_and_matches_serial(self, tmp_path):
        cells = _cells()
        serial = SerialBackend().run(cells)
        _FLAG["path"] = str(tmp_path / "crashed-once")
        mixed = [_clone_as(CrashOnceCell, cells[0])] + cells[1:]
        records = ProcessBackend(jobs=2).run(mixed)
        assert [r.to_dict() for r in records] == [r.to_dict() for r in serial]

    def test_persistent_crash_surfaces_failure_record(self):
        cells = _cells()
        serial = SerialBackend().run(cells)
        mixed = [_clone_as(AlwaysCrashCell, cells[0])] + cells[1:]
        records = ProcessBackend(jobs=2).run(mixed)
        assert records[0].failed
        assert "crashed" in records[0].error
        assert records[0].response_times_ms == []
        # Sibling cells caught in the pool breakage still complete,
        # bit-identical to the serial reference.
        assert [r.to_dict() for r in records[1:]] == \
            [r.to_dict() for r in serial[1:]]

    def test_hung_worker_times_out_instead_of_hanging(self):
        cells = _cells()
        serial = SerialBackend().run(cells)
        mixed = [_clone_as(HangCell, cells[0])] + cells[1:]
        start = time.monotonic()
        records = ProcessBackend(jobs=2, timeout_s=2.0).run(mixed)
        elapsed = time.monotonic() - start
        assert elapsed < 60.0  # pool.map would wait on the sleep forever
        assert records[0].failed
        assert "timed out" in records[0].error
        assert [r.to_dict() for r in records[1:]] == \
            [r.to_dict() for r in serial[1:]]

    def test_simulation_exception_still_propagates(self):
        cells = _cells()
        mixed = [_clone_as(RaisingCell, cells[0])] + cells[1:]
        with pytest.raises(ValueError, match="simulation-level error"):
            ProcessBackend(jobs=2).run(mixed)

    def test_retry_budget_validation(self):
        with pytest.raises(ValueError, match="max_retries"):
            ProcessBackend(jobs=2, max_retries=-1)
        with pytest.raises(ValueError, match="jobs"):
            ProcessBackend(jobs=0)


class TestFailureRecords:
    def test_failure_record_round_trips_through_store(self, tmp_path):
        cell = _cells(1)[0]
        record = failure_record(cell, "worker process crashed")
        store = ResultsStore(tmp_path / "failed.jsonl")
        store.extend([record])
        loaded = store.load()
        assert len(loaded) == 1
        assert loaded[0].failed
        assert loaded[0].error == "worker process crashed"
        assert loaded[0].to_dict() == record.to_dict()

    def test_failure_record_never_resolves_arrivals(self):
        # Regenerating the sequence re-runs the code that crashed the
        # worker — this time in the orchestrator.  The record must be
        # built from spec metadata alone.
        cell = _clone_as(AlwaysCrashCell, _cells(1)[0])
        record = failure_record(cell, "boom")
        assert record.failed
        assert record.n_apps == cell.workload.n_apps

    def test_summary_excludes_failed_cells(self):
        cells = _cells(2)
        records = SerialBackend().run(cells)
        failed = failure_record(cells[0], "worker process crashed")
        table = summarize_records(records + [failed])
        assert "1 failed cell(s) excluded" in table
        clean = summarize_records(records)
        assert "failed" not in clean
        assert summarize_records([failed]) == \
            "no usable records (1 failed cell(s))"

    def test_default_records_are_not_failed(self):
        record = RunRecord(
            scenario="s", system="FCFS", condition="Loose",
            sequence_index=0, seed=1, n_apps=2, makespan_ms=1.0,
        )
        assert not record.failed


class TestTruncatedTailAccounting:
    def _store_with_truncated_tail(self, tmp_path):
        cells = _cells(1)
        store = ResultsStore(tmp_path / "records.jsonl")
        store.write(SerialBackend().run(cells))
        with store.path.open("a", encoding="utf-8") as handle:
            handle.write('{"scenario": "robustness", "trunc')
        return store

    def test_skipped_line_count_exposed(self, tmp_path):
        store = self._store_with_truncated_tail(tmp_path)
        with pytest.warns(UserWarning, match="truncated trailing record"):
            records = store.load()
        assert len(records) == 1
        assert store.skipped_lines == 1
        # An intact file resets the count.
        store.write(records)
        store.load()
        assert store.skipped_lines == 0

    def test_truncation_warns_once_per_file(self, tmp_path):
        import warnings as warnings_module

        store = self._store_with_truncated_tail(tmp_path)
        with pytest.warns(UserWarning, match="truncated trailing record"):
            store.load()
        # Re-loading the same damaged file skips silently but still counts.
        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error")
            ResultsStore(store.path).load()
        fresh = ResultsStore(store.path)
        fresh.load()
        assert fresh.skipped_lines == 1

    def test_replay_cli_reports_skipped_lines(self, tmp_path, capsys):
        from repro.cli import main

        store = self._store_with_truncated_tail(tmp_path)
        # Dropped lines are an exit-code-visible condition (3), not just a
        # note: automation must not mistake a damaged replay for a clean one.
        with pytest.warns(UserWarning):
            assert main(["campaign", "replay", str(store.path)]) == 3
        out = capsys.readouterr().out
        assert "1 truncated trailing line(s) skipped" in out

    def test_replay_cli_reports_skipped_lines_json(self, tmp_path, capsys):
        import json

        from repro.cli import main

        store = self._store_with_truncated_tail(tmp_path)
        with pytest.warns(UserWarning):
            assert main(
                ["campaign", "replay", str(store.path), "--json"]
            ) == 3
        payload = json.loads(capsys.readouterr().out)
        assert payload["records"] == 1
        assert payload["skipped_lines"] == 1
        assert "rendered" in payload
