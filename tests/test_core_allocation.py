"""Unit tests for Algorithm 1 (Big.Little slot allocation) using fakes."""

from dataclasses import dataclass, field
from typing import List

import pytest

from repro.core.allocation import allocate_big_little


@dataclass
class FakeSpec:
    can_bundle: bool = True


@dataclass
class FakeInst:
    app_id: int


@dataclass
class FakeApp:
    app_id: int
    tasks_left: int
    bundles_left: int
    can_bundle: bool = True
    alloc_big: int = 0
    alloc_little: int = 0
    in_big: bool = False
    started: bool = False

    def __post_init__(self):
        self.spec = FakeSpec(self.can_bundle)
        self.inst = FakeInst(self.app_id)

    def unfinished_task_count(self):
        return self.tasks_left

    def unfinished_bundle_count(self):
        return self.bundles_left


@dataclass
class FakeScheduler:
    big_total: int = 2
    little_total: int = 4
    c_wait: List[FakeApp] = field(default_factory=list)
    s_big: List[FakeApp] = field(default_factory=list)
    s_little: List[FakeApp] = field(default_factory=list)
    committed: int = 0

    def committed_little(self):
        return self.committed


def run_allocation(sched, o_big=1, o_little=3):
    allocate_big_little(sched, lambda app: o_big, lambda app: o_little)


class TestPrimaryAllocation:
    def test_bundleable_app_gets_big_slots_first(self):
        app = FakeApp(0, tasks_left=6, bundles_left=2)
        sched = FakeScheduler(c_wait=[app])
        run_allocation(sched, o_big=2)
        assert app.in_big
        assert app.alloc_big == 2
        assert app.alloc_little == 0
        assert app in sched.s_big
        assert app not in sched.c_wait

    def test_non_bundleable_app_gets_little_slots(self):
        app = FakeApp(0, tasks_left=5, bundles_left=0, can_bundle=False)
        sched = FakeScheduler(c_wait=[app])
        run_allocation(sched, o_little=3)
        assert not app.in_big
        # 3 primary (O_L) + 1 leftover redistributed (delta capped at 2,
        # but only one of the 4 Little slots remains unpromised).
        assert app.alloc_little == 4
        assert app in sched.s_little

    def test_big_reservation_blocks_further_big_binding(self):
        bound = FakeApp(0, tasks_left=6, bundles_left=2)
        bound.in_big = True
        waiting_a = FakeApp(1, tasks_left=6, bundles_left=2)
        waiting_b = FakeApp(2, tasks_left=6, bundles_left=2)
        sched = FakeScheduler(s_big=[bound], c_wait=[waiting_a, waiting_b])
        run_allocation(sched)
        # one big slot reserved by `bound`, so only one more app binds big
        assert waiting_a.in_big
        assert not waiting_b.in_big

    def test_little_grant_capped_by_l_left(self):
        first = FakeApp(0, tasks_left=6, bundles_left=0, can_bundle=False)
        second = FakeApp(1, tasks_left=6, bundles_left=0, can_bundle=False)
        sched = FakeScheduler(c_wait=[first, second])
        run_allocation(sched, o_little=3)
        assert first.alloc_little == 3
        assert second.alloc_little == 1  # only one slot left of 4

    def test_no_allocation_when_everything_busy(self):
        bound = FakeApp(0, tasks_left=6, bundles_left=2)
        little_bound = FakeApp(1, tasks_left=6, bundles_left=0)
        little_bound.alloc_little = 4
        bound2 = FakeApp(2, tasks_left=6, bundles_left=2)
        bound2.in_big = True
        waiting = FakeApp(3, tasks_left=3, bundles_left=1)
        sched = FakeScheduler(
            s_big=[bound, bound2],
            s_little=[little_bound],
            c_wait=[waiting],
            committed=4,
        )
        run_allocation(sched)
        assert not waiting.in_big
        assert waiting.alloc_little == 0


class TestRebinding:
    def test_unstarted_little_app_rebinds_to_big(self):
        app = FakeApp(0, tasks_left=6, bundles_left=2)
        app.alloc_little = 3
        sched = FakeScheduler(s_little=[app])
        run_allocation(sched)
        assert app.in_big
        assert app.alloc_big >= 1
        assert app in sched.s_big
        assert app not in sched.s_little

    def test_started_little_app_not_rebound(self):
        app = FakeApp(0, tasks_left=6, bundles_left=2, started=True)
        app.alloc_little = 3
        sched = FakeScheduler(s_little=[app], committed=3)
        run_allocation(sched)
        assert not app.in_big
        assert app in sched.s_little

    def test_rebinding_keeps_arrival_order(self):
        older = FakeApp(0, tasks_left=6, bundles_left=2)
        older.alloc_little = 2
        newer = FakeApp(1, tasks_left=6, bundles_left=2)
        # Fill big slots so neither can bind big after rebinding.
        bound_a = FakeApp(2, tasks_left=6, bundles_left=2)
        bound_b = FakeApp(3, tasks_left=6, bundles_left=2)
        sched = FakeScheduler(
            s_little=[older], c_wait=[newer], s_big=[bound_a, bound_b]
        )
        run_allocation(sched, o_little=2)
        # big slots fully reserved: both apps got little slots, oldest first
        assert older.alloc_little >= newer.alloc_little


class TestRedistribution:
    def test_leftover_slots_spread_to_bound_apps(self):
        app = FakeApp(0, tasks_left=6, bundles_left=0, can_bundle=False, started=True)
        app.alloc_little = 2
        sched = FakeScheduler(s_little=[app], committed=2)
        run_allocation(sched)
        # 4 total - min(2, 6) promised = 2 left; delta = 6-2=4 -> +2
        assert app.alloc_little == 4

    def test_redistribution_capped_by_remaining_tasks(self):
        app = FakeApp(0, tasks_left=3, bundles_left=0, can_bundle=False, started=True)
        app.alloc_little = 2
        sched = FakeScheduler(s_little=[app], committed=2)
        run_allocation(sched)
        assert app.alloc_little == 3

    def test_front_of_queue_priority(self):
        first = FakeApp(0, tasks_left=9, bundles_left=0, can_bundle=False, started=True)
        first.alloc_little = 1
        second = FakeApp(1, tasks_left=9, bundles_left=0, can_bundle=False, started=True)
        second.alloc_little = 1
        sched = FakeScheduler(s_little=[first, second], committed=2)
        run_allocation(sched)
        assert first.alloc_little > second.alloc_little


class TestEarlyExit:
    def test_returns_when_no_slots_at_all(self):
        bound = [FakeApp(i, tasks_left=6, bundles_left=2) for i in range(2)]
        waiting = FakeApp(9, tasks_left=6, bundles_left=2)
        sched = FakeScheduler(s_big=bound, c_wait=[waiting], committed=4)
        run_allocation(sched)
        assert waiting.alloc_big == 0
        assert waiting.alloc_little == 0
        assert waiting in sched.c_wait
