"""Unit tests for the simulation engine: ordering, clock, determinism."""

import pytest

from repro.sim import EmptySchedule, Engine


class TestClock:
    def test_starts_at_zero(self):
        assert Engine().now == 0.0

    def test_custom_start_time(self):
        assert Engine(start_time=10.0).now == 10.0

    def test_run_until_advances_clock_to_limit(self):
        engine = Engine()
        engine.timeout(3.0)
        engine.run(until=100.0)
        assert engine.now == 100.0

    def test_run_until_past_raises(self):
        engine = Engine(start_time=50.0)
        with pytest.raises(ValueError):
            engine.run(until=10.0)

    def test_run_until_does_not_dispatch_later_events(self):
        engine = Engine()
        late = engine.timeout(10.0)
        engine.run(until=5.0)
        assert not late.processed

    def test_peek_reports_next_event_time(self):
        engine = Engine()
        engine.timeout(7.0)
        assert engine.peek() == 7.0

    def test_peek_empty_is_inf(self):
        assert Engine().peek() == float("inf")

    def test_step_on_empty_raises(self):
        with pytest.raises(EmptySchedule):
            Engine().step()


class TestOrdering:
    def test_same_time_events_fifo(self):
        engine = Engine()
        order = []

        def proc(tag):
            yield engine.timeout(5.0)
            order.append(tag)

        for tag in ("a", "b", "c"):
            engine.process(proc(tag))
        engine.run()
        assert order == ["a", "b", "c"]

    def test_deterministic_replay(self):
        def build_and_run():
            engine = Engine()
            log = []

            def worker(tag, delay):
                yield engine.timeout(delay)
                log.append((engine.now, tag))
                yield engine.timeout(delay * 2)
                log.append((engine.now, tag))

            for i, tag in enumerate("abcde"):
                engine.process(worker(tag, 1.0 + i * 0.5))
            engine.run()
            return log

        assert build_and_run() == build_and_run()

    def test_events_dispatch_in_time_order(self):
        engine = Engine()
        times = []

        def proc(delay):
            yield engine.timeout(delay)
            times.append(engine.now)

        for delay in (5.0, 1.0, 3.0, 2.0, 4.0):
            engine.process(proc(delay))
        engine.run()
        assert times == sorted(times)


class TestRunUntilComplete:
    def test_returns_process_value(self):
        engine = Engine()

        def proc():
            yield engine.timeout(1.0)
            return "value"

        process = engine.process(proc())
        assert engine.run_until_complete(process) == "value"

    def test_incomplete_process_raises(self):
        engine = Engine()
        never = engine.event()

        def proc():
            yield never

        process = engine.process(proc())
        with pytest.raises(RuntimeError):
            engine.run_until_complete(process)

    def test_failed_process_reraises(self):
        engine = Engine()

        def child():
            yield engine.timeout(1.0)
            raise KeyError("inner")

        def outer():
            try:
                yield engine.process(child())
            except KeyError:
                raise ValueError("outer") from None
            return None

        process = engine.process(outer())
        with pytest.raises(ValueError, match="outer"):
            engine.run_until_complete(process)
