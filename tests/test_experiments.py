"""Integration tests for the experiment harness (small configurations)."""

import pytest

from repro.experiments import (
    PAPER_FIG7,
    SYSTEMS,
    long_workload,
    run_cluster,
    run_fig5,
    run_fig6,
    run_fig7,
    run_fig7_dynamic,
    run_fig8,
    run_sequence,
)
from repro.workloads import Condition, WorkloadGenerator


class TestRunner:
    def test_all_systems_registered(self):
        assert list(SYSTEMS) == [
            "Baseline", "FCFS", "RR", "Nimblock", "VersaSlot-OL", "VersaSlot-BL",
        ]

    def test_run_sequence_drains(self):
        arrivals = WorkloadGenerator(1).sequence(Condition.LOOSE, n_apps=4)
        result = run_sequence("Nimblock", arrivals)
        assert result.responses.count == 4
        assert result.stats.completions == 4

    def test_unknown_system_rejected(self):
        arrivals = WorkloadGenerator(1).sequence(Condition.LOOSE, n_apps=2)
        with pytest.raises(KeyError, match="available"):
            run_sequence("Mystery", arrivals)

    def test_run_sequence_deterministic(self):
        arrivals = WorkloadGenerator(1).sequence(Condition.STRESS, n_apps=6)
        a = run_sequence("VersaSlot-BL", arrivals)
        b = run_sequence("VersaSlot-BL", arrivals)
        assert a.responses.samples_ms == b.responses.samples_ms


class TestFig5:
    def test_small_run_shape(self):
        result = run_fig5(
            sequence_count=1,
            n_apps=6,
            conditions=(Condition.STRESS,),
        )
        reductions = result.reductions["Stress"]
        assert reductions["Baseline"] == pytest.approx(1.0)
        assert set(reductions) == set(SYSTEMS)
        assert result.table()

    def test_versaslot_bl_wins_under_stress(self):
        result = run_fig5(
            sequence_count=2,
            n_apps=12,
            conditions=(Condition.STRESS,),
        )
        reductions = result.reductions["Stress"]
        assert reductions["VersaSlot-BL"] > reductions["VersaSlot-OL"]
        assert reductions["VersaSlot-OL"] > reductions["Nimblock"]
        assert reductions["Nimblock"] > 1.0


class TestFig6:
    def test_reuses_fig5_runs(self):
        fig5 = run_fig5(
            sequence_count=1, n_apps=6, conditions=(Condition.STRESS,)
        )
        fig6 = run_fig6(fig5_result=fig5)
        assert "Stress-95" in fig6.relative_tails
        assert "Stress-99" in fig6.relative_tails
        assert fig6.relative_tails["Stress-95"]["Baseline"] == pytest.approx(1.0)
        assert fig6.table()


class TestFig7:
    def test_static_gains_match_paper(self):
        result = run_fig7()
        for app, (lut, ff) in PAPER_FIG7.items():
            got_lut, got_ff = result.gains[app]
            assert got_lut == pytest.approx(lut, abs=0.3)
            assert got_ff == pytest.approx(ff, abs=0.3)
        assert result.detail_bundle == pytest.approx(0.60)
        assert result.table()

    def test_dynamic_gain_positive(self):
        little, big = run_fig7_dynamic("IC", batch_size=10)
        assert big.lut > little.lut
        assert big.ff > little.ff


class TestFig8:
    def test_long_workload_phases(self):
        arrivals = long_workload(seed=1, n_apps=30, interval_range=(100.0, 1000.0))
        assert len(arrivals) == 30
        gaps = [b.time_ms - a.time_ms for a, b in zip(arrivals, arrivals[1:])]
        dense = sum(gaps[10:19]) / 9
        relaxed = sum(gaps[:9]) / 9
        assert dense < relaxed

    def test_cluster_run_drains(self):
        arrivals = long_workload(seed=1, n_apps=10, interval_range=(400.0, 900.0))
        responses, cluster, monitor = run_cluster(arrivals)
        assert responses.count == 10

    def test_fig8_small(self):
        result = run_fig8(seed=1, n_apps=24)
        assert result.reductions["Only.Little"] == pytest.approx(1.0)
        assert result.reductions["Switching"] > 0
        assert result.trace()
        assert result.comparison()
