"""The timing-wheel kernel: goldens, edge cases, and differential replay.

Three layers, mirroring ``tests/test_kernel_fastlane.py``:

* the wheel kernel replays the seed goldens unchanged (both in its
  everyday slot-register regime and with bucket custody forced via a
  threshold-1 subclass);
* white-box edge cases pin the calendar machinery — bucket boundaries,
  overflow promotion, urgent interrupts merged into a draining bucket,
  the until-horizon put-back — against the heap kernel;
* a seeded mini differential fuzz runs randomized pure-kernel scenarios
  on every backend and demands identical logs.
"""

import json
import random
from pathlib import Path

import pytest

from repro.apps import reset_instance_ids
from repro.sim import (
    AllOf,
    AnyOf,
    EmptySchedule,
    Engine,
    Event,
    Interrupt,
    Resource,
    WheelEngine,
)
from repro.sim.wheel import BUCKET_COUNT
from repro.verify import DifferentialOracle
from repro.workloads import Condition, WorkloadGenerator

from tests.test_kernel_fastlane import TestGoldenKernelStress

DATA = Path(__file__).parent / "data"


@pytest.fixture(autouse=True)
def _fresh_ids():
    reset_instance_ids()


class TinyWheelEngine(WheelEngine):
    """Wheel with bucket custody forced from the second pending entry.

    Real workloads rarely cross the 128-entry threshold, so tests use
    this subclass to drive the bucket/occupancy/side/overflow machinery
    on small scenarios.
    """

    __slots__ = ()
    WHEEL_THRESHOLD = 1


ALL_WHEELS = [WheelEngine, TinyWheelEngine]


# ----------------------------------------------------------------------
# Golden replay: the wheel is invisible to model code
# ----------------------------------------------------------------------
class TestWheelGoldenStress(TestGoldenKernelStress):
    """The pure-kernel stress golden on the slot-register regime."""

    engine_factory = staticmethod(WheelEngine)


class TestTinyWheelGoldenStress(TestGoldenKernelStress):
    """The same golden with every entry forced through bucket custody."""

    engine_factory = staticmethod(TinyWheelEngine)


class TestWheelOracle:
    def test_three_way_oracle_agrees(self):
        arrivals = WorkloadGenerator(13).sequence(Condition.STRESS, n_apps=5)
        oracle = DifferentialOracle(kernels=("optimized", "wheel"))
        report = oracle.check("VersaSlot-OL", arrivals)
        assert report.ok, report.summary()
        assert len(report.candidates) == 2
        shas = {fp.trace_sha256 for fp in report.candidates}
        shas.add(report.reference.trace_sha256)
        assert len(shas) == 1

    def test_divergence_is_tagged_by_kernel(self):
        """A broken kernel registered as ``wheel`` is named in the fields."""
        from repro.verify import KERNELS

        from tests.test_verify_oracle import SleepSkewEngine

        arrivals = WorkloadGenerator(5).sequence(Condition.STRESS, n_apps=4)
        KERNELS["wheel"] = SleepSkewEngine
        try:
            oracle = DifferentialOracle(kernels=("optimized", "wheel"))
            report = oracle.check("Nimblock", arrivals)
        finally:
            KERNELS["wheel"] = WheelEngine
        assert report.diverged
        names = {divergence.name for divergence in report.fields}
        assert any(name.startswith("wheel:") for name in names)
        assert not any(name.startswith("optimized:") for name in names)


# ----------------------------------------------------------------------
# Edge cases of the calendar machinery
# ----------------------------------------------------------------------
def _wake_log(engine_cls, delays):
    """One process per delay, logging (now, tag) on wake."""
    engine = engine_cls()
    log = []

    def waiter(tag, delay):
        yield engine.timeout(delay)
        log.append((engine.now, tag))

    for tag, delay in enumerate(delays):
        engine.process(waiter(tag, delay))
    engine.run()
    return log


class TestBucketEdges:
    @pytest.mark.parametrize("wheel_cls", ALL_WHEELS)
    def test_events_exactly_on_bucket_boundaries(self, wheel_cls):
        """Times landing exactly on ``base + k*width`` order correctly.

        65 evenly spaced delays give span 64 and width 2.0, so every even
        time sits exactly on a bucket boundary — the most rounding-prone
        placement the index function faces.
        """
        delays = [float(i) for i in range(65)]
        assert _wake_log(wheel_cls, delays) == _wake_log(Engine, delays)

    def test_same_time_burst_batches_through_one_bucket(self):
        """All-same-time entries keep FIFO order through one bucket sort."""
        delays = [5.0] * 40
        log = _wake_log(TinyWheelEngine, delays)
        assert log == [(5.0, tag) for tag in range(40)]

    def test_interrupt_merges_urgent_into_draining_bucket(self):
        """An URGENT interrupt raised *while its victim's bucket drains*.

        The interrupter and victim timeouts share a bucket at t=5; the
        interrupt fires mid-drain, lands in the side heap, and its URGENT
        priority must beat the victim's already-sorted NORMAL entry.  The
        abandoned (detached) timeout then dispatches harmlessly from the
        drained bucket.
        """
        engine = TinyWheelEngine()
        log = []
        victim_ref = []

        def interrupter():
            # Created first so its t=5 timeout outranks the victim's by
            # seq and dispatches first — the interrupt really does land
            # while the victim's entry is still in the active bucket.
            yield engine.timeout(5.0)
            victim_ref[0].interrupt("cut")

        def victim():
            try:
                yield engine.timeout(5.0)
                log.append((engine.now, "woke"))
            except Interrupt as exc:
                log.append((engine.now, "interrupted", str(exc.cause)))
            yield engine.timeout(1.0)  # waiting again still works
            log.append((engine.now, "slept-again"))

        def far():  # keeps the wheel non-empty past t=5
            yield engine.timeout(9.0)
            log.append((engine.now, "far"))

        engine.process(interrupter())
        victim_ref.append(engine.process(victim()))
        engine.process(far())
        engine.run()
        assert log == [
            (5.0, "interrupted", "cut"),
            (6.0, "slept-again"),
            (9.0, "far"),
        ]

    def test_far_future_overflow_promotes_back_into_the_wheel(self):
        """Entries beyond the ring land in overflow, then promote."""
        engine = TinyWheelEngine()
        log = []

        def near(tag, delay):
            yield engine.timeout(delay)
            log.append((engine.now, tag))

        engine.process(near("a", 1.0))
        engine.process(near("b", 2.0))

        def scheduler():
            yield engine.timeout(0.5)
            # The wheel is engaged (threshold 1) with width sized from the
            # [0.5, 2.0] spread: t=1000 is far past the ring horizon.
            yield engine.timeout(1000.0)
            log.append((engine.now, "far"))

        engine.process(scheduler())
        # Force custody before running so the far insert goes through the
        # engaged-wheel path rather than staging.
        engine.run(until=0.75)
        assert engine._wcount > 0
        spread = engine._base + BUCKET_COUNT * engine._width
        assert 1000.0 > spread  # genuinely beyond the ring
        engine.run()
        assert log == [(1.0, "a"), (2.0, "b"), (1000.5, "far")]
        assert engine._overflow == []
        assert engine.now == 1000.5

    def test_detached_timeout_in_drained_bucket_is_harmless(self):
        """A cancelled (interrupt-detached) timeout whose bucket already
        activated dispatches with no waiters and no error."""
        engine = TinyWheelEngine()
        log = []

        def sleeper():
            try:
                yield engine.timeout(100.0)
                log.append("woke-early")
            except Interrupt as exc:
                log.append(("interrupted", engine.now, exc.cause))
            return "ok"

        process = engine.process(sleeper())

        def interrupter():
            yield engine.timeout(10.0)
            process.interrupt("stop")

        engine.process(interrupter())
        engine.run()
        assert log == [("interrupted", 10.0, "stop")]
        assert process.value == "ok"
        # The abandoned t=100 timeout still advanced the clock.
        assert engine.now == 100.0
        assert engine.pending_count() == 0


class TestWheelEngineApi:
    @pytest.mark.parametrize("wheel_cls", ALL_WHEELS)
    def test_peek_step_pending_count(self, wheel_cls):
        engine = wheel_cls()
        assert engine.peek() == float("inf")
        assert engine.pending_count() == 0
        fired = []
        for delay in (3.0, 1.0, 2.0):
            engine.timeout(delay).callbacks.append(
                lambda event, d=delay: fired.append(d)
            )
        assert engine.pending_count() == 3
        assert engine.peek() == 1.0
        engine.step()
        assert (engine.now, fired) == (1.0, [1.0])
        assert engine.peek() == 2.0
        assert engine.pending_count() == 2
        engine.step()
        engine.step()
        assert fired == [1.0, 2.0, 3.0]
        with pytest.raises(EmptySchedule):
            engine.step()

    @pytest.mark.parametrize("wheel_cls", ALL_WHEELS)
    def test_until_horizon_put_back_and_resume(self, wheel_cls):
        def scenario(engine):
            log = []

            def proc(tag, delay, n):
                for i in range(n):
                    yield engine.timeout(delay)
                    log.append((engine.now, tag, i))

            engine.process(proc("a", 2.0, 6))
            engine.process(proc("b", 3.0, 4))
            engine.run(until=5.0)
            mid = (engine.now, list(log), engine.pending_count())
            engine.run()
            return mid, log, engine.now

        wheel = scenario(wheel_cls())
        heap = scenario(Engine())
        assert wheel == heap
        mid, _, _ = wheel
        assert mid[0] == 5.0  # clock advanced to the horizon exactly

    def test_single_parked_timeout_beyond_horizon_stays_in_slot(self):
        engine = WheelEngine()
        timeout = engine.timeout(10.0)
        engine.run(until=4.0)
        assert engine.now == 4.0
        assert engine.pending_count() == 1
        assert engine.peek() == 10.0
        fired = []
        timeout.callbacks.append(lambda event: fired.append(engine.now))
        engine.run()
        assert fired == [10.0]
        assert engine.pending_count() == 0


# ----------------------------------------------------------------------
# Seeded differential mini-fuzz: every backend, identical logs
# ----------------------------------------------------------------------
def _random_scenario(engine, seed):
    """A randomized pure-kernel scenario logging every observable resume."""
    rng = random.Random(seed)
    log = []
    resource = Resource(engine, capacity=rng.randint(1, 3), name="r")
    interruptees = []

    def looper(tag):
        for i in range(rng.randint(1, 6)):
            choice = rng.random()
            if choice < 0.4:
                yield engine.timeout(rng.choice([0.5, 1.0, 1.0, 2.5, 40.0]))
            elif choice < 0.6:
                yield float(rng.randint(0, 3))  # bare delay
            elif choice < 0.8:
                request = resource.acquire()
                yield request
                yield engine.timeout(1.0)
                resource.release()
            elif choice < 0.9:
                yield AllOf(
                    engine, [engine.timeout(1.0), engine.timeout(rng.choice([1.0, 2.0]))]
                )
            else:
                first = yield AnyOf(
                    engine, [engine.timeout(1.0, "x"), engine.timeout(3.0, "y")]
                )
                log.append((engine.now, tag, "first", first))
            log.append((engine.now, tag, i))

    def sleeper(tag):
        try:
            yield engine.timeout(rng.choice([8.0, 50.0]))
            log.append((engine.now, tag, "woke"))
        except Interrupt as exc:
            log.append((engine.now, tag, "interrupted", str(exc.cause)))

    for k in range(rng.randint(2, 7)):
        engine.process(looper(f"p{k}"))
    for k in range(rng.randint(0, 2)):
        interruptees.append(engine.process(sleeper(f"s{k}")))

    def interrupter():
        yield engine.timeout(rng.choice([1.0, 4.0]))
        for victim in interruptees:
            victim.interrupt("stop")

    if interruptees and rng.random() < 0.8:
        engine.process(interrupter())
    horizon = rng.choice([None, None, 20.0])
    engine.run(until=horizon)
    engine.run()
    return log, engine.now


class TestDifferentialMiniFuzz:
    @pytest.mark.parametrize("seed", range(25))
    def test_all_backends_identical(self, seed):
        results = {
            cls.__name__: _random_scenario(cls(), seed)
            for cls in (Engine, WheelEngine, TinyWheelEngine)
        }
        baseline = results["Engine"]
        for name, outcome in results.items():
            assert outcome == baseline, f"{name} diverged on seed {seed}"
