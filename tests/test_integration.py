"""End-to-end integration tests: cross-scheduler invariants on one workload."""

import pytest

from repro.apps import BENCHMARKS
from repro.experiments.runner import SYSTEMS, run_sequence
from repro.workloads import Condition, WorkloadGenerator

WORKLOAD = WorkloadGenerator(11).sequence(Condition.STRESS, n_apps=10)


@pytest.fixture(scope="module")
def results():
    return {name: run_sequence(name, WORKLOAD) for name in SYSTEMS}


class TestEveryScheduler:
    @pytest.mark.parametrize("system", list(SYSTEMS))
    def test_all_apps_complete(self, results, system):
        assert results[system].stats.completions == len(WORKLOAD)

    @pytest.mark.parametrize("system", list(SYSTEMS))
    def test_responses_positive_and_bounded(self, results, system):
        samples = results[system].responses.samples_ms
        assert all(0 < s < 10_000_000 for s in samples)

    @pytest.mark.parametrize("system", list(SYSTEMS))
    def test_response_not_less_than_pure_execution(self, results, system):
        """No app finishes faster than its bottleneck-stage lower bound."""
        lower_bounds = {
            name: max(t.exec_time_ms for t in spec.tasks)
            for name, spec in BENCHMARKS.items()
        }
        for record in results[system].stats.responses:
            bound = lower_bounds[record.inst.spec.name] * record.inst.batch_size
            # Baseline pipelines everything; others can't beat the bottleneck.
            assert record.response_ms >= bound * 0.99


class TestSystemOrdering:
    def test_paper_ordering_under_stress(self, results):
        means = {name: results[name].responses.mean() for name in SYSTEMS}
        assert means["VersaSlot-BL"] < means["VersaSlot-OL"]
        assert means["VersaSlot-OL"] < means["Nimblock"]
        assert means["Nimblock"] < means["Baseline"]
        assert means["FCFS"] < means["Baseline"]

    def test_big_little_reduces_pr_count(self, results):
        assert (
            results["VersaSlot-BL"].stats.pr_count
            < results["VersaSlot-OL"].stats.pr_count
        )

    def test_dual_core_reduces_blocked_launches(self, results):
        assert (
            results["VersaSlot-OL"].stats.launch_blocked
            <= results["Nimblock"].stats.launch_blocked
        )

    def test_baseline_loads_once_per_app(self, results):
        assert results["Baseline"].stats.pr_count == len(WORKLOAD)


class TestConservation:
    @pytest.mark.parametrize("system", ["FCFS", "RR", "Nimblock", "VersaSlot-OL", "VersaSlot-BL"])
    def test_every_item_of_every_task_completed(self, system, results):
        # Completion implies done_counts == batch for every task, which the
        # runtime asserts internally; completions == arrivals re-checks it.
        stats = results[system].stats
        assert stats.completions == stats.arrivals

    @pytest.mark.parametrize("system", ["FCFS", "RR", "Nimblock", "VersaSlot-OL", "VersaSlot-BL"])
    def test_pr_count_at_least_one_per_payload_wave(self, system, results):
        stats = results[system].stats
        assert stats.pr_count >= len(WORKLOAD)  # at least one PR per app
