"""Unit tests for the event primitives of the simulation kernel."""

import pytest

from repro.sim import AllOf, AnyOf, Engine, Event, Interrupt, Timeout


@pytest.fixture
def engine():
    return Engine()


class TestEvent:
    def test_fresh_event_is_pending(self, engine):
        event = engine.event()
        assert not event.triggered
        assert not event.processed

    def test_succeed_sets_value(self, engine):
        event = engine.event()
        event.succeed(42)
        assert event.triggered
        assert event.value == 42
        assert event.ok

    def test_value_before_trigger_raises(self, engine):
        with pytest.raises(RuntimeError):
            engine.event().value

    def test_double_succeed_raises(self, engine):
        event = engine.event()
        event.succeed()
        with pytest.raises(RuntimeError):
            event.succeed()

    def test_fail_then_succeed_raises(self, engine):
        event = engine.event()
        event.fail(ValueError("boom"))
        with pytest.raises(RuntimeError):
            event.succeed()

    def test_fail_requires_exception(self, engine):
        with pytest.raises(TypeError):
            engine.event().fail("not an exception")

    def test_callbacks_run_on_dispatch(self, engine):
        event = engine.event()
        seen = []
        event.callbacks.append(lambda e: seen.append(e.value))
        event.succeed("hello")
        engine.run()
        assert seen == ["hello"]


class TestTimeout:
    def test_fires_at_delay(self, engine):
        timeout = engine.timeout(5.0)
        engine.run()
        assert timeout.processed
        assert engine.now == 5.0

    def test_carries_value(self, engine):
        timeout = engine.timeout(1.0, value="done")
        engine.run()
        assert timeout.value == "done"

    def test_negative_delay_rejected(self, engine):
        with pytest.raises(ValueError):
            engine.timeout(-1.0)

    def test_zero_delay_fires_immediately(self, engine):
        timeout = engine.timeout(0.0)
        engine.run()
        assert timeout.processed
        assert engine.now == 0.0


class TestProcess:
    def test_return_value(self, engine):
        def proc():
            yield engine.timeout(3.0)
            return "result"

        process = engine.process(proc())
        engine.run()
        assert process.value == "result"

    def test_sequential_timeouts_accumulate(self, engine):
        def proc():
            yield engine.timeout(2.0)
            yield engine.timeout(3.0)
            return engine.now

        process = engine.process(proc())
        engine.run()
        assert process.value == 5.0

    def test_wait_on_other_process(self, engine):
        def child():
            yield engine.timeout(4.0)
            return "child-done"

        def parent():
            result = yield engine.process(child())
            return result

        process = engine.process(parent())
        engine.run()
        assert process.value == "child-done"

    def test_wait_on_already_finished_process(self, engine):
        def child():
            yield engine.timeout(1.0)
            return 7

        child_proc = engine.process(child())

        def parent():
            yield engine.timeout(5.0)
            value = yield child_proc
            return value

        parent_proc = engine.process(parent())
        engine.run()
        assert parent_proc.value == 7

    def test_non_generator_rejected(self, engine):
        with pytest.raises(TypeError):
            engine.process(42)

    def test_yielding_non_event_fails_process(self, engine):
        def proc():
            yield "not an event"

        engine.process(proc())
        with pytest.raises(RuntimeError):
            engine.run()

    def test_uncaught_exception_surfaces(self, engine):
        def proc():
            yield engine.timeout(1.0)
            raise ValueError("model bug")

        engine.process(proc())
        with pytest.raises(ValueError, match="model bug"):
            engine.run()

    def test_exception_consumed_by_waiter(self, engine):
        def child():
            yield engine.timeout(1.0)
            raise ValueError("expected")

        def parent():
            try:
                yield engine.process(child())
            except ValueError:
                return "caught"
            return "missed"

        process = engine.process(parent())
        engine.run()
        assert process.value == "caught"

    def test_is_alive_transitions(self, engine):
        def proc():
            yield engine.timeout(1.0)

        process = engine.process(proc())
        assert process.is_alive
        engine.run()
        assert not process.is_alive


class TestInterrupt:
    def test_interrupt_waiting_process(self, engine):
        def victim():
            try:
                yield engine.timeout(100.0)
            except Interrupt as interrupt:
                return (engine.now, f"interrupted:{interrupt.cause}")
            return (engine.now, "completed")

        process = engine.process(victim())

        def attacker():
            yield engine.timeout(5.0)
            process.interrupt("preempt")

        engine.process(attacker())
        engine.run()
        assert process.value == (5.0, "interrupted:preempt")

    def test_interrupt_dead_process_raises(self, engine):
        def proc():
            yield engine.timeout(1.0)

        process = engine.process(proc())
        engine.run()
        with pytest.raises(RuntimeError):
            process.interrupt()

    def test_uncaught_interrupt_fails_process(self, engine):
        def victim():
            yield engine.timeout(100.0)

        process = engine.process(victim())

        def attacker():
            yield engine.timeout(1.0)
            process.interrupt()

        engine.process(attacker())
        with pytest.raises(Interrupt):
            engine.run()

    def test_interrupted_event_still_fires_for_others(self, engine):
        shared = engine.event()
        results = []

        def waiter(tag):
            try:
                value = yield shared
                results.append((tag, value))
            except Interrupt:
                results.append((tag, "interrupted"))

        victim = engine.process(waiter("victim"))
        engine.process(waiter("survivor"))

        def driver():
            yield engine.timeout(1.0)
            victim.interrupt()
            yield engine.timeout(1.0)
            shared.succeed("payload")

        engine.process(driver())
        engine.run()
        assert ("victim", "interrupted") in results
        assert ("survivor", "payload") in results


class TestConditions:
    def test_all_of_waits_for_all(self, engine):
        t1 = engine.timeout(2.0, value="a")
        t2 = engine.timeout(5.0, value="b")

        def proc():
            values = yield engine.all_of([t1, t2])
            return (engine.now, values)

        process = engine.process(proc())
        engine.run()
        when, values = process.value
        assert when == 5.0
        assert values == ["a", "b"]

    def test_all_of_empty_fires_immediately(self, engine):
        def proc():
            yield engine.all_of([])
            return engine.now

        process = engine.process(proc())
        engine.run()
        assert process.value == 0.0

    def test_any_of_fires_on_first(self, engine):
        t1 = engine.timeout(2.0, value="fast")
        t2 = engine.timeout(5.0, value="slow")

        def proc():
            value = yield engine.any_of([t1, t2])
            return (engine.now, value)

        process = engine.process(proc())
        engine.run()
        assert process.value == (2.0, "fast")

    def test_any_of_empty_rejected(self, engine):
        with pytest.raises(ValueError):
            engine.any_of([])

    def test_all_of_failure_propagates(self, engine):
        good = engine.timeout(1.0)
        bad = engine.event()

        def proc():
            try:
                yield engine.all_of([good, bad])
            except ValueError:
                return "failed"
            return "ok"

        process = engine.process(proc())
        bad.fail(ValueError("child failed"))
        engine.run()
        assert process.value == "failed"
