"""Routing edge cases under shard failure.

``route_live`` is the failure-aware admission surface the supervised
control plane routes through: it must degenerate gracefully to a single
surviving shard, keep the consistent-hash ring's remap-stability promise
when shards leave and rejoin, draw the *same* RNG sequence as ``route``
when every shard is live (so fault-free supervised plans stay
bit-identical to frozen plans), and make every decision independent of
``PYTHONHASHSEED``.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.fleet.routing import (
    ConsistentHashPolicy,
    LeastLoadedPolicy,
    PowerOfTwoPolicy,
    ROUTING_POLICIES,
    get_policy,
    policy_names,
    stable_digest,
)
from repro.sim import SeededStreams
from repro.workloads.generator import Arrival

SRC = str(Path(__file__).resolve().parent.parent / "src")

APPS = ("IC", "OF", "DR", "SC")


def _arrivals(n=24):
    return [
        Arrival(APPS[i % len(APPS)], batch_size=4 + i % 5, time_ms=float(i))
        for i in range(n)
    ]


def _policy(name, n_shards=4, seed=11):
    return get_policy(name, n_shards, SeededStreams(seed).spawn("fleet-router"))


class TestSingleSurvivingShard:
    @pytest.mark.parametrize("name", policy_names())
    def test_everything_routes_to_the_survivor(self, name):
        router = _policy(name)
        loads = (100.0, 5.0, 30.0, 0.0)
        for arrival in _arrivals():
            assert router.route_live(arrival, loads, (2,)) == 2

    @pytest.mark.parametrize("name", policy_names())
    def test_empty_live_set_rejected(self, name):
        router = _policy(name)
        with pytest.raises(ValueError, match="at least one live shard"):
            router.route_live(_arrivals(1)[0], (0.0,) * 4, ())


class TestAllLiveEquivalence:
    """With every shard live, route_live == route — decisions AND draws."""

    @pytest.mark.parametrize("name", policy_names())
    def test_same_decisions_and_rng_state(self, name):
        frozen = _policy(name)
        live_router = _policy(name)
        live = tuple(range(4))
        loads = [0.0] * 4
        for arrival in _arrivals():
            expected = frozen.route(arrival, tuple(loads))
            got = live_router.route_live(arrival, tuple(loads), live)
            assert got == expected
            loads[got] += 1.0
        # The RNG families must have advanced identically: the next
        # unconstrained decision still agrees.
        probe = _arrivals(1)[0]
        assert frozen.route(probe, tuple(loads)) == \
            live_router.route_live(probe, tuple(loads), live)


class TestP2CTieBreak:
    def test_equal_loads_prefer_first_draw(self):
        router = _policy("p2c")
        # loads all equal -> `first if loads[first] <= loads[second]`
        # must deterministically keep the first draw.
        rng_copy = _policy("p2c")._rng
        for arrival in _arrivals():
            first = rng_copy.randrange(4)
            rng_copy.randrange(4)  # the discarded second draw
            assert router.route_live(arrival, (7.0,) * 4, (0, 1, 2, 3)) == first

    def test_draws_come_from_live_index_space(self):
        # With shards {1, 3} live the draws index the 2-element live
        # tuple, so the decision is always a live shard and the draw
        # count per decision stays fixed at two.
        router = _policy("p2c")
        seen = set()
        for arrival in _arrivals(40):
            shard = router.route_live(arrival, (0.0,) * 4, (1, 3))
            assert shard in (1, 3)
            seen.add(shard)
        assert seen == {1, 3}


class TestRingRemapStability:
    def test_leave_remaps_only_dead_owner_keys(self):
        router = _policy("hash")
        loads = (0.0,) * 4
        all_live = (0, 1, 2, 3)
        arrivals = _arrivals()
        before = {a.app_name: router.route_live(a, loads, all_live)
                  for a in arrivals}
        dead = before[arrivals[0].app_name]
        survivors = tuple(s for s in all_live if s != dead)
        after = {a.app_name: router.route_live(a, loads, survivors)
                 for a in arrivals}
        for app, owner in before.items():
            if owner != dead:
                # Keys owned by live shards never move.
                assert after[app] == owner
            else:
                assert after[app] in survivors

    def test_rejoin_restores_original_ownership(self):
        router = _policy("hash")
        loads = (0.0,) * 4
        all_live = (0, 1, 2, 3)
        arrivals = _arrivals()
        before = {a.app_name: router.route_live(a, loads, all_live)
                  for a in arrivals}
        # Kill shard 0, then bring it back: ownership is memoryless in
        # the live set, so the rejoin restores the original map exactly.
        router.route_live(arrivals[0], loads, (1, 2, 3))
        after = {a.app_name: router.route_live(a, loads, all_live)
                 for a in arrivals}
        assert after == before

    def test_ring_walk_matches_route_for_live_owners(self):
        router = _policy("hash")
        loads = (0.0,) * 4
        for arrival in _arrivals():
            owner = router.route(arrival, loads)
            assert router.route_live(arrival, loads, (owner,)) == owner


class TestHashSeedIndependence:
    def _decisions(self, hashseed: str) -> str:
        script = (
            "from repro.fleet.routing import get_policy, policy_names\n"
            "from repro.sim import SeededStreams\n"
            "from repro.workloads.generator import Arrival\n"
            "apps = ('IC', 'OF', 'DR', 'SC')\n"
            "arrivals = [Arrival(apps[i % 4], 4 + i % 5, float(i))"
            " for i in range(24)]\n"
            "out = []\n"
            "for name in policy_names():\n"
            "    router = get_policy("
            "name, 4, SeededStreams(11).spawn('fleet-router'))\n"
            "    out.append([router.route_live(a, (0.0,) * 4, (0, 2, 3))"
            " for a in arrivals])\n"
            "print(out)\n"
        )
        env = dict(os.environ, PYTHONHASHSEED=hashseed, PYTHONPATH=SRC)
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, env=env, check=True,
        )
        return result.stdout

    def test_route_live_pinned_across_hash_seeds(self):
        outputs = {s: self._decisions(s) for s in ("0", "4242", "random")}
        assert outputs["0"] == outputs["4242"] == outputs["random"]

    def test_stable_digest_is_sha256_not_builtin_hash(self):
        # Freeze one value: a silent change to the digest scheme would
        # re-partition every persisted fleet artifact.
        assert stable_digest("app/IC") == stable_digest("app/IC")
        assert stable_digest("app/IC") != stable_digest("app/OF")
        assert 0 <= stable_digest("x") <= 0x7FFFFFFFFFFFFFFF
