"""Unit tests for the application model: specs, benchmarks, pipelines."""

import random

import pytest

from repro.apps import (
    BENCHMARKS,
    BUNDLE_SIZE,
    ApplicationInstance,
    ApplicationSpec,
    BundleSpec,
    TaskGraph,
    TaskSpec,
    build_application,
    estimate_big_makespan_ms,
    estimate_makespan_ms,
    generate_synthetic_application,
    get_benchmark,
    partition_workload,
    pipelined_exec_time,
    quantize_usage,
    reset_instance_ids,
    sequential_exec_time,
    synthesize_bundle,
    wave_partition,
)
from repro.apps.benchmarks import FIG7_APPS
from repro.config import DEFAULT_PARAMETERS
from repro.fpga import ResourceVector


def make_task(index, exec_ms=5.0, lut=0.5, ff=0.4, name=None):
    return TaskSpec(name or f"t{index}", index, exec_ms, ResourceVector(lut, ff))


class TestTaskSpec:
    def test_non_positive_latency_rejected(self):
        with pytest.raises(ValueError):
            make_task(0, exec_ms=0.0)

    def test_oversized_usage_rejected(self):
        with pytest.raises(ValueError, match="re-partition"):
            make_task(0, lut=1.2)


class TestBundleSpec:
    def test_non_consecutive_rejected(self):
        with pytest.raises(ValueError, match="consecutive"):
            BundleSpec("b", 0, (0, 2, 3), ResourceVector(0.5, 0.5))

    def test_wrong_size_rejected(self):
        with pytest.raises(ValueError):
            BundleSpec("b", 0, (0, 1), ResourceVector(0.5, 0.5))  # type: ignore[arg-type]


class TestApplicationSpec:
    def test_task_index_order_enforced(self):
        tasks = (make_task(1), make_task(0))
        with pytest.raises(ValueError):
            ApplicationSpec("bad", tasks)

    def test_bundles_must_tile(self):
        tasks = tuple(make_task(i) for i in range(6))
        bundles = (BundleSpec("b0", 0, (0, 1, 2), ResourceVector(0.5, 0.5)),)
        with pytest.raises(ValueError, match="tile"):
            ApplicationSpec("bad", tasks, bundles)

    def test_bundle_for_task(self):
        app = BENCHMARKS["IC"]
        assert app.bundle_for_task(0) is app.bundles[0]
        assert app.bundle_for_task(5) is app.bundles[1]

    def test_bundle_exec_times(self):
        app = BENCHMARKS["IC"]
        times = app.bundle_exec_times(app.bundles[0])
        assert times == tuple(t.exec_time_ms for t in app.tasks[:3])

    def test_can_bundle(self):
        assert BENCHMARKS["IC"].can_bundle
        plain = ApplicationSpec("p", tuple(make_task(i) for i in range(2)))
        assert not plain.can_bundle


class TestApplicationInstance:
    def test_ids_unique_and_resettable(self):
        reset_instance_ids()
        spec = BENCHMARKS["3DR"]
        a = ApplicationInstance(spec, 5, 0.0)
        b = ApplicationInstance(spec, 5, 0.0)
        assert a.app_id != b.app_id
        reset_instance_ids()
        c = ApplicationInstance(spec, 5, 0.0)
        assert c.app_id == a.app_id

    def test_validation(self):
        spec = BENCHMARKS["3DR"]
        with pytest.raises(ValueError):
            ApplicationInstance(spec, 0, 0.0)
        with pytest.raises(ValueError):
            ApplicationInstance(spec, 5, -1.0)


class TestExecTimeModels:
    def test_sequential(self):
        tasks = [make_task(0, 10.0), make_task(1, 20.0)]
        assert sequential_exec_time(tasks, 3) == pytest.approx(90.0)

    def test_pipelined(self):
        tasks = [make_task(0, 10.0), make_task(1, 20.0)]
        assert pipelined_exec_time(tasks, 3) == pytest.approx(30.0 + 2 * 20.0)

    def test_pipelined_single_item_equals_fill(self):
        tasks = [make_task(0, 10.0), make_task(1, 20.0)]
        assert pipelined_exec_time(tasks, 1) == pytest.approx(30.0)

    def test_pipelined_empty(self):
        assert pipelined_exec_time([], 5) == 0.0


class TestBenchmarkTables:
    def test_all_five_present(self):
        assert set(BENCHMARKS) == {"3DR", "LeNet", "IC", "AN", "OF"}

    def test_task_counts_match_paper(self):
        counts = {name: spec.task_count for name, spec in BENCHMARKS.items()}
        assert counts == {"3DR": 3, "LeNet": 6, "IC": 6, "AN": 6, "OF": 9}

    def test_every_app_bundled(self):
        assert all(spec.can_bundle for spec in BENCHMARKS.values())

    @pytest.mark.parametrize("name,lut_pct,ff_pct", [
        ("IC", 42.2, 48.0),
        ("AN", 36.4, 41.4),
        ("3DR", 9.9, 17.7),
        ("OF", 9.6, 14.1),
    ])
    def test_fig7_gains_reproduced(self, name, lut_pct, ff_pct):
        app = BENCHMARKS[name]
        little = app.mean_little_utilization()
        big = app.mean_big_utilization()
        assert (big.lut / little.lut - 1) * 100 == pytest.approx(lut_pct, abs=0.3)
        assert (big.ff / little.ff - 1) * 100 == pytest.approx(ff_pct, abs=0.3)

    def test_ic_detail_panel(self):
        app = BENCHMARKS["IC"]
        first_three = [t.usage.lut for t in app.tasks[:3]]
        assert first_three == [0.57, 0.38, 0.28]
        assert app.bundles[0].usage_big.lut == pytest.approx(0.60)

    def test_fig7_apps_subset(self):
        assert set(FIG7_APPS) <= set(BENCHMARKS)

    def test_get_benchmark_unknown(self):
        with pytest.raises(KeyError, match="available"):
            get_benchmark("nope")

    def test_build_application_validates_lengths(self):
        with pytest.raises(ValueError):
            build_application("x", [1.0, 2.0], [0.5], [0.4, 0.4])


class TestTaskGraph:
    def test_default_linear_chain(self):
        graph = TaskGraph(BENCHMARKS["IC"])
        assert graph.is_linear_chain
        assert graph.predecessors(0) == []
        assert graph.predecessors(3) == [2]

    def test_custom_dag(self):
        app = BENCHMARKS["3DR"]
        graph = TaskGraph(app, edges=[(0, 2), (1, 2)])
        assert not graph.is_linear_chain
        assert graph.predecessors(2) == [0, 1]

    def test_cycle_rejected(self):
        with pytest.raises(ValueError, match="cycle"):
            TaskGraph(BENCHMARKS["3DR"], edges=[(0, 1), (1, 0)])

    def test_bad_edge_rejected(self):
        with pytest.raises(ValueError):
            TaskGraph(BENCHMARKS["3DR"], edges=[(0, 9)])

    def test_critical_path_linear(self):
        app = BENCHMARKS["3DR"]
        graph = TaskGraph(app)
        expected = sum(t.exec_time_ms for t in app.tasks)
        assert graph.critical_path_ms(1) == pytest.approx(expected)


class TestMakespanEstimators:
    def test_wave_partition(self):
        assert wave_partition(6, 4) == [(0, 4), (4, 6)]
        assert wave_partition(3, 8) == [(0, 3)]

    def test_wave_partition_validates(self):
        with pytest.raises(ValueError):
            wave_partition(6, 0)

    def test_more_slots_never_worse(self):
        app = BENCHMARKS["OF"]
        pr = DEFAULT_PARAMETERS.little_pr_ms
        spans = [estimate_makespan_ms(app, 20, s, pr) for s in range(1, 10)]
        assert all(a >= b - 1e-9 for a, b in zip(spans, spans[1:]))

    def test_big_estimator_requires_bundles(self):
        plain = ApplicationSpec("p", tuple(make_task(i) for i in range(2)))
        with pytest.raises(ValueError):
            estimate_big_makespan_ms(plain, 10, 1, 100.0)

    def test_big_estimator_positive(self):
        span = estimate_big_makespan_ms(BENCHMARKS["IC"], 10, 2, 200.0)
        assert span > 0


class TestPartitioning:
    def test_quantize_snaps_up(self):
        assert quantize_usage(0.41) == 0.5
        assert quantize_usage(0.25) == 0.25
        assert quantize_usage(0.9) == 0.9

    def test_quantize_rejects_non_positive(self):
        with pytest.raises(ValueError):
            quantize_usage(0.0)

    def test_synthesize_bundle_consolidates(self):
        tasks = [make_task(i, lut=0.5, ff=0.4) for i in range(3)]
        bundle = synthesize_bundle("b", 0, tasks)
        assert bundle.usage_big.lut == pytest.approx(1.5 * 0.97 / 2.0)

    def test_synthesize_bundle_overflow_rejected(self):
        tasks = [make_task(i, lut=0.9, ff=0.9) for i in range(3)]
        with pytest.raises(ValueError, match="re-partition"):
            synthesize_bundle("b", 0, tasks)

    def test_generate_synthetic_valid(self):
        rng = random.Random(7)
        app = generate_synthetic_application("syn", 6, rng)
        assert app.task_count == 6
        assert app.can_bundle
        for bundle in app.bundles:
            assert bundle.usage_big.fits_within(ResourceVector(1.0, 1.0))

    def test_generate_synthetic_unbundled_when_untileable(self):
        rng = random.Random(7)
        app = generate_synthetic_application("syn", 5, rng)
        assert not app.can_bundle

    def test_generate_requests_bundling_impossible(self):
        rng = random.Random(7)
        with pytest.raises(ValueError):
            generate_synthetic_application("syn", 5, rng, bundled=True)

    def test_partition_workload_tiles_to_bundles(self):
        rng = random.Random(3)
        app = partition_workload("w", 40.0, rng)
        assert app.task_count % BUNDLE_SIZE == 0
        assert app.can_bundle

    def test_partition_rejects_non_positive(self):
        with pytest.raises(ValueError):
            partition_workload("w", 0.0, random.Random(1))
