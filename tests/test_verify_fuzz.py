"""The scenario fuzzer, shrinking, repro files and the verify CLI."""

import dataclasses
import json
from pathlib import Path

import pytest

from repro.apps import reset_instance_ids
from repro.campaign import CampaignRunner, get_scenario
from repro.campaign.backend import SerialBackend
from repro.cli import main
from repro.verify import (
    DifferentialOracle,
    FuzzCase,
    ScenarioFuzzer,
    load_repro,
    replay_repro,
    save_repro,
    shrink_case,
)
from repro.verify.fuzz import cases_from_scenario, sniff_repro_file

DATA = Path(__file__).parent / "data"


@pytest.fixture(autouse=True)
def _fresh_ids():
    reset_instance_ids()


def make_case(**overrides):
    base = dict(
        case_id=0,
        system="Nimblock",
        condition="STRESS",
        n_apps=4,
        batch_lo=2,
        batch_hi=8,
        seed=7,
        sequence_index=1,
        overrides=(("inter_slot_transfer_ms", 5.0),),
    )
    base.update(overrides)
    return FuzzCase(**base)


# ----------------------------------------------------------------------
# Sampling
# ----------------------------------------------------------------------
class TestScenarioFuzzer:
    def test_sampling_is_deterministic(self):
        first = list(ScenarioFuzzer(3).cases(8))
        second = list(ScenarioFuzzer(3).cases(8))
        assert first == second

    def test_cases_are_independent_streams(self):
        """Case i does not depend on how many cases were drawn before it."""
        assert ScenarioFuzzer(3).case(5) == list(ScenarioFuzzer(3).cases(8))[5]

    def test_different_seeds_differ(self):
        assert list(ScenarioFuzzer(0).cases(6)) != list(ScenarioFuzzer(1).cases(6))

    def test_restrictions_are_honoured(self):
        fuzzer = ScenarioFuzzer(0, scenario="smoke", systems=("Nimblock",))
        for case in fuzzer.cases(10):
            assert case.scenario == "smoke"
            assert case.system == "Nimblock"

    def test_unknown_scenario_rejected(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            ScenarioFuzzer(0, scenario="missing")

    def test_sampled_cases_are_runnable(self):
        for case in ScenarioFuzzer(11).cases(4):
            arrivals = case.arrivals()
            if case.is_fleet:
                # A fleet case checks one routed shard: its sub-stream is
                # a subset of the n_apps-wide global stream.
                assert len(arrivals) <= case.n_apps
                full = case.fleet_workload().arrivals(
                    case.seed, case.sequence_index
                )
                assert len(full) == case.n_apps
                assert all(arrival in full for arrival in arrivals)
            else:
                assert len(arrivals) == case.n_apps
            assert all(
                case.batch_lo <= arrival.batch_size <= case.batch_hi
                for arrival in arrivals
            )
            case.params()  # overrides must resolve


class TestCasesFromScenario:
    def test_enumeration_matches_cell_count(self):
        scenario = get_scenario("stress-scale")
        cases = cases_from_scenario(scenario)
        assert len(cases) == scenario.cell_count()
        assert [case.case_id for case in cases] == list(range(len(cases)))
        assert {case.system for case in cases} == set(scenario.system_names())
        assert all(case.scenario == "stress-scale" for case in cases)

    def test_case_reproduces_campaign_arrivals(self):
        """A scenario case regenerates exactly the campaign cell workload."""
        scenario = get_scenario("smoke")
        case = cases_from_scenario(scenario)[0]
        cell = CampaignRunner().cells_for(scenario)[0]
        assert case.arrivals() == cell.resolve_arrivals()


# ----------------------------------------------------------------------
# JSON round-trip
# ----------------------------------------------------------------------
class TestFuzzCaseSerialization:
    def test_round_trip(self):
        case = make_case(apps=("IC", "AN"))
        payload = json.loads(json.dumps(case.to_dict()))
        assert FuzzCase.from_dict(payload) == case

    def test_unknown_field_rejected(self):
        payload = make_case().to_dict()
        payload["surprise"] = 1
        with pytest.raises(ValueError, match="unknown fuzz-case fields"):
            FuzzCase.from_dict(payload)

    def test_missing_field_rejected(self):
        payload = make_case().to_dict()
        del payload["system"]
        with pytest.raises(ValueError, match="missing fields"):
            FuzzCase.from_dict(payload)


# ----------------------------------------------------------------------
# Shrinking
# ----------------------------------------------------------------------
class TestShrinking:
    def test_shrinks_to_minimal_failing_case(self):
        case = make_case(n_apps=6, batch_hi=12)

        def still_fails(candidate):
            # Synthetic failure condition: needs >= 3 apps and the override.
            return candidate.n_apps >= 3 and bool(candidate.overrides)

        shrunk, attempts = shrink_case(case, still_fails, budget=64)
        assert shrunk.n_apps == 3
        assert shrunk.batch_hi == shrunk.batch_lo
        assert shrunk.sequence_index == 0
        assert shrunk.overrides  # cannot be dropped: failure needs it
        assert attempts <= 64

    def test_budget_is_respected(self):
        case = make_case(n_apps=64)
        runs = []

        def still_fails(candidate):
            runs.append(candidate)
            return True  # everything fails: shrinking only stops on budget

        _, attempts = shrink_case(case, still_fails, budget=5)
        assert attempts == 5
        assert len(runs) == 5

    def test_already_minimal_case_is_stable(self):
        case = make_case(n_apps=1, batch_hi=2, batch_lo=2,
                         sequence_index=0, overrides=(), condition="LOOSE")
        shrunk, _ = shrink_case(case, lambda c: True, budget=16)
        assert shrunk == case


# ----------------------------------------------------------------------
# Repro files and replay
# ----------------------------------------------------------------------
class TestReproFiles:
    def test_save_load_round_trip(self, tmp_path):
        case = make_case()
        oracle = DifferentialOracle()
        report = oracle.check(case.system, case.arrivals(), case.params())
        path = save_repro(tmp_path / "repro.json", case, report)
        loaded, divergence = load_repro(path)
        assert loaded == case
        assert divergence["system"] == case.system

    def test_sniffing_rejects_records_files(self, tmp_path):
        records = tmp_path / "records.jsonl"
        records.write_text('{"schema": 1, "system": "FCFS"}\n')
        assert sniff_repro_file(records) is None

    def test_load_rejects_non_repro(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"kind": "something-else"}')
        with pytest.raises(ValueError, match="not a verify-repro"):
            load_repro(path)

    def test_replay_repro_runs_the_oracle(self, tmp_path):
        case = make_case(n_apps=2)
        path = save_repro(tmp_path / "repro.json", case, None)
        report = replay_repro(path)
        assert report.ok  # the real kernels agree on this case

    def test_committed_repros_stay_fixed(self):
        """Any repro committed under tests/data/repros must replay clean.

        The triage workflow (TESTING.md) commits shrunk repros of fixed
        kernel bugs here; this harness replays each as a regression test.
        """
        repro_dir = DATA / "repros"
        if not repro_dir.is_dir():
            pytest.skip("no committed repros")
        paths = sorted(repro_dir.glob("*.json"))
        if not paths:
            pytest.skip("no committed repros")
        for path in paths:
            report = replay_repro(path)
            assert report.ok, f"{path.name}: {report.summary()}"


class TestFailurePath:
    def test_cli_failure_handler_shrinks_and_persists(self, tmp_path, capsys):
        """The CLI failure path: narrate, shrink, persist a replayable repro."""
        from repro.verify.cli import _check_case, _handle_failure
        from tests.test_verify_oracle import SleepSkewEngine

        oracle = DifferentialOracle(reference_factory=SleepSkewEngine)
        case = ScenarioFuzzer(0).case(0)
        report = _check_case(oracle, case)
        assert not report.ok
        path = _handle_failure(oracle, case, report, str(tmp_path), 8)
        err = capsys.readouterr().err
        assert path.exists()
        assert "DIVERGENCE" in err
        assert "repro persisted" in err
        assert "campaign replay" in err
        # The persisted repro reproduces the failure under the buggy kernel
        # and passes once the kernel is fixed (i.e. with the real kernels).
        assert not replay_repro(path, oracle).ok
        assert replay_repro(path).ok


# ----------------------------------------------------------------------
# Campaign backend wiring: any scenario is oracle-checkable
# ----------------------------------------------------------------------
class TestKernelCells:
    def test_reference_cells_produce_identical_records(self):
        scenario = get_scenario("smoke")
        cells = CampaignRunner().cells_for(scenario)
        optimized = SerialBackend().run(cells)
        reference = SerialBackend().run(
            [dataclasses.replace(cell, kernel="reference") for cell in cells]
        )
        assert optimized == reference

    def test_unknown_kernel_is_rejected(self):
        scenario = get_scenario("smoke")
        cell = CampaignRunner().cells_for(scenario)[0]
        bad = dataclasses.replace(cell, kernel="quantum")
        with pytest.raises(KeyError, match="unknown kernel"):
            bad.engine_factory()


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestVerifyCLI:
    def test_fuzz_run_passes(self, capsys, tmp_path):
        code = main([
            "verify", "--fuzz", "4", "--seed", "0",
            "--repro-dir", str(tmp_path),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "all 4 cases bit-identical" in out

    def test_scenario_sweep_passes(self, capsys, tmp_path):
        code = main([
            "verify", "--scenario", "smoke", "--system", "Nimblock",
            "--repro-dir", str(tmp_path),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "sweeping scenario 'smoke'" in out

    def test_unknown_scenario_is_operator_error(self, capsys):
        assert main(["verify", "--scenario", "missing"]) == 2
        assert main(["verify", "--fuzz", "2", "--scenario", "missing"]) == 2
        assert main(["verify", "--fuzz", "0"]) == 2

    def test_unknown_system_is_operator_error(self, capsys):
        """A typo'd --system must not turn the gate silently green."""
        assert main(["verify", "--scenario", "smoke", "--system", "Typo"]) == 2
        assert main(["verify", "--fuzz", "2", "--system", "Typo"]) == 2
        assert "unknown system" in capsys.readouterr().err

    def test_system_outside_scenario_is_operator_error(self, capsys):
        """A valid system the scenario never evaluates leaves zero cells:
        that is an error, not a vacuous pass."""
        code = main(["verify", "--scenario", "smoke", "--system", "VersaSlot-BL"])
        assert code == 2
        assert "no cells" in capsys.readouterr().err

    def test_campaign_replay_of_repro_file(self, capsys, tmp_path):
        """Satellite regression: a fuzzer repro is a one-command replay."""
        case = make_case(n_apps=2)
        path = save_repro(tmp_path / "repro-fuzz-0.json", case, None)
        code = main(["campaign", "replay", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "kernels agree" in out

    def test_top_level_replay_also_accepts_repros(self, capsys, tmp_path):
        case = make_case(n_apps=2)
        path = save_repro(tmp_path / "repro.json", case, None)
        assert main(["replay", str(path)]) == 0
        assert "kernels agree" in capsys.readouterr().out

    def test_campaign_replay_still_replays_records(self, capsys, tmp_path):
        store_path = tmp_path / "smoke.jsonl"
        code = main([
            "campaign", "run", "smoke", "--out", str(store_path),
        ])
        assert code == 0
        capsys.readouterr()
        assert main(["campaign", "replay", str(store_path)]) == 0
        assert "records" in capsys.readouterr().out

    def test_campaign_replay_missing_file(self, capsys):
        assert main(["campaign", "replay", "does/not/exist.json"]) == 2
