"""Wheel-as-default regression suite.

PR 10 promoted the bucketed timing-wheel kernel to the production
default for ``simulate_run``, campaigns, the fleet, and fuzzing.  The
promotion is only legal because the wheel is bit-identical to the heap
kernel by construction; this suite pins that contract:

* the default engine registry entries actually name the wheel;
* a default ``simulate_run`` matches an explicit heap run sample for
  sample;
* the default verify sweep diffs reference vs wheel vs heap with the
  wheel as the candidate-of-record;
* the worker-resident arrival-sequence cache (cell reuse) is invisible:
  cold-start and warm-cache campaigns, serial and parallel, produce
  byte-identical records over a 25-seed mini-fuzz.
"""

import json

from repro.campaign.backend import (
    _SEQUENCE_CACHE,
    CampaignCell,
    SerialBackend,
    make_backend,
    simulate_run,
)
from repro.config import DEFAULT_PARAMETERS
from repro.sim import DEFAULT_ENGINE, Engine, WheelEngine
from repro.verify.cli import DEFAULT_KERNELS
from repro.verify.oracle import DifferentialOracle
from repro.verify.reference import KERNELS
from repro.workloads import Condition, WorkloadGenerator, WorkloadSpec


class TestDefaultRegistry:
    def test_default_engine_is_the_wheel(self):
        assert DEFAULT_ENGINE is WheelEngine
        assert KERNELS["default"] is WheelEngine

    def test_heap_stays_selectable(self):
        assert KERNELS["heap"] is Engine
        assert KERNELS["optimized"] is Engine

    def test_default_cell_kernel_resolves_to_default_engine(self):
        cell = CampaignCell(
            scenario="t", system="FCFS", sequence_index=0, seed=0,
            params=DEFAULT_PARAMETERS,
            workload=WorkloadSpec(condition=Condition.LOOSE, n_apps=1),
        )
        assert cell.kernel == "default"
        assert cell.engine_factory() is None  # None = DEFAULT_ENGINE


class TestGoldenParity:
    def test_default_simulate_run_matches_explicit_heap(self):
        arrivals = WorkloadGenerator(3).sequence(Condition.STRESS, n_apps=6)
        default = simulate_run("VersaSlot-BL", arrivals)
        heap = simulate_run("VersaSlot-BL", arrivals, engine_factory=Engine)
        assert default.stats.response_times_ms() == heap.stats.response_times_ms()
        assert default.makespan_ms == heap.makespan_ms
        assert default.stats.completions == heap.stats.completions
        assert default.stats.pr_count == heap.stats.pr_count
        assert default.stats.launches == heap.stats.launches


class TestDefaultVerifySweep:
    def test_wheel_is_the_candidate_of_record(self):
        assert DEFAULT_KERNELS[0] == "wheel"
        assert "optimized" in DEFAULT_KERNELS

    def test_three_way_oracle_is_green_with_wheel_headline(self):
        arrivals = WorkloadGenerator(5).sequence(Condition.STANDARD, n_apps=4)
        oracle = DifferentialOracle(kernels=DEFAULT_KERNELS)
        report = oracle.check("VersaSlot-BL", arrivals, DEFAULT_PARAMETERS)
        assert report.ok, report.summary()
        # ``report.optimized`` (the headline fingerprint) is the wheel.
        assert report.optimized.kernel == "wheel"
        assert [fp.kernel for fp in report.candidates] == ["wheel", "optimized"]


def _mini_fuzz_cells():
    """25 seeds x 2 systems over one shared spec (the cell-reuse shape)."""
    spec = WorkloadSpec(condition=Condition.LOOSE, n_apps=2, sequence_count=1)
    return [
        CampaignCell(
            scenario="mini-fuzz", system=system, sequence_index=0, seed=seed,
            params=DEFAULT_PARAMETERS, workload=spec,
        )
        for seed in range(25)
        for system in ("Baseline", "VersaSlot-BL")
    ]


def _record_bytes(records):
    return [json.dumps(r.to_dict(), sort_keys=True) for r in records]


class TestCellReuse:
    def test_cold_start_and_warm_cache_are_bit_identical(self):
        _SEQUENCE_CACHE.clear()
        cold = SerialBackend().run(_mini_fuzz_cells())
        assert _SEQUENCE_CACHE  # the run populated the cache...
        warm = SerialBackend().run(_mini_fuzz_cells())  # ...and reuses it
        assert _record_bytes(cold) == _record_bytes(warm)

    def test_serial_and_parallel_are_bit_identical_with_reuse(self):
        cells = _mini_fuzz_cells()
        serial = SerialBackend().run(cells)
        parallel = make_backend(2).run(cells)
        assert _record_bytes(serial) == _record_bytes(parallel)

    def test_cache_is_keyed_by_value_not_identity(self):
        _SEQUENCE_CACHE.clear()
        spec_a = WorkloadSpec(condition=Condition.LOOSE, n_apps=2)
        spec_b = WorkloadSpec(condition=Condition.LOOSE, n_apps=2)
        assert spec_a is not spec_b
        cell_a = CampaignCell(
            scenario="t", system="FCFS", sequence_index=0, seed=7,
            params=DEFAULT_PARAMETERS, workload=spec_a,
        )
        cell_b = CampaignCell(
            scenario="t", system="FCFS", sequence_index=0, seed=7,
            params=DEFAULT_PARAMETERS, workload=spec_b,
        )
        first = cell_a.resolve_arrivals()
        assert len(_SEQUENCE_CACHE) == 1
        second = cell_b.resolve_arrivals()
        # Equal specs share one entry: the fingerprint is the spec's
        # value, never its id().
        assert len(_SEQUENCE_CACHE) == 1
        assert first == second
