"""Determinism and semantics of the kernel hot-path overhaul.

The PR-2 overhaul (``__slots__`` events, the timeout fast lane, bare-delay
yields, pooled sleeps, incremental run-state) must be *invisible* to model
code: these tests pin the kernel's observable behaviour against golden
fingerprints captured from the pre-overhaul seed kernel
(``tests/data/golden_kernel.json`` / ``golden_kernel_stress.json``), so
any event reordering — however subtle — fails loudly.
"""

import hashlib
import json
from pathlib import Path

import pytest

from repro.apps import ApplicationInstance, BENCHMARKS, reset_instance_ids
from repro.config import DEFAULT_PARAMETERS
from repro.core import make_versaslot
from repro.experiments import run_fig5
from repro.experiments.runner import SYSTEMS, run_sequence
from repro.fpga import BoardConfig, FPGABoard
from repro.sim import (
    AllOf,
    AnyOf,
    Engine,
    Event,
    Interrupt,
    Resource,
    Store,
    Timeout,
    Tracer,
)
from repro.sim.engine import PooledTimeout
from repro.verify.oracle import trace_lines
from repro.workloads import Condition, WorkloadGenerator, drive

DATA = Path(__file__).parent / "data"


@pytest.fixture(autouse=True)
def _fresh_ids():
    reset_instance_ids()


# ----------------------------------------------------------------------
# Golden fingerprints captured from the seed kernel
# ----------------------------------------------------------------------
class TestGoldenKernelStress:
    """A pure-kernel scenario logging at every resume pins event order.

    Exercises chained timeouts (fast-lane), bare events, AllOf/AnyOf,
    FIFO resources under contention, stores, interrupts during timeout
    waits and process joins — all interleaved at identical sim times.

    ``engine_factory`` is overridable so the verify suite can pin the
    reference kernel against the same goldens (tests/test_verify_oracle).
    """

    engine_factory = staticmethod(Engine)

    def _run(self):
        engine = self.engine_factory()
        log = []
        resource = Resource(engine, capacity=2, name="mutex")
        store = Store(engine, name="queue")

        def ticker(tag, delay, n):
            for i in range(n):
                yield engine.timeout(delay)
                log.append((engine.now, "tick", tag, i))

        def worker(tag):
            for i in range(4):
                request = resource.acquire()
                yield request
                log.append((engine.now, "grant", tag, i))
                yield engine.timeout(1.5)
                resource.release()
                store.put((tag, i))

        def consumer():
            for i in range(12):
                item = yield store.get()
                log.append((engine.now, "got", item, i))

        def sleeper(tag, delay):
            try:
                yield engine.timeout(delay)
                log.append((engine.now, "woke", tag, None))
            except Interrupt as exc:
                log.append((engine.now, "interrupted", tag, str(exc.cause)))
                return "stopped"
            return "done"

        def interrupter(victim, after):
            yield engine.timeout(after)
            victim.interrupt("preempt")

        def joiner(tag, procs):
            values = yield AllOf(engine, list(procs))
            log.append((engine.now, "joined", tag, tuple(values)))
            first = yield AnyOf(
                engine, [engine.timeout(3.0, "t"), engine.timeout(5.0, "u")]
            )
            log.append((engine.now, "first", tag, first))

        for k, (d, n) in enumerate([(1.0, 8), (0.7, 11), (2.3, 4)]):
            engine.process(ticker(f"t{k}", d, n))
        for k in range(3):
            engine.process(worker(f"w{k}"))
        engine.process(consumer())
        victims = [engine.process(sleeper(f"s{k}", 40.0 + k)) for k in range(3)]
        engine.process(interrupter(victims[1], 6.5))
        engine.process(joiner("j", victims))
        engine.run()
        return log, engine.now

    def test_log_matches_seed_kernel(self):
        golden = json.loads((DATA / "golden_kernel_stress.json").read_text())
        log, now = self._run()
        assert now == golden["final_now"]
        assert [list(map(repr, entry)) for entry in log] == golden["log"]

    def test_replay_is_deterministic(self):
        assert self._run() == self._run()


class TestGoldenSimulation:
    """Full-stack fingerprints: traces, response samples, figure values."""

    @pytest.fixture(scope="class")
    def golden(self):
        return json.loads((DATA / "golden_kernel.json").read_text())

    def test_traced_versaslot_run_bit_identical(self, golden):
        engine = Engine()
        board = FPGABoard(engine, BoardConfig.BIG_LITTLE, DEFAULT_PARAMETERS)
        tracer = Tracer()
        scheduler = make_versaslot(board, DEFAULT_PARAMETERS, tracer)
        arrivals = WorkloadGenerator(7).sequence(Condition.STRESS, n_apps=10)
        engine.process(drive(engine, scheduler, arrivals))
        engine.run(until=50_000_000)
        # The one canonical rendering: the verify oracle fingerprints with
        # the same function, so goldens and fingerprints stay comparable.
        lines = trace_lines(tracer)
        assert len(lines) == golden["trace_len"]
        assert lines[:5] == golden["trace_head"]
        digest = hashlib.sha256("\n".join(lines).encode()).hexdigest()
        assert digest == golden["trace_sha256"]
        assert scheduler.stats.completions == golden["completions"]

    @pytest.mark.parametrize("system", list(SYSTEMS))
    def test_per_system_responses_bit_identical(self, golden, system):
        arrivals = WorkloadGenerator(21).sequence(Condition.STRESS, n_apps=8)
        result = run_sequence(system, arrivals)
        expected = golden["systems"][system]
        assert result.responses.samples_ms == expected["samples_ms"]
        assert result.stats.pr_count == expected["pr_count"]
        assert result.stats.preemptions == expected["preemptions"]
        assert result.stats.launches == expected["launches"]
        assert result.makespan_ms == expected["makespan_ms"]

    def test_fig5_reductions_bit_identical(self, golden):
        result = run_fig5(seed=1, sequence_count=1, n_apps=8)
        assert result.reductions == golden["fig5_reductions"]


# ----------------------------------------------------------------------
# Fast-lane semantics
# ----------------------------------------------------------------------
class TestTimeoutFastLane:
    def test_interrupt_during_fast_lane_wait(self):
        """Interrupting a process parked on a fast-lane timeout.

        The interrupt must detach the process (clearing the fast-lane
        registration, not the callback list), the abandoned timeout must
        still dispatch harmlessly, and the process must be able to wait
        again afterwards.
        """
        engine = Engine()
        log = []

        def sleeper():
            try:
                yield engine.timeout(100.0)
                log.append("woke-early")
            except Interrupt as exc:
                log.append(("interrupted", engine.now, exc.cause))
            yield engine.timeout(5.0)  # a fresh fast-lane wait still works
            log.append(("slept-again", engine.now))
            return "ok"

        process = engine.process(sleeper())

        def interrupter():
            yield engine.timeout(10.0)
            process.interrupt("stop")

        engine.process(interrupter())
        engine.run()
        assert log == [("interrupted", 10.0, "stop"), ("slept-again", 15.0)]
        assert process.value == "ok"
        # The abandoned timeout fired at t=100 with no waiters; the clock
        # still advanced past it without error.
        assert engine.now == 100.0

    def test_interrupt_during_bare_delay_wait(self):
        engine = Engine()
        seen = []

        def sleeper():
            try:
                yield 100.0
            except Interrupt as exc:
                seen.append((engine.now, exc.cause))
                return "stopped"
            return "finished"

        process = engine.process(sleeper())

        def interrupter():
            yield 2.5
            process.interrupt("cut")

        engine.process(interrupter())
        engine.run()
        assert seen == [(2.5, "cut")]
        assert process.value == "stopped"

    def test_late_callback_runs_after_fast_process(self):
        """A callback added after a process is fast-lane registered still
        runs — after the process, preserving registration order."""
        engine = Engine()
        order = []
        timeout = engine.timeout(1.0)

        def waiter():
            yield timeout
            order.append("process")

        def late_listener():
            yield engine.timeout(0.5)
            # By now the waiter is fast-lane registered on ``timeout``.
            timeout.callbacks.append(lambda event: order.append("callback"))

        engine.process(waiter())
        engine.process(late_listener())
        engine.run()
        assert order == ["process", "callback"]

    def test_early_callback_runs_before_fast_process(self):
        """Waiters run in registration order: a callback appended before
        the process yields keeps its head-of-line position."""
        engine = Engine()
        order = []
        timeout = engine.timeout(1.0)
        timeout.callbacks.append(lambda event: order.append("callback"))

        def waiter():
            yield timeout
            order.append("process")

        engine.process(waiter())
        engine.run()
        assert order == ["callback", "process"]

    def test_two_processes_one_timeout_fifo(self):
        engine = Engine()
        order = []
        timeout = engine.timeout(1.0)

        def waiter(tag):
            yield timeout
            order.append(tag)

        engine.process(waiter("first"))
        engine.process(waiter("second"))
        engine.run()
        assert order == ["first", "second"]


class TestBareDelayYields:
    def test_bare_delay_advances_clock(self):
        engine = Engine()

        def proc():
            yield 1.5
            yield 2  # ints work too
            return engine.now

        process = engine.process(proc())
        engine.run()
        assert process.value == 3.5

    def test_bare_delay_resumes_with_none(self):
        engine = Engine()

        def proc():
            value = yield 1.0
            return value

        process = engine.process(proc())
        engine.run()
        assert process.value is None

    def test_negative_bare_delay_fails_process(self):
        engine = Engine()

        def proc():
            yield -1.0

        engine.process(proc())
        with pytest.raises(RuntimeError, match="negative delay"):
            engine.run()

    def test_non_event_yield_still_rejected(self):
        engine = Engine()

        def proc():
            yield "soon"

        engine.process(proc())
        with pytest.raises(RuntimeError, match="non-event"):
            engine.run()

    def test_bool_is_not_a_delay(self):
        # bool subclasses int, but ``yield True`` is almost certainly a
        # bug in model code — it must not silently sleep for 1ms.
        engine = Engine()

        def proc():
            yield True

        engine.process(proc())
        with pytest.raises(RuntimeError, match="non-event"):
            engine.run()


class TestPooledSleep:
    def test_sleep_behaves_like_timeout(self):
        engine = Engine()
        ticks = []

        def proc():
            for _ in range(5):
                yield engine.sleep(2.0)
                ticks.append(engine.now)

        engine.process(proc())
        engine.run()
        assert ticks == [2.0, 4.0, 6.0, 8.0, 10.0]

    def test_sleep_value_passthrough(self):
        engine = Engine()

        def proc():
            got = yield engine.sleep(1.0, "payload")
            return got

        process = engine.process(proc())
        engine.run()
        assert process.value == "payload"

    def test_sleep_rejects_negative_delay(self):
        engine = Engine()
        with pytest.raises(ValueError, match="negative delay"):
            engine.sleep(-0.1)

    def test_sleeps_recycle_through_the_pool(self):
        """Steady-state sleep loops ping-pong between two pooled objects.

        The next sleep is requested while the previous one is still being
        dispatched (its recycle happens right after the resume), so a
        tight loop alternates between exactly two recycled instances
        instead of allocating fifty.
        """
        engine = Engine()
        identities = set()

        def proc():
            for _ in range(50):
                timeout = engine.sleep(1.0)
                identities.add(id(timeout))
                yield timeout

        engine.process(proc())
        engine.run()
        assert len(identities) == 2
        assert 1 <= len(engine._timeout_pool) <= 2
        assert all(isinstance(t, PooledTimeout) for t in engine._timeout_pool)

    def test_pool_not_poisoned_by_external_listener(self):
        """A sleep timeout that gained a second listener is not recycled."""
        engine = Engine()
        observed = []

        def proc():
            timeout = engine.sleep(3.0)
            timeout.callbacks.append(lambda event: observed.append(engine.now))
            yield timeout

        engine.process(proc())
        engine.run()
        assert observed == [3.0]
        assert engine._timeout_pool == []


# ----------------------------------------------------------------------
# Condition events and resource accounting after the O(1) rewrites
# ----------------------------------------------------------------------
class TestAllOfLinear:
    def test_wide_fan_in_value_order(self):
        engine = Engine()
        children = [engine.timeout(float(i % 7), value=i) for i in range(500)]

        def waiter():
            values = yield AllOf(engine, children)
            return values

        process = engine.process(waiter())
        engine.run()
        assert process.value == list(range(500))

    def test_duplicate_children_counted_per_occurrence(self):
        engine = Engine()
        timeout = engine.timeout(1.0, value="x")

        def waiter():
            values = yield AllOf(engine, [timeout, timeout])
            return values

        process = engine.process(waiter())
        engine.run()
        assert process.value == ["x", "x"]

    def test_fail_fast_on_first_failure(self):
        engine = Engine()
        good = engine.timeout(5.0)
        bad = Event(engine)

        def failer():
            yield 1.0
            bad.fail(KeyError("boom"))

        def waiter():
            try:
                yield AllOf(engine, [good, bad])
            except KeyError:
                return engine.now
            return None

        engine.process(failer())
        process = engine.process(waiter())
        engine.run()
        assert process.value == 1.0  # failed before `good` fired at t=5


class TestRequestWaitAccounting:
    def test_wait_started_records_enqueue_time(self):
        engine = Engine()
        resource = Resource(engine, capacity=1)

        def holder():
            request = resource.acquire()
            yield request
            yield 10.0
            resource.release()

        def waiter():
            request = resource.acquire()
            assert request.wait_started == engine.now
            yield request
            resource.release()

        engine.process(holder())

        def spawn_waiter():
            yield 4.0
            engine.process(waiter())

        engine.process(spawn_waiter())
        engine.run()
        # The waiter queued at t=4 and was granted at t=10: 6ms of wait.
        assert resource.total_wait_time == pytest.approx(6.0)
        assert resource.total_grants == 2

    def test_uncontended_acquire_has_zero_wait(self):
        engine = Engine()
        resource = Resource(engine, capacity=2)

        def worker():
            request = resource.acquire()
            yield request
            yield 1.0
            resource.release()

        engine.process(worker())
        engine.process(worker())
        engine.run()
        assert resource.total_wait_time == 0.0
        assert resource.total_grants == 2
