"""The event-sourced telemetry spine: digests, bus, sinks, replay, CLI.

Covers the PR-5 acceptance surface:

* digest-vs-exact equivalence (p50/p95/p99 within the documented bound on
  uniform / Pareto / Zipf workloads) and exact mean parity;
* digest merge associativity across shards (quantile state exactly,
  moments to float precision);
* bounded memory at 1e6 samples (the fleet-scale digest path);
* bit-identical event-log replay → report parity, including against the
  PR-2 golden fingerprints;
* the fingerprint sink reproducing the oracle's bespoke plumbing;
* crash-safe results persistence (atomic write, fsynced appends,
  truncated-trailing-line recovery);
* the ``--json`` CLI surfaces.
"""

import json

import pytest

try:
    import numpy as np
except ImportError:  # the no-numpy CI job: only the digest-accuracy
    np = None        # data generation below needs numpy

needs_numpy = pytest.mark.skipif(np is None, reason="numpy not installed")

from repro.apps import reset_instance_ids
from repro.campaign.backend import CampaignCell, execute_cell, simulate_run
from repro.cli import main as cli_main
from repro.metrics.response import ResponseStats
from repro.telemetry import (
    EVENT_TYPES,
    ArrivalEvent,
    CompletionEvent,
    FingerprintSink,
    JsonlEventLogSink,
    LaunchEvent,
    MigrationEvent,
    N_BUCKETS,
    PreemptionEvent,
    QUANTILE_REL_ERROR,
    RequestReroutedEvent,
    RequestShedEvent,
    ResponseDigest,
    ShardAdmissionEvent,
    ShardDownEvent,
    ShardRecoveredEvent,
    SlotTransitionEvent,
    StreamingAggregationSink,
    TelemetryBus,
    TelemetrySink,
    canonical_line,
    digest_of,
    event_from_dict,
    load_events,
    merge_digests,
    replay_aggregation,
    sniff_event_log,
    summarize_event_log,
)
from repro.workloads import Condition, WorkloadGenerator
from repro.workloads.generator import WorkloadSpec


@pytest.fixture(autouse=True)
def _fresh_ids():
    reset_instance_ids()


def _workloads():
    rng = np.random.default_rng(7)
    uniform = rng.uniform(10.0, 5000.0, size=20_000)
    pareto = (rng.pareto(1.5, size=20_000) + 1.0) * 50.0
    zipf = np.minimum(rng.zipf(2.0, size=20_000), 10_000) * 12.5
    return {"uniform": uniform, "pareto": pareto, "zipf": zipf}


# ----------------------------------------------------------------------
# ResponseDigest: accuracy, mergeability, memory
# ----------------------------------------------------------------------
class TestResponseDigest:
    @needs_numpy
    @pytest.mark.parametrize("name", ["uniform", "pareto", "zipf"])
    def test_quantiles_within_documented_bound(self, name):
        samples = _workloads()[name]
        digest = digest_of(samples.tolist())
        for q in (50.0, 95.0, 99.0):
            exact = float(np.percentile(samples, q))
            estimate = digest.percentile(q)
            rel = abs(estimate - exact) / exact
            assert rel <= QUANTILE_REL_ERROR * 1.2, (
                f"{name} p{q}: {estimate} vs exact {exact} (rel {rel:.5f})"
            )

    @needs_numpy
    def test_mean_is_bit_identical_to_running_sum(self):
        samples = _workloads()["pareto"].tolist()
        digest = digest_of(samples)
        assert digest.mean() == sum(samples) / len(samples)
        assert digest.count == len(samples)

    def test_min_max_and_edge_percentiles_exact(self):
        samples = [13.25, 999.5, 2.0, 47.0]
        digest = digest_of(samples)
        assert digest.percentile(0.0) == 2.0
        assert digest.percentile(100.0) == 999.5
        assert digest.min_ms == 2.0 and digest.max_ms == 999.5

    @needs_numpy
    def test_variance_matches_numpy(self):
        samples = _workloads()["uniform"]
        digest = digest_of(samples.tolist())
        assert digest.variance() == pytest.approx(float(np.var(samples)), rel=1e-9)

    def test_negative_sample_message_parity(self):
        digest = ResponseDigest()
        with pytest.raises(ValueError, match="negative response time -3.0"):
            digest.add(-3.0)

    @needs_numpy
    def test_streaming_equals_batch_bitwise(self):
        """extend() is a loop of add(): sink-fed and batch-built digests
        of the same stream serialize identically."""
        samples = _workloads()["zipf"].tolist()[:5000]
        streamed = ResponseDigest()
        for value in samples:
            streamed.add(value)
        assert streamed.to_dict() == digest_of(samples).to_dict()

    @needs_numpy
    def test_merge_matches_pooled_quantile_state_exactly(self):
        samples = _workloads()["pareto"].tolist()
        a, b = digest_of(samples[:7000]), digest_of(samples[7000:])
        merged = merge_digests([a, b])
        pooled = digest_of(samples)
        assert merged._buckets == pooled._buckets
        assert merged.count == pooled.count
        assert merged.min_ms == pooled.min_ms
        assert merged.max_ms == pooled.max_ms
        for q in (50.0, 95.0, 99.0):
            assert merged.percentile(q) == pooled.percentile(q)
        assert merged.mean() == pytest.approx(pooled.mean(), rel=1e-12)
        assert merged.variance() == pytest.approx(pooled.variance(), rel=1e-9)

    @needs_numpy
    def test_merge_is_associative(self):
        samples = _workloads()["uniform"].tolist()
        parts = [
            digest_of(samples[:4000]),
            digest_of(samples[4000:9000]),
            digest_of(samples[9000:]),
        ]
        left = merge_digests([merge_digests(parts[:2]), parts[2]])
        right = merge_digests([parts[0], merge_digests(parts[1:])])
        # Quantile state is exactly associative (integer bucket counts);
        # the Welford moments associate to float precision.
        assert left._buckets == right._buckets
        assert left.count == right.count
        assert left.percentile(95.0) == right.percentile(95.0)
        assert left.mean() == pytest.approx(right.mean(), rel=1e-12)
        assert left.variance() == pytest.approx(right.variance(), rel=1e-9)

    @needs_numpy
    def test_serialization_round_trip_exact(self):
        digest = digest_of(_workloads()["pareto"].tolist()[:3000])
        clone = ResponseDigest.from_dict(
            json.loads(json.dumps(digest.to_dict()))
        )
        assert clone.to_dict() == digest.to_dict()
        assert clone.percentile(99.0) == digest.percentile(99.0)
        assert clone.mean() == digest.mean()

    def test_incompatible_layout_rejected(self):
        payload = digest_of([1.0]).to_dict()
        payload["gamma"] = 1.5
        with pytest.raises(ValueError, match="bucket layout"):
            ResponseDigest.from_dict(payload)

    @needs_numpy
    def test_million_samples_bounded_memory(self):
        """The fleet-scale promise: 1e6 requests, O(1) digest state."""
        rng = np.random.default_rng(3)
        samples = ((rng.pareto(1.3, size=1_000_000) + 1.0) * 40.0)
        digest = ResponseDigest()
        digest.extend(samples.tolist())
        assert digest.count == 1_000_000
        assert len(digest._buckets) <= N_BUCKETS
        for q in (50.0, 95.0, 99.0):
            exact = float(np.percentile(samples, q))
            assert abs(digest.percentile(q) - exact) / exact <= (
                QUANTILE_REL_ERROR * 1.2
            )
        assert digest.mean() == pytest.approx(float(samples.sum()) / 1e6, rel=1e-9)

    def test_empty_digest_refuses_queries(self):
        digest = ResponseDigest()
        with pytest.raises(ValueError, match="no response samples"):
            digest.mean()
        with pytest.raises(ValueError, match="no response samples"):
            digest.percentile(95.0)
        with pytest.raises(ValueError, match=r"\[0, 100\]"):
            digest_of([1.0]).percentile(101.0)

    def test_merge_with_empty_sides(self):
        samples = [3.0, 7.0, 11.0]
        assert merge_digests([ResponseDigest(), digest_of(samples)]).to_dict() \
            == digest_of(samples).to_dict()
        assert merge_digests([digest_of(samples), ResponseDigest()]).to_dict() \
            == digest_of(samples).to_dict()

    def test_bucket_geometry(self):
        from repro.telemetry import bucket_bounds, bucket_representative

        samples = [0.5, 42.0, 9000.0]
        digest = digest_of(samples)
        for bucket in digest._buckets:
            low, high = bucket_bounds(bucket)
            representative = bucket_representative(bucket)
            assert low <= representative < high or bucket == 0
            assert any(low <= s < high or (bucket == 0 and s < high)
                       for s in samples)
        assert bucket_representative(0) == 0.0
        assert repr(digest).startswith("<ResponseDigest n=3")
        assert repr(ResponseDigest()) == "<ResponseDigest empty>"


class TestVectorizedResponseStats:
    def test_extend_appends_and_validates(self):
        stats = ResponseStats()
        stats.extend([1.0, 2.5, 3.0])
        stats.extend(iter([4.0]))
        assert stats.samples_ms == [1.0, 2.5, 3.0, 4.0]
        assert stats.count == 4

    def test_negative_value_message_parity(self):
        stats = ResponseStats()
        with pytest.raises(ValueError, match="negative response time -2.5"):
            stats.extend([1.0, -2.5, 3.0])
        # validation happens before any append
        assert stats.samples_ms == []

    def test_empty_extend_is_noop(self):
        stats = ResponseStats()
        stats.extend([])
        assert stats.count == 0


# ----------------------------------------------------------------------
# Events and bus
# ----------------------------------------------------------------------
class TestTelemetryEvents:
    EXAMPLES = [
        ShardAdmissionEvent(1.0, "IC", 12, 3),
        ArrivalEvent(2.0, "IC#1", 1, 12),
        LaunchEvent(3.5, 1, 0.25, True),
        SlotTransitionEvent(4.0, "big0", "loaded", "IC-b0", 1),
        PreemptionEvent(5.0, "OF#2", "of-t3"),
        MigrationEvent(6.0, "DR#3", 3),
        CompletionEvent(7.0, "IC#1", 1, 2.0, 5.0),
        ShardDownEvent(8.0, 0, "kill"),
        RequestReroutedEvent(8.5, "IC", 12, 0, 2),
        RequestShedEvent(9.0, "OF", 6, "degraded-capacity"),
        ShardRecoveredEvent(10.0, 0, 2000.0),
    ]

    def test_round_trip_every_kind(self):
        for event in self.EXAMPLES:
            clone = event_from_dict(json.loads(json.dumps(event.to_dict())))
            assert clone == event
            assert canonical_line(clone) == canonical_line(event)

    def test_examples_cover_the_schema(self):
        assert {event.kind for event in self.EXAMPLES} == set(EVENT_TYPES)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown telemetry event kind"):
            event_from_dict({"t": 0.0, "kind": "nope"})

    def test_event_kinds_and_repr(self):
        from repro.telemetry import event_kinds

        assert tuple(event_kinds()) == tuple(EVENT_TYPES)
        assert "LaunchEvent" in repr(LaunchEvent(1.0, 2, 0.0, False))

    def test_missing_field_rejected(self):
        with pytest.raises(ValueError, match="missing field"):
            event_from_dict({"t": 0.0, "kind": "arrival", "app": "IC"})


class TestTelemetryBus:
    def test_disabled_bus_has_no_sinks(self):
        bus = TelemetryBus()
        assert not bus.enabled
        assert not bus.wants_launch

    def test_kind_filter_routes_events(self):
        bus = TelemetryBus()
        sink = StreamingAggregationSink(kinds=("completion",))
        bus.attach(sink)
        assert bus.wants("completion") and not bus.wants("launch")
        assert not bus.wants_launch
        bus.emit(CompletionEvent(1.0, "IC#1", 1, 0.0, 1.0))
        assert sink.completions == 1 and sink.digest.count == 1

    def test_launch_fast_path_used_for_aggregation_only(self):
        bus = TelemetryBus()
        sink = StreamingAggregationSink()
        bus.attach(sink)
        assert bus.wants_launch
        bus.emit_launch(1.0, 1, 0.5, True)
        assert sink.launches == 1 and sink.launch_blocked == 1
        assert sink.launch_wait_ms == 0.5

    def test_launch_event_path_when_a_sink_needs_objects(self):
        bus = TelemetryBus()
        aggregate = StreamingAggregationSink()
        fingerprint = FingerprintSink()
        bus.attach(aggregate)
        bus.attach(fingerprint)
        bus.emit_launch(1.0, 1, 0.0, False)
        assert aggregate.launches == 1
        assert fingerprint.event_count == 1  # saw the materialized event

    def test_bus_introspection_and_close(self, tmp_path):
        bus = TelemetryBus()
        log = JsonlEventLogSink(tmp_path / "x.jsonl")
        bus.attach(log)
        assert bus.enabled and bus.sinks == [log]
        bus.emit(ArrivalEvent(0.0, "IC#1", 1, 5))
        bus.close()
        bus.close()  # idempotent
        assert log.events_written == 1
        assert sniff_event_log(tmp_path / "x.jsonl")

    def test_unknown_sink_kind_rejected(self):
        class Bad(TelemetrySink):
            kinds = ("bogus",)

            def handle(self, event):  # pragma: no cover
                pass

        with pytest.raises(ValueError, match="unknown event kind"):
            TelemetryBus().attach(Bad())


# ----------------------------------------------------------------------
# Emission from the scheduler/fleet hot paths
# ----------------------------------------------------------------------
def _run_with_full_stream(system="VersaSlot-BL", n_apps=8, seed=21):
    arrivals = WorkloadGenerator(seed).sequence(Condition.STRESS, n_apps=n_apps)
    bus = TelemetryBus()
    sink = StreamingAggregationSink()
    bus.attach(sink)
    outcome = simulate_run(system, arrivals, telemetry=bus)
    return outcome, sink


class TestSchedulerEmission:
    def test_aggregation_mirrors_scheduler_stats(self):
        outcome, sink = _run_with_full_stream()
        stats = outcome.stats
        assert sink.arrivals == stats.arrivals
        assert sink.completions == stats.completions
        assert sink.launches == stats.launches
        assert sink.launch_blocked == stats.launch_blocked
        assert sink.launch_wait_ms == stats.launch_wait_ms
        assert sink.preemptions == stats.preemptions > 0
        assert sink.pr_loads == stats.pr_count
        assert sink.makespan_ms == outcome.makespan_ms

    def test_digest_matches_exact_response_stream(self):
        outcome, sink = _run_with_full_stream()
        exact = outcome.stats.response_times_ms()
        assert sink.digest.to_dict() == digest_of(exact).to_dict()
        assert sink.digest.mean() == sum(exact) / len(exact)

    def test_no_bus_keeps_scheduler_telemetry_none(self):
        arrivals = WorkloadGenerator(1).sequence(Condition.LOOSE, n_apps=2)
        captured = {}

        def capture(engine, board, scheduler):
            captured["scheduler"] = scheduler

        simulate_run("Nimblock", arrivals, instruments=(capture,))
        assert captured["scheduler"].telemetry is None

    def test_digest_only_cells_retain_no_response_records(self):
        """The O(1)-memory path: no per-request record accumulates."""
        arrivals = WorkloadGenerator(1).sequence(Condition.LOOSE, n_apps=3)
        bus = TelemetryBus()
        sink = StreamingAggregationSink(kinds=("completion",))
        bus.attach(sink)

        def streaming(engine, board, scheduler):
            scheduler.stats.retain_responses = False

        outcome = simulate_run(
            "Nimblock", arrivals, instruments=(streaming,), telemetry=bus
        )
        assert outcome.stats.responses == []
        assert outcome.stats.completions == 3
        assert sink.digest.count == 3
        assert outcome.makespan_ms == sink.makespan_ms > 0


# ----------------------------------------------------------------------
# Event-log persistence and replay
# ----------------------------------------------------------------------
class TestEventLogReplay:
    def _cell(self, tmp_path, **overrides):
        fields = dict(
            scenario="tel",
            system="Nimblock",
            sequence_index=0,
            seed=1,
            workload=WorkloadSpec(Condition.STRESS, n_apps=4),
            events_path=str(tmp_path / "events.jsonl"),
        )
        fields.update(overrides)
        return CampaignCell(**fields)

    def test_replayed_aggregation_is_bit_identical_to_the_record(self, tmp_path):
        cell = self._cell(tmp_path)
        record = execute_cell(cell)
        meta, sink = replay_aggregation(cell.events_path)
        assert meta["system"] == "Nimblock" and meta["n_apps"] == 4
        assert sink.digest.to_dict() == record.response_digest
        assert sink.completions == record.counters["completions"]
        assert sink.arrivals == record.counters["arrivals"]
        assert sink.launches == record.counters["launches"]
        assert sink.launch_blocked == record.counters["launch_blocked"]
        assert sink.launch_wait_ms == record.counters["launch_wait_ms"]
        assert sink.preemptions == record.counters["preemptions"]
        assert sink.pr_loads == record.counters["pr_count"]
        assert sink.makespan_ms == record.makespan_ms

    def test_sniff_and_typed_load(self, tmp_path):
        cell = self._cell(tmp_path)
        execute_cell(cell)
        assert sniff_event_log(cell.events_path)
        events = load_events(cell.events_path)
        assert events and events[0].kind == "arrival"
        kinds = {event.kind for event in events}
        assert {"arrival", "launch", "slot", "completion"} <= kinds

    def test_truncated_trailing_event_skipped_with_warning(self, tmp_path):
        cell = self._cell(tmp_path)
        execute_cell(cell)
        path = tmp_path / "events.jsonl"
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n" + lines[-1][:10])
        with pytest.warns(UserWarning, match="truncated trailing telemetry event"):
            events = load_events(path)
        assert len(events) == len(lines) - 2  # header + the cut line

    def test_malformed_interior_event_raises_with_location(self, tmp_path):
        cell = self._cell(tmp_path)
        execute_cell(cell)
        path = tmp_path / "events.jsonl"
        lines = path.read_text().splitlines()
        lines[2] = "{broken"
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="events.jsonl:3"):
            load_events(path)

    def test_summarize_event_log_shape(self, tmp_path):
        cell = self._cell(tmp_path)
        record = execute_cell(cell)
        summary = summarize_event_log(cell.events_path)
        assert summary["counters"]["completions"] == 4
        assert summary["response"]["count"] == 4
        assert summary["response_digest"] == record.response_digest


class TestGoldenReplayParity:
    """Event-log replay reproduces the PR-2 golden fingerprints."""

    @pytest.fixture(scope="class")
    def golden(self):
        from pathlib import Path

        return json.loads(
            (Path(__file__).parent / "data" / "golden_kernel.json").read_text()
        )

    @pytest.mark.parametrize(
        "system", ["Baseline", "FCFS", "Nimblock", "VersaSlot-BL"]
    )
    def test_response_stream_from_log_matches_golden(
        self, golden, system, tmp_path
    ):
        arrivals = WorkloadGenerator(21).sequence(Condition.STRESS, n_apps=8)
        bus = TelemetryBus()
        log = JsonlEventLogSink(tmp_path / "run.jsonl", meta={"system": system})
        bus.attach(log)
        simulate_run(system, arrivals, telemetry=bus)
        bus.close()
        expected = golden["systems"][system]
        events = load_events(tmp_path / "run.jsonl")
        responses = [e.response_ms for e in events if e.kind == "completion"]
        assert responses == expected["samples_ms"]
        launches = sum(1 for e in events if e.kind == "launch")
        assert launches == expected["launches"]
        preemptions = sum(1 for e in events if e.kind == "preemption")
        assert preemptions == expected["preemptions"]
        finishes = [e.time_ms for e in events if e.kind == "completion"]
        assert max(finishes) == expected["makespan_ms"]
        if system != "Baseline":  # Baseline has no slots, hence no PR events
            pr_loads = sum(
                1 for e in events if e.kind == "slot" and e.state == "loaded"
            )
            assert pr_loads == expected["pr_count"]


# ----------------------------------------------------------------------
# Fingerprint sink / verify integration
# ----------------------------------------------------------------------
class TestFingerprintSink:
    def test_fingerprint_reproduces_bespoke_plumbing(self):
        from repro.verify.oracle import instrumented_run

        arrivals = WorkloadGenerator(5).sequence(Condition.STRESS, n_apps=4)
        fingerprint = instrumented_run("VersaSlot-BL", arrivals)
        reset_instance_ids()
        outcome = simulate_run("VersaSlot-BL", arrivals)
        assert fingerprint.response_times_ms == outcome.stats.response_times_ms()
        assert fingerprint.finish_times_ms == [
            r.finish_time for r in outcome.stats.responses
        ]
        assert fingerprint.completions == outcome.stats.completions
        assert fingerprint.telemetry_events > 0
        assert len(fingerprint.telemetry_sha256) == 64

    def test_telemetry_stream_is_deterministic_across_kernels(self):
        from repro.verify.oracle import DifferentialOracle

        arrivals = WorkloadGenerator(9).sequence(Condition.STANDARD, n_apps=3)
        report = DifferentialOracle().check("Nimblock", arrivals)
        assert report.ok, report.summary()
        assert (
            report.reference.telemetry_sha256
            == report.optimized.telemetry_sha256
        )


# ----------------------------------------------------------------------
# Fleet: admission events, shard logs, digest rollups
# ----------------------------------------------------------------------
class TestFleetTelemetry:
    def test_fleet_events_dir_writes_admission_and_shard_logs(self, tmp_path):
        from repro.fleet import Fleet, get_fleet_scenario

        scenario = get_fleet_scenario("fleet-smoke")
        result = Fleet(scenario).run(events_dir=tmp_path)
        seed = scenario.seeds[0]
        admission_log = tmp_path / f"{scenario.name}-admission-seed{seed}.jsonl"
        assert admission_log.exists()
        admissions = load_events(admission_log)
        assert len(admissions) == scenario.workload.n_apps
        assert {e.kind for e in admissions} == {"admission"}
        assert all(0 <= e.shard < scenario.n_shards for e in admissions)
        for record in result.records:
            shard_log = (
                tmp_path
                / f"{scenario.name}-seed{record.seed}-shard{record.shard}.jsonl"
            )
            _, sink = replay_aggregation(shard_log)
            assert sink.digest.to_dict() == record.response_digest
            assert sink.completions == record.counters["completions"]

    def test_rollup_merges_shard_digests(self):
        from repro.fleet import Fleet, get_fleet_scenario

        scenario = get_fleet_scenario("fleet-smoke")
        result = Fleet(scenario).run()
        merged = merge_digests(
            d for d in (r.digest() for r in result.records) if d is not None
        )
        overall = result.rollup.overall
        assert overall.mean_ms == pytest.approx(merged.mean(), rel=1e-12)
        assert overall.p95_ms == merged.percentile(95.0)
        assert overall.p99_ms == merged.percentile(99.0)


# ----------------------------------------------------------------------
# CLI surfaces
# ----------------------------------------------------------------------
class TestTelemetryCli:
    def test_campaign_list_json(self, capsys):
        assert cli_main(["campaign", "list", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert any(entry["name"] == "smoke" for entry in payload)
        assert all({"name", "systems", "n_apps"} <= set(e) for e in payload)

    def test_fleet_list_json(self, capsys):
        assert cli_main(["fleet", "list", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert any(entry["name"] == "fleet-smoke" for entry in payload)
        assert all({"name", "policy", "n_shards"} <= set(e) for e in payload)

    def test_telemetry_schema_json(self, capsys):
        assert cli_main(["telemetry", "schema", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == set(EVENT_TYPES)
        assert payload["completion"] == [
            "app", "app_id", "arrival_ms", "response_ms",
        ]

    def test_telemetry_summarize_json_and_replay(self, tmp_path, capsys):
        record = execute_cell(CampaignCell(
            scenario="cli",
            system="FCFS",
            sequence_index=0,
            seed=1,
            workload=WorkloadSpec(Condition.LOOSE, n_apps=2),
            events_path=str(tmp_path / "cli.jsonl"),
        ))
        assert cli_main(
            ["telemetry", "summarize", str(tmp_path / "cli.jsonl"), "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["counters"]["completions"] == 2
        assert payload["response_digest"] == record.response_digest
        # `repro replay` sniffs event logs and re-derives the same report
        assert cli_main(["replay", str(tmp_path / "cli.jsonl")]) == 0
        out = capsys.readouterr().out
        assert "Telemetry counters" in out and "completions" in out

    def test_telemetry_summarize_missing_file(self, capsys):
        assert cli_main(["telemetry", "summarize", "/nope/missing.jsonl"]) == 2

    def test_replay_event_log_with_figure_is_an_error(self, tmp_path, capsys):
        execute_cell(CampaignCell(
            scenario="cli",
            system="FCFS",
            sequence_index=0,
            seed=1,
            workload=WorkloadSpec(Condition.LOOSE, n_apps=2),
            events_path=str(tmp_path / "f.jsonl"),
        ))
        assert cli_main(
            ["replay", str(tmp_path / "f.jsonl"), "--figure", "fig5"]
        ) == 2
        assert "telemetry event log" in capsys.readouterr().err

    def test_raw_sample_pool_stays_exact_with_an_empty_record(self):
        """One zero-completion shard must not demote a --raw-samples
        pool to bounded-error digests."""
        from repro.campaign.results import RunRecord, merged_response_summary

        raw = RunRecord(
            scenario="s", system="FCFS", condition="c", sequence_index=0,
            seed=1, n_apps=2, makespan_ms=2.0,
            response_times_ms=[1.0, 2.0],
            response_digest=digest_of([1.0, 2.0]).to_dict(),
        )
        empty = RunRecord(
            scenario="s", system="FCFS", condition="c", sequence_index=0,
            seed=1, n_apps=3, makespan_ms=0.0,
        )
        pooled = merged_response_summary([raw, empty])
        assert pooled.samples_ms == [1.0, 2.0]  # exact ResponseStats pool
        digest_only = RunRecord(
            scenario="s", system="FCFS", condition="c", sequence_index=0,
            seed=1, n_apps=1, makespan_ms=3.0,
            response_digest=digest_of([3.0]).to_dict(),
        )
        merged = merged_response_summary([raw, digest_only])
        assert not hasattr(merged, "samples_ms")  # digest path
        assert merged.count == 3

    def test_campaign_run_raw_samples_flag(self, tmp_path, capsys):
        out = tmp_path / "raw.jsonl"
        assert cli_main([
            "campaign", "run", "smoke", "--raw-samples", "--out", str(out)
        ]) == 0
        from repro.campaign import load_records

        records = load_records(out)
        assert records and all(r.response_times_ms for r in records)
        assert all(r.response_digest for r in records)
