"""Tests for the cluster layer: migration, monitor, cross-board switching."""

import pytest

from repro.apps import ApplicationInstance, BENCHMARKS, reset_instance_ids
from repro.cluster import ContentionMonitor, FPGACluster, MigrationStats, prewarm_board
from repro.config import DEFAULT_PARAMETERS
from repro.core import make_versaslot
from repro.core.switching import SchmittTrigger
from repro.fpga import BoardConfig, FPGABoard, SlotKind
from repro.sim import Engine
from repro.workloads import Arrival, drive


@pytest.fixture(autouse=True)
def _fresh_ids():
    reset_instance_ids()


def make_cluster(engine, **kwargs):
    return FPGACluster(
        engine,
        scheduler_factory=lambda board, params, tracer: make_versaslot(board, params, tracer),
        params=DEFAULT_PARAMETERS,
        **kwargs,
    )


class TestCluster:
    def test_default_two_boards(self):
        engine = Engine()
        cluster = make_cluster(engine)
        assert len(cluster.boards) == 2
        assert cluster.active_config is BoardConfig.ONLY_LITTLE

    def test_initial_config_must_exist(self):
        engine = Engine()
        with pytest.raises(ValueError):
            FPGACluster(
                engine,
                scheduler_factory=lambda b, p, t: make_versaslot(b, p, t),
                configs=[BoardConfig.ONLY_LITTLE],
                initial=BoardConfig.BIG_LITTLE,
            )

    def test_submit_routes_to_active(self):
        engine = Engine()
        cluster = make_cluster(engine)
        cluster.submit(ApplicationInstance(BENCHMARKS["IC"], 5, 0.0))
        assert len(cluster.active_scheduler.apps) == 1

    def test_responses_collected_across_boards(self):
        engine = Engine()
        cluster = make_cluster(engine)
        cluster.submit(ApplicationInstance(BENCHMARKS["IC"], 5, 0.0))
        engine.run(until=50_000_000)
        assert cluster.is_drained
        assert len(cluster.responses) == 1
        assert cluster.response_times_ms()[0] > 0

    def test_request_switch_moves_active(self):
        engine = Engine()
        cluster = make_cluster(engine)
        assert cluster.request_switch(BoardConfig.BIG_LITTLE)
        assert cluster.active_config is BoardConfig.BIG_LITTLE
        engine.run(until=10_000.0)
        assert cluster.migration_stats.count == 1

    def test_switch_to_same_config_refused(self):
        engine = Engine()
        cluster = make_cluster(engine)
        assert not cluster.request_switch(BoardConfig.ONLY_LITTLE)

    def test_concurrent_switch_refused(self):
        engine = Engine()
        cluster = make_cluster(engine)
        assert cluster.request_switch(BoardConfig.BIG_LITTLE)
        assert not cluster.request_switch(BoardConfig.ONLY_LITTLE)


class TestMigration:
    def test_waiting_apps_move_and_finish_on_target(self):
        engine = Engine()
        cluster = make_cluster(engine)
        # Saturate the OL board so later arrivals are still waiting.
        arrivals = [Arrival("OF", 25, 0.0)] * 3 + [Arrival("IC", 10, 10.0)] * 4
        engine.process(drive(engine, cluster, arrivals))

        def switch_later():
            yield engine.timeout(500.0)
            cluster.request_switch(BoardConfig.BIG_LITTLE)

        engine.process(switch_later())
        engine.run(until=200_000_000)
        assert cluster.is_drained
        assert len(cluster.responses) == 7
        assert cluster.migration_stats.count == 1

    def test_started_apps_drain_on_source(self):
        engine = Engine()
        cluster = make_cluster(engine)
        source = cluster.active_scheduler
        cluster.submit(ApplicationInstance(BENCHMARKS["IC"], 10, 0.0))
        engine.run(until=500.0)
        cluster.request_switch(BoardConfig.BIG_LITTLE)
        engine.run(until=100_000_000)
        # The started app finished on the original board.
        assert source.stats.completions == 1

    def test_prewarmed_switch_is_fast(self):
        engine = Engine()
        cluster = make_cluster(engine)
        cluster.submit(ApplicationInstance(BENCHMARKS["IC"], 10, 0.0))
        engine.run(until=500.0)
        cluster.prewarm(BoardConfig.BIG_LITTLE)
        cluster.request_switch(BoardConfig.BIG_LITTLE)
        engine.run(until=100_000_000)
        assert cluster.migration_stats.mean_overhead_ms() < 5.0

    def test_cold_switch_pays_staging(self):
        engine = Engine()
        cluster = make_cluster(engine)
        cluster.submit(ApplicationInstance(BENCHMARKS["IC"], 10, 0.0))
        engine.run(until=500.0)
        cluster.request_switch(BoardConfig.BIG_LITTLE)
        engine.run(until=100_000_000)
        assert cluster.migration_stats.mean_overhead_ms() > 5.0

    def test_prewarm_board_copies_bitstreams(self):
        engine = Engine()
        src = FPGABoard(engine, BoardConfig.ONLY_LITTLE, DEFAULT_PARAMETERS, name="s")
        dst = FPGABoard(engine, BoardConfig.BIG_LITTLE, DEFAULT_PARAMETERS, name="d")
        src.sd_card.register("IC/t0", SlotKind.LITTLE)
        assert prewarm_board(dst, src) == 1
        assert prewarm_board(dst, src) == 0  # idempotent

    def test_migration_stats_empty(self):
        assert MigrationStats().mean_overhead_ms() == 0.0


class TestContentionMonitor:
    def test_monitor_switches_under_contention(self):
        engine = Engine()
        cluster = make_cluster(engine)
        # A very sensitive trigger so a modest workload crosses it.
        monitor = ContentionMonitor(
            cluster,
            DEFAULT_PARAMETERS,
            trigger=SchmittTrigger(threshold_up=0.02, threshold_down=0.001),
        )
        arrivals = [
            Arrival(name, 8, i * 120.0)
            for i, name in enumerate(["IC", "AN", "OF", "LeNet", "IC", "AN", "OF", "3DR"] * 3)
        ]
        engine.process(drive(engine, cluster, arrivals))
        engine.run(until=400_000_000)
        assert cluster.is_drained
        assert len(cluster.responses) == len(arrivals)
        assert cluster.migration_stats.count >= 1
        assert monitor.samples

    def test_disabled_monitor_never_switches(self):
        engine = Engine()
        cluster = make_cluster(engine)
        ContentionMonitor(cluster, DEFAULT_PARAMETERS, enabled=False)
        arrivals = [Arrival("IC", 10, i * 100.0) for i in range(10)]
        engine.process(drive(engine, cluster, arrivals))
        engine.run(until=400_000_000)
        assert cluster.migration_stats.count == 0

    def test_samples_only_from_active_board(self):
        engine = Engine()
        cluster = make_cluster(engine)
        monitor = ContentionMonitor(cluster, DEFAULT_PARAMETERS)
        standby = cluster.scheduler_for(BoardConfig.BIG_LITTLE)
        # Updates from the standby board are ignored.
        monitor._on_update(standby)
        assert monitor.samples == []
