"""Tests for the cluster layer: migration, monitor, cross-board switching."""

import pytest

from repro.apps import ApplicationInstance, BENCHMARKS, reset_instance_ids
from repro.cluster import ContentionMonitor, FPGACluster, MigrationStats, prewarm_board
from repro.config import DEFAULT_PARAMETERS
from repro.core import make_versaslot
from repro.core.switching import SchmittTrigger
from repro.fpga import BoardConfig, FPGABoard, SlotKind
from repro.sim import Engine
from repro.workloads import Arrival, drive


@pytest.fixture(autouse=True)
def _fresh_ids():
    reset_instance_ids()


def make_cluster(engine, **kwargs):
    return FPGACluster(
        engine,
        scheduler_factory=lambda board, params, tracer: make_versaslot(board, params, tracer),
        params=DEFAULT_PARAMETERS,
        **kwargs,
    )


class TestCluster:
    def test_default_two_boards(self):
        engine = Engine()
        cluster = make_cluster(engine)
        assert len(cluster.boards) == 2
        assert cluster.active_config is BoardConfig.ONLY_LITTLE

    def test_initial_config_must_exist(self):
        engine = Engine()
        with pytest.raises(ValueError):
            FPGACluster(
                engine,
                scheduler_factory=lambda b, p, t: make_versaslot(b, p, t),
                configs=[BoardConfig.ONLY_LITTLE],
                initial=BoardConfig.BIG_LITTLE,
            )

    def test_submit_routes_to_active(self):
        engine = Engine()
        cluster = make_cluster(engine)
        cluster.submit(ApplicationInstance(BENCHMARKS["IC"], 5, 0.0))
        assert len(cluster.active_scheduler.apps) == 1

    def test_responses_collected_across_boards(self):
        engine = Engine()
        cluster = make_cluster(engine)
        cluster.submit(ApplicationInstance(BENCHMARKS["IC"], 5, 0.0))
        engine.run(until=50_000_000)
        assert cluster.is_drained
        assert len(cluster.responses) == 1
        assert cluster.response_times_ms()[0] > 0

    def test_request_switch_moves_active(self):
        engine = Engine()
        cluster = make_cluster(engine)
        assert cluster.request_switch(BoardConfig.BIG_LITTLE)
        assert cluster.active_config is BoardConfig.BIG_LITTLE
        engine.run(until=10_000.0)
        assert cluster.migration_stats.count == 1

    def test_switch_to_same_config_refused(self):
        engine = Engine()
        cluster = make_cluster(engine)
        assert not cluster.request_switch(BoardConfig.ONLY_LITTLE)

    def test_concurrent_switch_refused(self):
        engine = Engine()
        cluster = make_cluster(engine)
        assert cluster.request_switch(BoardConfig.BIG_LITTLE)
        assert not cluster.request_switch(BoardConfig.ONLY_LITTLE)


class TestMigration:
    def test_waiting_apps_move_and_finish_on_target(self):
        engine = Engine()
        cluster = make_cluster(engine)
        # Saturate the OL board so later arrivals are still waiting.
        arrivals = [Arrival("OF", 25, 0.0)] * 3 + [Arrival("IC", 10, 10.0)] * 4
        engine.process(drive(engine, cluster, arrivals))

        def switch_later():
            yield engine.timeout(500.0)
            cluster.request_switch(BoardConfig.BIG_LITTLE)

        engine.process(switch_later())
        engine.run(until=200_000_000)
        assert cluster.is_drained
        assert len(cluster.responses) == 7
        assert cluster.migration_stats.count == 1

    def test_started_apps_drain_on_source(self):
        engine = Engine()
        cluster = make_cluster(engine)
        source = cluster.active_scheduler
        cluster.submit(ApplicationInstance(BENCHMARKS["IC"], 10, 0.0))
        engine.run(until=500.0)
        cluster.request_switch(BoardConfig.BIG_LITTLE)
        engine.run(until=100_000_000)
        # The started app finished on the original board.
        assert source.stats.completions == 1

    def test_prewarmed_switch_is_fast(self):
        engine = Engine()
        cluster = make_cluster(engine)
        cluster.submit(ApplicationInstance(BENCHMARKS["IC"], 10, 0.0))
        engine.run(until=500.0)
        cluster.prewarm(BoardConfig.BIG_LITTLE)
        cluster.request_switch(BoardConfig.BIG_LITTLE)
        engine.run(until=100_000_000)
        assert cluster.migration_stats.mean_overhead_ms() < 5.0

    def test_cold_switch_pays_staging(self):
        engine = Engine()
        cluster = make_cluster(engine)
        cluster.submit(ApplicationInstance(BENCHMARKS["IC"], 10, 0.0))
        engine.run(until=500.0)
        cluster.request_switch(BoardConfig.BIG_LITTLE)
        engine.run(until=100_000_000)
        assert cluster.migration_stats.mean_overhead_ms() > 5.0

    def test_prewarm_board_copies_bitstreams(self):
        engine = Engine()
        src = FPGABoard(engine, BoardConfig.ONLY_LITTLE, DEFAULT_PARAMETERS, name="s")
        dst = FPGABoard(engine, BoardConfig.BIG_LITTLE, DEFAULT_PARAMETERS, name="d")
        src.sd_card.register("IC/t0", SlotKind.LITTLE)
        assert prewarm_board(dst, src) == 1
        assert prewarm_board(dst, src) == 0  # idempotent

    def test_migration_stats_empty(self):
        assert MigrationStats().mean_overhead_ms() == 0.0


class TestContentionMonitor:
    def test_monitor_switches_under_contention(self):
        engine = Engine()
        cluster = make_cluster(engine)
        # A very sensitive trigger so a modest workload crosses it.
        monitor = ContentionMonitor(
            cluster,
            DEFAULT_PARAMETERS,
            trigger=SchmittTrigger(threshold_up=0.02, threshold_down=0.001),
        )
        arrivals = [
            Arrival(name, 8, i * 120.0)
            for i, name in enumerate(["IC", "AN", "OF", "LeNet", "IC", "AN", "OF", "3DR"] * 3)
        ]
        engine.process(drive(engine, cluster, arrivals))
        engine.run(until=400_000_000)
        assert cluster.is_drained
        assert len(cluster.responses) == len(arrivals)
        assert cluster.migration_stats.count >= 1
        assert monitor.samples

    def test_disabled_monitor_never_switches(self):
        engine = Engine()
        cluster = make_cluster(engine)
        ContentionMonitor(cluster, DEFAULT_PARAMETERS, enabled=False)
        arrivals = [Arrival("IC", 10, i * 100.0) for i in range(10)]
        engine.process(drive(engine, cluster, arrivals))
        engine.run(until=400_000_000)
        assert cluster.migration_stats.count == 0

    def test_samples_only_from_active_board(self):
        engine = Engine()
        cluster = make_cluster(engine)
        monitor = ContentionMonitor(cluster, DEFAULT_PARAMETERS)
        standby = cluster.scheduler_for(BoardConfig.BIG_LITTLE)
        # Updates from the standby board are ignored.
        monitor._on_update(standby)
        assert monitor.samples == []


class _StubCalculator:
    """Feeds a scripted D_switch sample stream into the monitor."""

    def __init__(self, values):
        self._values = list(values)
        self.samples = []

    def on_candidate_update(self, scheduler):
        from repro.core.dswitch import DSwitchSample

        if not self._values:
            return None
        value = self._values.pop(0)
        sample = DSwitchSample(
            time=0.0, value=value, completed_apps=0,
            window_pr=4, window_blocked=2, candidate_apps=1,
            candidate_batch=8,
        )
        self.samples.append(sample)
        return sample


class TestSwitchLifecycle:
    """Migration and monitor paths: draining sources, standby reuse,
    pre-warm edge cases."""

    def test_intake_closed_while_source_drains(self):
        """A switch-while-draining source refuses new arrivals until the
        drain completes and it becomes the standby again."""
        engine = Engine()
        cluster = make_cluster(engine)
        source = cluster.active_scheduler
        cluster.submit(ApplicationInstance(BENCHMARKS["IC"], 10, 0.0))
        engine.run(until=500.0)  # the app has started executing
        assert cluster.request_switch(BoardConfig.BIG_LITTLE)
        engine.run(until=501.0)  # the migration process closes the intake
        with pytest.raises(RuntimeError, match="intake is closed"):
            source.submit(ApplicationInstance(BENCHMARKS["AN"], 5, 500.0))
        # New arrivals route to the target while the source drains.
        cluster.submit(ApplicationInstance(BENCHMARKS["AN"], 5, 500.0))
        engine.run(until=100_000_000)
        assert cluster.is_drained
        assert source.intake_open  # clean standby after the drain
        assert source.stats.completions == 1
        assert len(cluster.responses) == 2

    def test_standby_reuse_switch_back(self):
        """After a switch the drained source serves as the next standby:
        a second switch moves the system back onto the original board."""
        engine = Engine()
        cluster = make_cluster(engine)
        board0 = cluster.active_board
        cluster.submit(ApplicationInstance(BENCHMARKS["IC"], 8, 0.0))
        assert cluster.request_switch(BoardConfig.BIG_LITTLE)
        engine.run(until=50_000_000)
        assert cluster.is_drained
        assert cluster.active_config is BoardConfig.BIG_LITTLE
        # The original board is reusable: switch back onto it.
        cluster.submit(ApplicationInstance(BENCHMARKS["AN"], 6, engine.now))
        assert cluster.request_switch(BoardConfig.ONLY_LITTLE)
        assert cluster.active_board is board0
        engine.run(until=200_000_000)
        assert cluster.is_drained
        assert cluster.migration_stats.count == 2
        assert len(cluster.responses) == 2

    def test_waiting_apps_follow_the_switch_back(self):
        """Unstarted apps migrate on both the first and the second switch."""
        engine = Engine()
        cluster = make_cluster(engine)
        # Saturate so late arrivals are still waiting when switches fire.
        arrivals = [Arrival("OF", 25, 0.0)] * 3 + [Arrival("IC", 10, 10.0)] * 3
        engine.process(drive(engine, cluster, arrivals))

        def switch_twice():
            yield engine.timeout(400.0)
            cluster.request_switch(BoardConfig.BIG_LITTLE)
            yield engine.timeout(400.0)
            cluster.request_switch(BoardConfig.ONLY_LITTLE)

        engine.process(switch_twice())
        engine.run(until=200_000_000)
        assert cluster.is_drained
        assert len(cluster.responses) == len(arrivals)
        assert cluster.migration_stats.count == 2
        assert cluster.migration_stats.apps_moved >= 1

    def test_prewarm_without_standby_is_noop(self):
        """Pre-warming a configuration with no standby board does nothing
        (the monitor may request it while a switch is in flight)."""
        engine = Engine()
        cluster = FPGACluster(
            engine,
            scheduler_factory=lambda b, p, t: make_versaslot(b, p, t),
            configs=[BoardConfig.ONLY_LITTLE],
            initial=BoardConfig.ONLY_LITTLE,
        )
        cluster.prewarm(BoardConfig.BIG_LITTLE)  # no BL board exists
        cluster.prewarm(BoardConfig.ONLY_LITTLE)  # only board is active
        assert cluster._prewarmed == {}

    def test_prewarm_flag_resets_after_switch(self):
        """A pre-warm is consumed by the switch it prepared; the next
        switch onto that board must stage bitstreams again."""
        engine = Engine()
        cluster = make_cluster(engine)
        cluster.submit(ApplicationInstance(BENCHMARKS["IC"], 10, 0.0))
        engine.run(until=500.0)
        cluster.prewarm(BoardConfig.BIG_LITTLE)
        target_index = cluster.schedulers.index(
            cluster.scheduler_for(BoardConfig.BIG_LITTLE)
        )
        assert cluster._prewarmed[target_index]
        cluster.request_switch(BoardConfig.BIG_LITTLE)
        engine.run(until=100_000_000)
        assert not cluster._prewarmed[target_index]

    def test_switch_request_refused_when_no_standby_matches(self):
        engine = Engine()
        cluster = FPGACluster(
            engine,
            scheduler_factory=lambda b, p, t: make_versaslot(b, p, t),
            configs=[BoardConfig.ONLY_LITTLE],
            initial=BoardConfig.ONLY_LITTLE,
        )
        assert not cluster.request_switch(BoardConfig.BIG_LITTLE)


class TestMonitorPaths:
    def test_buffer_zone_prewarms_then_threshold_switches(self):
        """A rising D_switch inside the buffer zone pre-warms the standby;
        crossing T1 fires the actual switch."""
        engine = Engine()
        cluster = make_cluster(engine)
        monitor = ContentionMonitor(
            cluster,
            DEFAULT_PARAMETERS,
            calculator=_StubCalculator([0.05, 0.06, 0.5]),
        )
        target_index = cluster.schedulers.index(
            cluster.scheduler_for(BoardConfig.BIG_LITTLE)
        )
        active = cluster.active_scheduler
        monitor._on_update(active)  # 0.05: buffer zone, no slope yet
        assert not cluster._prewarmed.get(target_index)
        monitor._on_update(active)  # 0.06: rising in the zone -> prewarm
        assert cluster._prewarmed.get(target_index)
        assert cluster.active_config is BoardConfig.ONLY_LITTLE
        monitor._on_update(active)  # 0.5: crosses T1 -> switch
        assert cluster.active_config is BoardConfig.BIG_LITTLE

    def test_switch_fallback_resets_trigger_mode(self):
        """When the standby is unavailable the trigger mode falls back so
        the threshold crossing can re-fire later."""
        engine = Engine()
        cluster = make_cluster(engine)
        monitor = ContentionMonitor(cluster, DEFAULT_PARAMETERS)
        cluster._switching = True  # a switch is already in flight
        monitor.trigger.mode = BoardConfig.BIG_LITTLE  # trigger just fired
        monitor._switch(BoardConfig.BIG_LITTLE)
        assert monitor.trigger.mode is BoardConfig.ONLY_LITTLE

    def test_monitor_ignores_updates_when_disabled(self):
        engine = Engine()
        cluster = make_cluster(engine)
        monitor = ContentionMonitor(
            cluster,
            DEFAULT_PARAMETERS,
            calculator=_StubCalculator([0.5]),
            enabled=False,
        )
        monitor._on_update(cluster.active_scheduler)
        assert monitor.events == []
        assert cluster.active_config is BoardConfig.ONLY_LITTLE
