"""The fleet subsystem: routing, workloads, sharded execution, rollups.

The load-bearing property throughout is *cross-process determinism*: the
dispatch plan is a pure function of (stream, shards, policy, seed), so the
serial backend, the multiprocessing backend and any verify worker all see
bit-identical per-shard work.
"""

import dataclasses
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.apps import reset_instance_ids
from repro.campaign.backend import SerialBackend
from repro.campaign.results import load_records
from repro.cli import main
from repro.fleet import (
    ADMISSION_BATCH,
    FLEET_SCENARIOS,
    Fleet,
    FleetScenario,
    FleetWorkload,
    get_fleet_scenario,
    get_policy,
    load_imbalance,
    partition_arrivals,
    policy_names,
    stable_digest,
)
from repro.fleet.workload import FLEET_WORKLOAD_KINDS
from repro.sim import SeededStreams
from repro.verify import DifferentialOracle, FuzzCase, cases_from_fleet_scenario, shrink_case
from repro.workloads import Condition

SRC = str(Path(__file__).resolve().parent.parent / "src")


@pytest.fixture(autouse=True)
def _fresh_ids():
    reset_instance_ids()


def smoke_stream(n_apps=12, condition=Condition.STRESS, kind="uniform"):
    return FleetWorkload(kind=kind, condition=condition, n_apps=n_apps).arrivals(1)


# ----------------------------------------------------------------------
# Routing policies
# ----------------------------------------------------------------------
class TestRouting:
    def test_stable_digest_is_pinned(self):
        """Freeze the digest: the ring layout and every persisted fleet
        artifact depend on it."""
        assert stable_digest("app/IC") == 4371189670463695966
        assert stable_digest("") != stable_digest("x")

    def test_consistent_hash_keys_by_app(self):
        arrivals = smoke_stream(24)
        shards = partition_arrivals(arrivals, 4, "hash", seed=1)
        app_to_shard = {}
        for shard, sub in enumerate(shards):
            for arrival in sub:
                assert app_to_shard.setdefault(arrival.app_name, shard) == shard

    def test_consistent_hash_remaps_a_fraction_on_scale_out(self):
        arrivals = smoke_stream(24)
        four = partition_arrivals(arrivals, 4, "hash", seed=1)
        five = partition_arrivals(arrivals, 5, "hash", seed=1)

        def shard_of(plan):
            return {
                arrival.app_name: shard
                for shard, sub in enumerate(plan)
                for arrival in sub
            }

        before, after = shard_of(four), shard_of(five)
        moved = sum(1 for app in before if after[app] != before[app])
        assert moved < len(before)  # most keys stay put

    def test_least_loaded_balances_estimated_work(self):
        arrivals = smoke_stream(32)
        balanced = load_imbalance(
            partition_arrivals(arrivals, 4, "least-loaded", seed=1)
        )
        hashed = load_imbalance(partition_arrivals(arrivals, 4, "hash", seed=1))
        assert balanced <= hashed
        assert balanced < 1.5

    def test_p2c_draws_from_seeded_streams(self):
        arrivals = smoke_stream(16)
        first = partition_arrivals(arrivals, 3, "p2c", seed=5)
        second = partition_arrivals(arrivals, 3, "p2c", seed=5)
        assert first == second
        assert partition_arrivals(arrivals, 3, "p2c", seed=6) != first

    def test_partition_is_exact_and_order_preserving(self):
        arrivals = smoke_stream(20)
        for policy in policy_names():
            shards = partition_arrivals(arrivals, 3, policy, seed=2)
            flat = [arrival for sub in shards for arrival in sub]
            assert sorted(flat, key=lambda a: a.time_ms) == arrivals
            for sub in shards:
                assert [a.time_ms for a in sub] == sorted(a.time_ms for a in sub)

    def test_unknown_policy_names_alternatives(self):
        with pytest.raises(KeyError, match="least-loaded"):
            get_policy("round-robin", 2, SeededStreams(1))

    def test_admission_batching_freezes_snapshots(self):
        """Within one admission batch, least-loaded routes against the
        batch-start snapshot (stale loads), not per-arrival accounting."""
        arrivals = smoke_stream(ADMISSION_BATCH)
        shards = partition_arrivals(arrivals, 2, "least-loaded", seed=1)
        # Snapshot all-zero for the whole first batch: ties go to shard 0.
        assert len(shards[0]) == ADMISSION_BATCH
        assert shards[1] == []

    def test_partition_stable_across_hash_randomization(self):
        """The front-end reproduces the identical dispatch plan in fresh
        interpreters regardless of PYTHONHASHSEED (the spawn regression)."""
        script = (
            "from repro.fleet import partition_arrivals\n"
            "from repro.fleet.workload import FleetWorkload\n"
            "from repro.workloads import Condition\n"
            "s = FleetWorkload(kind='hot-skew', condition=Condition.STRESS,"
            " n_apps=16).arrivals(3)\n"
            "for policy in ('hash', 'least-loaded', 'p2c'):\n"
            "    plan = partition_arrivals(s, 3, policy, seed=3)\n"
            "    print(policy, [[a.app_name for a in sub] for sub in plan])\n"
        )
        outputs = set()
        for hashseed in ("0", "77", "random"):
            env = dict(os.environ, PYTHONHASHSEED=hashseed, PYTHONPATH=SRC)
            result = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True, env=env, check=True,
            )
            outputs.add(result.stdout)
        assert len(outputs) == 1


# ----------------------------------------------------------------------
# Fleet workload families
# ----------------------------------------------------------------------
class TestFleetWorkloads:
    @pytest.mark.parametrize("kind", FLEET_WORKLOAD_KINDS)
    def test_streams_are_well_formed_and_deterministic(self, kind):
        workload = FleetWorkload(kind=kind, condition=Condition.STANDARD, n_apps=20)
        stream = workload.arrivals(7)
        assert stream == workload.arrivals(7)
        assert stream != workload.arrivals(8)
        assert len(stream) == 20
        times = [arrival.time_ms for arrival in stream]
        assert times == sorted(times)
        assert times[0] == 0.0
        lo, hi = workload.batch_range
        assert all(lo <= arrival.batch_size <= hi for arrival in stream)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fleet workload kind"):
            FleetWorkload(kind="tsunami")

    def test_hot_skew_concentrates_popularity(self):
        stream = FleetWorkload(
            kind="hot-skew", condition=Condition.STRESS, n_apps=60
        ).arrivals(1)
        counts = {}
        for arrival in stream:
            counts[arrival.app_name] = counts.get(arrival.app_name, 0) + 1
        top = max(counts.values())
        assert top > 60 / len(counts) * 1.5  # visibly above uniform share

    def test_diurnal_rate_varies(self):
        stream = FleetWorkload(
            kind="diurnal", condition=Condition.STANDARD, n_apps=40
        ).arrivals(1)
        gaps = [b.time_ms - a.time_ms for a, b in zip(stream, stream[1:])]
        assert max(gaps) > 2 * min(gap for gap in gaps if gap > 0)

    def test_multi_tenant_mixes_regimes(self):
        stream = FleetWorkload(
            kind="multi-tenant", condition=Condition.STANDARD, n_apps=30
        ).arrivals(1)
        assert len(stream) == 30
        gaps = [b.time_ms - a.time_ms for a, b in zip(stream, stream[1:])]
        # Stress-tenant gaps (~175 ms) and loose-tenant gaps (5000 ms)
        # both appear in the merged stream.
        assert min(gaps) < 1000 < max(gaps)


# ----------------------------------------------------------------------
# Scenarios and the Fleet orchestrator
# ----------------------------------------------------------------------
class TestFleetScenarios:
    def test_builtins_are_registered(self):
        assert {"fleet-smoke", "fleet-diurnal", "fleet-bursty",
                "fleet-hot-shard", "fleet-multi-tenant"} <= set(FLEET_SCENARIOS)

    def test_validation(self):
        workload = FleetWorkload()
        with pytest.raises(KeyError, match="unknown system"):
            FleetScenario("x", "NoSuch", 2, "hash", workload)
        with pytest.raises(KeyError, match="unknown routing policy"):
            FleetScenario("x", "FCFS", 2, "warp", workload)
        with pytest.raises(ValueError, match=">= 1 shard"):
            FleetScenario("x", "FCFS", 0, "hash", workload)

    def test_scaled_overrides_shape(self):
        scenario = get_fleet_scenario("fleet-smoke").scaled(
            n_shards=3, n_apps=6, seeds=(9,)
        )
        assert scenario.n_shards == 3
        assert scenario.workload.n_apps == 6
        assert scenario.seeds == (9,)
        assert scenario.cell_count() == 3


class TestFleetExecution:
    def test_serial_and_parallel_records_are_bit_identical(self):
        """The acceptance criterion: a >= 4-shard fleet produces identical
        per-shard and global aggregates on both backends."""
        scenario = get_fleet_scenario("fleet-hot-shard")
        assert scenario.n_shards >= 4
        fleet = Fleet(scenario)
        serial = fleet.run(jobs=1)
        parallel = fleet.run(jobs=2)
        assert [r.to_dict() for r in serial.records] == [
            r.to_dict() for r in parallel.records
        ]
        assert serial.rollup.table() == parallel.rollup.table()

    def test_records_are_tagged_per_shard(self, tmp_path):
        store = tmp_path / "fleet.jsonl"
        result = Fleet(get_fleet_scenario("fleet-smoke")).run(store=store)
        assert [r.shard for r in result.records] == [0, 1]
        loaded = load_records(store)
        assert [r.to_dict() for r in loaded] == [r.to_dict() for r in result.records]
        assert all(r.condition == "Stress" for r in loaded)

    def test_shards_union_to_the_global_stream(self):
        scenario = get_fleet_scenario("fleet-smoke")
        fleet = Fleet(scenario)
        plan = fleet.shard_plan(scenario.seeds[0])
        flat = sorted(
            (a for sub in plan for a in sub), key=lambda a: a.time_ms
        )
        assert flat == scenario.workload.arrivals(scenario.seeds[0])

    def test_rollup_is_conserving(self):
        scenario = get_fleet_scenario("fleet-smoke")
        result = Fleet(scenario).run()
        rollup = result.rollup
        assert rollup.overall.n_apps == scenario.workload.n_apps * len(scenario.seeds)
        assert rollup.overall.n_apps == sum(r.n_apps for r in rollup.per_shard)
        assert rollup.overall.pr_count == sum(r.pr_count for r in rollup.per_shard)
        assert rollup.imbalance >= 1.0
        assert "fleet-smoke" in rollup.table()

    def test_both_kernels_produce_identical_shard_records(self):
        fleet = Fleet(get_fleet_scenario("fleet-smoke"))
        optimized = SerialBackend().run(fleet.cells(kernel="optimized"))
        reference = SerialBackend().run(fleet.cells(kernel="reference"))
        assert [r.to_dict() for r in optimized] == [r.to_dict() for r in reference]

    def test_empty_shard_records_are_benign(self):
        """A shard the router starved records 0 apps and makespan 0."""
        scenario = get_fleet_scenario("fleet-diurnal")
        result = Fleet(scenario).run()
        empty = [r for r in result.records if r.n_apps == 0]
        for record in empty:
            assert record.makespan_ms == 0.0
            assert record.response_times_ms == []
            assert record.utilization["elapsed_ms"] == 0.0


# ----------------------------------------------------------------------
# Verify-layer integration
# ----------------------------------------------------------------------
class TestFleetVerify:
    def test_oracle_passes_on_every_shard_of_a_fleet_scenario(self):
        oracle = DifferentialOracle()
        cases = cases_from_fleet_scenario(get_fleet_scenario("fleet-smoke"))
        assert len(cases) == 2
        for case in cases:
            report = oracle.check(case.system, case.arrivals(), case.params())
            assert report.ok, report.summary()

    def test_fleet_cases_match_fleet_cells(self):
        """verify --scenario fleet-X checks exactly what fleet run X runs."""
        scenario = get_fleet_scenario("fleet-smoke")
        cases = cases_from_fleet_scenario(scenario)
        cells = Fleet(scenario).cells()
        assert len(cases) == len(cells)
        for case, cell in zip(cases, cells):
            assert case.arrivals() == list(cell.arrivals)
            assert case.shard == cell.shard

    def test_fleet_case_round_trips_through_json(self):
        case = FuzzCase(
            case_id=0, system="FCFS", condition="STRESS", n_apps=8,
            batch_lo=2, batch_hi=6, seed=3, n_shards=3, policy="p2c",
            shard=2, fleet_kind="bursty",
        )
        payload = json.loads(json.dumps(case.to_dict()))
        assert FuzzCase.from_dict(payload) == case

    def test_shard_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="outside"):
            FuzzCase(
                case_id=0, system="FCFS", condition="STRESS", n_apps=4,
                batch_lo=1, batch_hi=2, seed=1, n_shards=2, shard=2,
            )

    def test_shrinking_drops_the_fleet_wrapping_first(self):
        case = FuzzCase(
            case_id=0, system="FCFS", condition="STRESS", n_apps=6,
            batch_lo=1, batch_hi=4, seed=1, n_shards=4, policy="p2c",
            shard=3, fleet_kind="bursty",
        )
        shrunk, _ = shrink_case(case, lambda c: True, budget=32)
        assert not shrunk.is_fleet
        assert shrunk.n_apps == 1

    def test_shrinking_can_keep_fleet_but_simplify_it(self):
        case = FuzzCase(
            case_id=0, system="FCFS", condition="LOOSE", n_apps=1,
            batch_lo=2, batch_hi=2, seed=1, n_shards=4, policy="p2c",
            shard=3, fleet_kind="bursty",
        )
        shrunk, _ = shrink_case(
            case, lambda c: c.is_fleet, budget=32
        )
        assert shrunk.is_fleet
        assert shrunk.n_shards == 2
        assert shrunk.shard == 0
        assert shrunk.fleet_kind == "uniform"
        assert shrunk.policy == "hash"


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestFleetCLI:
    def test_fleet_list(self, capsys):
        assert main(["fleet", "list"]) == 0
        out = capsys.readouterr().out
        assert "fleet-diurnal" in out
        assert "least-loaded" in out

    def test_fleet_run_persists_and_reports(self, capsys, tmp_path):
        store = tmp_path / "smoke.jsonl"
        code = main(["fleet", "run", "fleet-smoke", "--out", str(store)])
        out = capsys.readouterr().out
        assert code == 0
        assert "Fleet fleet-smoke" in out
        assert "shard0" in out and "shard1" in out
        assert store.exists()
        capsys.readouterr()
        assert main(["campaign", "replay", str(store)]) == 0
        assert "fleet-smoke" in capsys.readouterr().out

    def test_fleet_run_scaling_flags(self, capsys, tmp_path):
        store = tmp_path / "scaled.jsonl"
        code = main([
            "fleet", "run", "fleet-smoke", "--shards", "3",
            "--apps", "6", "--seed", "2", "--out", str(store),
        ])
        assert code == 0
        records = load_records(store)
        assert len(records) == 3
        assert sum(r.n_apps for r in records) == 6
        assert all(r.seed == 2 for r in records)

    def test_fleet_run_unknown_scenario_is_operator_error(self, capsys):
        assert main(["fleet", "run", "missing"]) == 2
        assert "unknown fleet scenario" in capsys.readouterr().err

    def test_verify_sweeps_fleet_scenarios(self, capsys, tmp_path):
        code = main([
            "verify", "--scenario", "fleet-smoke",
            "--repro-dir", str(tmp_path),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "fleet-smoke" in out
        assert "shard 0/2" in out and "shard 1/2" in out
        assert "bit-identical" in out

    def test_verify_fuzz_accepts_fleet_scenario(self, capsys, tmp_path):
        code = main([
            "verify", "--fuzz", "3", "--seed", "1",
            "--scenario", "fleet-smoke", "--repro-dir", str(tmp_path),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "fleet" in out
        assert "all 3 cases bit-identical" in out
