"""The reference kernel and the differential oracle.

Three layers of assurance:

* the reference kernel reproduces the PR-2 goldens captured from the seed
  kernel (so "reference" really means the documented semantics);
* the oracle finds the reference and optimized kernels bit-identical on
  real scenarios across every registered system;
* a deliberately injected kernel bug *is* caught, shrunk to a minimal
  case, persisted as a repro, and the repro replays the failure.
"""

import json
from pathlib import Path

import pytest

from repro.apps import reset_instance_ids
from repro.experiments.runner import SYSTEMS
from repro.sim import Engine, Interrupt
from repro.verify import (
    DifferentialOracle,
    ReferenceEngine,
    ScenarioFuzzer,
    instrumented_run,
    replay_repro,
    resolve_kernel,
    save_repro,
    shrink_case,
)
from repro.verify.invariants import (
    InvariantMonitor,
    check_app_run,
    check_scheduler,
)
from repro.workloads import Condition, WorkloadGenerator

from tests.test_kernel_fastlane import TestGoldenKernelStress

DATA = Path(__file__).parent / "data"


@pytest.fixture(autouse=True)
def _fresh_ids():
    reset_instance_ids()


# ----------------------------------------------------------------------
# The reference kernel is the seed semantics
# ----------------------------------------------------------------------
class TestReferenceKernelGolden(TestGoldenKernelStress):
    """The pure-kernel stress golden, replayed on the reference kernel.

    Inherits the golden-log and determinism tests with the engine swapped:
    the simple pop/dispatch loop must reproduce the seed kernel's event
    order exactly.
    """

    engine_factory = staticmethod(ReferenceEngine)


class TestReferenceFullStack:
    def test_reference_matches_pr2_golden_trace(self):
        """Full-stack anchor: reference kernel == optimized == PR-2 golden."""
        golden = json.loads((DATA / "golden_kernel.json").read_text())
        arrivals = WorkloadGenerator(7).sequence(Condition.STRESS, n_apps=10)
        for kernel in ("reference", "optimized"):
            fingerprint = instrumented_run("VersaSlot-BL", arrivals, kernel=kernel)
            assert fingerprint.trace_len == golden["trace_len"], kernel
            assert fingerprint.trace_sha256 == golden["trace_sha256"], kernel
            assert fingerprint.completions == golden["completions"], kernel
            assert fingerprint.violations == [], kernel

    def test_resolve_kernel_unknown(self):
        with pytest.raises(KeyError, match="unknown kernel"):
            resolve_kernel("quantum")


# ----------------------------------------------------------------------
# Oracle equivalence on real scenarios
# ----------------------------------------------------------------------
class TestOracleEquivalence:
    @pytest.mark.parametrize("system", list(SYSTEMS))
    def test_kernels_agree_per_system(self, system):
        arrivals = WorkloadGenerator(13).sequence(Condition.STRESS, n_apps=6)
        report = DifferentialOracle().check(system, arrivals)
        assert report.ok, report.summary()
        assert report.optimized.trace_sha256 == report.reference.trace_sha256
        assert report.optimized.response_times_ms
        assert "kernels agree" in report.summary()

    def test_report_shapes(self):
        arrivals = WorkloadGenerator(3).sequence(Condition.LOOSE, n_apps=2)
        report = DifferentialOracle().check("FCFS", arrivals)
        assert not report.diverged
        assert report.violations == []
        payload = report.to_dict()
        assert payload["fields"] == []
        assert "first_trace_divergence" not in payload


# ----------------------------------------------------------------------
# Injected kernel bugs are caught
# ----------------------------------------------------------------------
class SleepSkewEngine(ReferenceEngine):
    """Injected bug: every model delay stretches by one part per million."""

    __slots__ = ()

    def sleep(self, delay, value=None):
        return super().sleep(delay * 1.000001, value)


class InterruptPriorityBugEngine(Engine):
    """Injected bug: interrupts lose their URGENT scheduling priority."""

    __slots__ = ()

    def enqueue(self, event, delay=0.0, priority=1):
        super().enqueue(event, delay, 1)  # always NORMAL


def _interrupt_race_log(engine):
    """An interrupt racing a same-time timeout: URGENT must win."""
    log = []

    def victim():
        try:
            yield engine.timeout(10.0)
            log.append((engine.now, "woke"))
        except Interrupt:
            log.append((engine.now, "interrupted"))

    victim_process = engine.process(victim())

    def interrupter():
        yield engine.timeout(5.0)
        victim_process.interrupt("stop")

    def tail():
        yield engine.timeout(5.0)
        log.append((engine.now, "tail"))

    engine.process(interrupter())
    engine.process(tail())
    engine.run()
    return log


class TestInjectedBugs:
    def test_interrupt_priority_bug_flips_event_order(self):
        """A kernel-level mutation visibly reorders same-time dispatch."""
        good = _interrupt_race_log(Engine())
        reference = _interrupt_race_log(ReferenceEngine())
        buggy = _interrupt_race_log(InterruptPriorityBugEngine())
        assert good == reference == [(5.0, "interrupted"), (5.0, "tail")]
        assert buggy == [(5.0, "tail"), (5.0, "interrupted")]

    def test_sleep_skew_caught_shrunk_and_replayable(self, tmp_path):
        """The full pipeline: detect -> shrink -> persist -> replay."""
        oracle = DifferentialOracle(reference_factory=SleepSkewEngine)
        found = None
        for case in ScenarioFuzzer(0).cases(5):
            report = oracle.check(case.system, case.arrivals(), case.params())
            if not report.ok:
                found = (case, report)
                break
        assert found is not None, "injected skew not caught within 5 cases"
        case, report = found
        assert report.diverged
        diverged = {divergence.name for divergence in report.fields}
        assert "trace_sha256" in diverged or "makespan_ms" in diverged
        assert "DIVERGENCE" in report.summary()

        def still_fails(candidate):
            return not oracle.check(
                candidate.system, candidate.arrivals(), candidate.params()
            ).ok

        shrunk, attempts = shrink_case(case, still_fails, budget=32)
        assert attempts <= 32
        assert shrunk.n_apps <= case.n_apps
        final = oracle.check(shrunk.system, shrunk.arrivals(), shrunk.params())
        assert not final.ok

        path = save_repro(tmp_path / "repro.json", shrunk, final)
        replayed = replay_repro(path, oracle)
        assert not replayed.ok, "repro must reproduce the failure"
        clean = replay_repro(path)  # the real kernels still agree
        assert clean.ok, clean.summary()

    def test_divergent_report_names_first_trace_record(self):
        oracle = DifferentialOracle(reference_factory=SleepSkewEngine)
        arrivals = WorkloadGenerator(5).sequence(Condition.STRESS, n_apps=4)
        report = oracle.check("Nimblock", arrivals)
        assert report.diverged
        assert report.first_trace_divergence is not None
        index, ref_line, opt_line = report.first_trace_divergence
        assert index >= 0
        assert ref_line != opt_line


# ----------------------------------------------------------------------
# Invariant checkers
# ----------------------------------------------------------------------
def _instrumented_scheduler(system="VersaSlot-OL", n_apps=3):
    from repro.campaign.backend import simulate_run

    refs = {}

    def capture(engine, board, scheduler):
        refs["engine"] = engine
        refs["board"] = board
        refs["scheduler"] = scheduler
        refs["monitor"] = InvariantMonitor(engine, board, scheduler)

    arrivals = WorkloadGenerator(9).sequence(Condition.STRESS, n_apps=n_apps)
    simulate_run(system, arrivals, instruments=(capture,))
    return refs


class TestInvariantCheckers:
    def test_clean_run_has_no_violations(self):
        refs = _instrumented_scheduler()
        assert refs["monitor"].finalize(drained=True) == []

    def test_corrupted_incremental_counter_is_flagged(self):
        refs = _instrumented_scheduler()
        app = refs["scheduler"].apps[0]
        app._unfinished_tasks = 5  # desync the incremental state
        problems = check_app_run(app)
        assert any("incremental unfinished tasks" in p for p in problems)

    def test_slot_conservation_violation_is_flagged(self):
        refs = _instrumented_scheduler()
        board = refs["board"]
        # A slot claims to be busy that no application accounts for.
        board.slots[0].begin_reconfiguration()
        problems = check_scheduler(refs["scheduler"])
        assert any("slot conservation" in p for p in problems)

    def test_clock_regression_is_flagged(self):
        refs = _instrumented_scheduler()
        monitor = refs["monitor"]
        engine = refs["engine"]
        engine.now = 0.0  # rewind the clock behind the last observation
        monitor._check_clock("synthetic event")
        assert any(
            v.invariant == "clock-monotonicity" for v in monitor.violations
        )

    def test_unbalanced_resource_is_flagged(self):
        from repro.verify.invariants import check_quiescent

        refs = _instrumented_scheduler()
        core = refs["board"].ps.scheduler_core
        core.acquire()  # grant never released
        problems = check_quiescent(refs["engine"], refs["scheduler"])
        assert any("never released" in p for p in problems)
