"""Tests for the extension modules: RNG streams, plots, phased workloads,
PCAP fault injection, ablation flags, CLI, Algorithm-2 introspection."""

import pytest

from repro.apps import ApplicationInstance, BENCHMARKS, reset_instance_ids
from repro.cli import main as cli_main
from repro.config import DEFAULT_PARAMETERS
from repro.core import (
    VersaSlotBigLittle,
    dispatch_order,
    pending_pr_payloads,
    ready_task_queue,
)
from repro.fpga import BitstreamLibrary, BoardConfig, FPGABoard, PCAP, PRVerificationError, SlotKind
from repro.metrics import bar_chart, grouped_bar_chart, trace_plot
from repro.sim import Engine, SeededStreams
from repro.workloads import Phase, PhasedWorkload, poisson_sequence, ramp_workload


@pytest.fixture(autouse=True)
def _fresh_ids():
    reset_instance_ids()


class TestSeededStreams:
    def test_streams_deterministic(self):
        a = SeededStreams(7).stream("pcap")
        b = SeededStreams(7).stream("pcap")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_streams_independent(self):
        streams = SeededStreams(7)
        first = streams.stream("a").random()
        # Drawing from another stream must not perturb the first.
        fresh = SeededStreams(7)
        fresh.stream("b").random()
        assert fresh.stream("a").random() == first

    def test_stream_cached(self):
        streams = SeededStreams(1)
        assert streams.stream("x") is streams.stream("x")
        assert "x" in streams

    def test_spawn_deterministic(self):
        a = SeededStreams(7).spawn("child").stream("s").random()
        b = SeededStreams(7).spawn("child").stream("s").random()
        assert a == b


class TestPCAPFaultInjection:
    def _pcap(self, failure_rate, retries=3):
        engine = Engine()
        params = DEFAULT_PARAMETERS.with_overrides(
            pr_failure_rate=failure_rate, pr_max_retries=retries
        )
        pcap = PCAP(engine, params, seed=1)
        library = BitstreamLibrary(params)
        stream = library.register("t", SlotKind.LITTLE)
        return engine, pcap, stream

    def test_ideal_hardware_no_retries(self):
        engine, pcap, stream = self._pcap(0.0)

        def loader():
            yield from pcap.load(stream)

        engine.process(loader())
        engine.run()
        assert pcap.verification_retries == 0

    def test_failures_cost_retransfers(self):
        # Generous retry budget: this test exercises the retransfer
        # accounting, not the hard-failure path.
        engine, pcap, stream = self._pcap(0.3, retries=10)

        def loader():
            for _ in range(20):
                yield from pcap.load(stream)

        engine.process(loader())
        engine.run()
        assert pcap.verification_retries > 0
        # Each retry re-transfers the full bitstream.
        expected = (20 + pcap.verification_retries) * stream.load_time_ms(pcap.params)
        assert pcap.total_transfer_ms == pytest.approx(expected)

    def test_hard_failure_raises(self):
        engine, pcap, stream = self._pcap(1.0, retries=2)

        def loader():
            yield from pcap.load(stream)

        process = engine.process(loader())

        def watcher():
            try:
                yield process
            except PRVerificationError:
                return "failed"
            return "ok"

        watch = engine.process(watcher())
        engine.run()
        assert watch.value == "failed"

    def test_scheduler_survives_flaky_pcap(self):
        engine = Engine()
        params = DEFAULT_PARAMETERS.with_overrides(pr_failure_rate=0.2)
        board = FPGABoard(engine, BoardConfig.BIG_LITTLE, params)
        scheduler = VersaSlotBigLittle(board, params)
        scheduler.submit(ApplicationInstance(BENCHMARKS["IC"], 8, 0.0))
        scheduler.submit(ApplicationInstance(BENCHMARKS["OF"], 8, 0.0))
        engine.run(until=100_000_000)
        assert scheduler.stats.completions == 2


class TestPlots:
    def test_bar_chart_renders(self):
        text = bar_chart({"a": 2.0, "b": 4.0}, title="T", reference={"b": 3.0})
        assert "T" in text
        assert "paper: 3.00" in text
        assert text.count("█") > 0

    def test_bar_chart_validates(self):
        with pytest.raises(ValueError):
            bar_chart({})
        with pytest.raises(ValueError):
            bar_chart({"a": 0.0})
        with pytest.raises(ValueError):
            bar_chart({"a": 1.0}, width=2)

    def test_grouped_bar_chart(self):
        text = grouped_bar_chart({"g1": {"a": 1.0}, "g2": {"a": 2.0}})
        assert "[g1]" in text and "[g2]" in text

    def test_trace_plot_with_thresholds(self):
        text = trace_plot([0.01, 0.05, 0.12, 0.06], thresholds={"T1": 0.1})
        assert "T1" in text
        assert "#" in text

    def test_trace_plot_validates(self):
        with pytest.raises(ValueError):
            trace_plot([])
        with pytest.raises(ValueError):
            trace_plot([1.0], height=1)


class TestPhasedWorkloads:
    def test_phase_validation(self):
        with pytest.raises(ValueError):
            Phase(0, 10.0, 20.0)
        with pytest.raises(ValueError):
            Phase(5, 30.0, 20.0)

    def test_phased_workload_counts(self):
        workload = PhasedWorkload([Phase(5, 100.0, 200.0), Phase(3, 10.0, 20.0)], seed=1)
        arrivals = workload.generate()
        assert len(arrivals) == workload.total_apps == 8
        times = [a.time_ms for a in arrivals]
        assert times == sorted(times)

    def test_phased_workload_deterministic(self):
        phases = [Phase(6, 50.0, 100.0)]
        assert PhasedWorkload(phases, 3).generate() == PhasedWorkload(phases, 3).generate()

    def test_ramp_workload_shape(self):
        arrivals = ramp_workload(1, 30, relaxed_ms=(800.0, 1000.0), dense_ms=(100.0, 200.0))
        gaps = [b.time_ms - a.time_ms for a, b in zip(arrivals, arrivals[1:])]
        assert sum(gaps[10:19]) < sum(gaps[:9])

    def test_poisson_sequence(self):
        arrivals = poisson_sequence(1, 50, mean_interval_ms=100.0)
        assert len(arrivals) == 50
        gaps = [b.time_ms - a.time_ms for a, b in zip(arrivals, arrivals[1:])]
        assert 30.0 < sum(gaps) / len(gaps) < 300.0

    def test_poisson_validates(self):
        with pytest.raises(ValueError):
            poisson_sequence(1, 0, 100.0)
        with pytest.raises(ValueError):
            poisson_sequence(1, 5, 0.0)


class TestAblationFlags:
    def _run(self, **flags):
        engine = Engine()
        board = FPGABoard(engine, BoardConfig.BIG_LITTLE, DEFAULT_PARAMETERS)
        scheduler = VersaSlotBigLittle(board, DEFAULT_PARAMETERS, **flags)
        for name in ("IC", "AN", "OF", "3DR"):
            scheduler.submit(ApplicationInstance(BENCHMARKS[name], 12, 0.0))
        engine.run(until=100_000_000)
        assert scheduler.stats.completions == 4
        return scheduler

    def test_all_flag_combinations_complete(self):
        for rebinding in (True, False):
            for redistribution in (True, False):
                self._run(rebinding=rebinding, redistribution=redistribution)

    def test_defaults_enabled(self):
        engine = Engine()
        board = FPGABoard(engine, BoardConfig.BIG_LITTLE, DEFAULT_PARAMETERS)
        scheduler = VersaSlotBigLittle(board)
        assert scheduler.rebinding and scheduler.redistribution


class TestAlgorithm2Introspection:
    def _scheduler(self):
        engine = Engine()
        board = FPGABoard(engine, BoardConfig.BIG_LITTLE, DEFAULT_PARAMETERS)
        scheduler = VersaSlotBigLittle(board, DEFAULT_PARAMETERS)
        scheduler.submit(ApplicationInstance(BENCHMARKS["IC"], 10, 0.0))
        scheduler.submit(ApplicationInstance(BENCHMARKS["OF"], 10, 0.0))
        scheduler.submit(ApplicationInstance(BENCHMARKS["AN"], 10, 0.0))
        return engine, scheduler

    def test_ready_queue_orders_big_first(self):
        engine, scheduler = self._scheduler()
        engine.run(until=50.0)
        queue = ready_task_queue(scheduler)
        if queue:
            big_seen_after_little = False
            seen_little = False
            for app, payload in queue:
                if not app.in_big:
                    seen_little = True
                elif seen_little:
                    big_seen_after_little = True
            assert not big_seen_after_little

    def test_dispatch_order_prioritizes_big(self):
        engine, scheduler = self._scheduler()
        engine.run(until=50.0)
        order = dispatch_order(scheduler)
        kinds = [app.in_big for app in order]
        assert kinds == sorted(kinds, reverse=True)

    def test_pending_pr_payloads(self):
        engine, scheduler = self._scheduler()
        engine.run(until=50.0)
        pending = pending_pr_payloads(scheduler)
        assert isinstance(pending, list)


class TestCLI:
    def test_list(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "VersaSlot-BL" in out

    def test_fig7(self, capsys):
        assert cli_main(["fig7"]) == 0
        assert "42.2" in capsys.readouterr().out.replace("42.17", "42.2")

    def test_fig5_tiny(self, capsys):
        assert cli_main(["fig5", "--sequences", "1", "--apps", "4"]) == 0
        assert "VersaSlot-BL" in capsys.readouterr().out
