"""Unit tests for the structured tracer."""

from repro.sim import NULL_TRACER, TraceRecord, Tracer


class TestTracer:
    def test_emit_and_filter(self):
        tracer = Tracer()
        tracer.emit(1.0, "pr_done", payload="IC/t0")
        tracer.emit(2.0, "finish", app="IC#0")
        tracer.emit(3.0, "pr_done", payload="IC/t1")
        pr_events = list(tracer.filter("pr_done"))
        assert [record.time for record in pr_events] == [1.0, 3.0]
        assert pr_events[0]["payload"] == "IC/t0"

    def test_count(self):
        tracer = Tracer()
        tracer.emit(1.0, "a")
        tracer.emit(2.0, "a")
        tracer.emit(3.0, "b")
        assert tracer.count() == 3
        assert tracer.count("a") == 2
        assert tracer.count("missing") == 0

    def test_disabled_tracer_drops_everything(self):
        tracer = Tracer(enabled=False)
        tracer.emit(1.0, "a")
        assert tracer.count() == 0

    def test_null_tracer_is_disabled(self):
        NULL_TRACER.emit(1.0, "anything")
        assert NULL_TRACER.count() == 0

    def test_clear(self):
        tracer = Tracer()
        tracer.emit(1.0, "a")
        tracer.clear()
        assert tracer.count() == 0

    def test_record_is_frozen(self):
        record = TraceRecord(1.0, "a", {"k": "v"})
        assert record["k"] == "v"

    def test_scheduler_emits_lifecycle_events(self):
        from repro.apps import ApplicationInstance, BENCHMARKS, reset_instance_ids
        from repro.config import DEFAULT_PARAMETERS
        from repro.core import VersaSlotBigLittle
        from repro.fpga import BoardConfig, FPGABoard
        from repro.sim import Engine

        reset_instance_ids()
        engine = Engine()
        board = FPGABoard(engine, BoardConfig.BIG_LITTLE, DEFAULT_PARAMETERS)
        tracer = Tracer()
        scheduler = VersaSlotBigLittle(board, DEFAULT_PARAMETERS, tracer=tracer)
        scheduler.submit(ApplicationInstance(BENCHMARKS["IC"], 5, 0.0))
        engine.run(until=50_000_000)
        assert tracer.count("submit") == 1
        assert tracer.count("finish") == 1
        assert tracer.count("pr_plan") >= 2  # two bundles
        assert tracer.count("pr_done") == tracer.count("pr_plan")
