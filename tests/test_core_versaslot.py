"""Behavioural tests for the VersaSlot schedulers (OL and BL)."""

import pytest

from repro.apps import ApplicationInstance, BENCHMARKS, reset_instance_ids
from repro.config import DEFAULT_PARAMETERS
from repro.core import VersaSlotBigLittle, VersaSlotOnlyLittle, make_versaslot
from repro.fpga import BoardConfig, FPGABoard, SlotKind
from repro.schedulers import NimblockScheduler
from repro.schedulers.runtime import BundleRun
from repro.sim import Engine


@pytest.fixture(autouse=True)
def _fresh_ids():
    reset_instance_ids()


def run_with(scheduler_cls, config, specs, spacing_ms=0.0):
    engine = Engine()
    board = FPGABoard(engine, config, DEFAULT_PARAMETERS, name="vs")
    scheduler = scheduler_cls(board, DEFAULT_PARAMETERS)

    def driver():
        for index, (name, batch) in enumerate(specs):
            if index and spacing_ms:
                yield engine.timeout(spacing_ms)
            scheduler.submit(ApplicationInstance(BENCHMARKS[name], batch, engine.now))

    engine.process(driver())
    engine.run(until=100_000_000)
    return engine, board, scheduler


class TestVersaSlotOnlyLittle:
    def test_completes_workload(self):
        _, _, sched = run_with(
            VersaSlotOnlyLittle, BoardConfig.ONLY_LITTLE, [("IC", 10), ("OF", 8)]
        )
        assert sched.stats.completions == 2

    def test_dual_core_eliminates_launch_blocking(self):
        specs = [("IC", 20), ("AN", 20), ("OF", 20), ("LeNet", 20)]
        _, _, nim = run_with(NimblockScheduler, BoardConfig.ONLY_LITTLE, specs, 100.0)
        _, _, ol = run_with(VersaSlotOnlyLittle, BoardConfig.ONLY_LITTLE, specs, 100.0)
        assert ol.stats.launch_blocked < nim.stats.launch_blocked

    def test_dual_core_faster_under_load(self):
        specs = [("IC", 20), ("AN", 20), ("OF", 20), ("LeNet", 20), ("3DR", 20)]
        _, _, nim = run_with(NimblockScheduler, BoardConfig.ONLY_LITTLE, specs, 100.0)
        _, _, ol = run_with(VersaSlotOnlyLittle, BoardConfig.ONLY_LITTLE, specs, 100.0)
        nim_mean = sum(r.response_ms for r in nim.stats.responses) / 5
        ol_mean = sum(r.response_ms for r in ol.stats.responses) / 5
        assert ol_mean < nim_mean


class TestVersaSlotBigLittle:
    def test_requires_big_little_board(self):
        engine = Engine()
        board = FPGABoard(engine, BoardConfig.ONLY_LITTLE, DEFAULT_PARAMETERS)
        with pytest.raises(ValueError, match="Big.Little"):
            VersaSlotBigLittle(board)

    def test_completes_workload(self):
        _, _, sched = run_with(
            VersaSlotBigLittle, BoardConfig.BIG_LITTLE, [("IC", 10), ("OF", 8), ("3DR", 6)]
        )
        assert sched.stats.completions == 3

    def test_bundleable_app_uses_big_slots(self):
        engine = Engine()
        board = FPGABoard(engine, BoardConfig.BIG_LITTLE, DEFAULT_PARAMETERS)
        scheduler = VersaSlotBigLittle(board, DEFAULT_PARAMETERS)
        scheduler.submit(ApplicationInstance(BENCHMARKS["IC"], 10, 0.0))
        engine.run(until=500.0)
        app = scheduler.apps[0]
        assert app.in_big
        assert app.used_big >= 1
        assert app.used_little == 0

    def test_fewer_prs_than_only_little(self):
        specs = [("IC", 15), ("AN", 15), ("OF", 15)]
        _, _, ol = run_with(VersaSlotOnlyLittle, BoardConfig.ONLY_LITTLE, specs, 200.0)
        _, _, bl = run_with(VersaSlotBigLittle, BoardConfig.BIG_LITTLE, specs, 200.0)
        assert bl.stats.pr_count < ol.stats.pr_count

    def test_bundle_runs_created(self):
        engine = Engine()
        board = FPGABoard(engine, BoardConfig.BIG_LITTLE, DEFAULT_PARAMETERS)
        scheduler = VersaSlotBigLittle(board, DEFAULT_PARAMETERS)
        scheduler.submit(ApplicationInstance(BENCHMARKS["3DR"], 8, 0.0))
        engine.run(until=400.0)
        app = scheduler.apps[0]
        assert any(isinstance(run, BundleRun) for run in app.loaded.values())

    def test_big_bound_app_finishes_entirely_in_big(self):
        engine = Engine()
        board = FPGABoard(engine, BoardConfig.BIG_LITTLE, DEFAULT_PARAMETERS)
        scheduler = VersaSlotBigLittle(board, DEFAULT_PARAMETERS)
        scheduler.submit(ApplicationInstance(BENCHMARKS["OF"], 10, 0.0))
        used_little = []

        def watcher():
            while scheduler.stats.completions < 1:
                yield engine.timeout(100.0)
                used_little.append(scheduler.apps[0].used_little)

        engine.process(watcher())
        engine.run(until=100_000_000)
        assert scheduler.stats.completions == 1
        assert all(u == 0 for u in used_little)

    def test_overflow_apps_use_little_slots(self):
        engine = Engine()
        board = FPGABoard(engine, BoardConfig.BIG_LITTLE, DEFAULT_PARAMETERS)
        scheduler = VersaSlotBigLittle(board, DEFAULT_PARAMETERS)
        for name in ("IC", "AN", "OF", "LeNet"):
            scheduler.submit(ApplicationInstance(BENCHMARKS[name], 15, 0.0))
        engine.run(until=1500.0)
        little_users = [a for a in scheduler.apps if a.used_little > 0]
        big_users = [a for a in scheduler.apps if a.used_big > 0]
        assert big_users and little_users

    def test_serial_parallel_choice_follows_criterion(self):
        from repro.core.bundling import serial_preferred

        engine = Engine()
        board = FPGABoard(engine, BoardConfig.BIG_LITTLE, DEFAULT_PARAMETERS)
        scheduler = VersaSlotBigLittle(board, DEFAULT_PARAMETERS)
        app_run = scheduler.submit(ApplicationInstance(BENCHMARKS["IC"], 2, 0.0))
        bundle = BENCHMARKS["IC"].bundles[0]
        expected = serial_preferred(BENCHMARKS["IC"].bundle_exec_times(bundle), 2)
        assert scheduler.choose_serial_bundle(app_run, bundle) == expected


class TestFactory:
    def test_make_versaslot_matches_board(self):
        engine = Engine()
        ol_board = FPGABoard(engine, BoardConfig.ONLY_LITTLE, DEFAULT_PARAMETERS)
        bl_board = FPGABoard(engine, BoardConfig.BIG_LITTLE, DEFAULT_PARAMETERS)
        assert isinstance(make_versaslot(ol_board), VersaSlotOnlyLittle)
        assert isinstance(make_versaslot(bl_board), VersaSlotBigLittle)
