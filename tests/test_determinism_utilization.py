"""Determinism guarantees and utilization-tracker unit tests."""

import pytest

from repro.apps import ApplicationInstance, BENCHMARKS, reset_instance_ids
from repro.config import DEFAULT_PARAMETERS
from repro.experiments.runner import SYSTEMS, run_sequence
from repro.fpga import BoardConfig, FPGABoard, ResourceVector, SlotOccupancy
from repro.metrics import UtilizationTracker
from repro.sim import Engine
from repro.workloads import Condition, WorkloadGenerator


@pytest.fixture(autouse=True)
def _fresh_ids():
    reset_instance_ids()


class TestDeterminism:
    """Bit-identical replays are what make the figure benches meaningful."""

    @pytest.mark.parametrize("system", list(SYSTEMS))
    def test_identical_replay_per_system(self, system):
        arrivals = WorkloadGenerator(21).sequence(Condition.STRESS, n_apps=8)
        first = run_sequence(system, arrivals)
        second = run_sequence(system, arrivals)
        assert first.responses.samples_ms == second.responses.samples_ms
        assert first.stats.pr_count == second.stats.pr_count
        assert first.stats.preemptions == second.stats.preemptions

    def test_workload_generation_stable_across_conditions(self):
        for condition in Condition:
            a = WorkloadGenerator(5).sequence(condition, n_apps=12)
            b = WorkloadGenerator(5).sequence(condition, n_apps=12)
            assert a == b

    def test_fig8_replay(self):
        from repro.experiments.fig8 import long_workload

        assert long_workload(9, 20) == long_workload(9, 20)


class TestBackendEquivalence:
    """Serial and parallel campaign backends must be bit-identical."""

    def _scenario(self):
        from repro.campaign import Scenario
        from repro.workloads import WorkloadSpec

        return Scenario(
            name="equivalence",
            workload=WorkloadSpec(Condition.STRESS, n_apps=6, sequence_count=2),
            systems=("Nimblock", "VersaSlot-BL"),
            seeds=(21,),
        )

    def test_parallel_matches_serial_bitwise(self):
        from repro.campaign import CampaignRunner, ProcessBackend

        serial = CampaignRunner(jobs=1).run(self._scenario())
        parallel = CampaignRunner(backend=ProcessBackend(jobs=2)).run(
            self._scenario()
        )
        assert len(serial) == len(parallel) == 4
        for a, b in zip(serial, parallel):
            assert a.system == b.system
            assert a.response_times_ms == b.response_times_ms
            assert a.counters == b.counters
            assert a.makespan_ms == b.makespan_ms
            assert a.to_dict() == b.to_dict()

    def test_parallel_run_matrix_matches_serial(self):
        from repro.experiments.runner import run_matrix

        sequences = [
            WorkloadGenerator(3).sequence(Condition.STRESS, n_apps=5),
            WorkloadGenerator(4).sequence(Condition.STANDARD, n_apps=5),
        ]
        serial = run_matrix(sequences, systems=["Nimblock", "VersaSlot-OL"])
        parallel = run_matrix(
            sequences, systems=["Nimblock", "VersaSlot-OL"], jobs=2
        )
        for system, runs in serial.items():
            for a, b in zip(runs, parallel[system]):
                assert a.responses.samples_ms == b.responses.samples_ms
                assert a.stats.pr_count == b.stats.pr_count


class TestUtilizationTracker:
    def _tracked_board(self):
        engine = Engine()
        board = FPGABoard(engine, BoardConfig.ONLY_LITTLE, DEFAULT_PARAMETERS)
        tracker = UtilizationTracker(board)
        return engine, board, tracker

    def test_empty_board_zero(self):
        engine, board, tracker = self._tracked_board()
        engine.timeout(100.0)
        engine.run()
        assert tracker.mean_occupied_utilization() == ResourceVector.zero()
        assert tracker.mean_fabric_utilization() == ResourceVector.zero()

    def test_single_occupancy_fraction(self):
        engine, board, tracker = self._tracked_board()
        slot = board.slots[0]
        slot.begin_reconfiguration()
        slot.complete_reconfiguration(SlotOccupancy("t", 1, ResourceVector(0.5, 0.4)))
        engine.timeout(100.0)
        engine.run()
        occupied = tracker.mean_occupied_utilization()
        assert occupied.lut == pytest.approx(0.5)
        assert occupied.ff == pytest.approx(0.4)
        fabric = tracker.mean_fabric_utilization()
        assert fabric.lut == pytest.approx(0.5 / 8.0)

    def test_time_weighting(self):
        engine, board, tracker = self._tracked_board()
        slot = board.slots[0]

        def scenario():
            slot.begin_reconfiguration()
            slot.complete_reconfiguration(
                SlotOccupancy("t", 1, ResourceVector(0.8, 0.8))
            )
            yield engine.timeout(50.0)
            slot.release()
            yield engine.timeout(50.0)

        engine.process(scenario())
        engine.run()
        # Occupied half the time at 0.8 -> fabric mean = 0.8/8/2
        fabric = tracker.mean_fabric_utilization()
        assert fabric.lut == pytest.approx(0.8 / 8.0 / 2.0)
        # Occupied-slot mean only counts occupied intervals.
        occupied = tracker.mean_occupied_utilization()
        assert occupied.lut == pytest.approx(0.8)

    def test_simulated_run_utilization_in_unit_range(self):
        engine = Engine()
        board = FPGABoard(engine, BoardConfig.BIG_LITTLE, DEFAULT_PARAMETERS)
        tracker = UtilizationTracker(board)
        from repro.core import VersaSlotBigLittle

        scheduler = VersaSlotBigLittle(board, DEFAULT_PARAMETERS)
        scheduler.submit(ApplicationInstance(BENCHMARKS["AN"], 10, 0.0))
        engine.run(until=50_000_000)
        occupied = tracker.mean_occupied_utilization()
        assert 0.0 < occupied.lut <= 1.0
        assert 0.0 < occupied.ff <= 1.0


class TestMigrationDrain:
    def test_source_board_fully_drains_after_switch(self):
        from repro.cluster import FPGACluster
        from repro.core import make_versaslot
        from repro.workloads import Arrival, drive

        engine = Engine()
        cluster = FPGACluster(
            engine,
            scheduler_factory=lambda b, p, t: make_versaslot(b, p, t),
            params=DEFAULT_PARAMETERS,
        )
        arrivals = [Arrival("OF", 20, float(i * 50)) for i in range(6)]
        engine.process(drive(engine, cluster, arrivals))

        def switch_mid():
            yield engine.timeout(800.0)
            cluster.request_switch(BoardConfig.BIG_LITTLE)

        engine.process(switch_mid())
        engine.run(until=400_000_000)
        assert cluster.is_drained
        source = cluster.schedulers[0]
        assert source.is_drained
        assert all(slot.is_idle for slot in source.board.slots)
        # Every application finished exactly once across the cluster.
        assert len(cluster.responses) == len(arrivals)
        finished_ids = [record.inst.app_id for record in cluster.responses]
        assert len(finished_ids) == len(set(finished_ids))
