"""Tests for workload generation, traces, and the metrics layer."""

import pytest

from repro.apps import BENCHMARKS
from repro.fpga import ResourceVector
from repro.metrics import (
    ResponseStats,
    bundling_gain,
    format_series,
    format_table,
    geometric_mean,
    ic_detail,
    relative_reduction,
    relative_tail,
    sparkline,
    summarize_runs,
)
from repro.workloads import (
    Arrival,
    BATCH_RANGE,
    Condition,
    WorkloadGenerator,
    dumps,
    loads,
    total_work_ms,
)


class TestWorkloadGenerator:
    def test_sequence_length_and_fields(self):
        arrivals = WorkloadGenerator(1).sequence(Condition.STANDARD, n_apps=20)
        assert len(arrivals) == 20
        for arrival in arrivals:
            assert arrival.app_name in BENCHMARKS
            assert BATCH_RANGE[0] <= arrival.batch_size <= BATCH_RANGE[1]

    def test_arrival_times_monotone(self):
        arrivals = WorkloadGenerator(2).sequence(Condition.STRESS)
        times = [a.time_ms for a in arrivals]
        assert times == sorted(times)
        assert times[0] == 0.0

    def test_interval_ranges_respected(self):
        for condition in Condition:
            arrivals = WorkloadGenerator(3).sequence(condition, n_apps=50)
            lo, hi = condition.interval_range
            gaps = [b.time_ms - a.time_ms for a, b in zip(arrivals, arrivals[1:])]
            assert all(lo - 1e-9 <= g <= hi + 1e-9 for g in gaps)

    def test_seeded_determinism(self):
        a = WorkloadGenerator(7).sequence(Condition.STANDARD)
        b = WorkloadGenerator(7).sequence(Condition.STANDARD)
        assert a == b

    def test_different_seeds_differ(self):
        a = WorkloadGenerator(7).sequence(Condition.STANDARD)
        b = WorkloadGenerator(8).sequence(Condition.STANDARD)
        assert a != b

    def test_sequences_are_independent(self):
        seqs = WorkloadGenerator(1).sequences(Condition.STANDARD, count=3)
        assert len(seqs) == 3
        assert seqs[0] != seqs[1]

    def test_unknown_app_rejected(self):
        with pytest.raises(KeyError):
            WorkloadGenerator(1, apps=["nope"])

    def test_bad_args_rejected(self):
        with pytest.raises(ValueError):
            WorkloadGenerator(1).sequence(Condition.LOOSE, n_apps=0)
        with pytest.raises(ValueError):
            WorkloadGenerator(1).sequence(Condition.LOOSE, batch_range=(0, 5))

    def test_total_work_positive(self):
        arrivals = WorkloadGenerator(1).sequence(Condition.LOOSE, n_apps=5)
        assert total_work_ms(arrivals) > 0


class TestTraceFormat:
    def test_roundtrip(self):
        arrivals = WorkloadGenerator(5).sequence(Condition.STRESS, n_apps=10)
        assert loads(dumps(arrivals)) == arrivals

    def test_bad_header_rejected(self):
        with pytest.raises(ValueError, match="trace"):
            loads("time app batch\n1.0 IC 5")

    def test_bad_line_rejected(self):
        with pytest.raises(ValueError, match="line 2"):
            loads("# versaslot-trace v1\n1.0 IC")

    def test_decreasing_time_rejected(self):
        text = "# versaslot-trace v1\n5.0 IC 5\n1.0 AN 5"
        with pytest.raises(ValueError, match="non-decreasing"):
            loads(text)

    def test_file_roundtrip(self, tmp_path):
        from repro.workloads import load, save

        arrivals = WorkloadGenerator(5).sequence(Condition.LOOSE, n_apps=4)
        path = tmp_path / "trace.txt"
        save(arrivals, path)
        assert load(path) == arrivals


class TestResponseStats:
    def test_mean_and_percentiles(self):
        stats = ResponseStats()
        stats.extend(float(i) for i in range(1, 101))
        assert stats.mean() == pytest.approx(50.5)
        assert stats.p95() == pytest.approx(95.05, abs=0.1)
        assert stats.p99() == pytest.approx(99.01, abs=0.1)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ResponseStats().extend([-1.0])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            ResponseStats().mean()

    def test_percentile_range_validated(self):
        stats = ResponseStats([1.0])
        with pytest.raises(ValueError):
            stats.percentile(150.0)

    def test_relative_reduction(self):
        base = ResponseStats([100.0, 100.0])
        system = ResponseStats([50.0, 50.0])
        assert relative_reduction(base, system) == pytest.approx(2.0)

    def test_relative_tail(self):
        base = ResponseStats(list(map(float, range(1, 101))))
        system = ResponseStats([v / 2 for v in base.samples_ms])
        assert relative_tail(base, system, 95.0) == pytest.approx(0.5)

    def test_summarize_runs(self):
        runs = [ResponseStats([10.0, 20.0]), ResponseStats([30.0, 40.0])]
        summary = summarize_runs(runs)
        assert summary["mean_ms"] == pytest.approx(25.0)
        assert summary["samples"] == 4.0

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            geometric_mean([1.0, -1.0])
        with pytest.raises(ValueError):
            geometric_mean([])


class TestNumpyFreeParity:
    """The pure-python mean/percentile fallbacks must be bit-identical
    to numpy's (the fig5 golden pins exact floats and the no-numpy CI
    job runs the same golden).  Sizes straddle numpy's pairwise-sum
    regimes: plain loop (<8), 8-way unrolled block (<=128), recursive
    halving (>128)."""

    def test_fallback_matches_numpy_bit_exact(self, monkeypatch):
        np = pytest.importorskip("numpy")
        import random as random_module

        import repro.metrics.response as response

        rng = random_module.Random("metrics-parity")
        cases = []
        for n in (1, 2, 7, 8, 9, 100, 127, 128, 129, 300, 1000):
            values = [rng.uniform(0.0, 1e4) for _ in range(n)]
            expected_mean = float(np.mean(values))
            expected_pcts = {
                q: float(np.percentile(values, q))
                for q in (0.0, 37.5, 95.0, 99.0, 100.0)
            }
            cases.append((values, expected_mean, expected_pcts))
        monkeypatch.setattr(response, "np", None)
        for values, expected_mean, expected_pcts in cases:
            stats = ResponseStats(list(values))
            assert stats.mean() == expected_mean
            for q, expected in expected_pcts.items():
                assert stats.percentile(q) == expected


class TestUtilizationMetrics:
    def test_bundling_gain_matches_tables(self):
        gain = bundling_gain(BENCHMARKS["IC"])
        assert gain.lut_increase_pct == pytest.approx(42.2, abs=0.3)
        assert gain.ff_increase_pct == pytest.approx(48.0, abs=0.3)

    def test_bundling_gain_requires_bundles(self):
        from repro.apps import ApplicationSpec, TaskSpec

        plain = ApplicationSpec(
            "p", tuple(TaskSpec(f"t{i}", i, 5.0, ResourceVector(0.5, 0.5)) for i in range(2))
        )
        with pytest.raises(ValueError):
            bundling_gain(plain)

    def test_ic_detail(self):
        tasks, mean, bundle = ic_detail(BENCHMARKS["IC"])
        assert tasks == [0.57, 0.38, 0.28]
        assert mean == pytest.approx(0.41, abs=0.005)
        assert bundle == pytest.approx(0.60)


class TestReporting:
    def test_format_table_alignment(self):
        table = format_table(["a", "bb"], [[1, 2.5], [10, 20.25]], title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "2.50" in table
        assert "20.25" in table

    def test_format_table_validates_rows(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_format_series_with_reference(self):
        text = format_series("S", {"x": 2.0}, reference={"x": 3.0})
        assert "paper: 3.00" in text

    def test_sparkline_bounds(self):
        line = sparkline([0.0, 0.5, 1.0])
        assert len(line) == 3
        assert sparkline([]) == ""

    def test_sparkline_downsamples(self):
        line = sparkline(list(range(200)), width=50)
        assert len(line) == 50
