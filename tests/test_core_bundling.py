"""Unit tests for 3-in-1 bundling: criterion, timing models, tiling."""

import pytest

from repro.core.bundling import (
    bundle_tiling,
    idle_subslot_cycles,
    parallel_time_ms,
    serial_preferred,
    serial_time_ms,
)


class TestTimingModels:
    def test_parallel_time(self):
        # 3 stages, Tmax=10, B=5 -> 10 * (5 + 2)
        assert parallel_time_ms([10.0, 5.0, 8.0], 5) == pytest.approx(70.0)

    def test_serial_time(self):
        assert serial_time_ms([10.0, 5.0, 8.0], 5) == pytest.approx(115.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            parallel_time_ms([], 5)
        with pytest.raises(ValueError):
            serial_time_ms([1.0, -2.0, 3.0], 5)
        with pytest.raises(ValueError):
            serial_preferred([1.0, 2.0, 3.0], 0)


class TestCriterion:
    def test_balanced_tasks_prefer_parallel(self):
        # equal stage times: parallel strictly dominates for B >= 2
        assert not serial_preferred([10.0, 10.0, 10.0], 10)

    def test_skewed_tasks_small_batch_prefer_serial(self):
        # one dominant stage, tiny batch: pipeline fill not amortized
        assert serial_preferred([30.0, 1.0, 1.0], 1)

    def test_crossover_matches_paper_formula(self):
        times = [20.0, 5.0, 5.0]
        for batch in range(1, 40):
            parallel = max(times) * (batch + 2)
            serial = sum(times) * batch
            assert serial_preferred(times, batch) == (parallel > serial)

    def test_single_item_batch(self):
        # B=1 with skewed members: the pipeline fill dominates, serial wins.
        assert serial_preferred([10.0, 1.0, 1.0], 1)
        # Perfectly balanced members tie (criterion is strict), so parallel.
        assert not serial_preferred([10.0, 10.0, 10.0], 1)


class TestIdleCycles:
    def test_balanced_bundle_no_idle(self):
        assert idle_subslot_cycles([10.0, 10.0, 10.0], 5) == pytest.approx(0.0)

    def test_skew_creates_idle(self):
        idle = idle_subslot_cycles([10.0, 5.0, 5.0], 5)
        assert idle == pytest.approx((5.0 + 5.0) * 7)

    def test_grows_with_bundle_size(self):
        small = idle_subslot_cycles([10.0, 5.0, 5.0], 10)
        large = idle_subslot_cycles([10.0, 5.0, 5.0, 5.0], 10)
        assert large > small


class TestTiling:
    def test_exact_tiling(self):
        assert bundle_tiling(6) == [(0, 1, 2), (3, 4, 5)]
        assert bundle_tiling(9) == [(0, 1, 2), (3, 4, 5), (6, 7, 8)]

    def test_untileable_rejected(self):
        with pytest.raises(ValueError):
            bundle_tiling(7)

    def test_other_bundle_sizes(self):
        assert bundle_tiling(6, bundle_size=2) == [(0, 1), (2, 3), (4, 5)]

    def test_bad_size_rejected(self):
        with pytest.raises(ValueError):
            bundle_tiling(6, bundle_size=0)
