"""Regression tests for the cross-process determinism bugs.

Two bugs made "deterministic" state silently process-local:

* ``SeededStreams.spawn`` derived child seeds from the builtin ``hash()``,
  which is salted by ``PYTHONHASHSEED`` — two worker processes spawning
  the same child name drew *different* streams;
* ``ApplicationSpec._bundle_times`` was keyed by ``id(bundle)``, so a spec
  pickled into a multiprocessing worker missed its cache on every
  scheduling-hot-path lookup (and silently recomputed).

Both now derive from process-independent identities (SHA-256 digest,
bundle index); these tests pin that across real process boundaries.
"""

import os
import pickle
import subprocess
import sys
from pathlib import Path

import pytest

from repro.apps.benchmarks import BENCHMARKS
from repro.config import DEFAULT_PARAMETERS
from repro.fpga.board import FPGABoard
from repro.fpga.slots import BoardConfig
from repro.sim import Engine, Resource, SeededStreams, derive_seed
from repro.verify.invariants import check_resources

SRC = str(Path(__file__).resolve().parent.parent / "src")


# ----------------------------------------------------------------------
# SeededStreams.spawn across interpreter processes
# ----------------------------------------------------------------------
class TestSpawnDeterminism:
    def _spawned_samples(self, hashseed: str) -> str:
        """First draws of a spawned family, from a fresh interpreter."""
        script = (
            "from repro.sim import SeededStreams\n"
            "child = SeededStreams(7).spawn('worker')\n"
            "print(child.root_seed)\n"
            "print([round(child.stream('pcap').random(), 12) for _ in range(4)])\n"
            "print([child.stream('partition').randrange(1000) for _ in range(4)])\n"
        )
        env = dict(os.environ, PYTHONHASHSEED=hashseed, PYTHONPATH=SRC)
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, env=env, check=True,
        )
        return result.stdout

    def test_spawn_identical_across_hash_seeds(self):
        """The regression: hash() derivation diverged between processes
        with different PYTHONHASHSEED; the digest derivation must not."""
        outputs = {seed: self._spawned_samples(seed) for seed in ("0", "4242", "random")}
        assert outputs["0"] == outputs["4242"] == outputs["random"]

    def test_subprocess_matches_in_process_streams(self):
        child = SeededStreams(7).spawn("worker")
        expected = (
            f"{child.root_seed}\n"
            f"{[round(child.stream('pcap').random(), 12) for _ in range(4)]}\n"
            f"{[child.stream('partition').randrange(1000) for _ in range(4)]}\n"
        )
        assert self._spawned_samples("random") == expected

    def test_derive_seed_is_pinned(self):
        """Freeze the digest scheme: changing it would invalidate every
        persisted fleet/campaign artifact derived from spawned streams."""
        assert derive_seed(7, "worker") == 1702380594
        assert derive_seed("7/worker", "x") != derive_seed("7/worker", "y")
        assert 0 <= derive_seed(0, "") <= 0x7FFFFFFF

    def test_spawn_chains_are_stable(self):
        a = SeededStreams(1).spawn("fleet-router").spawn("shard3")
        b = SeededStreams(1).spawn("fleet-router").spawn("shard3")
        assert a.root_seed == b.root_seed
        assert a.stream("p2c").random() == b.stream("p2c").random()


# ----------------------------------------------------------------------
# ApplicationSpec bundle-times cache across pickling
# ----------------------------------------------------------------------
class TestBundleTimesCache:
    @pytest.fixture
    def spec(self):
        spec = BENCHMARKS["IC"]
        assert spec.can_bundle
        return spec

    def test_cache_hit_returns_precomputed_tuple(self, spec):
        bundle = spec.bundles[0]
        times = spec.bundle_exec_times(bundle)
        assert times == tuple(spec.tasks[i].exec_time_ms for i in bundle.task_indices)
        # Identity, not equality: a recompute would allocate a new tuple.
        assert times is spec._bundle_times[bundle.index]

    def test_cache_survives_pickle_round_trip(self, spec):
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        for bundle in clone.bundles:
            times = clone.bundle_exec_times(bundle)
            # The regression: the id()-keyed cache went stale across the
            # pickle boundary and every lookup silently recomputed.
            assert times is clone._bundle_times[bundle.index]
            assert times == spec.bundle_exec_times(spec.bundles[bundle.index])

    def test_unpickled_spec_serves_original_bundles(self, spec):
        """Equal-but-not-identical bundles (the worker case) still hit."""
        clone = pickle.loads(pickle.dumps(spec))
        times = clone.bundle_exec_times(spec.bundles[0])
        assert times is clone._bundle_times[0]

    def test_foreign_bundle_is_loudly_rejected(self, spec):
        other = BENCHMARKS["AN"]
        assert other.can_bundle
        foreign = other.bundles[0]
        with pytest.raises(ValueError, match="does not belong"):
            spec.bundle_exec_times(foreign)


# ----------------------------------------------------------------------
# Resource._abandon reporting
# ----------------------------------------------------------------------
def _holder(engine, resource, duration):
    request = resource.acquire()
    yield request
    yield engine.timeout(duration)
    resource.release()


class TestAbandonReporting:
    def test_cancel_while_waiting_is_counted(self):
        engine = Engine()
        resource = Resource(engine, capacity=1, name="core")
        engine.process(_holder(engine, resource, 10.0))
        engine.run(until=1.0)
        waiting = resource.acquire()
        assert resource.queue_length == 1
        waiting.cancel()
        assert resource.queue_length == 0
        assert resource.total_abandoned == 1
        assert resource.abandon_misses == 0
        engine.run()
        assert resource.in_use == 0

    def test_missing_waiter_is_reported_not_swallowed(self):
        engine = Engine()
        resource = Resource(engine, capacity=1, name="core")
        engine.process(_holder(engine, resource, 10.0))
        engine.run(until=1.0)
        waiting = resource.acquire()
        resource._abandon(waiting)       # legitimate removal
        resource._abandon(waiting)       # stale: no longer held
        assert resource.total_abandoned == 1
        assert resource.abandon_misses == 1

    def test_invariant_layer_flags_abandon_misses(self):
        engine = Engine()
        board = FPGABoard(engine, BoardConfig.ONLY_LITTLE, DEFAULT_PARAMETERS)
        assert check_resources(board) == []
        board.ps.cores[0].abandon_misses = 2
        problems = check_resources(board)
        assert any("not holding" in problem for problem in problems)
