"""Crash torture for the SQLite recorder: SIGKILL mid-batch-append.

A writer subprocess appends fixed-size batches to a SQLite store while
the parent SIGKILLs it at randomized (seeded) points.  After every kill
the reopened store must show a *clean prefix*: dense notification ids,
a whole number of batches (batch appends are one transaction — a kill
can lose the in-flight batch, never tear it), and payloads exactly
matching the expected sequence.  The writer is then relaunched until it
completes, and the final log must be identical to an uninterrupted run's.
"""

import os
import random
import signal
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import pytest

from repro.store import open_store

BATCH = 7
TOTAL_BATCHES = 400

#: The torture writer: resumes from the store's own high-water mark, so
#: relaunching after a kill continues instead of duplicating batches.
WRITER = textwrap.dedent(
    """
    import sys
    import time

    from repro.store import open_store

    path, total_batches, batch = sys.argv[1], int(sys.argv[2]), int(sys.argv[3])
    store = open_store(path, backend="sqlite")
    done = store.max_id() // batch
    for index in range(done, total_batches):
        store.recorder.append(
            [("record", {"batch": index, "item": item})
             for item in range(batch)]
        )
        time.sleep(0.001)
    store.close()
    print("WRITER-DONE", flush=True)
    """
)


def _expected_payloads(batches):
    return [
        {"batch": index, "item": item}
        for index in range(batches)
        for item in range(BATCH)
    ]


def _assert_clean_prefix(path: Path):
    """Dense ids, whole batches, payloads matching the expected prefix."""
    with open_store(path, backend="sqlite") as store:
        notifications = store.select()
        ids = [n.id for n in notifications]
        assert ids == list(range(1, len(ids) + 1))
        assert len(ids) % BATCH == 0, (
            "a SIGKILL mid-append tore a transactional batch"
        )
        payloads = [n.payload for n in notifications]
        assert payloads == _expected_payloads(len(ids) // BATCH)
    return len(ids) // BATCH


@pytest.mark.parametrize("seed", (0, 1))
def test_sigkill_mid_append_leaves_a_clean_resumable_log(tmp_path, seed):
    rng = random.Random(seed)
    script = tmp_path / "writer.py"
    script.write_text(WRITER)
    path = tmp_path / "torture.sqlite"
    env = dict(os.environ)
    repo_src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = repo_src + os.pathsep + env.get("PYTHONPATH", "")

    def launch():
        return subprocess.Popen(
            [sys.executable, str(script), str(path),
             str(TOTAL_BATCHES), str(BATCH)],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True,
        )

    kills = 0
    completed = False
    for _ in range(25):  # far more attempts than kills we want
        writer = launch()
        if kills < 3:
            # kill at a randomized boundary while batches are in flight
            time.sleep(rng.uniform(0.02, 0.20))
            if writer.poll() is None:
                writer.send_signal(signal.SIGKILL)
                writer.wait(timeout=30)
                kills += 1
                _assert_clean_prefix(path)
                continue
        out, err = writer.communicate(timeout=120)
        assert writer.returncode == 0, err
        assert "WRITER-DONE" in out
        completed = True
        break
    assert completed, "torture writer never ran to completion"
    assert kills >= 1, "no kill landed mid-run; torture exercised nothing"

    # resumed-to-completion log == an uninterrupted run's log
    batches = _assert_clean_prefix(path)
    assert batches == TOTAL_BATCHES
    clean = tmp_path / "clean.sqlite"
    done = subprocess.run(
        [sys.executable, str(script), str(clean),
         str(TOTAL_BATCHES), str(BATCH)],
        env=env, capture_output=True, text=True, timeout=120,
    )
    assert done.returncode == 0, done.stderr
    with open_store(path, backend="sqlite") as tortured, \
            open_store(clean, backend="sqlite") as reference:
        assert [(n.id, n.kind, n.payload) for n in tortured.select()] == \
            [(n.id, n.kind, n.payload) for n in reference.select()]
