"""Unit tests for Resource and Store primitives."""

import pytest

from repro.sim import Engine, Resource, Store


@pytest.fixture
def engine():
    return Engine()


def hold(engine, resource, duration, log, tag):
    request = resource.acquire()
    yield request
    log.append(("acquired", tag, engine.now))
    yield engine.timeout(duration)
    resource.release()
    log.append(("released", tag, engine.now))


class TestResource:
    def test_capacity_validated(self, engine):
        with pytest.raises(ValueError):
            Resource(engine, capacity=0)

    def test_immediate_grant_when_free(self, engine):
        resource = Resource(engine, capacity=1)
        log = []
        engine.process(hold(engine, resource, 5.0, log, "a"))
        engine.run()
        assert log[0] == ("acquired", "a", 0.0)

    def test_fifo_queueing(self, engine):
        resource = Resource(engine, capacity=1)
        log = []
        for tag in ("a", "b", "c"):
            engine.process(hold(engine, resource, 10.0, log, tag))
        engine.run()
        acquisitions = [(tag, t) for kind, tag, t in log if kind == "acquired"]
        assert acquisitions == [("a", 0.0), ("b", 10.0), ("c", 20.0)]

    def test_capacity_two_runs_concurrently(self, engine):
        resource = Resource(engine, capacity=2)
        log = []
        for tag in ("a", "b", "c"):
            engine.process(hold(engine, resource, 10.0, log, tag))
        engine.run()
        acquisitions = [(tag, t) for kind, tag, t in log if kind == "acquired"]
        assert acquisitions == [("a", 0.0), ("b", 0.0), ("c", 10.0)]

    def test_release_when_idle_raises(self, engine):
        resource = Resource(engine, capacity=1)
        with pytest.raises(RuntimeError):
            resource.release()

    def test_available_and_queue_length(self, engine):
        resource = Resource(engine, capacity=1)
        log = []
        engine.process(hold(engine, resource, 10.0, log, "a"))
        engine.process(hold(engine, resource, 10.0, log, "b"))
        engine.run(until=5.0)
        assert resource.available == 0
        assert resource.queue_length == 1
        engine.run()
        assert resource.available == 1
        assert resource.queue_length == 0

    def test_cancelled_request_skipped(self, engine):
        resource = Resource(engine, capacity=1)
        log = []
        engine.process(hold(engine, resource, 10.0, log, "a"))
        engine.run(until=1.0)
        doomed = resource.acquire()
        engine.process(hold(engine, resource, 5.0, log, "c"))
        doomed.cancel()
        engine.run()
        acquired = [tag for kind, tag, _ in log if kind == "acquired"]
        assert acquired == ["a", "c"]

    def test_cancel_granted_request_releases(self, engine):
        resource = Resource(engine, capacity=1)
        request = resource.acquire()
        engine.run()
        assert resource.in_use == 1
        request.cancel()
        assert resource.in_use == 0

    def test_wait_time_accounting(self, engine):
        resource = Resource(engine, capacity=1)
        log = []
        engine.process(hold(engine, resource, 10.0, log, "a"))
        engine.process(hold(engine, resource, 10.0, log, "b"))
        engine.run()
        assert resource.total_grants == 2
        assert resource.total_wait_time == pytest.approx(10.0)

    def test_busy_fraction(self, engine):
        resource = Resource(engine, capacity=1)
        log = []
        engine.process(hold(engine, resource, 25.0, log, "a"))
        engine.run(until=100.0)
        assert resource.busy_fraction() == pytest.approx(0.25)

    def test_busy_fraction_zero_time(self, engine):
        assert Resource(engine).busy_fraction() == 0.0


class TestStore:
    def test_put_then_get(self, engine):
        store = Store(engine)
        store.put("item")
        results = []

        def getter():
            value = yield store.get()
            results.append(value)

        engine.process(getter())
        engine.run()
        assert results == ["item"]

    def test_get_blocks_until_put(self, engine):
        store = Store(engine)
        results = []

        def getter():
            value = yield store.get()
            results.append((engine.now, value))

        def putter():
            yield engine.timeout(7.0)
            store.put("late")

        engine.process(getter())
        engine.process(putter())
        engine.run()
        assert results == [(7.0, "late")]

    def test_fifo_item_order(self, engine):
        store = Store(engine)
        for item in (1, 2, 3):
            store.put(item)
        results = []

        def getter():
            for _ in range(3):
                value = yield store.get()
                results.append(value)

        engine.process(getter())
        engine.run()
        assert results == [1, 2, 3]

    def test_fifo_getter_order(self, engine):
        store = Store(engine)
        results = []

        def getter(tag):
            value = yield store.get()
            results.append((tag, value))

        engine.process(getter("first"))
        engine.process(getter("second"))

        def putter():
            yield engine.timeout(1.0)
            store.put("x")
            yield engine.timeout(1.0)
            store.put("y")

        engine.process(putter())
        engine.run()
        assert results == [("first", "x"), ("second", "y")]

    def test_len_and_items(self, engine):
        store = Store(engine)
        store.put("a")
        store.put("b")
        assert len(store) == 2
        assert store.items() == ["a", "b"]
        assert store.total_puts == 2
