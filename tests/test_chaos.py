"""Deterministic fault injection + the supervised fleet control plane.

Covers the chaos subsystem end to end: fault schedules as pure data,
the shard-actor transition table, supervised serving plans (fault-free
bit-identity with the frozen front-end, kill/reroute/recover walks,
degraded-mode shedding), the no-lost-requests invariants, the committed
``fleet-chaos`` scenario, event-log replay parity, and the fault-aware
fuzzer with its faults-first shrink ordering.
"""

import dataclasses
import json

import pytest

from repro.chaos import (
    FAULT_KINDS,
    FaultSchedule,
    FaultSpec,
    sample_fault_schedule,
)
from repro.fleet import (
    Fleet,
    SHED_CAPACITY_THRESHOLD,
    TRANSITIONS,
    FleetSupervisor,
    ShardActor,
    get_fleet_scenario,
    partition_arrivals,
    policy_names,
    supervised_partition,
)
from repro.fleet.control import (
    DEAD,
    DRAINING,
    RECOVERING,
    REROUTE_DELAY_MS,
    RESTART_BACKOFF_MS,
    RESTART_MS,
    SERVING,
    WARMING,
    WARMUP_MS,
)
from repro.telemetry import (
    RequestReroutedEvent,
    RequestShedEvent,
    ShardDownEvent,
    ShardRecoveredEvent,
    canonical_line,
    summarize_event_log,
)
from repro.verify.fuzz import FuzzCase, ScenarioFuzzer, _shrink_candidates
from repro.verify.invariants import check_serving_plan
from repro.workloads.generator import Arrival


def _arrivals(times, app="IC", batch=4):
    return [Arrival(app, batch, float(t)) for t in times]


# ---------------------------------------------------------------------------
# Fault schedules
# ---------------------------------------------------------------------------
class TestFaultSchedule:
    def test_sampling_is_deterministic(self):
        a = sample_fault_schedule(7, 4, 30_000.0)
        b = sample_fault_schedule(7, 4, 30_000.0)
        assert a == b
        assert hash(a) == hash(b)
        assert a != sample_fault_schedule(8, 4, 30_000.0)

    def test_sampled_schedules_cover_the_kind_space(self):
        kinds = set()
        for seed in range(64):
            kinds.update(
                f.kind for f in sample_fault_schedule(seed, 4, 30_000.0)
            )
        assert kinds == set(FAULT_KINDS)

    def test_round_trip(self):
        schedule = FaultSchedule([
            FaultSpec("kill", 100.0, 0),
            FaultSpec("recover", 900.0, 0),
            FaultSpec("degrade", 50.0, 1, factor=0.5, duration_ms=200.0),
        ])
        clone = FaultSchedule.from_tuples(schedule.to_tuples())
        assert clone == schedule
        # JSON round-trip (the repro-file path) also survives.
        assert FaultSchedule.from_tuples(
            json.loads(json.dumps([list(t) for t in schedule.to_tuples()]))
        ) == schedule

    def test_events_sort_by_time(self):
        schedule = FaultSchedule([
            FaultSpec("kill", 500.0, 1),
            FaultSpec("kill", 100.0, 0),
        ])
        assert [f.at_ms for f in schedule] == [100.0, 500.0]

    def test_validation(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec("explode", 1.0, 0)
        with pytest.raises(ValueError, match="must be >= 0"):
            FaultSpec("kill", -1.0, 0)
        with pytest.raises(ValueError, match="outside \\(0, 1\\]"):
            FaultSpec("degrade", 1.0, 0, factor=1.5, duration_ms=10.0)
        with pytest.raises(ValueError, match="must be >= 1"):
            FaultSpec("slow", 1.0, 0, factor=0.5, duration_ms=10.0)
        with pytest.raises(ValueError, match="positive duration_ms"):
            FaultSpec("degrade", 1.0, 0, factor=0.5)
        with pytest.raises(ValueError, match="no kill/drain"):
            FaultSchedule([FaultSpec("recover", 1.0, 0)])
        with pytest.raises(ValueError, match="outside \\[0, 2\\)"):
            FaultSchedule([FaultSpec("kill", 1.0, 5)]).validate_for(2)


# ---------------------------------------------------------------------------
# The transition table
# ---------------------------------------------------------------------------
class TestShardActor:
    def test_full_lifecycle_walk(self):
        actor = ShardActor(0)
        assert actor.state == SERVING
        actor.transition(DEAD, 10.0, "kill")
        actor.transition(RECOVERING, 20.0, "probe-ok")
        actor.transition(WARMING, 25.0, "restart-done")
        actor.transition(SERVING, 35.0, "warmup-done")
        actor.transition(DRAINING, 40.0, "drain")
        actor.transition(DEAD, 45.0, "drain")
        assert [s for _, s, _ in actor.history] == [
            SERVING, DEAD, RECOVERING, WARMING, SERVING, DRAINING, DEAD,
        ]

    def test_illegal_transitions_raise(self):
        for from_state, allowed in TRANSITIONS.items():
            for to_state in TRANSITIONS:
                actor = ShardActor(0)
                actor.state = from_state
                if to_state in allowed:
                    actor.transition(to_state, 1.0)
                else:
                    with pytest.raises(ValueError, match="illegal transition"):
                        actor.transition(to_state, 1.0)

    def test_state_at_walks_history(self):
        actor = ShardActor(3)
        actor.transition(DEAD, 10.0, "kill")
        actor.transition(RECOVERING, 20.0, "probe-ok")
        assert actor.state_at(5.0) == SERVING
        assert actor.state_at(10.0) == DEAD
        assert actor.state_at(19.9) == DEAD
        assert actor.state_at(20.0) == RECOVERING


# ---------------------------------------------------------------------------
# Fault-free bit-identity with the frozen front-end
# ---------------------------------------------------------------------------
class TestFaultFreeEquivalence:
    @pytest.mark.parametrize("policy", policy_names())
    @pytest.mark.parametrize("seed", (1, 7))
    def test_supervised_plan_matches_frozen_plan(self, policy, seed):
        apps = ("IC", "OF", "3DR", "AN")
        arrivals = [
            Arrival(apps[i % 4], 2 + i % 6, 100.0 * i) for i in range(20)
        ]
        plan = supervised_partition(
            arrivals, 4, policy, seed, FaultSchedule()
        )
        frozen = partition_arrivals(arrivals, 4, policy, seed)
        assert plan.streams == frozen
        assert plan.served_count == len(arrivals)
        assert plan.shed_count == 0
        assert plan.reroute_count == 0
        assert plan.shed_windows == []
        assert check_serving_plan(plan, arrivals) == []


# ---------------------------------------------------------------------------
# Kill, reroute, recover
# ---------------------------------------------------------------------------
class TestKillAndReroute:
    def test_kill_reroutes_in_flight_requests(self):
        # First admission batch snapshot is all-zero, so least-loaded
        # sends every arrival at t=0 to shard 0; the kill then bumps all
        # of them onto shard 1.
        arrivals = _arrivals([0.0, 0.0, 0.0, 0.0])
        plan = supervised_partition(
            arrivals, 2, "least-loaded", 1,
            FaultSchedule([FaultSpec("kill", 1.0, 0)]),
        )
        assert plan.served_count == 4
        assert plan.shed_count == 0
        for record in plan.ledger:
            assert record.disposition == "served"
            assert record.shard == 1
            assert record.rerouted_from == (0,)
            assert record.time_ms == 1.0 + REROUTE_DELAY_MS
        assert [len(s) for s in plan.streams] == [0, 4]
        downs = [e for e in plan.events if isinstance(e, ShardDownEvent)]
        reroutes = [
            e for e in plan.events if isinstance(e, RequestReroutedEvent)
        ]
        assert len(downs) == 1 and downs[0].reason == "kill"
        assert len(reroutes) == 4
        assert all(e.from_shard == 0 and e.to_shard == 1 for e in reroutes)
        assert check_serving_plan(plan, arrivals) == []

    def test_no_live_shards_sheds_even_admitted_requests(self):
        arrivals = _arrivals([0.0, 5000.0])
        plan = supervised_partition(
            arrivals, 2, "least-loaded", 1,
            FaultSchedule([
                FaultSpec("kill", 1.0, 0), FaultSpec("kill", 1.0, 1),
            ]),
        )
        assert plan.served_count == 0
        assert plan.shed_count == 2
        admitted, fresh = plan.ledger
        # The in-flight request was bumped off its shard before shedding.
        assert admitted.rerouted_from == (0,)
        assert admitted.shed_reason == "no-live-shards"
        assert fresh.rerouted_from == ()
        assert fresh.shed_reason == "no-live-shards"
        assert check_serving_plan(plan, arrivals) == []

    def test_kill_then_recover_walks_the_supervision_path(self):
        arrivals = _arrivals([0.0, 10_000.0])
        plan = supervised_partition(
            arrivals, 2, "least-loaded", 1,
            FaultSchedule([
                FaultSpec("kill", 1000.0, 0),
                FaultSpec("recover", 2500.0, 0),
            ]),
        )
        # First probe at kill + RESTART_BACKOFF_MS lands after the
        # recover mark, so the shard restarts on the first attempt.
        probe_ms = 1000.0 + RESTART_BACKOFF_MS
        states = [(t, s) for t, s, _ in plan.histories[0]]
        assert states == [
            (0.0, SERVING),
            (1000.0, DEAD),
            (probe_ms, RECOVERING),
            (probe_ms + RESTART_MS, WARMING),
            (probe_ms + RESTART_MS + WARMUP_MS, SERVING),
        ]
        ups = [e for e in plan.events if isinstance(e, ShardRecoveredEvent)]
        assert len(ups) == 1
        assert ups[0].shard == 0
        assert ups[0].downtime_ms == (
            probe_ms + RESTART_MS + WARMUP_MS - 1000.0
        )
        assert plan.served_count == 2
        assert check_serving_plan(plan, arrivals) == []

    def test_unrecoverable_shard_stays_dead(self):
        arrivals = _arrivals([0.0])
        plan = supervised_partition(
            arrivals, 2, "least-loaded", 1,
            FaultSchedule([FaultSpec("kill", 1.0, 0)]),
        )
        assert [s for _, s, _ in plan.histories[0]][-1] == DEAD
        assert not any(
            isinstance(e, ShardRecoveredEvent) for e in plan.events
        )

    def test_drain_lets_residents_finish_then_downs_the_shard(self):
        arrivals = _arrivals([0.0])
        plan = supervised_partition(
            arrivals, 2, "least-loaded", 1,
            FaultSchedule([FaultSpec("drain", 1.0, 0)]),
        )
        record = plan.ledger[0]
        # The resident finished on its original shard — no reroute.
        assert record.disposition == "served"
        assert record.shard == 0
        assert record.rerouted_from == ()
        history = [(s, r) for _, s, r in plan.histories[0]]
        assert (DRAINING, "drain") in history
        assert history[-1] == (DEAD, "drain")
        assert check_serving_plan(plan, arrivals) == []


# ---------------------------------------------------------------------------
# Degraded-mode shedding
# ---------------------------------------------------------------------------
class TestShedding:
    def test_threshold_is_strict(self):
        # One of two shards dead -> capacity exactly 0.5, NOT below the
        # 0.5 threshold: fresh arrivals are still admitted.
        arrivals = _arrivals([0.0, 5000.0])
        plan = supervised_partition(
            arrivals, 2, "least-loaded", 1,
            FaultSchedule([FaultSpec("kill", 1.0, 0)]),
        )
        assert plan.shed_threshold == SHED_CAPACITY_THRESHOLD == 0.5
        assert plan.ledger[1].disposition == "served"
        assert plan.shed_windows == []

    def test_raised_threshold_sheds_fresh_arrivals_only(self):
        arrivals = _arrivals([0.0, 5000.0])
        plan = supervised_partition(
            arrivals, 2, "least-loaded", 1,
            FaultSchedule([FaultSpec("kill", 1.0, 0)]),
            shed_threshold=0.6,
        )
        admitted, fresh = plan.ledger
        # The in-flight request reroutes despite the degraded capacity —
        # only *fresh* admissions respect the threshold.
        assert admitted.disposition == "served"
        assert admitted.rerouted_from == (0,)
        assert fresh.disposition == "shed"
        assert fresh.shed_reason == "degraded-capacity"
        assert len(plan.shed_windows) == 1
        assert plan.shed_windows[0] == (1.0, None)  # never recovers
        sheds = [e for e in plan.events if isinstance(e, RequestShedEvent)]
        assert [e.reason for e in sheds] == ["degraded-capacity"]
        assert check_serving_plan(plan, arrivals) == []

    def test_degrade_fault_counts_against_capacity(self):
        # degrade shard 0 to 0.2: capacity (0.2 + 1.0) / 2 = 0.6 >= 0.5
        # serves; killing shard 1 inside the window drops it to 0.1 < 0.5.
        arrivals = _arrivals([0.0, 5000.0, 6000.0])
        plan = supervised_partition(
            arrivals, 2, "least-loaded", 1,
            FaultSchedule([
                FaultSpec(
                    "degrade", 4000.0, 0, factor=0.2, duration_ms=50_000.0
                ),
                FaultSpec("kill", 5500.0, 1),
            ]),
        )
        assert plan.ledger[1].disposition == "served"
        assert plan.ledger[2].disposition == "shed"
        assert plan.ledger[2].shed_reason == "degraded-capacity"


# ---------------------------------------------------------------------------
# The committed fleet-chaos scenario
# ---------------------------------------------------------------------------
class TestFleetChaosScenario:
    def _plan(self):
        return Fleet(get_fleet_scenario("fleet-chaos")).serving_plan(1)

    def test_committed_counts(self):
        plan = self._plan()
        assert plan.summary() == {
            "policy": "least-loaded",
            "seed": 1,
            "n_shards": 4,
            "faults": 6,
            "served": 17,
            "shed": 7,
            "reroutes": 3,
            "shed_windows": 1,
        }

    def test_shedding_engages_and_disengages_at_the_threshold(self):
        plan = self._plan()
        # Third kill at t=12000 drops live capacity to 1/4 < 1/2 ->
        # shedding engages; the third recovered shard re-enters service
        # at 23500 (probe 22000 + restart 500 + warmup 1000) -> capacity
        # back to 1/2, shedding disengages.
        assert plan.shed_windows == [(12000.0, 23500.0)]
        for record in plan.ledger:
            if record.disposition == "shed":
                assert record.shed_reason == "degraded-capacity"
                assert 12000.0 <= record.time_ms < 23500.0

    def test_recovered_shards_rejoin_with_exact_downtimes(self):
        plan = self._plan()
        ups = {
            e.shard: e.downtime_ms
            for e in plan.events
            if isinstance(e, ShardRecoveredEvent)
        }
        # Each kill probes at +2000/+6000/+14000 (doubling backoff); the
        # recover mark lands between the second and third probe for all
        # three shards, so each takes the full 14000 ms of probing plus
        # 500 ms restart plus 1000 ms warmup.
        assert ups == {0: 15500.0, 1: 15500.0, 2: 15500.0}

    def test_plan_is_deterministic_and_invariant_clean(self):
        scenario = get_fleet_scenario("fleet-chaos")
        a, b = self._plan(), self._plan()
        assert [dataclasses.astuple(r) for r in a.ledger] == \
            [dataclasses.astuple(r) for r in b.ledger]
        assert [canonical_line(e) for e in a.events] == \
            [canonical_line(e) for e in b.events]
        arrivals = scenario.workload.arrivals(1)
        assert check_serving_plan(a, arrivals) == []

    def test_serial_and_parallel_runs_are_bit_identical(self, tmp_path):
        fleet = Fleet(get_fleet_scenario("fleet-chaos"))
        serial = fleet.run(jobs=1)
        parallel = fleet.run(jobs=3)
        assert [r.to_dict() for r in serial.records] == \
            [r.to_dict() for r in parallel.records]
        assert serial.rollup.shed == parallel.rollup.shed == 7
        assert serial.rollup.rerouted == parallel.rollup.rerouted == 3
        assert "shed 7, rerouted 3" in serial.rollup.table()

    def test_admission_event_log_replays_to_identical_rollups(self, tmp_path):
        fleet = Fleet(get_fleet_scenario("fleet-chaos"))
        fleet.run(jobs=1, events_dir=tmp_path)
        log = tmp_path / "fleet-chaos-admission-seed1.jsonl"
        assert log.exists()
        summary = summarize_event_log(log)
        counters = summary["counters"]
        assert counters["admissions"] == 17
        assert counters["sheds"] == 7
        assert counters["reroutes"] == 3
        assert counters["shard_downs"] == 3
        assert counters["shard_ups"] == 3
        # Replay is a pure function of the log.
        assert summarize_event_log(log) == summary

    def test_scaling_drops_out_of_range_faults(self):
        scenario = get_fleet_scenario("fleet-chaos").scaled(n_shards=2)
        assert all(f[2] < 2 for f in scenario.faults)
        assert scenario.fault_schedule()  # kills for shards 0/1 survive


# ---------------------------------------------------------------------------
# Fault-aware fuzzing
# ---------------------------------------------------------------------------
class TestChaosFuzzing:
    def test_chaos_cases_are_faulted_fleet_cases(self):
        fuzzer = ScenarioFuzzer(0, chaos=True)
        cases = list(fuzzer.cases(8))
        assert all(case.is_fleet for case in cases)
        assert all(case.faults for case in cases)
        # Sampling is deterministic: the same index resamples identically.
        assert fuzzer.case(3) == cases[3]

    def test_chaos_plans_hold_the_no_lost_requests_invariant(self):
        for case in ScenarioFuzzer(0, chaos=True).cases(8):
            assert case.plan_violations() == []

    def test_chaos_requires_a_fleet_scenario(self):
        with pytest.raises(KeyError, match="needs a fleet scenario"):
            ScenarioFuzzer(0, scenario="smoke", chaos=True)

    def test_faults_require_a_fleet_case(self):
        with pytest.raises(ValueError, match="faults require a fleet case"):
            FuzzCase(
                case_id=0, system="FCFS", condition="LOOSE", n_apps=2,
                batch_lo=1, batch_hi=2, seed=1,
                faults=(("kill", 1.0, 0, 1.0, 0.0),),
            )

    def test_fault_fields_round_trip_through_repro_payload(self):
        case = next(
            c for c in ScenarioFuzzer(0, chaos=True).cases(4) if c.faults
        )
        clone = FuzzCase.from_dict(json.loads(json.dumps(case.to_dict())))
        assert clone == case
        assert clone.fault_schedule() == case.fault_schedule()

    def test_shrinking_drops_faults_first(self):
        case = next(
            c for c in ScenarioFuzzer(0, chaos=True).cases(4) if c.faults
        )
        candidates = list(_shrink_candidates(case))
        assert candidates[0].faults == ()
        assert candidates[0].n_shards == case.n_shards
        # The fleet-drop candidate also clears the schedule (a fault
        # schedule cannot outlive its fleet).
        flat = next(c for c in candidates if not c.is_fleet)
        assert flat.faults == ()

    def test_verify_cli_chaos_flags(self, capsys):
        from repro.cli import main

        assert main(["verify", "--chaos"]) == 2
        assert "requires --fuzz" in capsys.readouterr().err
        assert main(["verify", "--fuzz", "2", "--chaos", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "chaos-fuzzing 2 cases" in out
        assert "all 2 cases bit-identical" in out


# ---------------------------------------------------------------------------
# Kernel bit-identity under faults
# ---------------------------------------------------------------------------
class TestKernelIdentityUnderFaults:
    def test_fleet_chaos_sweeps_clean_on_heap_and_wheel(self, capsys):
        from repro.cli import main

        assert main(["verify", "--scenario", "fleet-chaos"]) == 0
        out = capsys.readouterr().out
        assert "bit-identical across kernels" in out
