"""Unit and integration tests for the campaign subsystem."""

import json

import pytest

from repro.campaign import (
    CampaignCell,
    CampaignRunner,
    DrainError,
    ProcessBackend,
    ResultsStore,
    RunRecord,
    SCENARIOS,
    SYSTEM_REGISTRY,
    Scenario,
    SerialBackend,
    execute_cell,
    fingerprint_parameters,
    get_scenario,
    get_system,
    group_by_system,
    load_records,
    register_scenario,
    register_system,
    simulate_run,
)
from repro.config import DEFAULT_PARAMETERS
from repro.experiments import Fig5Result, run_fig5, run_sequence
from repro.fpga import BoardConfig
from repro.workloads import Condition, WorkloadGenerator, WorkloadSpec


class TestSystemRegistry:
    def test_legend_order(self):
        assert list(SYSTEM_REGISTRY) == [
            "Baseline", "FCFS", "RR", "Nimblock", "VersaSlot-OL", "VersaSlot-BL",
        ]

    def test_get_system_unknown_names_alternatives(self):
        with pytest.raises(KeyError, match="available"):
            get_system("Mystery")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_system("FCFS", BoardConfig.ONLY_LITTLE)(object)

    def test_experiments_systems_is_live_view(self):
        from repro.experiments.runner import SYSTEMS

        assert list(SYSTEMS) == list(SYSTEM_REGISTRY)
        factory, config = SYSTEMS["VersaSlot-BL"]
        assert config is BoardConfig.BIG_LITTLE
        assert "VersaSlot-BL" in SYSTEMS
        assert dict(SYSTEMS)


class TestScenario:
    def _scenario(self, **kw):
        defaults = dict(
            name="t",
            workload=WorkloadSpec(Condition.STRESS, n_apps=4, sequence_count=2),
            systems=("Baseline", "FCFS"),
            seeds=(1, 2),
        )
        defaults.update(kw)
        return Scenario(**defaults)

    def test_cell_enumeration(self):
        scenario = self._scenario()
        cells = CampaignRunner().cells_for(scenario)
        assert len(cells) == scenario.cell_count() == 2 * 2 * 2
        # sequence-major within a seed, systems inner (run_matrix order)
        assert [(c.seed, c.sequence_index, c.system) for c in cells[:4]] == [
            (1, 0, "Baseline"), (1, 0, "FCFS"), (1, 1, "Baseline"), (1, 1, "FCFS"),
        ]

    def test_overrides_normalized_and_applied(self):
        scenario = self._scenario(overrides={"pr_failure_rate": 0.1})
        assert scenario.overrides == (("pr_failure_rate", 0.1),)
        assert scenario.parameters().pr_failure_rate == 0.1
        assert DEFAULT_PARAMETERS.pr_failure_rate == 0.0

    def test_empty_systems_means_all(self):
        scenario = self._scenario(systems=())
        assert scenario.system_names() == tuple(SYSTEM_REGISTRY)

    def test_scaled(self):
        scaled = self._scenario().scaled(sequence_count=5, n_apps=9, seeds=(7,))
        assert scaled.workload.sequence_count == 5
        assert scaled.workload.n_apps == 9
        assert scaled.seeds == (7,)

    def test_registry_duplicate_rejected(self):
        assert "smoke" in SCENARIOS
        with pytest.raises(ValueError, match="already registered"):
            register_scenario(get_scenario("smoke"))

    def test_workload_spec_seed_threading(self):
        """Deterministic per (seed, index), no cross-seed collisions.

        The legacy ``WorkloadGenerator.sequences`` offset scheme made
        (seed=1, index=1) identical to (seed=2, index=0); the spec threads
        seed and index independently so multi-seed scenarios never
        silently duplicate workloads.
        """
        spec = WorkloadSpec(Condition.STANDARD, n_apps=7, sequence_count=3)
        assert spec.sequences(5) == spec.sequences(5)
        keys = [(seed, index) for seed in (1, 2, 3) for index in range(3)]
        generated = [tuple(spec.sequence(seed, index)) for seed, index in keys]
        assert len(set(generated)) == len(keys)

    def test_workload_spec_validation(self):
        with pytest.raises(ValueError):
            WorkloadSpec(Condition.STRESS, n_apps=0)
        spec = WorkloadSpec(Condition.STRESS, sequence_count=2)
        with pytest.raises(IndexError):
            spec.sequence(1, 2)


class TestSimulationCore:
    def test_run_sequence_is_thin_wrapper(self):
        arrivals = WorkloadGenerator(1).sequence(Condition.LOOSE, n_apps=3)
        via_wrapper = run_sequence("Nimblock", arrivals)
        via_core = simulate_run("Nimblock", arrivals)
        assert via_wrapper.responses.samples_ms == via_core.stats.response_times_ms()

    def test_run_sequence_digest_only_matches_exact_aggregates(self):
        arrivals = WorkloadGenerator(1).sequence(Condition.LOOSE, n_apps=3)
        exact = run_sequence("Nimblock", arrivals)
        digest = run_sequence("Nimblock", arrivals, digest_only=True)
        # Production memory config: no retained per-request records, a
        # streaming digest instead — same counts and (for these few
        # samples, exactly representable) aggregates.
        assert digest.stats.responses == []
        assert digest.responses.count == exact.responses.count
        assert digest.responses.mean() == pytest.approx(exact.responses.mean())
        assert digest.makespan_ms == exact.makespan_ms
        assert digest.stats.completions == exact.stats.completions

    def test_drain_error_is_diagnosable(self):
        arrivals = WorkloadGenerator(1).sequence(Condition.STRESS, n_apps=4)
        with pytest.raises(DrainError) as excinfo:
            simulate_run("Nimblock", arrivals, horizon_ms=100.0)
        err = excinfo.value
        message = str(err)
        # names the stuck apps, the completion count and the engine clock
        assert "did not drain" in message
        assert "t=100 ms" in message
        assert err.undrained
        assert all("#" in name for name in err.undrained)
        assert any(name.split("#")[0] in message for name in err.undrained)

    def test_drain_error_survives_pickling(self):
        """Worker DrainErrors cross the multiprocessing boundary intact."""
        import pickle

        err = DrainError("FCFS", 1, 4, ["IC#2", "OF#3"], 123.0)
        clone = pickle.loads(pickle.dumps(err))
        assert clone.undrained == ["IC#2", "OF#3"]
        assert clone.clock_ms == 123.0
        assert str(clone) == str(err)

    def test_cell_requires_workload_or_arrivals(self):
        cell = CampaignCell(scenario="s", system="FCFS", sequence_index=0, seed=1)
        with pytest.raises(ValueError, match="neither"):
            cell.resolve_arrivals()

    def test_execute_cell_record_shape(self):
        cell = CampaignCell(
            scenario="s",
            system="Nimblock",
            sequence_index=0,
            seed=1,
            workload=WorkloadSpec(Condition.LOOSE, n_apps=3),
        )
        record = execute_cell(cell)
        assert record.system == "Nimblock"
        assert record.condition == "Loose"
        assert record.n_apps == 3
        # Raw samples are opt-in; the default record carries the compact
        # bounded-memory response digest instead.
        assert record.response_times_ms == []
        assert record.digest().count == 3
        assert record.counters["completions"] == 3
        assert record.fingerprint == fingerprint_parameters(DEFAULT_PARAMETERS)
        assert 0 < record.makespan_ms < 1e8

    def test_execute_cell_raw_samples_opt_in(self):
        import dataclasses

        cell = CampaignCell(
            scenario="s",
            system="Nimblock",
            sequence_index=0,
            seed=1,
            workload=WorkloadSpec(Condition.LOOSE, n_apps=3),
        )
        raw = execute_cell(dataclasses.replace(cell, keep_raw_samples=True))
        digest_only = execute_cell(cell)
        assert len(raw.response_times_ms) == 3
        # The digest is built from the same completion stream either way,
        # and its mean is bit-identical to the raw-sample mean.
        assert raw.response_digest == digest_only.response_digest
        assert raw.mean_response_ms() == digest_only.mean_response_ms()


class TestResultsStore:
    def _records(self):
        scenario = Scenario(
            name="store-test",
            workload=WorkloadSpec(Condition.STRESS, n_apps=3, sequence_count=1),
            systems=("Baseline", "Nimblock"),
        )
        return CampaignRunner().run(scenario)

    def test_jsonl_round_trip(self, tmp_path):
        records = self._records()
        store = ResultsStore(tmp_path / "runs.jsonl")
        store.write(records)
        loaded = store.load()
        assert [r.to_dict() for r in loaded] == [r.to_dict() for r in records]

    def test_extend_appends(self, tmp_path):
        records = self._records()
        store = ResultsStore(tmp_path / "runs.jsonl")
        store.extend(records[:1])
        store.extend(records[1:])
        assert len(store.load()) == len(records)

    def test_runner_persists(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        records = CampaignRunner(store=path).run(
            Scenario(
                name="persist-test",
                workload=WorkloadSpec(Condition.STRESS, n_apps=3),
                systems=("FCFS",),
            )
        )
        assert [r.to_dict() for r in load_records(path)] == [
            r.to_dict() for r in records
        ]

    def test_schema_mismatch_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        payload = self._records()[0].to_dict()
        payload["schema"] = 999
        path.write_text(json.dumps(payload) + "\n")
        with pytest.raises(ValueError, match="schema"):
            load_records(path)

    def test_malformed_interior_line_reports_location(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        good = json.dumps(self._records()[0].to_dict(), sort_keys=True)
        path.write_text("{not json\n" + good + "\n")
        with pytest.raises(ValueError, match="bad.jsonl:1"):
            load_records(path)

    def test_truncated_trailing_line_skipped_with_warning(self, tmp_path):
        """A killed writer can only truncate the final line; loading must
        keep every intact record and warn about the partial one."""
        records = self._records()
        path = tmp_path / "truncated.jsonl"
        store = ResultsStore(path)
        store.extend(records)
        lines = path.read_text().splitlines()
        path.write_text(  # cut the last record short mid-line
            "\n".join(lines[:-1]) + "\n" + lines[-1][: len(lines[-1]) // 2]
        )
        with pytest.warns(UserWarning, match="truncated trailing record"):
            loaded = store.load()
        assert [r.to_dict() for r in loaded] == [
            r.to_dict() for r in records[: len(loaded)]
        ]
        assert len(loaded) == len(records) - 1

    def test_extend_after_truncation_repairs_the_tail(self, tmp_path):
        """Appending to a crash-truncated file must not merge the partial
        line with the first new record — the resume-after-crash path."""
        records = self._records()
        path = tmp_path / "resume.jsonl"
        store = ResultsStore(path)
        store.extend(records)
        text = path.read_text()
        path.write_text(text[: len(text) - 25])  # kill the final newline+tail
        with pytest.warns(UserWarning, match="dropping truncated trailing"):
            store.extend(records)
        loaded = store.load()  # no warning: the file is whole again
        assert [r.to_dict() for r in loaded] == [
            r.to_dict() for r in records[:-1] + records
        ]

    def test_extend_terminates_valid_unterminated_tail(self, tmp_path):
        """A valid final record merely missing its newline is kept."""
        records = self._records()
        path = tmp_path / "unterminated.jsonl"
        store = ResultsStore(path)
        store.extend(records)
        path.write_text(path.read_text().rstrip("\n"))
        store.extend(records[:1])
        loaded = store.load()
        assert [r.to_dict() for r in loaded] == [
            r.to_dict() for r in records + records[:1]
        ]

    def test_write_is_atomic_no_temp_left_behind(self, tmp_path):
        records = self._records()
        path = tmp_path / "atomic.jsonl"
        store = ResultsStore(path)
        store.write(records)
        store.write(records[:1])  # overwrite goes through the temp file
        assert len(store.load()) == 1
        assert list(tmp_path.glob("*.tmp")) == []

    def test_missing_fields_rejected_with_location(self, tmp_path):
        path = tmp_path / "short.jsonl"
        path.write_text('{"schema": 1}\n')
        with pytest.raises(ValueError, match="short.jsonl:1.*missing fields"):
            load_records(path)

    def test_fingerprint_tracks_overrides(self):
        base = fingerprint_parameters(DEFAULT_PARAMETERS)
        tweaked = fingerprint_parameters(
            DEFAULT_PARAMETERS.with_overrides(pcap_bandwidth_mbps=290.0)
        )
        assert base != tweaked
        assert base == fingerprint_parameters(DEFAULT_PARAMETERS)


class TestFigureReplay:
    def test_fig5_replay_from_persisted_records(self, tmp_path):
        path = tmp_path / "fig5.jsonl"
        live = run_fig5(
            seed=1,
            sequence_count=1,
            n_apps=5,
            conditions=(Condition.STRESS,),
            store=path,
        )
        replayed = Fig5Result.from_records(load_records(path))
        assert replayed.reductions == live.reductions
        assert replayed.table() == live.table()

    def test_fig5_reductions_need_baseline(self):
        records = CampaignRunner().run(
            Scenario(
                name="no-baseline",
                workload=WorkloadSpec(Condition.STRESS, n_apps=3),
                systems=("FCFS",),
            )
        )
        from repro.experiments import reductions_from_records

        with pytest.raises(KeyError, match="Baseline"):
            reductions_from_records(records)

    def test_incompatible_records_refused(self, tmp_path):
        """Appends from differently-parameterized campaigns must not be
        silently averaged together on replay."""
        from repro.experiments import reductions_from_records

        path = tmp_path / "mixed.jsonl"

        def run(n_apps):
            return CampaignRunner(store=path).run(
                Scenario(
                    name="mixed",
                    workload=WorkloadSpec(Condition.STRESS, n_apps=n_apps),
                    systems=("Baseline", "FCFS"),
                )
            )

        run(3)
        run(4)
        with pytest.raises(ValueError, match="duplicate"):
            reductions_from_records(load_records(path))


class TestBackends:
    def test_process_backend_single_cell_falls_back(self):
        cells = CampaignRunner().cells_for(
            Scenario(
                name="one-cell",
                workload=WorkloadSpec(Condition.LOOSE, n_apps=2),
                systems=("FCFS",),
            )
        )
        serial = SerialBackend().run(cells)
        parallel = ProcessBackend(jobs=4).run(cells)
        assert serial[0].to_dict() == parallel[0].to_dict()

    def test_jobs_validation(self):
        with pytest.raises(ValueError):
            ProcessBackend(jobs=0)


class TestCampaignCLI:
    def test_campaign_list(self, capsys):
        from repro.cli import main

        assert main(["campaign", "list"]) == 0
        out = capsys.readouterr().out
        assert "smoke" in out and "fig5-standard" in out

    def test_campaign_run_and_replay(self, tmp_path, capsys):
        from repro.cli import main

        out_path = tmp_path / "smoke.jsonl"
        assert main([
            "campaign", "run", "smoke", "--jobs", "2", "--out", str(out_path),
        ]) == 0
        assert "records appended" in capsys.readouterr().out
        assert main(["replay", str(out_path)]) == 0
        assert "Campaign records" in capsys.readouterr().out

    def test_list_systems(self, capsys):
        from repro.cli import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "VersaSlot-BL" in out
