"""Unit tests for the FPGA hardware substrate (PS, PCAP, slots, links)."""

import pytest

from repro.config import DEFAULT_PARAMETERS
from repro.fpga import (
    AuroraLink,
    BitstreamLibrary,
    BoardConfig,
    FPGABoard,
    PCAP,
    ProcessingSystem,
    ResourceVector,
    Slot,
    SlotKind,
    SlotOccupancy,
    SlotState,
    build_slots,
    connect_boards,
    fabric_capacity,
)
from repro.sim import Engine


@pytest.fixture
def engine():
    return Engine()


class TestResourceVector:
    def test_addition_and_subtraction(self):
        a = ResourceVector(0.5, 0.4)
        b = ResourceVector(0.2, 0.1)
        assert a + b == ResourceVector(0.7, 0.5)
        assert (a - b).lut == pytest.approx(0.3)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ResourceVector(-0.1, 0.5)

    def test_fits_within(self):
        assert ResourceVector(0.5, 0.5).fits_within(ResourceVector(1.0, 1.0))
        assert not ResourceVector(1.1, 0.5).fits_within(ResourceVector(1.0, 1.0))

    def test_fraction_of(self):
        frac = ResourceVector(1.0, 0.5).fraction_of(ResourceVector(2.0, 2.0))
        assert frac == ResourceVector(0.5, 0.25)

    def test_fraction_of_zero_capacity_raises(self):
        with pytest.raises(ValueError):
            ResourceVector(1.0, 1.0).fraction_of(ResourceVector(0.0, 1.0))

    def test_total(self):
        total = ResourceVector.total([ResourceVector(0.1, 0.2)] * 3)
        assert total.lut == pytest.approx(0.3)
        assert total.ff == pytest.approx(0.6)


class TestProcessingSystem:
    def test_two_cores_by_default(self, engine):
        ps = ProcessingSystem(engine)
        assert len(ps.cores) == 2
        assert ps.scheduler_core is ps.core(0)

    def test_pr_core_selection(self, engine):
        ps = ProcessingSystem(engine)
        assert ps.pr_core(dual_core=True) is ps.core(1)
        assert ps.pr_core(dual_core=False) is ps.core(0)

    def test_single_core_fallback(self, engine):
        ps = ProcessingSystem(engine, core_count=1)
        assert ps.pr_core(dual_core=True) is ps.core(0)

    def test_zero_cores_rejected(self, engine):
        with pytest.raises(ValueError):
            ProcessingSystem(engine, core_count=0)


class TestPCAP:
    def test_load_takes_bandwidth_time(self, engine):
        pcap = PCAP(engine, DEFAULT_PARAMETERS)
        library = BitstreamLibrary(DEFAULT_PARAMETERS)
        stream = library.register("t", SlotKind.LITTLE, size_mb=14.5)

        def loader():
            yield from pcap.load(stream)
            return engine.now

        process = engine.process(loader())
        engine.run()
        assert process.value == pytest.approx(100.0)
        assert pcap.loads == 1

    def test_serial_loads_queue(self, engine):
        pcap = PCAP(engine, DEFAULT_PARAMETERS)
        library = BitstreamLibrary(DEFAULT_PARAMETERS)
        stream = library.register("t", SlotKind.LITTLE, size_mb=14.5)
        finish_times = []

        def loader():
            yield from pcap.load(stream)
            finish_times.append(engine.now)

        engine.process(loader())
        engine.process(loader())
        engine.run()
        assert finish_times == [pytest.approx(100.0), pytest.approx(200.0)]
        assert pcap.contended_loads == 1
        assert pcap.mean_wait_ms() == pytest.approx(50.0)

    def test_utilization(self, engine):
        pcap = PCAP(engine, DEFAULT_PARAMETERS)
        library = BitstreamLibrary(DEFAULT_PARAMETERS)
        stream = library.register("t", SlotKind.LITTLE, size_mb=14.5)

        def loader():
            yield from pcap.load(stream)

        engine.process(loader())
        engine.run(until=200.0)
        assert pcap.utilization() == pytest.approx(0.5)


class TestBitstreamLibrary:
    def test_register_default_sizes(self):
        library = BitstreamLibrary(DEFAULT_PARAMETERS)
        little = library.register("t", SlotKind.LITTLE)
        big = library.register("t", SlotKind.BIG)
        assert little.size_mb == DEFAULT_PARAMETERS.little_bitstream_mb
        assert big.size_mb == DEFAULT_PARAMETERS.big_bitstream_mb

    def test_register_idempotent(self):
        library = BitstreamLibrary(DEFAULT_PARAMETERS)
        first = library.register("t", SlotKind.LITTLE)
        second = library.register("t", SlotKind.LITTLE)
        assert first is second
        assert len(library) == 1

    def test_lookup_missing_raises(self):
        library = BitstreamLibrary(DEFAULT_PARAMETERS)
        with pytest.raises(KeyError, match="offline flow"):
            library.lookup("ghost", SlotKind.LITTLE)

    def test_stage_copies_missing_only(self):
        src = BitstreamLibrary(DEFAULT_PARAMETERS)
        src.register("a", SlotKind.LITTLE)
        src.register("b", SlotKind.BIG)
        dst = BitstreamLibrary(DEFAULT_PARAMETERS)
        dst.register("a", SlotKind.LITTLE)
        assert dst.stage(src) == 1
        assert dst.contains("b", SlotKind.BIG)

    def test_full_fabric_bitstream(self):
        library = BitstreamLibrary(DEFAULT_PARAMETERS)
        stream = library.full_fabric("app")
        assert stream.size_mb == DEFAULT_PARAMETERS.full_bitstream_mb


class TestSlots:
    def test_big_little_layout(self, engine):
        slots = build_slots(engine, BoardConfig.BIG_LITTLE, DEFAULT_PARAMETERS)
        bigs = [s for s in slots if s.kind is SlotKind.BIG]
        littles = [s for s in slots if s.kind is SlotKind.LITTLE]
        assert len(bigs) == 2
        assert len(littles) == 4
        assert bigs[0].capacity == ResourceVector(2.0, 2.0)

    def test_only_little_layout(self, engine):
        slots = build_slots(engine, BoardConfig.ONLY_LITTLE, DEFAULT_PARAMETERS)
        assert len(slots) == 8
        assert all(s.kind is SlotKind.LITTLE for s in slots)

    def test_fabric_capacity(self, engine):
        slots = build_slots(engine, BoardConfig.BIG_LITTLE, DEFAULT_PARAMETERS)
        assert fabric_capacity(slots) == ResourceVector(8.0, 8.0)

    def test_state_machine_happy_path(self, engine):
        slot = Slot(engine, 0, SlotKind.LITTLE, ResourceVector(1.0, 1.0))
        slot.begin_reconfiguration()
        assert slot.state is SlotState.RECONFIGURING
        occupancy = SlotOccupancy("task", 1, ResourceVector(0.5, 0.4))
        slot.complete_reconfiguration(occupancy)
        assert slot.state is SlotState.LOADED
        assert slot.reconfigurations == 1
        slot.release()
        assert slot.is_idle

    def test_double_reconfiguration_rejected(self, engine):
        slot = Slot(engine, 0, SlotKind.LITTLE, ResourceVector(1.0, 1.0))
        slot.begin_reconfiguration()
        with pytest.raises(RuntimeError):
            slot.begin_reconfiguration()

    def test_complete_without_begin_rejected(self, engine):
        slot = Slot(engine, 0, SlotKind.LITTLE, ResourceVector(1.0, 1.0))
        with pytest.raises(RuntimeError):
            slot.complete_reconfiguration(SlotOccupancy("t", 1, ResourceVector(0.1, 0.1)))

    def test_oversized_payload_rejected(self, engine):
        slot = Slot(engine, 0, SlotKind.LITTLE, ResourceVector(1.0, 1.0))
        slot.begin_reconfiguration()
        with pytest.raises(ValueError):
            slot.complete_reconfiguration(SlotOccupancy("t", 1, ResourceVector(1.5, 0.5)))

    def test_release_idle_rejected(self, engine):
        slot = Slot(engine, 0, SlotKind.LITTLE, ResourceVector(1.0, 1.0))
        with pytest.raises(RuntimeError):
            slot.release()

    def test_observers_notified(self, engine):
        slot = Slot(engine, 0, SlotKind.LITTLE, ResourceVector(1.0, 1.0))
        events = []
        slot.observers.append(lambda s, occ: events.append(occ))
        slot.begin_reconfiguration()
        slot.complete_reconfiguration(SlotOccupancy("t", 1, ResourceVector(0.5, 0.5)))
        slot.release()
        assert events[0] is None
        assert events[1].payload_name == "t"
        assert events[2] is None


class TestBoard:
    def test_board_assembly(self, engine):
        board = FPGABoard(engine, BoardConfig.BIG_LITTLE)
        assert board.big_slot_count == 2
        assert board.little_slot_count == 4
        assert board.pcap is not None
        assert len(board.ps.cores) == 2

    def test_idle_slot_queries(self, engine):
        board = FPGABoard(engine, BoardConfig.BIG_LITTLE)
        slot = board.idle_slot(SlotKind.BIG)
        assert slot is not None
        slot.begin_reconfiguration()
        assert len(board.idle_slots(SlotKind.BIG)) == 1

    def test_connect_boards_shares_link(self, engine):
        a = FPGABoard(engine, BoardConfig.ONLY_LITTLE, name="a")
        b = FPGABoard(engine, BoardConfig.BIG_LITTLE, name="b")
        link = connect_boards(a, b)
        assert a.link is link
        assert b.link is link

    def test_connect_different_engines_rejected(self, engine):
        a = FPGABoard(engine, BoardConfig.ONLY_LITTLE)
        b = FPGABoard(Engine(), BoardConfig.ONLY_LITTLE)
        with pytest.raises(ValueError):
            connect_boards(a, b)


class TestAuroraLink:
    def test_transfer_time(self, engine):
        link = AuroraLink(engine, DEFAULT_PARAMETERS)

        def mover():
            duration = yield from link.transfer(12.5, fixed_ms=0.0)
            return duration

        process = engine.process(mover())
        engine.run()
        assert process.value == pytest.approx(10.0)
        assert link.total_mb == 12.5

    def test_fixed_cost_default(self, engine):
        link = AuroraLink(engine, DEFAULT_PARAMETERS)

        def mover():
            duration = yield from link.transfer(0.0)
            return duration

        process = engine.process(mover())
        engine.run()
        assert process.value == pytest.approx(DEFAULT_PARAMETERS.migration_fixed_ms)

    def test_transfers_serialize(self, engine):
        link = AuroraLink(engine, DEFAULT_PARAMETERS)
        finish = []

        def mover():
            yield from link.transfer(125.0, fixed_ms=0.0)
            finish.append(engine.now)

        engine.process(mover())
        engine.process(mover())
        engine.run()
        assert finish == [pytest.approx(100.0), pytest.approx(200.0)]
        assert link.mean_session_ms() == pytest.approx(100.0)

    def test_negative_size_rejected(self, engine):
        link = AuroraLink(engine, DEFAULT_PARAMETERS)
        with pytest.raises(ValueError):
            list(link.transfer(-1.0))
