"""Ablation benches for the design choices DESIGN.md calls out.

* **Dual-core decoupling** — the VersaSlot allocation policy run single-
  core (i.e. Nimblock) vs dual-core (VersaSlot-OL): isolates the PR-server
  contribution.
* **Bundle size** — idle sub-slot cycles and batch latency for bundle
  sizes 2/3/4, supporting the paper's choice of 3.
* **Schmitt hysteresis** — switch count on a noisy D_switch sequence with
  and without the buffer zone (T1 = T2 degenerate trigger), showing the
  buffer zone prevents oscillation.
"""

import random

import pytest

from repro.campaign import CampaignRunner, Scenario, group_by_system
from repro.core.bundling import idle_subslot_cycles, parallel_time_ms
from repro.core.switching import SchmittTrigger, SwitchDecision
from repro.experiments.runner import record_to_run_result
from repro.fpga import BoardConfig
from repro.workloads import Condition, WorkloadSpec


def _paired_runs(records, first, second):
    """Per-sequence (first, second) RunResult pairs from campaign records."""
    grouped = group_by_system(records)
    return [
        (record_to_run_result(a), record_to_run_result(b))
        for a, b in zip(grouped[first], grouped[second])
    ]


def test_ablation_dual_core(benchmark, sequence_count):
    """Dual-core decoupling is the Nimblock -> VersaSlot-OL delta."""
    scenario = Scenario(
        name="ablation-dual-core",
        workload=WorkloadSpec(Condition.STRESS, sequence_count=sequence_count),
        systems=("Nimblock", "VersaSlot-OL"),
    )

    records = benchmark.pedantic(
        CampaignRunner().run, args=(scenario,), rounds=1, iterations=1
    )
    pairs = _paired_runs(records, "Nimblock", "VersaSlot-OL")
    gains = [s.responses.mean() / d.responses.mean() for s, d in pairs]
    blocked = [(s.stats.launch_blocked, d.stats.launch_blocked) for s, d in pairs]
    print(f"\nAblation dual-core: mean-response gain per sequence: "
          f"{[f'{g:.2f}x' for g in gains]}")
    print(f"  blocked launches (single -> dual): {blocked}")
    assert all(g > 1.0 for g in gains)
    assert all(d < s for s, d in blocked)


@pytest.mark.parametrize("batch", [5, 15, 30])
def test_ablation_bundle_size(benchmark, batch):
    """Size 3 balances slot granularity against idle sub-slot cycles."""
    rng = random.Random(42)

    def evaluate():
        sizes = {}
        for size in (2, 3, 4):
            idle, latency = 0.0, 0.0
            for _ in range(200):
                times = [rng.uniform(5.0, 80.0) for _ in range(size)]
                idle += idle_subslot_cycles(times, batch)
                latency += parallel_time_ms(times, batch)
            sizes[size] = (idle / 200, latency / 200)
        return sizes

    sizes = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    print(f"\nAblation bundle size (batch={batch}):")
    for size, (idle, latency) in sizes.items():
        print(f"  size={size}: idle={idle:9.1f} ms  batch latency={latency:8.1f} ms")
    # Idle waste grows monotonically with bundle size.
    assert sizes[2][0] < sizes[3][0] < sizes[4][0]


def test_ablation_schmitt_hysteresis(benchmark):
    """The buffer zone suppresses oscillation on a noisy metric."""
    rng = random.Random(7)
    noisy = [min(0.99, max(0.001, 0.06 + rng.gauss(0.0, 0.04))) for _ in range(400)]

    def evaluate():
        with_buffer = SchmittTrigger(threshold_up=0.1, threshold_down=0.0125)
        degenerate = SchmittTrigger(threshold_up=0.0626, threshold_down=0.0625)
        for i, value in enumerate(noisy):
            with_buffer.update(float(i), value)
            degenerate.update(float(i), value)
        return with_buffer.switch_count, degenerate.switch_count

    buffered, degenerate = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    print(f"\nAblation hysteresis: buffered switches={buffered}, "
          f"degenerate (T1~T2) switches={degenerate}")
    assert buffered < degenerate
    assert degenerate > 10


def test_ablation_big_little_vs_only_little_boards(benchmark, sequence_count):
    """The Big.Little static layout is the VersaSlot-OL -> -BL delta."""
    scenario = Scenario(
        name="ablation-big-little",
        workload=WorkloadSpec(Condition.STRESS, sequence_count=sequence_count),
        systems=("VersaSlot-OL", "VersaSlot-BL"),
        seeds=(2,),
    )

    records = benchmark.pedantic(
        CampaignRunner().run, args=(scenario,), rounds=1, iterations=1
    )
    pairs = _paired_runs(records, "VersaSlot-OL", "VersaSlot-BL")
    gains = [ol.responses.mean() / bl.responses.mean() for ol, bl in pairs]
    prs = [(ol.stats.pr_count, bl.stats.pr_count) for ol, bl in pairs]
    print(f"\nAblation Big.Little: gains={[f'{g:.2f}x' for g in gains]}  PRs (OL->BL)={prs}")
    assert all(g > 1.0 for g in gains)
    assert all(bl < ol for ol, bl in prs)
