"""Bench: regenerate Fig. 6 — tail response time (P95/P99) vs baseline.

The paper reports Big.Little beating Nimblock on P95 and P99 in every
congestion condition (by 83 %/46 % under Stress, 56 %/48 % under
Real-time), with P95 at or below the baseline's.
"""

import pytest

from repro.experiments.fig6 import TAIL_CONDITIONS, run_fig6
from repro.experiments.fig5 import run_fig5


@pytest.fixture(scope="module")
def fig6_result(sequence_count):
    fig5 = run_fig5(
        seed=1, sequence_count=sequence_count, conditions=TAIL_CONDITIONS
    )
    return run_fig6(fig5_result=fig5)


def test_fig6_tables(benchmark, sequence_count):
    result = benchmark.pedantic(
        lambda: run_fig6(seed=1, sequence_count=sequence_count),
        rounds=1,
        iterations=1,
    )
    print("\n" + result.table())
    for key, column in result.relative_tails.items():
        # Big.Little's tails beat Nimblock's everywhere (paper Fig. 6).
        assert column["VersaSlot-BL"] <= column["Nimblock"] * 1.05, key


def test_fig6_bl_beats_nimblock_p95(fig6_result):
    for condition in TAIL_CONDITIONS:
        column = fig6_result.relative_tails[f"{condition.label}-95"]
        assert column["VersaSlot-BL"] < column["Nimblock"]


def test_fig6_bl_p95_at_or_below_baseline(fig6_result):
    for condition in TAIL_CONDITIONS:
        column = fig6_result.relative_tails[f"{condition.label}-95"]
        assert column["VersaSlot-BL"] <= 1.05
