"""Bench: regenerate Fig. 7 — utilization improvement of 3-in-1 tasks.

Static gains come from the synthesis tables (exact reproduction of the
figure's percentages); the dynamic variant verifies the gain materializes
in a live simulation via the time-weighted utilization tracker.
"""

import pytest

from repro.experiments.fig7 import PAPER_FIG7, run_fig7, run_fig7_dynamic


def test_fig7_static(benchmark):
    result = benchmark.pedantic(run_fig7, rounds=1, iterations=1)
    print("\n" + result.table())
    for app, (paper_lut, paper_ff) in PAPER_FIG7.items():
        lut, ff = result.gains[app]
        assert lut == pytest.approx(paper_lut, abs=0.5)
        assert ff == pytest.approx(paper_ff, abs=0.5)
    # IC detail panel (DCT/Quantize/BDQ -> bundle).
    assert result.detail_tasks == [0.57, 0.38, 0.28]
    assert result.detail_mean == pytest.approx(0.41, abs=0.005)
    assert result.detail_bundle == pytest.approx(0.60)


@pytest.mark.parametrize("app_name", ["IC", "AN", "3DR", "OF"])
def test_fig7_dynamic(benchmark, app_name):
    little, big = benchmark.pedantic(
        run_fig7_dynamic, kwargs={"app_name": app_name, "batch_size": 12},
        rounds=1, iterations=1,
    )
    print(
        f"\nFig. 7 dynamic [{app_name}]: little LUT={little.lut:.3f} "
        f"big LUT={big.lut:.3f} (+{(big.lut / little.lut - 1) * 100:.1f} %)"
    )
    assert big.lut > little.lut
    assert big.ff > little.ff
