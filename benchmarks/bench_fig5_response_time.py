"""Bench: regenerate Fig. 5 — relative average response-time reduction.

Six systems x four congestion conditions, normalized to the exclusive
temporal-multiplexing Baseline.  The paper's headline numbers: VersaSlot
Big.Little up to 13.66x over Baseline and up to 2.17x over Nimblock at the
Standard interval; the reproduction must preserve the ordering
(BL > OL > Nimblock > FCFS/RR > Baseline under congestion, ~1x at Loose)
and the Standard-interval peak.
"""

import pytest

from repro.experiments.fig5 import CONDITIONS, PAPER_FIG5, run_fig5
from repro.workloads import Condition


@pytest.mark.parametrize("condition", CONDITIONS, ids=lambda c: c.label)
def test_fig5_condition(benchmark, condition, sequence_count):
    result = benchmark.pedantic(
        run_fig5,
        kwargs={
            "seed": 1,
            "sequence_count": sequence_count,
            "conditions": (condition,),
        },
        rounds=1,
        iterations=1,
    )
    reductions = result.reductions[condition.label]
    print(f"\nFig. 5 [{condition.label}] reduction vs baseline (higher is better)")
    for system, value in reductions.items():
        if system == "Baseline":
            continue
        paper = PAPER_FIG5.get(system, {}).get(condition.label, float("nan"))
        print(f"  {system:<14s} measured={value:6.2f}   paper={paper:6.2f}")
    # Shape assertions: the paper's ordering must hold.
    assert reductions["VersaSlot-BL"] >= reductions["VersaSlot-OL"] * 0.95
    assert reductions["VersaSlot-OL"] >= reductions["Nimblock"] * 0.95
    if condition is not Condition.LOOSE:
        assert reductions["Nimblock"] > reductions["FCFS"] * 0.95


def test_fig5_standard_is_the_peak(benchmark, sequence_count):
    """The Standard interval shows the largest BL gain (as in the paper)."""
    result = benchmark.pedantic(
        run_fig5,
        kwargs={"seed": 1, "sequence_count": sequence_count},
        rounds=1,
        iterations=1,
    )
    print("\n" + result.table())
    bl = {label: result.reductions[label]["VersaSlot-BL"] for label in result.reductions}
    assert bl["Standard"] == max(bl.values())
    assert bl["Standard"] > 1.5
