"""Micro-benchmarks of the simulation kernel and scheduler hot paths.

These are real pytest-benchmark timings (multiple rounds) — they guard
against performance regressions that would make the figure benches
impractically slow.  The same payloads back the ``repro bench`` CLI
harness (``repro.bench``), which records them into the committed
``BENCH_kernel.json`` throughput trajectory.
"""

from repro.apps import ApplicationInstance, BENCHMARKS, reset_instance_ids
from repro.config import DEFAULT_PARAMETERS
from repro.core import VersaSlotBigLittle
from repro.fpga import BoardConfig, FPGABoard
from repro.sim import Engine, Resource


def test_kernel_event_throughput(benchmark):
    """Dispatch rate of chained delay events through the kernel hot lane.

    Bare-delay yields ride the pooled fast lane: no event allocation, no
    callback-list traffic — the path every model loop schedules through.
    """

    def run():
        engine = Engine()

        def ticker():
            for _ in range(5000):
                yield 1.0

        engine.process(ticker())
        engine.run()
        return engine.now

    result = benchmark(run)
    assert result == 5000.0


def test_kernel_timeout_alloc(benchmark):
    """Dispatch rate of chained ``Engine.timeout`` events (allocating path)."""

    def run():
        engine = Engine()

        def ticker():
            for _ in range(5000):
                yield engine.timeout(1.0)

        engine.process(ticker())
        engine.run()
        return engine.now

    result = benchmark(run)
    assert result == 5000.0


def test_kernel_resource_contention(benchmark):
    """Grant/queue throughput of a contended mutex."""

    def run():
        engine = Engine()
        resource = Resource(engine, capacity=2)

        def worker():
            for _ in range(50):
                request = resource.acquire()
                yield request
                yield 1.0
                resource.release()

        for _ in range(20):
            engine.process(worker())
        engine.run()
        return resource.total_grants

    grants = benchmark(run)
    assert grants == 1000


def test_scheduler_single_app_run(benchmark):
    """Wall-clock cost of simulating one application end-to-end.

    Image Compression (the paper's flagship 3-in-1 example) at batch 100:
    large enough that the steady-state per-item path dominates the
    one-time PR loads.
    """

    def run():
        reset_instance_ids()
        engine = Engine()
        board = FPGABoard(engine, BoardConfig.BIG_LITTLE, DEFAULT_PARAMETERS)
        scheduler = VersaSlotBigLittle(board, DEFAULT_PARAMETERS)
        scheduler.submit(ApplicationInstance(BENCHMARKS["IC"], 100, 0.0))
        engine.run(until=50_000_000)
        return scheduler.stats.completions

    completions = benchmark(run)
    assert completions == 1
