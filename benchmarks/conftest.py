"""Shared configuration for the benchmark harness.

Every bench regenerates one of the paper's figures on a reduced-but-
representative configuration (fewer random sequences than the paper's ten,
so the suite completes in minutes) and prints the measured values next to
the paper's, for EXPERIMENTS.md.
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--paper-scale",
        action="store_true",
        default=False,
        help="run benches at the paper's full scale (10 sequences, 80-app "
        "switching workloads); slower but tighter confidence intervals",
    )


@pytest.fixture(scope="session")
def sequence_count(request):
    """Random sequences per condition (paper: 10)."""
    return 10 if request.config.getoption("--paper-scale") else 2
