"""Bench: regenerate Fig. 8 — cross-board switching and live migration.

Left panel: the D_switch trajectory with the Schmitt trigger firing the
Only.Little -> Big.Little switch at T1 = 0.1.  Right panel: response-time
reduction of the Switching cluster and an Only-Big.Little board relative
to Only.Little (paper: 2.98x and 6.65x).  The paper also reports a mean
switching overhead of ~1.13 ms with pre-warming.
"""

import pytest

from repro.experiments.fig8 import (
    PAPER_FIG8,
    PAPER_SWITCH_OVERHEAD_MS,
    run_fig8,
)


@pytest.fixture(scope="module")
def fig8_results(request):
    paper_scale = request.config.getoption("--paper-scale")
    n_apps = 80 if paper_scale else 40
    seeds = (1, 2, 3) if paper_scale else (1, 3)
    return [run_fig8(seed=seed, n_apps=n_apps) for seed in seeds]


def test_fig8_switching_workloads(benchmark, request):
    paper_scale = request.config.getoption("--paper-scale")
    result = benchmark.pedantic(
        run_fig8,
        kwargs={"seed": 1, "n_apps": 80 if paper_scale else 40},
        rounds=1,
        iterations=1,
    )
    print("\n" + result.trace())
    print(result.comparison())
    print(
        f"mean switching overhead: {result.mean_switch_overhead_ms:.2f} ms "
        f"(paper: {PAPER_SWITCH_OVERHEAD_MS:.2f} ms)"
    )
    assert result.switch_times_ms, "the trigger never fired"
    assert result.reductions["Switching"] > 1.0


def test_fig8_trigger_fires_once_per_ramp(fig8_results):
    for result in fig8_results:
        assert 1 <= len(result.switch_times_ms) <= 3


def test_fig8_switching_beats_only_little(fig8_results):
    for result in fig8_results:
        assert result.reductions["Switching"] > 1.5  # paper: 2.98


def test_fig8_prewarmed_overhead_small(fig8_results):
    """At least one seed pre-warms in the buffer zone -> ~1 ms switches."""
    overheads = [r.mean_switch_overhead_ms for r in fig8_results]
    assert min(overheads) < 5.0
