"""Application model: tasks, bundles, benchmarks, pipelines, partitioning."""

from .application import (
    BUNDLE_SIZE,
    ApplicationInstance,
    ApplicationSpec,
    BundleSpec,
    TaskSpec,
    pipelined_exec_time,
    reset_instance_ids,
    sequential_exec_time,
)
from .benchmarks import BENCHMARKS, FIG7_APPS, benchmark_names, build_application, get_benchmark
from .partition import (
    generate_synthetic_application,
    partition_workload,
    quantize_usage,
    synthesize_bundle,
)
from .pipeline import (
    TaskGraph,
    estimate_big_makespan_ms,
    estimate_makespan_ms,
    wave_partition,
)

__all__ = [
    "BENCHMARKS",
    "BUNDLE_SIZE",
    "ApplicationInstance",
    "ApplicationSpec",
    "BundleSpec",
    "FIG7_APPS",
    "TaskGraph",
    "TaskSpec",
    "benchmark_names",
    "build_application",
    "estimate_big_makespan_ms",
    "estimate_makespan_ms",
    "generate_synthetic_application",
    "get_benchmark",
    "partition_workload",
    "pipelined_exec_time",
    "quantize_usage",
    "reset_instance_ids",
    "sequential_exec_time",
    "synthesize_bundle",
    "wave_partition",
]
