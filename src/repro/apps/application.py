"""Application, task and bundle specifications.

An *application* is partitioned offline into an ordered list of *tasks*
(the basic execution unit of a slot).  Each task processes the
application's batch item by item; item ``b`` of task ``k`` depends on item
``b`` of task ``k-1``, which is the cross-slot pipeline the paper relies on.

A *bundle* is a 3-in-1 task: three consecutive tasks synthesized together
into a single Big-slot bitstream.  Bundles carry their own implementation
resource usage (synthesis of the merged module differs from the sum of the
parts — this is what Fig. 7 measures).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count
from typing import List, Optional, Sequence, Tuple

from ..fpga.resvec import ResourceVector

#: The paper fixes the bundle size at three tasks per Big slot.
BUNDLE_SIZE = 3


@dataclass(frozen=True)
class TaskSpec:
    """One task of an application, sized for a Little slot."""

    #: Application-local name, e.g. ``"IC/t2"``.
    name: str
    #: Position in the application pipeline (0-based).
    index: int
    #: Execution latency of one batch item in this task (ms).
    exec_time_ms: float
    #: Implementation resource usage, as a fraction of a Little slot.
    usage: ResourceVector

    def __post_init__(self) -> None:
        if self.exec_time_ms <= 0:
            raise ValueError(f"task {self.name!r} has non-positive latency")
        if not self.usage.fits_within(ResourceVector(1.0, 1.0)):
            raise ValueError(
                f"task {self.name!r} usage {self.usage} exceeds a Little slot; "
                "re-partition the application"
            )


@dataclass(frozen=True)
class BundleSpec:
    """A 3-in-1 task synthesized for a Big slot."""

    #: Name, e.g. ``"IC/bundle0"``.
    name: str
    #: Bundle position (0-based); bundle ``j`` covers tasks ``3j..3j+2``.
    index: int
    #: Indices of the member tasks, in pipeline order.
    task_indices: Tuple[int, int, int]
    #: Implementation usage as a fraction of a *Big* slot.
    usage_big: ResourceVector

    def __post_init__(self) -> None:
        if len(self.task_indices) != BUNDLE_SIZE:
            raise ValueError(f"bundle {self.name!r} must cover exactly {BUNDLE_SIZE} tasks")
        first, mid, last = self.task_indices
        if not (mid == first + 1 and last == mid + 1):
            raise ValueError(f"bundle {self.name!r} tasks must be consecutive")


@dataclass(frozen=True)
class ApplicationSpec:
    """A benchmark application: its tasks and (optionally) its bundles."""

    name: str
    tasks: Tuple[TaskSpec, ...]
    bundles: Tuple[BundleSpec, ...] = ()

    def __post_init__(self) -> None:
        if not self.tasks:
            raise ValueError(f"application {self.name!r} has no tasks")
        for position, task in enumerate(self.tasks):
            if task.index != position:
                raise ValueError(f"task indices of {self.name!r} must be 0..N-1 in order")
        if self.bundles:
            covered = [i for bundle in self.bundles for i in bundle.task_indices]
            if covered != list(range(len(self.tasks))):
                raise ValueError(
                    f"bundles of {self.name!r} must tile the task list exactly"
                )
        # Per-bundle member latencies, precomputed once: bundle runs and
        # the bundling decision ask for these on the scheduling hot path.
        # (object.__setattr__ because the dataclass is frozen; positional
        # by bundle index — an id()-keyed cache goes stale the moment a
        # spec crosses a pickle boundary into a multiprocessing worker,
        # silently recomputing on every hot-path lookup.)
        object.__setattr__(self, "_bundle_times", tuple(
            tuple(self.tasks[i].exec_time_ms for i in bundle.task_indices)
            for bundle in self.bundles
        ))

    @property
    def task_count(self) -> int:
        return len(self.tasks)

    @property
    def can_bundle(self) -> bool:
        """True if the offline flow produced 3-in-1 bundles for this app."""
        return bool(self.bundles)

    def task(self, index: int) -> TaskSpec:
        return self.tasks[index]

    def bundle_for_task(self, task_index: int) -> BundleSpec:
        """The bundle containing ``task_index``."""
        if not self.bundles:
            raise ValueError(f"application {self.name!r} has no bundles")
        return self.bundles[task_index // BUNDLE_SIZE]

    def bundle_exec_times(self, bundle: BundleSpec) -> Tuple[float, ...]:
        """Per-item latencies of a bundle's member tasks (precomputed)."""
        index = bundle.index
        if not 0 <= index < len(self._bundle_times):
            raise ValueError(
                f"bundle {bundle.name!r} does not belong to "
                f"application {self.name!r}"
            )
        own = self.bundles[index]
        # Identity first: on the scheduling hot path the bundle always IS
        # this spec's bundle.  Equality covers equal-but-not-identical
        # bundles after a pickle boundary; anything else is a model bug,
        # not a cache miss — no silent recompute fallback.
        if own is not bundle and own != bundle:
            raise ValueError(
                f"bundle {bundle.name!r} does not belong to "
                f"application {self.name!r}"
            )
        return self._bundle_times[index]

    def mean_little_utilization(self) -> ResourceVector:
        """Mean per-task utilization of a Little slot (Fig. 7 left basis)."""
        total = ResourceVector.total(task.usage for task in self.tasks)
        return total.scale(1.0 / self.task_count)

    def mean_big_utilization(self) -> ResourceVector:
        """Mean per-bundle utilization of a Big slot (Fig. 7 left basis)."""
        if not self.bundles:
            raise ValueError(f"application {self.name!r} has no bundles")
        total = ResourceVector.total(bundle.usage_big for bundle in self.bundles)
        return total.scale(1.0 / len(self.bundles))


_instance_ids = count()


@dataclass
class ApplicationInstance:
    """A runtime arrival of an application with a concrete batch size."""

    spec: ApplicationSpec
    batch_size: int
    arrival_time: float
    app_id: int = field(default_factory=lambda: next(_instance_ids))

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ValueError(f"batch size must be >= 1, got {self.batch_size}")
        if self.arrival_time < 0:
            raise ValueError(f"arrival time must be >= 0, got {self.arrival_time}")

    @property
    def name(self) -> str:
        return f"{self.spec.name}#{self.app_id}"

    @property
    def task_count(self) -> int:
        return self.spec.task_count

    def __hash__(self) -> int:
        return self.app_id

    def __repr__(self) -> str:
        return f"<App {self.name} B={self.batch_size} t0={self.arrival_time}>"


def reset_instance_ids() -> None:
    """Restart the global app-id counter (test isolation)."""
    global _instance_ids
    _instance_ids = count()


def sequential_exec_time(tasks: Sequence[TaskSpec], batch_size: int) -> float:
    """Total latency of running ``tasks`` back-to-back with no pipelining."""
    return sum(task.exec_time_ms for task in tasks) * batch_size


def pipelined_exec_time(tasks: Sequence[TaskSpec], batch_size: int) -> float:
    """Latency of an ideal item-level pipeline across loaded ``tasks``.

    Fill with one item per stage, then the bottleneck stage paces the
    remaining ``batch_size - 1`` items.
    """
    if not tasks:
        return 0.0
    fill = sum(task.exec_time_ms for task in tasks)
    bottleneck = max(task.exec_time_ms for task in tasks)
    return fill + (batch_size - 1) * bottleneck
