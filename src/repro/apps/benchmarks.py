"""The five benchmark applications of the paper's evaluation.

The paper uses the Nimblock/Rosetta benchmark set, partitioned by an
automated Vivado flow: 3D Rendering (3 tasks), LeNet (6), Image Compression
(6), AlexNet (6) and Optical Flow (9).  We have no Vivado, so each
application carries a *synthesis report* table: per-task implementation
usage in a Little slot, per-bundle implementation usage in a Big slot, and
per-item execution latency.

The usage tables are tuned so that the bundling utilization gains match the
measurements in Fig. 7 (IC +42.2 %/+48.0 %, AN +36.4 %/+41.4 %,
3DR +9.9 %/+17.7 %, OF +9.6 %/+14.1 % for LUT/FF), including the IC detail
panel (tasks 0.57/0.38/0.28 → bundle 0.60).  Latencies are skewed (one dominant stage per
pipeline, as HLS designs typically exhibit) and sized so that exclusive
full-board multiplexing saturates at the Standard arrival interval while
slot-shared execution does not — the congestion regime of Fig. 5.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..fpga.resvec import ResourceVector
from .application import BUNDLE_SIZE, ApplicationSpec, BundleSpec, TaskSpec


def build_application(
    name: str,
    exec_times_ms: Sequence[float],
    task_lut: Sequence[float],
    task_ff: Sequence[float],
    bundle_lut: Sequence[float] = (),
    bundle_ff: Sequence[float] = (),
) -> ApplicationSpec:
    """Assemble an :class:`ApplicationSpec` from raw synthesis tables.

    ``bundle_lut``/``bundle_ff`` are fractions of a *Big* slot; pass empty
    sequences for applications without an offline 3-in-1 flow.
    """
    if not (len(exec_times_ms) == len(task_lut) == len(task_ff)):
        raise ValueError(f"table lengths disagree for application {name!r}")
    tasks = tuple(
        TaskSpec(
            name=f"{name}/t{i}",
            index=i,
            exec_time_ms=exec_times_ms[i],
            usage=ResourceVector(task_lut[i], task_ff[i]),
        )
        for i in range(len(exec_times_ms))
    )
    bundles: Tuple[BundleSpec, ...] = ()
    if bundle_lut or bundle_ff:
        if len(bundle_lut) != len(bundle_ff):
            raise ValueError(f"bundle table lengths disagree for {name!r}")
        expected = len(tasks) // BUNDLE_SIZE
        if len(tasks) % BUNDLE_SIZE != 0 or len(bundle_lut) != expected:
            raise ValueError(
                f"{name!r}: {len(tasks)} tasks cannot tile into {len(bundle_lut)} bundles"
            )
        bundles = tuple(
            BundleSpec(
                name=f"{name}/bundle{j}",
                index=j,
                task_indices=(3 * j, 3 * j + 1, 3 * j + 2),
                usage_big=ResourceVector(bundle_lut[j], bundle_ff[j]),
            )
            for j in range(expected)
        )
    return ApplicationSpec(name=name, tasks=tasks, bundles=bundles)


#: 3D Rendering — 3 tasks, heavy stages, bundles poorly (dense tasks).
THREE_D_RENDERING = build_application(
    "3DR",
    exec_times_ms=[75.0, 30.0, 45.0],
    task_lut=[0.62, 0.55, 0.60],
    task_ff=[0.45, 0.40, 0.43],
    bundle_lut=[0.6484],
    bundle_ff=[0.5022],
)

#: LeNet — 6 light convolution/pooling tasks (not shown in Fig. 7).
LENET = build_application(
    "LeNet",
    exec_times_ms=[20.0, 15.0, 12.0, 60.0, 18.0, 15.0],
    task_lut=[0.35, 0.30, 0.28, 0.33, 0.38, 0.26],
    task_ff=[0.28, 0.24, 0.22, 0.27, 0.30, 0.21],
    bundle_lut=[0.47, 0.46],
    bundle_ff=[0.37, 0.36],
)

#: Image Compression — 6 tasks; Fig. 7 detail: DCT/Quantize/BDQ = bundle0.
IMAGE_COMPRESSION = build_application(
    "IC",
    exec_times_ms=[15.0, 10.0, 8.0, 65.0, 12.0, 10.0],
    task_lut=[0.57, 0.38, 0.28, 0.45, 0.52, 0.33],
    task_ff=[0.42, 0.31, 0.25, 0.38, 0.44, 0.30],
    bundle_lut=[0.60, 0.599],
    bundle_ff=[0.52, 0.516],
)

#: AlexNet — 6 heavier CNN tasks.
ALEXNET = build_application(
    "AN",
    exec_times_ms=[25.0, 20.0, 18.0, 80.0, 22.0, 20.0],
    task_lut=[0.52, 0.44, 0.36, 0.48, 0.55, 0.41],
    task_ff=[0.40, 0.33, 0.28, 0.37, 0.43, 0.31],
    bundle_lut=[0.63, 0.625],
    bundle_ff=[0.50, 0.499],
)

#: Optical Flow — 9 tasks, longest pipeline in the set.
OPTICAL_FLOW = build_application(
    "OF",
    exec_times_ms=[15.0, 12.0, 18.0, 70.0, 15.0, 12.0, 18.0, 15.0, 12.0],
    task_lut=[0.58, 0.52, 0.61, 0.55, 0.63, 0.50, 0.57, 0.54, 0.60],
    task_ff=[0.44, 0.39, 0.46, 0.41, 0.48, 0.38, 0.43, 0.40, 0.45],
    bundle_lut=[0.62, 0.62, 0.623],
    bundle_ff=[0.49, 0.487, 0.484],
)

#: Registry keyed by short name, in the paper's listing order.
BENCHMARKS: Dict[str, ApplicationSpec] = {
    "3DR": THREE_D_RENDERING,
    "LeNet": LENET,
    "IC": IMAGE_COMPRESSION,
    "AN": ALEXNET,
    "OF": OPTICAL_FLOW,
}

#: Applications shown in Fig. 7, in the figure's x-axis order.
FIG7_APPS: Tuple[str, ...] = ("IC", "AN", "3DR", "OF")

#: Human-readable task names for the IC detail panel of Fig. 7.
IC_DETAIL_TASKS: Tuple[str, ...] = ("DCT", "Quantize", "BDQ")


def benchmark_names() -> List[str]:
    """Registered application names."""
    return list(BENCHMARKS)


def get_benchmark(name: str) -> ApplicationSpec:
    """Look up an application by short name."""
    try:
        return BENCHMARKS[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; available: {', '.join(BENCHMARKS)}"
        ) from None
