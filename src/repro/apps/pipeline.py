"""Task dependency pipelines and analytic makespan estimators.

Applications execute as item-level pipelines across slots: item ``b`` of
task ``k`` waits for item ``b`` of task ``k-1``.  The default dependency
graph is the linear chain the paper uses; :class:`TaskGraph` also accepts
general DAGs (an extension exercised by the property tests).

The analytic estimators answer "how long would this application take with
``s`` slots?" — the quantity the ILP-based optimal slot allocation of
Nimblock/DML (and hence Algorithm 1's ``O_Ai``) optimizes.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

import networkx as nx

from .application import ApplicationSpec, TaskSpec, pipelined_exec_time


class TaskGraph:
    """A DAG of task dependencies for one application."""

    def __init__(self, app: ApplicationSpec, edges: Iterable[Tuple[int, int]] = ()) -> None:
        self.app = app
        self.graph = nx.DiGraph()
        self.graph.add_nodes_from(range(app.task_count))
        edge_list = list(edges)
        if not edge_list:
            edge_list = [(i, i + 1) for i in range(app.task_count - 1)]
        for src, dst in edge_list:
            if not (0 <= src < app.task_count and 0 <= dst < app.task_count):
                raise ValueError(f"edge ({src}, {dst}) references a missing task")
            self.graph.add_edge(src, dst)
        if not nx.is_directed_acyclic_graph(self.graph):
            raise ValueError(f"task graph of {app.name!r} contains a cycle")

    @property
    def is_linear_chain(self) -> bool:
        """True for the paper's default linear pipeline."""
        expected = {(i, i + 1) for i in range(self.app.task_count - 1)}
        return set(self.graph.edges) == expected

    def predecessors(self, task_index: int) -> List[int]:
        """Tasks whose per-item output task ``task_index`` consumes."""
        return sorted(self.graph.predecessors(task_index))

    def topological_order(self) -> List[int]:
        """A deterministic topological ordering of the tasks."""
        return list(nx.lexicographical_topological_sort(self.graph))

    def critical_path_ms(self, batch_size: int = 1) -> float:
        """Latency lower bound: longest path weighted by task latencies."""
        order = self.topological_order()
        finish: Dict[int, float] = {}
        for node in order:
            preds = self.predecessors(node)
            start = max((finish[p] for p in preds), default=0.0)
            finish[node] = start + self.app.tasks[node].exec_time_ms * batch_size
        return max(finish.values())


def wave_partition(task_count: int, slot_count: int) -> List[Tuple[int, int]]:
    """Split ``task_count`` pipeline stages into waves of ``slot_count``.

    With fewer slots than tasks, slots rotate: wave ``w`` loads tasks
    ``[w*s, min(N, (w+1)*s))``.  Returns the half-open index ranges.
    """
    if slot_count < 1:
        raise ValueError(f"slot count must be >= 1, got {slot_count}")
    waves = []
    start = 0
    while start < task_count:
        end = min(task_count, start + slot_count)
        waves.append((start, end))
        start = end
    return waves


def estimate_makespan_ms(
    app: ApplicationSpec,
    batch_size: int,
    slot_count: int,
    pr_time_ms: float,
) -> float:
    """Estimated completion time of ``app`` given ``slot_count`` Little slots.

    Model: slots rotate through the pipeline in waves.  Each wave pays its
    serialized PCAP loads plus an ideal item-level pipeline over the loaded
    stages.  The estimate is intentionally simple — it is used only to
    *rank* slot counts when computing the optimal allocation ``O_Ai``, not
    to predict wall-clock times (the simulator does that).
    """
    total = 0.0
    for start, end in wave_partition(app.task_count, slot_count):
        wave_tasks: Sequence[TaskSpec] = app.tasks[start:end]
        total += pr_time_ms * len(wave_tasks)
        total += pipelined_exec_time(wave_tasks, batch_size)
    return total


def estimate_big_makespan_ms(
    app: ApplicationSpec,
    batch_size: int,
    big_slot_count: int,
    big_pr_time_ms: float,
) -> float:
    """Estimated completion time using 3-in-1 bundles in Big slots.

    Bundles rotate through ``big_slot_count`` Big slots the same way tasks
    rotate through Little slots; each loaded bundle internally pipelines its
    three member tasks.
    """
    if not app.can_bundle:
        raise ValueError(f"application {app.name!r} has no bundles")
    total = 0.0
    bundle_count = len(app.bundles)
    for start, end in wave_partition(bundle_count, big_slot_count):
        wave = app.bundles[start:end]
        total += big_pr_time_ms * len(wave)
        stage_times = [
            max(app.bundle_exec_times(bundle)) for bundle in wave
        ]
        fill = sum(
            sum(app.bundle_exec_times(bundle)) for bundle in wave
        )
        bottleneck = max(stage_times)
        total += fill + (batch_size - 1) * bottleneck
    return total
