"""HLS-style partitioning and bundle synthesis (the offline flow).

The paper prepares bitstreams offline: an automated TCL script partitions
each application into Little-slot-sized tasks based on synthesis resource
reports, and synthesizes 3-in-1 bundles for Big slots.  Two properties of
HLS synthesis matter for the evaluation and are modelled here:

* **Stepwise resource growth** — HLS resource consumption grows in steps
  (unroll factors, memory partitioning), not linearly with work.  This is
  why uniform slots over- or under-subscribe, motivating Big.Little.
* **Bundle consolidation** — synthesizing three tasks as one module shares
  interface/control overhead, so the bundle's usage is slightly below the
  sum of its parts.

These generators produce *synthetic* applications used by stress tests,
property tests and the extended workload sweeps; the five paper benchmarks
in :mod:`repro.apps.benchmarks` use fixed measured tables instead.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from ..fpga.resvec import ResourceVector
from .application import BUNDLE_SIZE, ApplicationSpec, BundleSpec, TaskSpec

#: Discrete utilization steps HLS synthesis tends to land on.
HLS_UTILIZATION_STEPS = (0.25, 0.33, 0.4, 0.5, 0.6, 0.75)

#: Fraction of summed task resources a merged bundle implementation needs.
BUNDLE_CONSOLIDATION = 0.97


def quantize_usage(raw: float, steps: Sequence[float] = HLS_UTILIZATION_STEPS) -> float:
    """Snap a raw utilization to the smallest step that fits it.

    Models the stepwise jumps of HLS resource reports: a kernel needing
    0.41 of a slot synthesizes to the 0.5 step.
    """
    if raw <= 0:
        raise ValueError(f"raw utilization must be positive, got {raw}")
    for step in steps:
        if raw <= step:
            return step
    return min(raw, 1.0)


def synthesize_bundle(
    name: str,
    index: int,
    members: Sequence[TaskSpec],
    big_scale: float = 2.0,
    consolidation: float = BUNDLE_CONSOLIDATION,
) -> BundleSpec:
    """Synthesize a 3-in-1 bundle from three member tasks.

    The merged implementation needs ``consolidation`` of the summed member
    resources, expressed as a fraction of a Big slot (``big_scale`` Little
    slots).  Raises if the bundle does not fit a Big slot — the offline
    flow would reject such a partitioning.
    """
    if len(members) != BUNDLE_SIZE:
        raise ValueError(f"a bundle needs exactly {BUNDLE_SIZE} members")
    summed = ResourceVector.total(task.usage for task in members)
    usage_big = summed.scale(consolidation / big_scale)
    if not usage_big.fits_within(ResourceVector(1.0, 1.0)):
        raise ValueError(
            f"bundle {name!r} usage {usage_big} does not fit a Big slot; "
            "re-partition the application"
        )
    indices = (members[0].index, members[1].index, members[2].index)
    return BundleSpec(name=name, index=index, task_indices=indices, usage_big=usage_big)


def generate_synthetic_application(
    name: str,
    task_count: int,
    rng: random.Random,
    mean_exec_ms: float = 6.0,
    bundled: Optional[bool] = None,
) -> ApplicationSpec:
    """Generate a synthetic application via the modelled offline flow.

    Per-task work is drawn around ``mean_exec_ms``; usage comes from the
    work via the stepwise HLS model with some independent FF skew.
    ``bundled`` defaults to "whenever the task count tiles into bundles".
    """
    if task_count < 1:
        raise ValueError(f"task count must be >= 1, got {task_count}")
    tasks: List[TaskSpec] = []
    for i in range(task_count):
        exec_ms = max(0.5, rng.gauss(mean_exec_ms, mean_exec_ms * 0.3))
        raw_lut = min(0.95, max(0.1, exec_ms / (mean_exec_ms * 2.2)))
        lut = quantize_usage(raw_lut)
        ff = max(0.05, min(1.0, lut * rng.uniform(0.7, 0.9)))
        tasks.append(
            TaskSpec(
                name=f"{name}/t{i}",
                index=i,
                exec_time_ms=round(exec_ms, 3),
                usage=ResourceVector(lut, round(ff, 3)),
            )
        )
    if bundled is None:
        bundled = task_count % BUNDLE_SIZE == 0
    bundles = ()
    if bundled:
        if task_count % BUNDLE_SIZE != 0:
            raise ValueError(
                f"cannot bundle {task_count} tasks into groups of {BUNDLE_SIZE}"
            )
        bundles = tuple(
            synthesize_bundle(
                f"{name}/bundle{j}", j, tasks[3 * j : 3 * j + 3]
            )
            for j in range(task_count // BUNDLE_SIZE)
        )
    return ApplicationSpec(name=name, tasks=tuple(tasks), bundles=bundles)


def partition_workload(
    name: str,
    total_work_ms: float,
    rng: random.Random,
    max_task_ms: float = 8.0,
) -> ApplicationSpec:
    """Partition a monolithic workload into Little-slot-sized tasks.

    Splits ``total_work_ms`` of compute into the smallest task count whose
    per-task work fits ``max_task_ms``, rounded up to a bundle-tileable
    count when close — mirroring how the paper's script favours partitions
    that can also target Big slots.
    """
    if total_work_ms <= 0:
        raise ValueError(f"total work must be positive, got {total_work_ms}")
    task_count = max(1, int(-(-total_work_ms // max_task_ms)))
    if task_count % BUNDLE_SIZE != 0 and task_count > 2:
        task_count += BUNDLE_SIZE - task_count % BUNDLE_SIZE
    return generate_synthetic_application(
        name,
        task_count,
        rng,
        mean_exec_ms=total_work_ms / task_count,
        bundled=task_count % BUNDLE_SIZE == 0,
    )
