"""Micro-benchmark harness behind ``repro bench``.

Times the simulation-kernel and scheduler hot paths with plain
``time.perf_counter`` loops (no pytest dependency, so it runs anywhere the
package does) and records the measurements as a *trajectory*: every
invocation appends one entry to ``BENCH_kernel.json``, so the file
accumulates the throughput history of the kernel across commits.

The committed trajectory doubles as the regression baseline: CI runs
``repro bench --quick --baseline BENCH_kernel.json`` and fails when any
benchmark's throughput drops more than ``--max-regression`` (default 30%)
below the newest committed entry.  Absolute numbers are hardware-dependent
— the gate is deliberately loose so it catches algorithmic regressions
(accidentally quadratic scans, per-event allocation storms) rather than
runner jitter.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

BENCH_SCHEMA = "repro-bench/1"

#: Default trajectory file, at the repository root by convention.
DEFAULT_OUT = "BENCH_kernel.json"


@dataclass(frozen=True)
class BenchSpec:
    """One registered micro-benchmark.

    ``payload`` runs one complete measurement and returns the number of
    work units it performed (events dispatched, batch items completed...);
    throughput is ``units / best_round_seconds``.
    """

    name: str
    unit: str
    payload: Callable[[], int]
    #: Payload repetitions per timed round (amortizes timer overhead).
    iters: int = 1
    #: Included in ``--quick`` runs?
    quick: bool = True


@dataclass(frozen=True)
class BenchResult:
    name: str
    unit: str
    units_per_iter: int
    iters: int
    rounds: int
    best_s: float
    mean_s: float

    @property
    def throughput(self) -> float:
        """Work units per second, from the best (least-noisy) round."""
        return self.units_per_iter / self.best_s if self.best_s > 0 else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "unit": self.unit,
            "units_per_iter": self.units_per_iter,
            "iters": self.iters,
            "rounds": self.rounds,
            "best_s": self.best_s,
            "mean_s": self.mean_s,
            "throughput": self.throughput,
        }


# ----------------------------------------------------------------------
# Benchmark payloads
# ----------------------------------------------------------------------
def _bench_event_throughput(engine_factory=None) -> int:
    """Dispatch rate of chained delay events through the kernel hot lane.

    Post-overhaul kernels dispatch bare-delay yields (``yield 1.0``) — the
    pooled fast lane every model loop schedules through.  Kernels that
    predate ``Engine.sleep`` get the same 5000-chained-delays workload via
    their only delay primitive, the allocating ``Engine.timeout``.
    """
    from .sim import Engine

    engine = (engine_factory or Engine)()
    n = 5000

    if hasattr(engine, "sleep"):
        def ticker():
            for _ in range(n):
                yield 1.0
    else:
        def ticker():
            for _ in range(n):
                yield engine.timeout(1.0)

    engine.process(ticker())
    engine.run()
    assert engine.now == float(n)
    return n


def _bench_timeout_alloc(engine_factory=None) -> int:
    """Dispatch rate of chained ``Engine.timeout`` events.

    Unlike the pooled hot lane, every event here allocates a fresh
    ``Timeout`` — the trajectory keeps both visible.
    """
    from .sim import Engine

    engine = (engine_factory or Engine)()
    n = 5000

    def ticker():
        for _ in range(n):
            yield engine.timeout(1.0)

    engine.process(ticker())
    engine.run()
    assert engine.now == float(n)
    return n


def _bench_resource_contention(engine_factory=None) -> int:
    """Grant/queue throughput of a contended FIFO mutex."""
    from .sim import Engine, Resource

    engine = (engine_factory or Engine)()
    resource = Resource(engine, capacity=2)

    def worker():
        for _ in range(50):
            request = resource.acquire()
            yield request
            yield engine.timeout(1.0)
            resource.release()

    for _ in range(20):
        engine.process(worker())
    engine.run()
    assert resource.total_grants == 1000
    return resource.total_grants


def _bench_condition_fanout(engine_factory=None) -> int:
    """AllOf/AnyOf composition over wide fan-ins."""
    from .sim import Engine

    engine = (engine_factory or Engine)()
    rounds, width = 100, 20
    fired = 0

    def waiter():
        nonlocal fired
        for _ in range(rounds):
            yield engine.all_of([engine.timeout(1.0) for _ in range(width)])
            yield engine.any_of([engine.timeout(2.0) for _ in range(width)])
            fired += 1

    engine.process(waiter())
    engine.run()
    assert fired == rounds
    return rounds * width * 2


def _bench_deep_pending(engine_factory=None) -> int:
    """5000 scattered pre-scheduled timeouts, then one drain.

    The deep-pending regime the calendar queue exists for: inserts land
    across the whole horizon (O(log n) per heap push vs O(1) per bucket
    append), and the drain consumes whole buckets with one sort each.
    Chained benches never hold more than a handful of entries, so this is
    the only spec where queue *depth* dominates.
    """
    from .sim import Engine

    engine = (engine_factory or Engine)()
    n = 5000
    fired = [0]

    def count(event, fired=fired):
        fired[0] += 1

    for i in range(n):
        # Deterministic scatter: coprime stride spreads times across
        # [0, 997) with fractional offsets exercising bucket boundaries.
        engine.timeout(float((i * 7919) % 997) + (i % 13) * 0.125).callbacks.append(count)
    engine.run()
    assert fired[0] == n
    return n


def _bench_scheduler_single_app() -> int:
    """One application end-to-end on the VersaSlot Big.Little scheduler.

    Image Compression (the paper's flagship 3-in-1 example) at batch 100:
    large enough that the steady-state per-item path — launch gate,
    bundle pipeline, slot bookkeeping — dominates the one-time PR loads.
    """
    from .apps import ApplicationInstance, BENCHMARKS, reset_instance_ids
    from .config import DEFAULT_PARAMETERS
    from .core import VersaSlotBigLittle
    from .fpga import BoardConfig, FPGABoard
    from .sim import DEFAULT_ENGINE

    reset_instance_ids()
    spec = BENCHMARKS["IC"]
    batch = 100
    engine = DEFAULT_ENGINE()
    board = FPGABoard(engine, BoardConfig.BIG_LITTLE, DEFAULT_PARAMETERS)
    scheduler = VersaSlotBigLittle(board, DEFAULT_PARAMETERS)
    # Production memory config: campaigns aggregate digests online and
    # never retain per-request records (see ``execute_cell``).
    scheduler.stats.retain_responses = False
    scheduler.submit(ApplicationInstance(spec, batch, 0.0))
    engine.run(until=50_000_000)
    assert scheduler.stats.completions == 1
    return spec.task_count * batch


def _bench_scheduler_telemetry() -> int:
    """The single-app scheduler bench with the telemetry bus enabled.

    Identical workload to ``scheduler_single_app_run`` with exactly the
    telemetry configuration every campaign cell runs in production: a
    completion-only streaming-aggregation sink building the response
    digest online (see ``execute_cell``).  The per-item launch lane stays
    unsubscribed — launch aggregates already live in ``SchedulerStats``,
    and per-item launch *events* only materialize for the opt-in
    event-log/fingerprint sinks — so this pair measures the always-on
    observability overhead; ``--telemetry-gate`` fails the run when it
    exceeds the allowed fraction.
    """
    from .apps import ApplicationInstance, BENCHMARKS, reset_instance_ids
    from .config import DEFAULT_PARAMETERS
    from .core import VersaSlotBigLittle
    from .fpga import BoardConfig, FPGABoard
    from .sim import DEFAULT_ENGINE
    from .telemetry import StreamingAggregationSink, TelemetryBus

    reset_instance_ids()
    spec = BENCHMARKS["IC"]
    batch = 100
    engine = DEFAULT_ENGINE()
    board = FPGABoard(engine, BoardConfig.BIG_LITTLE, DEFAULT_PARAMETERS)
    scheduler = VersaSlotBigLittle(board, DEFAULT_PARAMETERS)
    scheduler.stats.retain_responses = False
    bus = TelemetryBus()
    sink = StreamingAggregationSink(kinds=("completion",))
    bus.attach(sink)
    scheduler.telemetry = bus
    bus.observe_board(board)  # no-op here, mirrors simulate_run's wiring
    scheduler.submit(ApplicationInstance(spec, batch, 0.0))
    engine.run(until=50_000_000)
    assert scheduler.stats.completions == 1
    assert sink.completions == 1 and sink.digest.count == 1
    return spec.task_count * batch


def _bench_scheduler_stress_sequence() -> int:
    """A full stress sequence (8 apps) through VersaSlot Big.Little.

    Runs the production digest-only telemetry config (``digest_only``):
    what campaigns actually ship, not the exact-sample debug retention.
    """
    from .apps import BENCHMARKS
    from .experiments.runner import run_sequence
    from .workloads import Condition, WorkloadGenerator

    arrivals = WorkloadGenerator(7).sequence(Condition.STRESS, n_apps=8)
    result = run_sequence("VersaSlot-BL", arrivals, digest_only=True)
    assert result.stats.completions == len(arrivals)
    assert result.responses.count == len(arrivals)
    return sum(BENCHMARKS[a.app_name].task_count * a.batch_size
               for a in arrivals)


def _bench_fig5_micro() -> int:
    """Reduced Fig. 5 matrix (every system, one sequence)."""
    from .experiments import run_fig5

    result = run_fig5(seed=1, sequence_count=1, n_apps=6)
    return len(result.reductions) * 6


def _kernel_name(engine_factory) -> str:
    """Registry name of a compare-gate engine factory.

    The campaign/fleet layers select kernels by registry name (cells must
    stay picklable), while the compare gate hands payloads a factory — so
    the full-run payloads map the factory back to its name.
    """
    if engine_factory is None:
        return "default"
    from .sim import Engine, WheelEngine
    from .verify.reference import ReferenceEngine

    if engine_factory is WheelEngine:
        return "wheel"
    if engine_factory is Engine:
        return "heap"
    if engine_factory is ReferenceEngine:
        return "reference"
    raise KeyError(f"no registered kernel name for {engine_factory!r}")


def _bench_campaign_cell_overhead(engine_factory=None) -> int:
    """Twelve short same-spec cells through the serial campaign backend.

    The cells share one :class:`WorkloadSpec` across seeds, sequence
    indices, and systems, so the measurement is dominated by the fixed
    per-cell costs campaigns pay at scale: arrival-sequence
    materialization (served from the worker-resident sequence cache after
    the first cell per ``(spec, seed, index)``), board/scheduler
    construction, and digest-only record assembly.
    """
    from .campaign.backend import CampaignCell, SerialBackend
    from .config import DEFAULT_PARAMETERS
    from .workloads import Condition, WorkloadSpec

    kernel = _kernel_name(engine_factory)
    workload = WorkloadSpec(condition=Condition.LOOSE, n_apps=2, sequence_count=2)
    cells = [
        CampaignCell(
            scenario="bench-cell-overhead",
            system=system,
            sequence_index=index,
            seed=seed,
            params=DEFAULT_PARAMETERS,
            workload=workload,
            kernel=kernel,
        )
        for seed in (0, 1, 2)
        for index in (0, 1)
        for system in ("Baseline", "VersaSlot-BL")
    ]
    records = SerialBackend().run(cells)
    assert len(records) == len(cells)
    assert not any(record.failed for record in records)
    return len(records)


def _bench_fleet_short_cells(engine_factory=None) -> int:
    """A small fleet deployment end-to-end through the orchestrator.

    Shrinks the smoke fleet to short shard cells so routing, dispatch
    planning, and record rollup — the fleet layer's own overhead — stay
    visible next to the simulation itself.
    """
    from .fleet import Fleet, get_fleet_scenario

    kernel = _kernel_name(engine_factory)
    scenario = get_fleet_scenario("fleet-smoke").scaled(n_apps=4, seeds=(0, 1))
    result = Fleet(scenario).run(jobs=1, kernel=kernel)
    assert len(result.records) == scenario.cell_count()
    assert not any(record.failed for record in result.records)
    return scenario.cell_count()


def _on_wheel(payload: Callable[..., int]) -> Callable[[], int]:
    """Bind a kernel payload to the timing-wheel backend."""

    def run() -> int:
        from .sim import WheelEngine

        return payload(WheelEngine)

    run.__doc__ = payload.__doc__
    return run


#: Registry, in reporting order.  The first two names are the PR-2
#: acceptance gates and must keep their pytest-benchmark counterparts'
#: names (see benchmarks/bench_kernel.py).  ``*_wheel`` variants run the
#: identical payload on the calendar-queue kernel so the trajectory keeps
#: both backends visible.
BENCHES: Tuple[BenchSpec, ...] = (
    BenchSpec("kernel_event_throughput", "events", _bench_event_throughput, iters=4),
    BenchSpec("scheduler_single_app_run", "items", _bench_scheduler_single_app, iters=4),
    BenchSpec("kernel_timeout_alloc", "events", _bench_timeout_alloc, iters=4),
    BenchSpec("kernel_resource_contention", "grants", _bench_resource_contention, iters=4),
    BenchSpec("kernel_condition_fanout", "events", _bench_condition_fanout, iters=2),
    BenchSpec("kernel_deep_pending", "events", _bench_deep_pending, iters=4),
    BenchSpec("kernel_event_throughput_wheel", "events",
              _on_wheel(_bench_event_throughput), iters=4),
    BenchSpec("kernel_timeout_alloc_wheel", "events",
              _on_wheel(_bench_timeout_alloc), iters=4),
    BenchSpec("kernel_deep_pending_wheel", "events",
              _on_wheel(_bench_deep_pending), iters=4),
    BenchSpec("scheduler_run_telemetry", "items", _bench_scheduler_telemetry, iters=4),
    BenchSpec("scheduler_stress_sequence", "items", _bench_scheduler_stress_sequence),
    BenchSpec("campaign_cell_overhead", "cells", _bench_campaign_cell_overhead, iters=2),
    BenchSpec("fleet_short_cells", "cells", _bench_fleet_short_cells),
    BenchSpec("fig5_micro", "runs", _bench_fig5_micro, quick=False),
)

#: Kernel payloads the ``--compare`` gate runs on both backends.
COMPARE_BENCHES: Tuple[Tuple[str, Callable[..., int]], ...] = (
    ("kernel_event_throughput", _bench_event_throughput),
    ("kernel_timeout_alloc", _bench_timeout_alloc),
    ("kernel_resource_contention", _bench_resource_contention),
    ("kernel_condition_fanout", _bench_condition_fanout),
    ("kernel_deep_pending", _bench_deep_pending),
    ("campaign_cell_overhead", _bench_campaign_cell_overhead),
    ("fleet_short_cells", _bench_fleet_short_cells),
)

#: Minimum candidate/base throughput ratio per compare bench.  The wheel
#: must *win* on the bare-delay hot lane (its slot register removes the
#: heap entirely there) and must not lose the deep-pending regime it was
#: built for; on allocation- and callback-bound benches the queue is a
#: minority of the cycle budget, so the floors only exclude real
#: regressions, not noise.
COMPARE_FLOORS: Dict[str, float] = {
    "kernel_event_throughput": 1.05,
    "kernel_timeout_alloc": 0.90,
    "kernel_deep_pending": 0.90,
    # Full-run payloads: the kernel is one cost among many (scheduler,
    # campaign bookkeeping), so the true ratio sits near 1.0 and the
    # per-round noise floor is wider than on the kernel micro-benches —
    # the floor only excludes a kernel change that drags whole campaign
    # cells down, not runner jitter.
    "campaign_cell_overhead": 0.85,
    "fleet_short_cells": 0.85,
}
DEFAULT_COMPARE_FLOOR = 0.80

def _measure_overhead_inprocess(pairs: int = 64) -> float:
    """One interpreter's estimate of the enabled-bus overhead.

    Alternates single executions of ``scheduler_single_app_run`` (bus
    detached) and ``scheduler_run_telemetry`` (production streaming bus
    attached) — so drift exposes both sides equally — and compares each
    side's *best single run*.  Best-of-N is the standard least-noise
    estimator used by every other bench here: a clean window reflects the
    true runtime, and a real overhead shifts the enabled side's clean
    windows by exactly that fraction.  (A min of per-pair *ratios* would
    instead pair a stalled baseline window with a clean enabled one and
    systematically underestimate.)
    """
    _bench_scheduler_single_app()  # warm-up both payloads
    _bench_scheduler_telemetry()
    best_base = best_enabled = float("inf")
    for _ in range(pairs):
        start = time.perf_counter()
        _bench_scheduler_single_app()
        best_base = min(best_base, time.perf_counter() - start)
        start = time.perf_counter()
        _bench_scheduler_telemetry()
        best_enabled = min(best_enabled, time.perf_counter() - start)
    return best_enabled / best_base - 1.0


def measure_telemetry_overhead(pairs: int = 64, processes: int = 5) -> float:
    """Fractional cost of the enabled telemetry bus.

    Takes the *median* of :func:`_measure_overhead_inprocess` across
    fresh interpreter processes: within one interpreter the paired
    best-of ratio is stable, but allocation/layout luck (ASLR, heap
    addresses) biases any single process by several percent in either
    direction — a bias no amount of in-process sampling removes.
    Sampling whole interpreters washes it out; a real overhead shifts
    every process's estimate, so the median tracks it faithfully.  Can
    come out slightly negative under residual noise; the gate only cares
    about the upper side.
    """
    if processes <= 1:
        return _measure_overhead_inprocess(pairs)
    import os
    import subprocess
    from pathlib import Path

    package_root = str(Path(__file__).resolve().parent.parent)
    env = dict(os.environ)
    env["PYTHONPATH"] = package_root + os.pathsep + env.get("PYTHONPATH", "")
    ratios = []
    for _ in range(processes):
        result = subprocess.run(
            [
                sys.executable,
                "-c",
                "from repro.bench import _measure_overhead_inprocess as m; "
                f"print(m({pairs}))",
            ],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        ratios.append(float(result.stdout.strip()))
    ratios.sort()
    return ratios[len(ratios) // 2]


def run_benches(
    quick: bool = False,
    rounds: Optional[int] = None,
    names: Optional[Sequence[str]] = None,
) -> List[BenchResult]:
    """Run the registered benchmarks and return their measurements.

    ``names`` overrides the ``quick`` selection: an explicitly requested
    benchmark always runs (``quick`` still shortens rounds/iterations).
    """
    if names is not None:
        unknown = set(names) - {spec.name for spec in BENCHES}
        if unknown:
            raise KeyError(
                f"unknown benchmark(s) {sorted(unknown)}; "
                f"available: {[spec.name for spec in BENCHES]}"
            )
        selected = [spec for spec in BENCHES if spec.name in names]
    else:
        selected = [spec for spec in BENCHES if not quick or spec.quick]
    # 12 full rounds, pinned: the PR-5 entry was recorded at 5 rounds
    # while seed/PR-2 used 12, which made best_s comparisons noisier than
    # they needed to be.  The default is now the trajectory's round count.
    n_rounds = rounds if rounds is not None else (2 if quick else 12)
    results = []
    for spec in selected:
        iters = max(1, spec.iters // 2) if quick else spec.iters
        spec.payload()  # warm-up: imports, allocator, branch caches
        timings = []
        units = 0
        for _ in range(n_rounds):
            start = time.perf_counter()
            for _ in range(iters):
                units = spec.payload()
            timings.append((time.perf_counter() - start) / iters)
        results.append(BenchResult(
            name=spec.name,
            unit=spec.unit,
            units_per_iter=units,
            iters=iters,
            rounds=n_rounds,
            best_s=min(timings),
            mean_s=sum(timings) / len(timings),
        ))
    return results


#: Hotspot lines printed per payload in ``--profile`` mode (the written
#: report keeps the full sorted listing).
PROFILE_TOP = 25


def run_profile(
    names: Optional[Sequence[str]] = None,
    quick: bool = False,
    out_dir: str = "results",
    top: int = PROFILE_TOP,
) -> List[Tuple[str, Path, str]]:
    """Profile the selected payloads with :mod:`cProfile`.

    One warm-up call (imports, allocator, branch caches) precedes one
    profiled call per payload — deterministic workloads make a single
    instrumented pass representative, and instrumentation overhead makes
    the *timings* advisory anyway: profiles are for finding where the
    cycles go, the bench rounds are for measuring them.  Each payload's
    full cumulative-sorted listing is written to
    ``<out_dir>/profile_<name>.txt``; returns ``(name, path, top_text)``
    triples where ``top_text`` is the first ``top`` hotspot lines.
    """
    import cProfile
    import io
    import pstats

    if names is not None:
        unknown = set(names) - {spec.name for spec in BENCHES}
        if unknown:
            raise KeyError(
                f"unknown benchmark(s) {sorted(unknown)}; "
                f"available: {[spec.name for spec in BENCHES]}"
            )
        selected = [spec for spec in BENCHES if spec.name in names]
    else:
        selected = [spec for spec in BENCHES if not quick or spec.quick]
    out_path = Path(out_dir)
    out_path.mkdir(parents=True, exist_ok=True)
    reports = []
    for spec in selected:
        spec.payload()  # warm-up
        profiler = cProfile.Profile()
        profiler.enable()
        try:
            spec.payload()
        finally:
            profiler.disable()
        stream = io.StringIO()
        stats = pstats.Stats(profiler, stream=stream)
        stats.sort_stats("cumulative").print_stats()
        full = stream.getvalue()
        path = out_path / f"profile_{spec.name}.txt"
        path.write_text(full)
        lines = full.splitlines()
        try:
            # The column-title row starts the entry listing; keep ``top``
            # rows of hotspots after it for the terminal summary.
            header = next(
                i for i, line in enumerate(lines)
                if line.lstrip().startswith("ncalls")
            )
            head = lines[header:header + 1 + top]
        except StopIteration:
            head = lines[:top]
        reports.append((spec.name, path, "\n".join(head)))
    return reports


@dataclass(frozen=True)
class CompareResult:
    """One kernel-vs-kernel measurement of a compare bench."""

    name: str
    candidate: str
    base: str
    candidate_throughput: float
    base_throughput: float
    floor: float
    #: Paired rounds both sides were measured at (recorded so a gate
    #: report is never silently compared across different round counts).
    rounds: int = 0

    @property
    def ratio(self) -> float:
        if self.base_throughput <= 0:
            return 0.0
        return self.candidate_throughput / self.base_throughput

    @property
    def ok(self) -> bool:
        return self.ratio >= self.floor


def run_compare(
    candidate: str = "wheel",
    base: str = "heap",
    rounds: Optional[int] = None,
    quick: bool = False,
) -> List[CompareResult]:
    """Run the kernel benches on two backends and compute ratios.

    Rounds are *paired* — each timed round runs the base then the
    candidate back-to-back — so slow container windows hit both sides,
    and the best-of-N ratio reflects the kernels rather than the noise.
    """
    from .verify.reference import resolve_kernel

    candidate_factory = resolve_kernel(candidate)
    base_factory = resolve_kernel(base)
    n_rounds = rounds if rounds is not None else (3 if quick else 12)
    results = []
    for name, payload in COMPARE_BENCHES:
        payload(base_factory)  # warm-up both backends
        payload(candidate_factory)
        best = {candidate: float("inf"), base: float("inf")}
        units = 0
        for _ in range(n_rounds):
            for kernel, factory in ((base, base_factory), (candidate, candidate_factory)):
                start = time.perf_counter()
                units = payload(factory)
                elapsed = time.perf_counter() - start
                if elapsed < best[kernel]:
                    best[kernel] = elapsed
        results.append(CompareResult(
            name=name,
            candidate=candidate,
            base=base,
            candidate_throughput=units / best[candidate],
            base_throughput=units / best[base],
            floor=COMPARE_FLOORS.get(name, DEFAULT_COMPARE_FLOOR),
            rounds=n_rounds,
        ))
    return results


def format_compare_table(results: Sequence[CompareResult]) -> str:
    lines = []
    if results:
        candidate, base = results[0].candidate, results[0].base
        lines.append(
            f"paired compare ({results[0].rounds} rounds, best-of): "
            f"{candidate} vs {base}"
        )
        lines.append(
            f"{'benchmark':<28s} {base:>14s} {candidate:>14s} "
            f"{'ratio':>8s} {'floor':>7s}"
        )
    for result in results:
        status = "" if result.ok else "  REGRESSION"
        lines.append(
            f"{result.name:<28s} {result.base_throughput:>12,.0f}/s "
            f"{result.candidate_throughput:>12,.0f}/s "
            f"{result.ratio:>7.2f}x {result.floor:>6.2f}x{status}"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Trajectory file
# ----------------------------------------------------------------------
def load_trajectory(path: Path) -> Dict[str, object]:
    """Read a trajectory file; an empty shell if it does not exist."""
    if not path.exists():
        return {"schema": BENCH_SCHEMA, "history": []}
    data = json.loads(path.read_text())
    if data.get("schema") != BENCH_SCHEMA or not isinstance(data.get("history"), list):
        raise ValueError(f"{path} is not a {BENCH_SCHEMA} trajectory file")
    return data


def make_entry(results: Sequence[BenchResult], note: str, quick: bool) -> Dict[str, object]:
    return {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "note": note,
        "quick": quick,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "results": {result.name: result.to_dict() for result in results},
    }


def append_entry(path: Path, entry: Dict[str, object]) -> Dict[str, object]:
    """Append ``entry`` to the trajectory at ``path`` (creating it)."""
    data = load_trajectory(path)
    data["history"].append(entry)
    path.write_text(json.dumps(data, indent=1) + "\n")
    return data


def latest_entry(data: Dict[str, object]) -> Optional[Dict[str, object]]:
    history = data.get("history") or []
    return history[-1] if history else None


def rounds_mismatches(
    results: Sequence[BenchResult],
    baseline: Dict[str, object],
) -> List[str]:
    """Benchmarks measured at a different round count than the baseline.

    ``best_s`` tightens with the number of rounds (more chances at a
    clean window), so gating a 2-round quick run against a 12-round
    entry — or vice versa — compares noise profiles, not code.  The
    caller refuses the comparison instead of gating on it.
    """
    mismatches = []
    base_results: Dict[str, Dict] = baseline.get("results", {})  # type: ignore[assignment]
    for result in results:
        base = base_results.get(result.name)
        if not base:
            continue
        base_rounds = base.get("rounds")
        if base_rounds is not None and int(base_rounds) != result.rounds:
            mismatches.append(
                f"{result.name}: measured at {result.rounds} rounds but the "
                f"baseline entry was recorded at {base_rounds}; rerun with "
                f"--rounds {base_rounds} (or re-pin the baseline)"
            )
    return mismatches


def compare_to_baseline(
    results: Sequence[BenchResult],
    baseline: Dict[str, object],
    max_regression: float,
) -> List[str]:
    """Throughput regressions of ``results`` vs a trajectory entry.

    Only benchmarks present in both are compared; returns one message per
    benchmark whose throughput fell below ``(1 - max_regression)`` of the
    baseline's.
    """
    failures = []
    base_results: Dict[str, Dict] = baseline.get("results", {})  # type: ignore[assignment]
    for result in results:
        base = base_results.get(result.name)
        if not base:
            continue
        base_tp = float(base["throughput"])
        floor = base_tp * (1.0 - max_regression)
        if result.throughput < floor:
            failures.append(
                f"{result.name}: {result.throughput:,.0f} {result.unit}/s is "
                f"{(1 - result.throughput / base_tp) * 100.0:.1f}% below the "
                f"baseline {base_tp:,.0f} (allowed: {max_regression * 100.0:.0f}%)"
            )
    return failures


def format_table(results: Sequence[BenchResult],
                 baseline: Optional[Dict[str, object]] = None) -> str:
    """Human-readable report, with a vs-baseline column when available."""
    base_results: Dict[str, Dict] = (baseline or {}).get("results", {})  # type: ignore[assignment]
    lines = [f"{'benchmark':<28s} {'throughput':>16s} {'best':>10s} {'vs baseline':>12s}"]
    for result in results:
        base = base_results.get(result.name)
        if base and float(base["throughput"]) > 0:
            ratio = result.throughput / float(base["throughput"])
            vs = f"{ratio:10.2f}x"
        else:
            vs = "-"
        lines.append(
            f"{result.name:<28s} {result.throughput:>11,.0f} {result.unit + '/s':<5s}"
            f" {result.best_s * 1e3:>8.2f}ms {vs:>12s}"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# CLI entry point (wired into ``repro bench``)
# ----------------------------------------------------------------------
def add_bench_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--quick", action="store_true",
                        help="fewer rounds and only the fast benchmarks (CI smoke)")
    parser.add_argument("--rounds", type=int, default=None,
                        help="override the number of timed rounds per benchmark")
    parser.add_argument("--only", action="append", default=None, metavar="NAME",
                        help="run only the named benchmark (repeatable)")
    parser.add_argument("--out", type=str, default=DEFAULT_OUT, metavar="PATH",
                        help=f"trajectory file to append to (default: {DEFAULT_OUT})")
    parser.add_argument("--no-write", action="store_true",
                        help="measure and report only; do not touch the trajectory")
    parser.add_argument("--baseline", type=str, default=None, metavar="PATH",
                        help="trajectory file whose newest entry gates regressions")
    parser.add_argument("--max-regression", type=float, default=0.30,
                        help="allowed fractional throughput drop vs the baseline "
                             "(default: 0.30)")
    parser.add_argument("--note", type=str, default="",
                        help="free-form label stored with the trajectory entry")
    parser.add_argument("--profile", action="store_true",
                        help="cProfile the selected payloads instead of timing "
                             "them: prints the top hotspots and writes the "
                             "full listing to results/profile_<name>.txt")
    parser.add_argument("--profile-dir", type=str, default="results",
                        metavar="DIR",
                        help="directory --profile reports are written under "
                             "(default: results)")
    parser.add_argument("--compare", type=str, default=None,
                        metavar="CANDIDATE,BASE",
                        help="run the kernel benches on two backends (e.g. "
                             "wheel,heap) and fail if the candidate falls "
                             "below the per-bench ratio floors")
    parser.add_argument("--telemetry-gate", type=float, default=None,
                        metavar="FRACTION",
                        help="fail when the enabled telemetry bus costs more "
                             "than FRACTION of scheduler_single_app_run "
                             "throughput (a separate paired measurement with "
                             "its own fixed sampling; --rounds does not "
                             "apply)")


def run_bench_command(args: argparse.Namespace) -> int:
    if getattr(args, "profile", False):
        # Profiling answers "where do the cycles go", not "how fast is
        # it" — it neither reads nor writes the trajectory.
        try:
            reports = run_profile(
                names=args.only, quick=args.quick, out_dir=args.profile_dir
            )
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
        for name, path, top_text in reports:
            print(f"== {name} (full listing: {path})")
            print(top_text)
            print()
        print(f"profiled {len(reports)} payload(s) under {args.profile_dir}/")
        return 0
    if args.compare is not None:
        # Compare mode is a standalone gate: it measures ratios, not
        # absolute throughputs, so it neither reads nor writes the
        # trajectory.
        parts = [part.strip() for part in args.compare.split(",")]
        if len(parts) != 2 or not all(parts):
            print(
                f"error: --compare wants CANDIDATE,BASE (e.g. wheel,heap), "
                f"got {args.compare!r}",
                file=sys.stderr,
            )
            return 2
        try:
            comparisons = run_compare(
                parts[0], parts[1], rounds=args.rounds, quick=args.quick
            )
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
        print(format_compare_table(comparisons))
        failures = [result for result in comparisons if not result.ok]
        if failures:
            print(
                f"\ncompare gate: {parts[0]} below floor on "
                f"{', '.join(result.name for result in failures)}",
                file=sys.stderr,
            )
            return 1
        print(f"\ncompare gate green: {parts[0]} within floors vs {parts[1]}")
        return 0
    try:
        results = run_benches(quick=args.quick, rounds=args.rounds, names=args.only)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    baseline_entry = None
    if args.baseline is not None:
        try:
            baseline_entry = latest_entry(load_trajectory(Path(args.baseline)))
        except (ValueError, json.JSONDecodeError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if baseline_entry is None:
            print(f"error: {args.baseline} has no history entries", file=sys.stderr)
            return 2
    print(format_table(results, baseline_entry))
    if baseline_entry is not None:
        # Refuse before recording: an off-protocol measurement would
        # pollute the trajectory with entries no later gate can use.
        mismatches = rounds_mismatches(results, baseline_entry)
        if mismatches:
            print("error: round-count mismatch vs baseline:", file=sys.stderr)
            for mismatch in mismatches:
                print(f"  {mismatch}", file=sys.stderr)
            return 2
    if not args.no_write:
        entry = make_entry(results, note=args.note, quick=args.quick)
        data = append_entry(Path(args.out), entry)
        print(f"\nappended entry #{len(data['history'])} to {args.out}")
    if baseline_entry is not None:
        failures = compare_to_baseline(results, baseline_entry, args.max_regression)
        if failures:
            print("\nthroughput regression vs baseline:", file=sys.stderr)
            for failure in failures:
                print(f"  {failure}", file=sys.stderr)
            return 1
        print(f"no regression vs baseline (tolerance "
              f"{args.max_regression * 100.0:.0f}%)")
    if args.telemetry_gate is not None:
        # Fixed sampling, independent of --rounds: the gate's paired
        # measurement has its own convergence needs (and cost).
        overhead = measure_telemetry_overhead()
        if overhead > args.telemetry_gate:
            print(
                f"\ntelemetry overhead gate: enabled bus costs "
                f"{overhead * 100.0:.1f}% of scheduler throughput "
                f"(allowed: {args.telemetry_gate * 100.0:.1f}%)",
                file=sys.stderr,
            )
            return 1
        print(
            f"telemetry overhead {overhead * 100.0:.1f}% within gate "
            f"({args.telemetry_gate * 100.0:.1f}%)"
        )
    return 0
