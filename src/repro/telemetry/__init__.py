"""Event-sourced telemetry: one typed event stream from kernel to reports.

The telemetry spine replaces ad-hoc measurement plumbing with a single
event-sourced pipeline:

* :mod:`repro.telemetry.events` — the typed :class:`TelemetryEvent`
  hierarchy (admission, arrival, launch, slot transition, preemption,
  migration, completion) and its JSON schema.
* :mod:`repro.telemetry.bus` — :class:`TelemetryBus`, the
  zero-cost-when-disabled fan-out the scheduler/fleet hot paths emit on.
* :mod:`repro.telemetry.sinks` — the built-in consumers: JSONL event log
  (replayable source of truth), streaming aggregation (bounded memory),
  and the verify-oracle fingerprint sink.
* :mod:`repro.telemetry.digest` — :class:`ResponseDigest`, the mergeable
  log-bucket histogram + Welford moments behind every percentile the
  reports print.
* :mod:`repro.telemetry.replay` — re-derive any report from an event log
  alone.
"""

from .bus import TelemetryBus, TelemetrySink
from .digest import (
    DIGEST_VERSION,
    GAMMA,
    MAX_TRACK_MS,
    MIN_TRACK_MS,
    N_BUCKETS,
    QUANTILE_REL_ERROR,
    ResponseDigest,
    bucket_bounds,
    bucket_representative,
    digest_of,
    merge_digests,
)
from .events import (
    ArrivalEvent,
    CompletionEvent,
    EVENT_SCHEMA,
    EVENT_TYPES,
    LaunchEvent,
    MigrationEvent,
    PreemptionEvent,
    RequestReroutedEvent,
    RequestShedEvent,
    ShardAdmissionEvent,
    ShardDownEvent,
    ShardRecoveredEvent,
    SlotTransitionEvent,
    TelemetryEvent,
    canonical_line,
    event_from_dict,
    event_kinds,
)
from .sinks import (
    FingerprintSink,
    JsonlEventLogSink,
    RecorderEventSink,
    StreamingAggregationSink,
)
from .replay import (
    iter_jsonl_payloads,
    load_events,
    read_event_log,
    replay_aggregation,
    replay_notifications,
    sniff_event_log,
    summarize_event_log,
)

__all__ = [
    "ArrivalEvent",
    "CompletionEvent",
    "DIGEST_VERSION",
    "EVENT_SCHEMA",
    "EVENT_TYPES",
    "FingerprintSink",
    "GAMMA",
    "JsonlEventLogSink",
    "LaunchEvent",
    "MAX_TRACK_MS",
    "MIN_TRACK_MS",
    "MigrationEvent",
    "N_BUCKETS",
    "PreemptionEvent",
    "QUANTILE_REL_ERROR",
    "RecorderEventSink",
    "RequestReroutedEvent",
    "RequestShedEvent",
    "ResponseDigest",
    "ShardAdmissionEvent",
    "ShardDownEvent",
    "ShardRecoveredEvent",
    "SlotTransitionEvent",
    "StreamingAggregationSink",
    "TelemetryBus",
    "TelemetryEvent",
    "TelemetrySink",
    "bucket_bounds",
    "bucket_representative",
    "canonical_line",
    "digest_of",
    "event_from_dict",
    "event_kinds",
    "iter_jsonl_payloads",
    "load_events",
    "merge_digests",
    "read_event_log",
    "replay_aggregation",
    "replay_notifications",
    "sniff_event_log",
    "summarize_event_log",
]
