"""The telemetry bus: one typed event stream, fanned out to sinks.

A :class:`TelemetryBus` is attached to a simulation (``simulate_run(...,
telemetry=bus)``) and receives every :class:`~repro.telemetry.events
.TelemetryEvent` the model emits.  Sinks subscribe with an optional kind
filter; the bus pre-computes the fan-out list per kind at attach time so
``emit`` is one dict lookup plus a short loop.

Zero cost when disabled
-----------------------
The hot emission sites (the per-batch-item launch gates in
``schedulers.runtime``) hoist ``scheduler.telemetry`` into a local and
null it out when no attached sink wants launch events — the steady-state
per-item overhead of a disabled bus is a single ``is not None`` test, and
no event object is ever constructed.  The same pattern guards every other
emission site (``if telemetry is not None``).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, TYPE_CHECKING

from .events import EVENT_TYPES, LaunchEvent, SlotTransitionEvent, TelemetryEvent

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..fpga.board import FPGABoard


class TelemetrySink:
    """Base sink: receives events whose kind passes the filter.

    Subclasses set :attr:`kinds` to an iterable of kind tags to subscribe
    to a subset of the stream (``None`` subscribes to everything) and
    implement :meth:`handle`.  :meth:`close` flushes/releases whatever the
    sink holds; the bus calls it once at the end of a run.

    A sink that only *aggregates* launch events may additionally define
    ``on_launch(time_ms, app_id, wait_ms, blocked)``: when every
    launch-subscribed sink provides it, the bus skips constructing the
    per-item :class:`LaunchEvent` object altogether — the difference
    between a few attribute adds and an allocation on the hottest model
    path.
    """

    __slots__ = ()

    #: Kind tags this sink wants, or ``None`` for the full stream.
    kinds: Optional[Iterable[str]] = None

    def handle(self, event: TelemetryEvent) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release resources (idempotent)."""


class TelemetryBus:
    """Fan a typed event stream out to subscribed sinks."""

    __slots__ = ("_sinks", "_by_kind", "_launch_fast", "wants_launch")

    def __init__(self, sinks: Iterable[TelemetrySink] = ()) -> None:
        self._sinks: List[TelemetrySink] = []
        self._by_kind: Dict[str, List[TelemetrySink]] = {
            kind: [] for kind in EVENT_TYPES
        }
        #: Bound ``on_launch`` fast-path handlers, or None when some
        #: launch sink needs the full event object.
        self._launch_fast: Optional[List] = []
        #: Hoisted by the per-item launch gates: when False, model code
        #: skips launch emission entirely.
        self.wants_launch = False
        for sink in sinks:
            self.attach(sink)

    @property
    def enabled(self) -> bool:
        """True once any sink is attached."""
        return bool(self._sinks)

    @property
    def sinks(self) -> List[TelemetrySink]:
        return list(self._sinks)

    def attach(self, sink: TelemetrySink) -> TelemetrySink:
        """Subscribe ``sink`` (honouring its ``kinds`` filter)."""
        wanted = sink.kinds
        if wanted is not None:
            unknown = [kind for kind in wanted if kind not in EVENT_TYPES]
            if unknown:
                raise ValueError(
                    f"sink {type(sink).__name__} subscribes to unknown "
                    f"event kind(s) {', '.join(unknown)}; "
                    f"known: {', '.join(EVENT_TYPES)}"
                )
        self._sinks.append(sink)
        for kind, fanout in self._by_kind.items():
            if wanted is None or kind in wanted:
                fanout.append(sink)
        launch_sinks = self._by_kind["launch"]
        self.wants_launch = bool(launch_sinks)
        if all(hasattr(s, "on_launch") for s in launch_sinks):
            self._launch_fast = [s.on_launch for s in launch_sinks]
        else:
            self._launch_fast = None
        return sink

    def wants(self, kind: str) -> bool:
        """Does any attached sink subscribe to ``kind``?"""
        return bool(self._by_kind[kind])

    def emit(self, event: TelemetryEvent) -> None:
        """Deliver one event to every subscribed sink."""
        for sink in self._by_kind[event.kind]:
            sink.handle(event)

    def emit_launch(
        self, time_ms: float, app_id: int, wait_ms: float, blocked: bool
    ) -> None:
        """Hot-path launch emission (one call per batch item).

        Callers gate on :attr:`wants_launch` first; aggregation-only
        configurations take the allocation-free ``on_launch`` fast path,
        and a :class:`LaunchEvent` is only materialized when some sink
        (event log, fingerprint) needs the object itself.
        """
        fast = self._launch_fast
        if fast is not None:
            for handler in fast:
                handler(time_ms, app_id, wait_ms, blocked)
            return
        event = LaunchEvent(time_ms, app_id, wait_ms, blocked)
        for sink in self._by_kind["launch"]:
            sink.handle(event)

    def observe_board(self, board: "FPGABoard") -> None:
        """Subscribe to every slot's state transitions.

        Attach all sinks *before* calling this: the observer is only
        installed when some sink wants slot events, keeping fully
        slot-indifferent configurations free of per-PR overhead.
        """
        fanout = self._by_kind["slot"]
        if not fanout:
            return

        for slot in board.slots:
            # One closure per slot with the name precomputed: ``slot.name``
            # is an f-string build, too costly per transition.
            def observer(slot, occupancy, _name=slot.name, _fanout=fanout) -> None:
                if occupancy is not None:
                    event = SlotTransitionEvent(
                        slot.engine.now, _name, slot.state.value,
                        occupancy.payload_name, occupancy.app_id,
                    )
                else:
                    event = SlotTransitionEvent(
                        slot.engine.now, _name, slot.state.value, "", -1
                    )
                for sink in _fanout:
                    sink.handle(event)

            slot.observers.append(observer)

    def close(self) -> None:
        """Close every attached sink (idempotent)."""
        for sink in self._sinks:
            sink.close()


__all__ = ["TelemetryBus", "TelemetrySink"]
