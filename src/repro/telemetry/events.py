"""The typed telemetry event hierarchy.

Every measurable thing that happens in a simulation is one of these
event kinds, emitted from the scheduler/fleet hot paths onto a
:class:`~repro.telemetry.bus.TelemetryBus`:

========== =========================================================
kind       emitted when
========== =========================================================
admission  the fleet front-end routes an arrival to a shard
arrival    a scheduler accepts a submitted application
launch     a batch item acquires the scheduler core (one per item)
slot       a reconfigurable slot changes state (PR begin/done, release)
preemption a task run vacates its slot at an item boundary
migration  a waiting app is extracted for cross-board migration
completion an application finishes (carries the exact response time)
shard-down a fleet shard left service (kill or completed drain)
shard-up   a downed shard finished warmup and serves again
reroute    an admitted request moved off a dead shard onto a live one
shed       the degraded-mode front-end explicitly refused a request
========== =========================================================

Events are deliberately *plain* ``__slots__`` classes with positional
constructors — a launch event is created once per batch item on the
hottest model path, so no dataclass machinery, no kwargs.  Each event
serializes to one JSON object (``to_dict``/``event_from_dict``) and to a
canonical pipe-delimited line (``canonical_line``) whose stream hash the
verify oracle compares across kernels.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, Tuple, Type

#: Bumped whenever the on-disk event shape changes incompatibly.
EVENT_SCHEMA = "repro-telemetry/1"


class TelemetryEvent:
    """Base event: a kind tag plus the simulation time it happened at."""

    __slots__ = ("time_ms",)

    kind = "?"
    #: Payload attribute names, in serialization order.
    _fields: Tuple[str, ...] = ()

    def payload(self) -> Dict[str, Any]:
        return {name: getattr(self, name) for name in self._fields}

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"t": self.time_ms, "kind": self.kind}
        for name in self._fields:
            out[name] = getattr(self, name)
        return out

    def __eq__(self, other: object) -> bool:
        return (
            type(other) is type(self)
            and other.time_ms == self.time_ms  # type: ignore[attr-defined]
            and all(
                getattr(other, name) == getattr(self, name)
                for name in self._fields
            )
        )

    def __hash__(self) -> int:  # events are compared in tests
        return hash((self.kind, self.time_ms))

    def __repr__(self) -> str:
        fields = ", ".join(f"{n}={getattr(self, n)!r}" for n in self._fields)
        return f"<{type(self).__name__} t={self.time_ms} {fields}>"


class ShardAdmissionEvent(TelemetryEvent):
    """The fleet front-end routed one arrival to a shard."""

    __slots__ = ("app", "batch", "shard")
    kind = "admission"
    _fields = ("app", "batch", "shard")

    def __init__(self, time_ms: float, app: str, batch: int, shard: int) -> None:
        self.time_ms = time_ms
        self.app = app
        self.batch = batch
        self.shard = shard


class ArrivalEvent(TelemetryEvent):
    """A scheduler accepted a submitted application."""

    __slots__ = ("app", "app_id", "batch")
    kind = "arrival"
    _fields = ("app", "app_id", "batch")

    def __init__(self, time_ms: float, app: str, app_id: int, batch: int) -> None:
        self.time_ms = time_ms
        self.app = app
        self.app_id = app_id
        self.batch = batch


class LaunchEvent(TelemetryEvent):
    """One batch item acquired the scheduler core and launched."""

    __slots__ = ("app_id", "wait_ms", "blocked")
    kind = "launch"
    _fields = ("app_id", "wait_ms", "blocked")

    def __init__(self, time_ms: float, app_id: int, wait_ms: float, blocked: bool) -> None:
        self.time_ms = time_ms
        self.app_id = app_id
        self.wait_ms = wait_ms
        self.blocked = blocked


class SlotTransitionEvent(TelemetryEvent):
    """A reconfigurable slot changed state.

    ``state`` is the slot's *new* state (``reconfiguring``, ``loaded``,
    ``idle``); ``payload``/``app_id`` describe the installed occupancy
    (empty/-1 while reconfiguring or idle).  A ``loaded`` transition is
    exactly one completed partial reconfiguration.
    """

    __slots__ = ("slot", "state", "payload_name", "app_id")
    kind = "slot"
    _fields = ("slot", "state", "payload_name", "app_id")

    def __init__(
        self, time_ms: float, slot: str, state: str, payload_name: str, app_id: int
    ) -> None:
        self.time_ms = time_ms
        self.slot = slot
        self.state = state
        self.payload_name = payload_name
        self.app_id = app_id


class PreemptionEvent(TelemetryEvent):
    """A task run vacated its slot at an item boundary."""

    __slots__ = ("app", "payload_name")
    kind = "preemption"
    _fields = ("app", "payload_name")

    def __init__(self, time_ms: float, app: str, payload_name: str) -> None:
        self.time_ms = time_ms
        self.app = app
        self.payload_name = payload_name


class MigrationEvent(TelemetryEvent):
    """A waiting application was extracted for cross-board migration."""

    __slots__ = ("app", "app_id")
    kind = "migration"
    _fields = ("app", "app_id")

    def __init__(self, time_ms: float, app: str, app_id: int) -> None:
        self.time_ms = time_ms
        self.app = app
        self.app_id = app_id


class ShardDownEvent(TelemetryEvent):
    """A fleet shard left service (crash kill or completed drain)."""

    __slots__ = ("shard", "reason")
    kind = "shard-down"
    _fields = ("shard", "reason")

    def __init__(self, time_ms: float, shard: int, reason: str) -> None:
        self.time_ms = time_ms
        self.shard = shard
        self.reason = reason


class ShardRecoveredEvent(TelemetryEvent):
    """A downed shard finished warmup and is serving again."""

    __slots__ = ("shard", "downtime_ms")
    kind = "shard-up"
    _fields = ("shard", "downtime_ms")

    def __init__(self, time_ms: float, shard: int, downtime_ms: float) -> None:
        self.time_ms = time_ms
        self.shard = shard
        self.downtime_ms = downtime_ms


class RequestReroutedEvent(TelemetryEvent):
    """An admitted request moved off a dead shard onto a live one."""

    __slots__ = ("app", "batch", "from_shard", "to_shard")
    kind = "reroute"
    _fields = ("app", "batch", "from_shard", "to_shard")

    def __init__(
        self, time_ms: float, app: str, batch: int, from_shard: int,
        to_shard: int,
    ) -> None:
        self.time_ms = time_ms
        self.app = app
        self.batch = batch
        self.from_shard = from_shard
        self.to_shard = to_shard


class RequestShedEvent(TelemetryEvent):
    """The degraded-mode front-end explicitly refused a request."""

    __slots__ = ("app", "batch", "reason")
    kind = "shed"
    _fields = ("app", "batch", "reason")

    def __init__(
        self, time_ms: float, app: str, batch: int, reason: str
    ) -> None:
        self.time_ms = time_ms
        self.app = app
        self.batch = batch
        self.reason = reason


class CompletionEvent(TelemetryEvent):
    """An application finished; carries the exact response time."""

    __slots__ = ("app", "app_id", "arrival_ms", "response_ms")
    kind = "completion"
    _fields = ("app", "app_id", "arrival_ms", "response_ms")

    def __init__(
        self, time_ms: float, app: str, app_id: int, arrival_ms: float,
        response_ms: float,
    ) -> None:
        self.time_ms = time_ms
        self.app = app
        self.app_id = app_id
        self.arrival_ms = arrival_ms
        self.response_ms = response_ms


#: Registered event classes by kind tag (the closed schema).
EVENT_TYPES: Dict[str, Type[TelemetryEvent]] = {
    cls.kind: cls
    for cls in (
        ShardAdmissionEvent,
        ArrivalEvent,
        LaunchEvent,
        SlotTransitionEvent,
        PreemptionEvent,
        MigrationEvent,
        CompletionEvent,
        ShardDownEvent,
        ShardRecoveredEvent,
        RequestReroutedEvent,
        RequestShedEvent,
    )
}


def event_from_dict(payload: Dict[str, Any]) -> TelemetryEvent:
    """Rebuild a typed event from its ``to_dict`` form."""
    try:
        cls = EVENT_TYPES[payload["kind"]]
    except KeyError:
        raise ValueError(
            f"unknown telemetry event kind {payload.get('kind')!r}; "
            f"known: {', '.join(EVENT_TYPES)}"
        ) from None
    try:
        return cls(payload["t"], *(payload[name] for name in cls._fields))
    except KeyError as exc:
        raise ValueError(
            f"telemetry event {payload.get('kind')!r} is missing field "
            f"{exc.args[0]!r}"
        ) from None


def canonical_line(event: TelemetryEvent) -> str:
    """One-line canonical rendering, hashable across processes.

    Matches the trace-line convention (time to 9 decimals, kind, payload
    JSON with sorted keys) so telemetry-stream digests sit next to trace
    digests in fingerprints.
    """
    return (
        f"{event.time_ms:.9f}|{event.kind}|"
        f"{json.dumps(event.payload(), sort_keys=True)}"
    )


def event_kinds() -> Iterable[str]:
    """All registered kind tags, in schema order."""
    return tuple(EVENT_TYPES)


__all__ = [
    "ArrivalEvent",
    "CompletionEvent",
    "EVENT_SCHEMA",
    "EVENT_TYPES",
    "LaunchEvent",
    "MigrationEvent",
    "PreemptionEvent",
    "RequestReroutedEvent",
    "RequestShedEvent",
    "ShardAdmissionEvent",
    "ShardDownEvent",
    "ShardRecoveredEvent",
    "SlotTransitionEvent",
    "TelemetryEvent",
    "canonical_line",
    "event_from_dict",
    "event_kinds",
]
