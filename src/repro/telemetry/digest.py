"""Mergeable, bounded-memory response-time digests.

:class:`ResponseDigest` is the streaming replacement for raw
``response_times_ms`` lists: a fixed-capacity log-bucket histogram for
quantiles, an exact running sum for the mean, and Welford accumulators for
the variance.  Memory is O(1) in the number of samples (bounded by
:data:`N_BUCKETS` histogram entries), digests merge associatively across
shards, and the whole state round-trips through JSON.

Accuracy contract
-----------------
* ``mean()`` is **exact**: the running sum adds samples left to right, so
  ``digest.mean() == sum(samples) / len(samples)`` bit for bit when fed in
  the same order (the figure pipelines rely on this).
* ``percentile(q)`` carries a **bounded relative error**: buckets grow
  geometrically by :data:`GAMMA` and report their geometric midpoint, so
  the estimate is within a factor of ``GAMMA ** 0.5`` (≈ ``±0.5%`` at the
  default ``GAMMA = 1.01``) of the linearly-interpolated empirical
  percentile — see :data:`QUANTILE_REL_ERROR`.  ``percentile(0)`` and
  ``percentile(100)`` return the exact min/max.
* Values below :data:`MIN_TRACK_MS` (1 µs) collapse into one underflow
  bucket reported as 0.0; values above the top bucket
  (≈ :data:`MAX_TRACK_MS`, ~32 simulated hours) clamp to it.  Both are far
  outside the response times this system produces.
* ``variance()`` uses Welford accumulators (Chan's formula under
  ``merge``), so it is numerically stable but only float-accurate —
  the quantile state, by contrast, merges *exactly* (integer bucket
  counts), as do ``count``/``min``/``max``.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Mapping, Tuple

#: Geometric bucket growth factor; the knob trading memory for accuracy.
GAMMA = 1.01

#: Smallest tracked response (ms); smaller values land in the underflow
#: bucket and report as 0.0.
MIN_TRACK_MS = 1e-3

#: Histogram capacity: bucket 0 is the underflow bucket, buckets
#: ``1..N_BUCKETS-1`` cover ``[MIN_TRACK_MS, MAX_TRACK_MS)`` and the top
#: bucket clamps everything above.
N_BUCKETS = 2560

#: Upper edge of the highest non-clamping bucket (~1.1e8 ms).
MAX_TRACK_MS = MIN_TRACK_MS * GAMMA ** (N_BUCKETS - 1)

#: Documented quantile error: relative to the linearly-interpolated
#: empirical percentile of the ingested samples.
QUANTILE_REL_ERROR = GAMMA ** 0.5 - 1.0

_LOG_GAMMA = math.log(GAMMA)

#: Serialization version (bumped on incompatible state changes).
DIGEST_VERSION = 1


class ResponseDigest:
    """Streaming response-time summary with O(1) memory.

    Quacks like :class:`repro.metrics.response.ResponseStats` for the
    reporting layer: ``count``, ``mean()``, ``percentile(q)``, ``p95()``,
    ``p99()`` — so records carrying a digest flow through the same figure
    and rollup code paths as records carrying raw samples.
    """

    __slots__ = ("count", "sum_ms", "min_ms", "max_ms", "_wmean", "_m2",
                 "_buckets")

    def __init__(self) -> None:
        self.count = 0
        self.sum_ms = 0.0
        self.min_ms = math.inf
        self.max_ms = -math.inf
        self._wmean = 0.0
        self._m2 = 0.0
        self._buckets: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def add(self, value_ms: float) -> None:
        """Fold one response time into the digest."""
        if value_ms < 0:
            raise ValueError(f"negative response time {value_ms}")
        self.count = count = self.count + 1
        self.sum_ms += value_ms
        if value_ms < self.min_ms:
            self.min_ms = value_ms
        if value_ms > self.max_ms:
            self.max_ms = value_ms
        delta = value_ms - self._wmean
        self._wmean += delta / count
        self._m2 += delta * (value_ms - self._wmean)
        if value_ms < MIN_TRACK_MS:
            bucket = 0
        else:
            bucket = int(math.log(value_ms / MIN_TRACK_MS) / _LOG_GAMMA) + 1
            if bucket >= N_BUCKETS:
                bucket = N_BUCKETS - 1
        buckets = self._buckets
        buckets[bucket] = buckets.get(bucket, 0) + 1

    def extend(self, values_ms: Iterable[float]) -> None:
        """Fold a batch of response times, in order.

        Deliberately a loop of :meth:`add`: a digest built from a list is
        bit-identical to one fed the same values one event at a time, so
        the streaming sink and the batch path can be compared exactly.
        """
        add = self.add
        for value in values_ms:
            add(value)

    def merge(self, other: "ResponseDigest") -> "ResponseDigest":
        """Fold another digest in (shard rollups); returns ``self``.

        Bucket counts, ``count``, ``sum_ms``, ``min``/``max`` merge
        exactly and associatively; the Welford moments use Chan's parallel
        formula (float-accurate, order-sensitive in the last bits).
        """
        if other.count == 0:
            return self
        if self.count == 0:
            self.count = other.count
            self.sum_ms = other.sum_ms
            self.min_ms = other.min_ms
            self.max_ms = other.max_ms
            self._wmean = other._wmean
            self._m2 = other._m2
            self._buckets = dict(other._buckets)
            return self
        total = self.count + other.count
        delta = other._wmean - self._wmean
        self._m2 = (
            self._m2
            + other._m2
            + delta * delta * self.count * other.count / total
        )
        self._wmean += delta * other.count / total
        self.sum_ms += other.sum_ms
        self.count = total
        if other.min_ms < self.min_ms:
            self.min_ms = other.min_ms
        if other.max_ms > self.max_ms:
            self.max_ms = other.max_ms
        buckets = self._buckets
        for bucket, n in other._buckets.items():
            buckets[bucket] = buckets.get(bucket, 0) + n
        return self

    # ------------------------------------------------------------------
    # Queries (ResponseStats-compatible surface)
    # ------------------------------------------------------------------
    def mean(self) -> float:
        self._require_samples()
        return self.sum_ms / self.count

    def variance(self) -> float:
        """Population variance (Welford)."""
        self._require_samples()
        return self._m2 / self.count

    def percentile(self, q: float) -> float:
        """The q-th percentile (q in [0, 100]), within the error bound.

        Mirrors ``numpy.percentile``'s linear interpolation over order
        statistics, but over bucket representatives: the two order
        statistics straddling the nominal rank are located in the
        histogram and interpolated, clamped to the exact [min, max].
        """
        self._require_samples()
        if not (0.0 <= q <= 100.0):
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if q == 0.0:
            return self.min_ms
        if q == 100.0 or self.count == 1:
            return self.max_ms
        rank = q / 100.0 * (self.count - 1)
        lower_rank = int(math.floor(rank))
        frac = rank - lower_rank
        lower = self._value_at_rank(lower_rank)
        if frac == 0.0:
            estimate = lower
        else:
            upper = self._value_at_rank(lower_rank + 1)
            estimate = lower + (upper - lower) * frac
        return min(max(estimate, self.min_ms), self.max_ms)

    def p95(self) -> float:
        return self.percentile(95.0)

    def p99(self) -> float:
        return self.percentile(99.0)

    def _value_at_rank(self, rank: int) -> float:
        """Representative value of the 0-indexed ``rank``-th order stat."""
        seen = 0
        for bucket, n in sorted(self._buckets.items()):
            seen += n
            if rank < seen:
                return bucket_representative(bucket)
        return self.max_ms  # unreachable unless rank >= count

    def _require_samples(self) -> None:
        if self.count == 0:
            raise ValueError("no response samples recorded")

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-ready state (bucket keys become strings)."""
        return {
            "v": DIGEST_VERSION,
            "gamma": GAMMA,
            "min_track_ms": MIN_TRACK_MS,
            "count": self.count,
            "sum_ms": self.sum_ms,
            "min_ms": self.min_ms if self.count else 0.0,
            "max_ms": self.max_ms if self.count else 0.0,
            "wmean": self._wmean,
            "m2": self._m2,
            "buckets": {str(b): n for b, n in sorted(self._buckets.items())},
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "ResponseDigest":
        version = payload.get("v", DIGEST_VERSION)
        if version != DIGEST_VERSION:
            raise ValueError(
                f"digest version {version} not supported (expected {DIGEST_VERSION})"
            )
        if payload.get("gamma", GAMMA) != GAMMA or (
            payload.get("min_track_ms", MIN_TRACK_MS) != MIN_TRACK_MS
        ):
            raise ValueError(
                "digest bucket layout mismatch: cannot merge digests built "
                f"with gamma={payload.get('gamma')!r}, "
                f"min_track_ms={payload.get('min_track_ms')!r}"
            )
        digest = cls()
        digest.count = int(payload["count"])  # type: ignore[arg-type]
        digest.sum_ms = float(payload["sum_ms"])  # type: ignore[arg-type]
        if digest.count:
            digest.min_ms = float(payload["min_ms"])  # type: ignore[arg-type]
            digest.max_ms = float(payload["max_ms"])  # type: ignore[arg-type]
        digest._wmean = float(payload["wmean"])  # type: ignore[arg-type]
        digest._m2 = float(payload["m2"])  # type: ignore[arg-type]
        digest._buckets = {
            int(bucket): int(n)
            for bucket, n in payload.get("buckets", {}).items()  # type: ignore[union-attr]
        }
        return digest

    def __repr__(self) -> str:
        if not self.count:
            return "<ResponseDigest empty>"
        return (
            f"<ResponseDigest n={self.count} mean={self.mean():.2f}ms "
            f"buckets={len(self._buckets)}>"
        )


def bucket_representative(bucket: int) -> float:
    """Reported value of one histogram bucket (geometric midpoint)."""
    if bucket <= 0:
        return 0.0
    return MIN_TRACK_MS * GAMMA ** (bucket - 0.5)


def bucket_bounds(bucket: int) -> Tuple[float, float]:
    """[low, high) value range of one histogram bucket."""
    if bucket <= 0:
        return (0.0, MIN_TRACK_MS)
    return (
        MIN_TRACK_MS * GAMMA ** (bucket - 1),
        MIN_TRACK_MS * GAMMA ** bucket,
    )


def digest_of(values_ms: Iterable[float]) -> ResponseDigest:
    """Convenience constructor: a digest of one sample batch."""
    digest = ResponseDigest()
    digest.extend(values_ms)
    return digest


def merge_digests(digests: Iterable[ResponseDigest]) -> ResponseDigest:
    """Left-fold merge of many digests into a fresh one."""
    merged = ResponseDigest()
    for digest in digests:
        merged.merge(digest)
    return merged


__all__ = [
    "DIGEST_VERSION",
    "GAMMA",
    "MAX_TRACK_MS",
    "MIN_TRACK_MS",
    "N_BUCKETS",
    "QUANTILE_REL_ERROR",
    "ResponseDigest",
    "bucket_bounds",
    "bucket_representative",
    "digest_of",
    "merge_digests",
]
