"""Built-in telemetry sinks: event log, streaming aggregation, fingerprint.

* :class:`JsonlEventLogSink` — the replayable source of truth: an
  append-only JSONL file (header line + one event per line) from which
  any report can be re-derived without re-simulating
  (:mod:`repro.telemetry.replay`).
* :class:`StreamingAggregationSink` — bounded-memory online aggregation:
  a mergeable :class:`~repro.telemetry.digest.ResponseDigest` plus O(1)
  counters, regardless of how many requests flow through.
* :class:`FingerprintSink` — feeds the verify oracle: exact response and
  finish times plus a running SHA-256 over the canonical event stream, so
  two kernels must emit bit-identical telemetry to compare equal.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Union

from .bus import TelemetrySink
from .digest import ResponseDigest
from .events import EVENT_SCHEMA, TelemetryEvent, canonical_line


class JsonlEventLogSink(TelemetrySink):
    """Append-only JSONL event log (the replayable source of truth).

    The first line is a schema header carrying caller metadata (scenario,
    system, seed...); every further line is one event.  ``close`` flushes
    and fsyncs, so a completed run's log survives a crash of whatever
    comes after it.
    """

    kinds = None  # the log is the source of truth: every kind

    def __init__(
        self,
        path: Union[str, Path],
        meta: Optional[Dict[str, object]] = None,
    ) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.events_written = 0
        self._handle = self.path.open("w", encoding="utf-8")
        header = {"schema": EVENT_SCHEMA, "meta": dict(meta or {})}
        self._handle.write(json.dumps(header, sort_keys=True) + "\n")

    def handle(self, event: TelemetryEvent) -> None:
        self._handle.write(json.dumps(event.to_dict(), sort_keys=True) + "\n")
        self.events_written += 1

    def close(self) -> None:
        if self._handle.closed:
            return
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._handle.close()


class StreamingAggregationSink(TelemetrySink):
    """Online aggregation with O(1) memory.

    Maintains a response-time :class:`ResponseDigest` plus plain counters
    for every event kind, so a cell serving millions of requests needs no
    per-sample storage.  ``kinds`` restricts the subscription — e.g.
    ``("completion",)`` for digest-only collection with zero launch-path
    overhead.
    """

    __slots__ = (
        "kinds", "digest", "admissions", "arrivals", "launches",
        "launch_blocked", "launch_wait_ms", "slot_transitions", "pr_loads",
        "preemptions", "migrations", "completions", "makespan_ms",
        "events_seen", "sheds", "reroutes", "shard_downs", "shard_ups",
    )

    def __init__(self, kinds=None) -> None:
        self.kinds = tuple(kinds) if kinds is not None else None
        self.digest = ResponseDigest()
        self.admissions = 0
        self.arrivals = 0
        self.launches = 0
        self.launch_blocked = 0
        self.launch_wait_ms = 0.0
        self.slot_transitions = 0
        self.pr_loads = 0
        self.preemptions = 0
        self.migrations = 0
        self.completions = 0
        self.makespan_ms = 0.0
        self.events_seen = 0
        self.sheds = 0
        self.reroutes = 0
        self.shard_downs = 0
        self.shard_ups = 0

    def on_launch(
        self, time_ms: float, app_id: int, wait_ms: float, blocked: bool
    ) -> None:
        """Allocation-free launch fast path (see ``TelemetrySink``)."""
        self.events_seen += 1
        self.launches += 1
        self.launch_wait_ms += wait_ms
        if blocked:
            self.launch_blocked += 1

    def handle(self, event: TelemetryEvent) -> None:
        self.events_seen += 1
        kind = event.kind
        if kind == "launch":
            self.launches += 1
            self.launch_wait_ms += event.wait_ms  # type: ignore[attr-defined]
            if event.blocked:  # type: ignore[attr-defined]
                self.launch_blocked += 1
        elif kind == "completion":
            self.completions += 1
            self.digest.add(event.response_ms)  # type: ignore[attr-defined]
            if event.time_ms > self.makespan_ms:
                self.makespan_ms = event.time_ms
        elif kind == "slot":
            self.slot_transitions += 1
            if event.state == "loaded":  # type: ignore[attr-defined]
                self.pr_loads += 1
        elif kind == "arrival":
            self.arrivals += 1
        elif kind == "admission":
            self.admissions += 1
        elif kind == "preemption":
            self.preemptions += 1
        elif kind == "migration":
            self.migrations += 1
        elif kind == "shed":
            self.sheds += 1
        elif kind == "reroute":
            self.reroutes += 1
        elif kind == "shard-down":
            self.shard_downs += 1
        elif kind == "shard-up":
            self.shard_ups += 1

    def counters(self) -> Dict[str, float]:
        """The aggregate counters as one flat dict (CLI/JSON surface)."""
        return {
            "admissions": self.admissions,
            "arrivals": self.arrivals,
            "launches": self.launches,
            "launch_blocked": self.launch_blocked,
            "launch_wait_ms": self.launch_wait_ms,
            "slot_transitions": self.slot_transitions,
            "pr_loads": self.pr_loads,
            "preemptions": self.preemptions,
            "migrations": self.migrations,
            "completions": self.completions,
            "sheds": self.sheds,
            "reroutes": self.reroutes,
            "shard_downs": self.shard_downs,
            "shard_ups": self.shard_ups,
            "makespan_ms": self.makespan_ms,
            "events": self.events_seen,
        }


class RecorderEventSink(TelemetrySink):
    """Flow typed events into a durable event store's notification log.

    Events buffer in memory and append to the store as one transactional
    batch on :meth:`flush` / :meth:`close` (``batch_size`` bounds the
    buffer for long-running streams).  Once appended, the events are
    globally ordered with the campaign's records and snapshots, so
    store-level projections (e.g.
    :class:`~repro.store.projections.TelemetryCounterProjection`) fold
    them incrementally without re-reading per-cell JSONL files.
    """

    kinds = None

    def __init__(self, store, batch_size: int = 1024) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.store = store
        self.batch_size = batch_size
        self.events_written = 0
        self._pending: List[TelemetryEvent] = []

    def handle(self, event: TelemetryEvent) -> None:
        self._pending.append(event)
        if len(self._pending) >= self.batch_size:
            self.flush()

    def flush(self) -> None:
        """Append the buffered events as one atomic batch."""
        if not self._pending:
            return
        self.store.append_events(self._pending)
        self.events_written += len(self._pending)
        self._pending = []

    def close(self) -> None:
        self.flush()


class FingerprintSink(TelemetrySink):
    """Condense the stream into what the differential oracle compares.

    Collects the exact per-completion response/finish times (replacing the
    oracle's bespoke ``SchedulerStats.responses`` plumbing) and hashes the
    canonical rendering of *every* event, so any reordering or value drift
    between kernels — even in events the oracle does not otherwise
    inspect — surfaces as a fingerprint divergence.
    """

    kinds = None

    def __init__(self) -> None:
        self.completions = 0
        self.response_times_ms: List[float] = []
        self.finish_times_ms: List[float] = []
        self.event_count = 0
        self._sha = hashlib.sha256()

    def handle(self, event: TelemetryEvent) -> None:
        self.event_count += 1
        self._sha.update(canonical_line(event).encode("utf-8"))
        self._sha.update(b"\n")
        if event.kind == "completion":
            self.completions += 1
            self.response_times_ms.append(event.response_ms)  # type: ignore[attr-defined]
            self.finish_times_ms.append(event.time_ms)

    def hexdigest(self) -> str:
        """SHA-256 of the canonical event stream so far."""
        return self._sha.hexdigest()


__all__ = [
    "FingerprintSink",
    "JsonlEventLogSink",
    "RecorderEventSink",
    "StreamingAggregationSink",
]
