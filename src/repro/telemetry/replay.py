"""Event-log replay: re-derive reports from the stream alone.

The JSONL event log written by :class:`~repro.telemetry.sinks
.JsonlEventLogSink` is the run's source of truth — these helpers read it
back into typed events and re-run the streaming aggregation over it, so
``repro replay <events.jsonl>`` (and ``repro telemetry summarize``)
reproduce a run's response statistics, makespan and counters without
touching the simulator.  Re-derivation is bit-identical: the aggregation
sink folds replayed completion events in the same order with the same
floats the live run emitted.
"""

from __future__ import annotations

import json
import warnings
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, TextIO, Tuple, Union

from .events import EVENT_SCHEMA, TelemetryEvent, event_from_dict
from .sinks import StreamingAggregationSink


def iter_jsonl_payloads(
    handle: TextIO,
    path: Union[str, Path],
    first_line_no: int = 1,
    what: str = "record",
    on_skip: Optional[Callable[[int], None]] = None,
) -> Iterator[Tuple[int, dict]]:
    """Stream ``(line_no, parsed_json)`` pairs from a JSONL handle.

    The shared crash-tolerant reader behind event logs and the campaign
    results store: lines stream one at a time (O(1) memory), a malformed
    *interior* line raises with its location, and a malformed *final*
    line — the only line an interrupted writer can truncate — is skipped
    with a warning.  Lines are parsed with one line of lookahead so
    "final" is known without reading the file twice.

    ``on_skip`` takes over skip reporting: when given, it is called with
    the skipped line number and no warning is emitted here — the caller
    owns deduplication and accounting (see ``ResultsStore.load``).
    """
    pending: Tuple[int, str] = (0, "")
    for line_no, line in enumerate(handle, start=first_line_no):
        line = line.strip()
        if not line:
            continue
        if pending[1]:
            prev_no, prev_line = pending
            try:
                payload = json.loads(prev_line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{prev_no}: malformed {what} ({exc})"
                ) from None
            yield prev_no, payload
        pending = (line_no, line)
    if pending[1]:
        last_no, last_line = pending
        try:
            payload = json.loads(last_line)
        except json.JSONDecodeError:
            if on_skip is not None:
                on_skip(last_no)
            else:
                warnings.warn(
                    f"{path}:{last_no}: truncated trailing {what} skipped "
                    "(interrupted writer?)",
                    stacklevel=2,
                )
            return
        yield last_no, payload


def sniff_event_log(path: Union[str, Path]) -> bool:
    """True iff ``path`` starts with a telemetry event-log header."""
    try:
        with Path(path).open("r", encoding="utf-8") as handle:
            first = handle.readline()
        return json.loads(first).get("schema") == EVENT_SCHEMA
    except (OSError, ValueError):
        return False


def read_event_log(
    path: Union[str, Path],
) -> Tuple[Dict[str, object], Iterator[TelemetryEvent]]:
    """The log's header metadata plus a lazy event iterator.

    Malformed interior lines raise with their location; a truncated
    *final* line (a crashed writer) is skipped — the log is append-only,
    so everything before it is intact.
    """
    path = Path(path)
    handle = path.open("r", encoding="utf-8")
    header_line = handle.readline()
    try:
        header = json.loads(header_line)
    except json.JSONDecodeError:
        handle.close()
        raise ValueError(f"{path}:1: not a telemetry event log") from None
    if header.get("schema") != EVENT_SCHEMA:
        handle.close()
        raise ValueError(
            f"{path}: schema {header.get('schema')!r} is not {EVENT_SCHEMA!r}"
        )

    def events() -> Iterator[TelemetryEvent]:
        with handle:
            for line_no, payload in iter_jsonl_payloads(
                handle, path, first_line_no=2, what="telemetry event"
            ):
                try:
                    yield event_from_dict(payload)
                except ValueError as exc:
                    raise ValueError(f"{path}:{line_no}: {exc}") from None

    return dict(header.get("meta") or {}), events()


def load_events(path: Union[str, Path]) -> List[TelemetryEvent]:
    """All events of one log, in stream order."""
    _, events = read_event_log(path)
    return list(events)


def replay_aggregation(path: Union[str, Path]) -> Tuple[Dict[str, object], StreamingAggregationSink]:
    """Re-run the streaming aggregation over a persisted event log."""
    meta, events = read_event_log(path)
    sink = StreamingAggregationSink()
    for event in events:
        sink.handle(event)
    return meta, sink


def replay_notifications(store) -> StreamingAggregationSink:
    """Re-run the streaming aggregation over a store's *event* notifications.

    The notification-log counterpart of :func:`replay_aggregation`:
    events that flowed through a durable event store (via
    :class:`~repro.telemetry.sinks.RecorderEventSink` or
    ``repro store ingest``) fold back into a fresh aggregation sink in
    global notification order — bit-identical to the live aggregation,
    by the same argument as JSONL replay.
    """
    from ..store.notification import KIND_EVENT

    sink = StreamingAggregationSink()
    for notification in store.select():
        if notification.kind == KIND_EVENT:
            sink.handle(event_from_dict(notification.payload))
    return sink


def summarize_event_log(path: Union[str, Path]) -> Dict[str, object]:
    """A JSON-ready summary of one event log (the CLI's data model)."""
    meta, sink = replay_aggregation(path)
    digest = sink.digest
    summary: Dict[str, object] = {
        "path": str(path),
        "meta": meta,
        "counters": sink.counters(),
    }
    if digest.count:
        summary["response"] = {
            "count": digest.count,
            "mean_ms": digest.mean(),
            "p50_ms": digest.percentile(50.0),
            "p95_ms": digest.p95(),
            "p99_ms": digest.p99(),
            "min_ms": digest.min_ms,
            "max_ms": digest.max_ms,
        }
        summary["response_digest"] = digest.to_dict()
    return summary


__all__ = [
    "load_events",
    "read_event_log",
    "replay_aggregation",
    "replay_notifications",
    "sniff_event_log",
    "summarize_event_log",
]
