"""Cluster layer: boards, live migration and the contention monitor."""

from .cluster import FPGACluster, SchedulerFactory
from .migration import (
    SD_STAGE_MS_PER_BITSTREAM,
    MigrationRecord,
    MigrationStats,
    migrate,
    prewarm_board,
)
from .monitor import ContentionMonitor

__all__ = [
    "ContentionMonitor",
    "FPGACluster",
    "MigrationRecord",
    "MigrationStats",
    "SD_STAGE_MS_PER_BITSTREAM",
    "SchedulerFactory",
    "migrate",
    "prewarm_board",
]
