"""Live migration between boards (cross-board switching, §III-D).

When a switch triggers, the source board stops taking new work, the
applications still waiting in its ready list are shipped over the Aurora
link via DMA (contexts + buffers), and the target board resumes them.
Applications whose tasks are already executing drain on the source board —
the paper keeps them local to avoid bitstream reload overhead — and the
source is freed once drained.

Pre-warming (performed while ``D_switch`` sits in the trigger's buffer
zone) stages the bitstream library onto the target's SD card ahead of
time; an un-warmed target pays that staging cost inside the switch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, List, Optional

from ..config import SystemParameters
from ..fpga.board import FPGABoard
from ..fpga.interconnect import AuroraLink
from ..sim import Engine


@dataclass
class MigrationRecord:
    """Bookkeeping for one completed cross-board switch."""

    start_ms: float
    end_ms: float
    apps_moved: int
    source: str
    target: str
    prewarmed: bool

    @property
    def overhead_ms(self) -> float:
        return self.end_ms - self.start_ms


@dataclass
class MigrationStats:
    """Aggregate statistics over all switches in a run."""

    records: List[MigrationRecord] = field(default_factory=list)

    @property
    def count(self) -> int:
        return len(self.records)

    @property
    def apps_moved(self) -> int:
        return sum(record.apps_moved for record in self.records)

    def mean_overhead_ms(self) -> float:
        if not self.records:
            return 0.0
        return sum(record.overhead_ms for record in self.records) / len(self.records)


#: SD staging cost per bitstream when the target was not pre-warmed (ms).
SD_STAGE_MS_PER_BITSTREAM = 40.0


def prewarm_board(target: FPGABoard, source: FPGABoard) -> int:
    """Stage the source's bitstream library onto the target's SD card.

    Returns the number of bitstreams copied.  Called from the buffer-zone
    pre-warming path, ahead of the actual switch, so the switch itself
    only moves application contexts.
    """
    return target.sd_card.stage(source.sd_card)


def migrate(
    engine: Engine,
    params: SystemParameters,
    link: AuroraLink,
    source_sched,
    target_sched,
    stats: MigrationStats,
    prewarmed: bool,
) -> Generator:
    """Process: move the source's waiting applications to the target.

    The caller must have routed new arrivals to the target already; this
    process only transfers the backlog.  Returns the
    :class:`MigrationRecord`.
    """
    start = engine.now
    source_sched.close_intake()
    instances = source_sched.extract_waiting_apps()
    staged = 0
    if not prewarmed:
        staged = prewarm_board(target_sched.board, source_sched.board)
        if staged:
            yield engine.timeout(staged * SD_STAGE_MS_PER_BITSTREAM)
    payload_mb = len(instances) * params.app_context_mb
    yield from link.transfer(payload_mb)
    for inst in instances:
        target_sched.submit(inst)
    record = MigrationRecord(
        start_ms=start,
        end_ms=engine.now,
        apps_moved=len(instances),
        source=source_sched.board.name,
        target=target_sched.board.name,
        prewarmed=prewarmed and staged == 0,
    )
    stats.records.append(record)
    return record
