"""The FPGA cluster: boards, routing and the switching loop.

A :class:`FPGACluster` owns one board per static-region configuration,
routes arrivals to the *active* board, and — when a
:class:`~repro.cluster.monitor.ContentionMonitor` is attached — executes
the cross-board switches the Schmitt trigger requests.  A single standby
board is enough to switch the whole system (paper §III-D1): the old board
drains its started applications and is then free to serve as the next
standby.
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, List, Optional

from ..config import DEFAULT_PARAMETERS, SystemParameters
from ..fpga.board import FPGABoard, connect_boards
from ..fpga.interconnect import AuroraLink
from ..fpga.slots import BoardConfig
from ..apps.application import ApplicationInstance
from ..schedulers.base import ResponseRecord
from ..sim import Engine, Tracer, NULL_TRACER
from .migration import MigrationStats, migrate, prewarm_board

#: Builds a scheduler for a board: ``factory(board, params, tracer)``.
SchedulerFactory = Callable[[FPGABoard, SystemParameters, Tracer], object]


class FPGACluster:
    """Two-board (extensible) cluster with live cross-board switching."""

    def __init__(
        self,
        engine: Engine,
        scheduler_factory: SchedulerFactory,
        params: SystemParameters = DEFAULT_PARAMETERS,
        configs: Optional[List[BoardConfig]] = None,
        initial: BoardConfig = BoardConfig.ONLY_LITTLE,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        self.engine = engine
        self.params = params
        self.tracer = tracer
        if configs is None:
            configs = [BoardConfig.ONLY_LITTLE, BoardConfig.BIG_LITTLE]
        if initial not in configs:
            raise ValueError(f"initial config {initial} not among {configs}")
        self.boards: List[FPGABoard] = []
        self.schedulers: List[object] = []
        for index, config in enumerate(configs):
            board = FPGABoard(engine, config, params, name=f"board{index}-{config.value}")
            self.boards.append(board)
            scheduler = scheduler_factory(board, params, tracer)
            scheduler.finish_listeners.append(self._on_finish)
            self.schedulers.append(scheduler)
        self.links: Dict[tuple, AuroraLink] = {}
        for i in range(len(self.boards)):
            for j in range(i + 1, len(self.boards)):
                self.links[(i, j)] = connect_boards(self.boards[i], self.boards[j])
        self._active = configs.index(initial)
        self.migration_stats = MigrationStats()
        self.responses: List[ResponseRecord] = []
        self._prewarmed: Dict[int, bool] = {}
        self._switching = False

    # ------------------------------------------------------------------
    @property
    def active_board(self) -> FPGABoard:
        return self.boards[self._active]

    @property
    def active_scheduler(self):
        return self.schedulers[self._active]

    @property
    def active_config(self) -> BoardConfig:
        return self.active_board.config

    def scheduler_for(self, config: BoardConfig):
        """The scheduler of the first drained board with ``config``."""
        for index, board in enumerate(self.boards):
            if board.config is config and index != self._active:
                return self.schedulers[index]
        raise LookupError(f"no standby board with configuration {config.value}")

    def submit(self, inst: ApplicationInstance) -> None:
        """Route a new arrival to the active board."""
        self.active_scheduler.submit(inst)

    @property
    def is_drained(self) -> bool:
        return all(sched.is_drained for sched in self.schedulers)

    def response_times_ms(self) -> List[float]:
        return [record.response_ms for record in self.responses]

    # ------------------------------------------------------------------
    # Switching
    # ------------------------------------------------------------------
    def prewarm(self, config: BoardConfig) -> None:
        """Stage bitstreams on the standby board with ``config``."""
        try:
            target = self.scheduler_for(config)
        except LookupError:
            return
        index = self.schedulers.index(target)
        if not self._prewarmed.get(index):
            prewarm_board(target.board, self.active_board)
            self._prewarmed[index] = True
            self.tracer.emit(self.engine.now, "prewarm", board=target.board.name)

    def request_switch(self, config: BoardConfig) -> bool:
        """Start a live migration to the standby board with ``config``.

        Returns False when a switch is already in flight or no standby
        board matches.
        """
        if self._switching or self.active_config is config:
            return False
        try:
            target = self.scheduler_for(config)
        except LookupError:
            return False
        source = self.active_scheduler
        source_index = self._active
        target_index = self.schedulers.index(target)
        prewarmed = self._prewarmed.get(target_index, False)
        self._switching = True
        # New arrivals go to the target immediately; the backlog follows
        # over the link.
        self._active = target_index
        target.open_intake()
        link = self._link_between(source_index, target_index)

        def run() -> Generator:
            yield from migrate(
                self.engine, self.params, link, source, target,
                self.migration_stats, prewarmed,
            )
            self._switching = False
            self._prewarmed[target_index] = False
            # The drained source becomes a clean standby again.
            source.open_intake()
            self.tracer.emit(
                self.engine.now, "switch", source=source.board.name,
                target=target.board.name,
            )

        self.engine.process(run())
        return True

    # ------------------------------------------------------------------
    def _link_between(self, i: int, j: int) -> AuroraLink:
        return self.links[(min(i, j), max(i, j))]

    def _on_finish(self, scheduler, app_run) -> None:
        self.responses.append(ResponseRecord(app_run.inst, self.engine.now))
