"""Contention monitor: connects D_switch, the trigger and the cluster.

The monitor listens to candidate-queue updates (arrivals and completions)
of every board scheduler, recomputes ``D_switch`` for the *active* board
every ``n`` updates, feeds the Schmitt trigger, pre-warms the standby
board while the metric crosses the buffer zone, and fires the actual
cross-board switch when a threshold is hit.
"""

from __future__ import annotations

from typing import List, Optional

from ..config import DEFAULT_PARAMETERS, SystemParameters
from ..core.dswitch import DSwitchCalculator, DSwitchSample
from ..core.switching import SchmittTrigger, SwitchDecision, TriggerEvent
from ..fpga.slots import BoardConfig
from .cluster import FPGACluster


class ContentionMonitor:
    """Drives cross-board switching from the D_switch metric."""

    def __init__(
        self,
        cluster: FPGACluster,
        params: SystemParameters = DEFAULT_PARAMETERS,
        trigger: Optional[SchmittTrigger] = None,
        calculator: Optional[DSwitchCalculator] = None,
        enabled: bool = True,
    ) -> None:
        self.cluster = cluster
        self.enabled = enabled
        self.trigger = trigger or SchmittTrigger(
            threshold_up=params.switch_threshold_up,
            threshold_down=params.switch_threshold_down,
            mode=cluster.active_config,
        )
        self.calculator = calculator or DSwitchCalculator(
            period=params.dswitch_update_period
        )
        self.events: List[TriggerEvent] = []
        for scheduler in cluster.schedulers:
            scheduler.candidate_listeners.append(self._on_update)

    @property
    def samples(self) -> List[DSwitchSample]:
        return self.calculator.samples

    def _on_update(self, scheduler) -> None:
        if not self.enabled:
            return
        if scheduler is not self.cluster.active_scheduler:
            return
        sample = self.calculator.on_candidate_update(scheduler)
        if sample is None:
            return
        event = self.trigger.update(sample.time, sample.value)
        self.events.append(event)
        if event.decision is SwitchDecision.TO_BIG_LITTLE:
            self._switch(BoardConfig.BIG_LITTLE)
        elif event.decision is SwitchDecision.TO_ONLY_LITTLE:
            self._switch(BoardConfig.ONLY_LITTLE)
        elif event.prewarm is not None:
            self.cluster.prewarm(event.prewarm)

    def _switch(self, config: BoardConfig) -> None:
        accepted = self.cluster.request_switch(config)
        if not accepted:
            # Standby not available: fall back so the trigger can re-fire.
            self.trigger.mode = self.cluster.active_config
