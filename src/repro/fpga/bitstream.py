"""Bitstream records and the on-board SD-card bitstream library.

The paper's offline flow synthesizes, for every task, a partial bitstream
*per compatible slot shape* ("the automated script generates partial
bitstreams for each task adaptive to each slot") and stores them on the SD
card.  The PR server later copies a bitstream from SD to DDR and hands it to
the PCAP.  We model bitstreams as sized records; load latency is derived
from the size by :class:`~repro.config.SystemParameters`.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Optional, Tuple

from ..config import SystemParameters


class SlotKind(Enum):
    """The two reconfigurable-slot shapes of the Big.Little architecture."""

    LITTLE = "little"
    BIG = "big"


@dataclass(frozen=True, slots=True)
class Bitstream:
    """A pre-generated partial (or full) bitstream."""

    #: Human-readable identity, e.g. ``"IC/t0@little"``.
    name: str
    #: Payload size in MB; determines PCAP load latency.
    size_mb: float
    #: Which slot shape the bitstream targets (None = full fabric).
    kind: Optional[SlotKind]

    def __post_init__(self) -> None:
        if self.size_mb <= 0:
            raise ValueError(f"bitstream size must be positive: {self}")

    def load_time_ms(self, params: SystemParameters) -> float:
        """PCAP latency to load this bitstream."""
        return params.pr_time_ms(self.size_mb)


class BitstreamLibrary:
    """The SD-card store of pre-generated bitstreams on one board.

    Keys are ``(payload_name, kind)`` where the payload is a task or a
    3-in-1 bundle.  Cross-board pre-warming stages a remote board's library
    before migration; :meth:`stage` models that copy.
    """

    def __init__(self, params: SystemParameters) -> None:
        self.params = params
        self._streams: Dict[Tuple[str, SlotKind], Bitstream] = {}

    def __len__(self) -> int:
        return len(self._streams)

    def register(self, payload_name: str, kind: SlotKind, size_mb: Optional[float] = None) -> Bitstream:
        """Create (or return the existing) bitstream for a payload/shape pair.

        ``size_mb`` defaults to the platform's nominal partial-bitstream
        size for the slot shape — partial bitstream size is set by the
        reconfigurable region, not by the logic inside it.
        """
        key = (payload_name, kind)
        if key in self._streams:
            return self._streams[key]
        if size_mb is None:
            size_mb = (
                self.params.big_bitstream_mb
                if kind is SlotKind.BIG
                else self.params.little_bitstream_mb
            )
        stream = Bitstream(f"{payload_name}@{kind.value}", size_mb, kind)
        self._streams[key] = stream
        return stream

    def lookup(self, payload_name: str, kind: SlotKind) -> Bitstream:
        """The bitstream for ``payload_name`` targeting ``kind`` slots."""
        try:
            return self._streams[(payload_name, kind)]
        except KeyError:
            raise KeyError(
                f"no bitstream for {payload_name!r} targeting {kind.value} slots; "
                "was the offline flow run for this application?"
            ) from None

    def contains(self, payload_name: str, kind: SlotKind) -> bool:
        """True if the library holds a bitstream for the payload/shape."""
        return (payload_name, kind) in self._streams

    def stage(self, other: "BitstreamLibrary") -> int:
        """Copy every bitstream from ``other`` (pre-warming); returns count copied."""
        copied = 0
        for key, stream in other._streams.items():
            if key not in self._streams:
                self._streams[key] = stream
                copied += 1
        return copied

    def full_fabric(self, payload_name: str) -> Bitstream:
        """A full-fabric bitstream (Baseline exclusive multiplexing)."""
        key = (payload_name, None)  # type: ignore[arg-type]
        if key not in self._streams:
            self._streams[key] = Bitstream(  # type: ignore[index]
                f"{payload_name}@full", self.params.full_bitstream_mb, None
            )
        return self._streams[key]  # type: ignore[index]
