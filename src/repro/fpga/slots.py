"""Reconfigurable slots and board slot configurations.

The PL fabric is split into a static region (interfaces, fixed at start-up)
and partial-reconfigurable slots.  VersaSlot's contribution is the
heterogeneous *Big.Little* layout: Big slots hold a 3-in-1 bundled task and
have twice the capacity of a Little slot.  A board is configured as either
``BIG_LITTLE`` (2 Big + 4 Little) or ``ONLY_LITTLE`` (8 Little); changing
the configuration requires a different static region, i.e. a different
board — hence cross-board switching.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable, List, Optional

from ..config import SystemParameters
from ..sim import Engine
from .bitstream import SlotKind
from .resvec import ResourceVector


class SlotState(Enum):
    """Lifecycle of a reconfigurable slot."""

    IDLE = "idle"
    RECONFIGURING = "reconfiguring"
    LOADED = "loaded"


class BoardConfig(Enum):
    """Named static-region layouts from the paper."""

    ONLY_LITTLE = "only_little"
    BIG_LITTLE = "big_little"


@dataclass(frozen=True, slots=True)
class SlotOccupancy:
    """What a slot currently hosts (for utilization accounting)."""

    payload_name: str
    app_id: int
    usage: ResourceVector


class Slot:
    """One reconfigurable region.

    State transitions are validated so scheduler bugs surface as errors
    rather than silent double-bookings.  ``observers`` are called on every
    load/unload with ``(slot, occupancy_or_None)`` — the utilization tracker
    hooks in there.
    """

    __slots__ = ("engine", "index", "kind", "capacity", "state", "occupancy",
                 "observers", "reconfigurations")

    def __init__(self, engine: Engine, index: int, kind: SlotKind, capacity: ResourceVector) -> None:
        self.engine = engine
        self.index = index
        self.kind = kind
        self.capacity = capacity
        self.state = SlotState.IDLE
        self.occupancy: Optional[SlotOccupancy] = None
        self.observers: List[Callable[["Slot", Optional[SlotOccupancy]], None]] = []
        #: Number of completed reconfigurations of this slot.
        self.reconfigurations = 0

    @property
    def name(self) -> str:
        return f"{self.kind.value}{self.index}"

    @property
    def is_idle(self) -> bool:
        return self.state is SlotState.IDLE

    def begin_reconfiguration(self) -> None:
        """Mark the slot as being reprogrammed (DFX decoupler engaged)."""
        if self.state is SlotState.RECONFIGURING:
            raise RuntimeError(f"slot {self.name} is already reconfiguring")
        # State changes before the notification so observers (utilization
        # tracker, telemetry slot-transition events) see the new state.
        self.occupancy = None
        self.state = SlotState.RECONFIGURING
        self._notify(None)

    def complete_reconfiguration(self, occupancy: SlotOccupancy) -> None:
        """Install the new payload after the PCAP finished loading."""
        if self.state is not SlotState.RECONFIGURING:
            raise RuntimeError(f"slot {self.name} completed PR while {self.state.value}")
        if not occupancy.usage.fits_within(self.capacity):
            raise ValueError(
                f"payload {occupancy.payload_name!r} usage {occupancy.usage} "
                f"exceeds {self.name} capacity {self.capacity}"
            )
        self.occupancy = occupancy
        self.state = SlotState.LOADED
        self.reconfigurations += 1
        self._notify(occupancy)

    def release(self) -> None:
        """Free the slot (payload finished or was preempted/migrated)."""
        if self.state is SlotState.IDLE:
            raise RuntimeError(f"slot {self.name} released while idle")
        self.occupancy = None
        self.state = SlotState.IDLE
        self._notify(None)

    def _notify(self, occupancy: Optional[SlotOccupancy]) -> None:
        for observer in self.observers:
            observer(self, occupancy)

    def __repr__(self) -> str:
        payload = self.occupancy.payload_name if self.occupancy else "-"
        return f"<Slot {self.name} {self.state.value} payload={payload}>"


def build_slots(engine: Engine, config: BoardConfig, params: SystemParameters) -> List[Slot]:
    """Instantiate the slot list for a board configuration.

    Little slots have normalized capacity (1, 1); Big slots are scaled by
    ``params.big_slot_scale`` (the paper fixes the ratio at 2x).
    """
    little_cap = ResourceVector(1.0, 1.0)
    big_cap = little_cap.scale(params.big_slot_scale)
    slots: List[Slot] = []
    if config is BoardConfig.BIG_LITTLE:
        for i in range(params.big_little_big_slots):
            slots.append(Slot(engine, i, SlotKind.BIG, big_cap))
        for i in range(params.big_little_little_slots):
            slots.append(Slot(engine, i, SlotKind.LITTLE, little_cap))
    elif config is BoardConfig.ONLY_LITTLE:
        for i in range(params.only_little_slots):
            slots.append(Slot(engine, i, SlotKind.LITTLE, little_cap))
    else:  # pragma: no cover - enum is closed
        raise ValueError(f"unknown board configuration {config}")
    return slots


def fabric_capacity(slots: List[Slot]) -> ResourceVector:
    """Total reconfigurable capacity across ``slots``."""
    return ResourceVector.total(slot.capacity for slot in slots)
