"""Cross-board interconnect: Aurora 64B/66B over zSFP+ with DMA.

The cross-board switching module transfers applications, task metadata and
data buffers directly between boards.  The model charges a fixed per-session
control cost plus a bandwidth-proportional payload time, and serializes
transfers per link (one DMA engine per direction pair).
"""

from __future__ import annotations

from typing import Generator, Optional

from ..config import SystemParameters
from ..sim import Engine, Resource


class AuroraLink:
    """A point-to-point link between two boards."""

    def __init__(self, engine: Engine, params: SystemParameters, name: str = "aurora") -> None:
        self.engine = engine
        self.params = params
        self.name = name
        self._channel = Resource(engine, capacity=1, name=name)
        #: Completed transfer sessions.
        self.transfers = 0
        #: Total payload moved (MB).
        self.total_mb = 0.0
        #: Total busy time (ms).
        self.total_time_ms = 0.0

    def transfer(self, size_mb: float, fixed_ms: Optional[float] = None) -> Generator:
        """Process fragment: move ``size_mb`` across the link.

        Returns the session duration in ms (excluding queueing).
        """
        if size_mb < 0:
            raise ValueError(f"negative transfer size {size_mb}")
        fixed = self.params.migration_fixed_ms if fixed_ms is None else fixed_ms
        request = self._channel.acquire()
        yield request
        duration = fixed + self.params.transfer_time_ms(size_mb)
        try:
            yield duration
        finally:
            self._channel.release()
            self.transfers += 1
            self.total_mb += size_mb
            self.total_time_ms += duration
        return duration

    def mean_session_ms(self) -> float:
        """Mean duration of completed transfer sessions."""
        if self.transfers == 0:
            return 0.0
        return self.total_time_ms / self.transfers
