"""Fabric resource vectors.

A :class:`ResourceVector` carries LUT and FF quantities.  Throughout the
reproduction, quantities are *normalized to one Little slot*: a Little slot
has capacity ``(1.0, 1.0)``, a Big slot ``(2.0, 2.0)``, and a task that
consumes 57 % of a Little slot's LUTs has usage ``lut=0.57``.  This mirrors
how the paper reports utilization (fractions of slot capacity) and keeps the
allocator unit-free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator


@dataclass(frozen=True, slots=True)
class ResourceVector:
    """LUT/FF quantities, normalized to one Little slot."""

    lut: float
    ff: float

    def __post_init__(self) -> None:
        if self.lut < 0 or self.ff < 0:
            raise ValueError(f"resource quantities must be non-negative: {self}")

    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(self.lut + other.lut, self.ff + other.ff)

    def __sub__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(self.lut - other.lut, self.ff - other.ff)

    def scale(self, factor: float) -> "ResourceVector":
        """Component-wise multiplication by ``factor``."""
        return ResourceVector(self.lut * factor, self.ff * factor)

    def fits_within(self, capacity: "ResourceVector") -> bool:
        """True if this usage fits inside ``capacity`` on every component."""
        return self.lut <= capacity.lut + 1e-9 and self.ff <= capacity.ff + 1e-9

    def fraction_of(self, capacity: "ResourceVector") -> "ResourceVector":
        """Component-wise utilization fraction relative to ``capacity``."""
        if capacity.lut <= 0 or capacity.ff <= 0:
            raise ValueError(f"capacity must be positive: {capacity}")
        return ResourceVector(self.lut / capacity.lut, self.ff / capacity.ff)

    def __iter__(self) -> Iterator[float]:
        yield self.lut
        yield self.ff

    @staticmethod
    def zero() -> "ResourceVector":
        """The empty usage vector."""
        return ResourceVector(0.0, 0.0)

    @staticmethod
    def total(vectors: Iterable["ResourceVector"]) -> "ResourceVector":
        """Component-wise sum of ``vectors``."""
        acc = ResourceVector.zero()
        for vector in vectors:
            acc = acc + vector
        return acc
