"""Simulated FPGA hardware substrate (PS, PCAP, slots, links)."""

from .bitstream import Bitstream, BitstreamLibrary, SlotKind
from .board import FPGABoard, connect_boards
from .cpu import Core, ProcessingSystem
from .interconnect import AuroraLink
from .pcap import PCAP, PRVerificationError
from .resvec import ResourceVector
from .slots import BoardConfig, Slot, SlotOccupancy, SlotState, build_slots, fabric_capacity

__all__ = [
    "AuroraLink",
    "Bitstream",
    "BitstreamLibrary",
    "BoardConfig",
    "Core",
    "FPGABoard",
    "PCAP",
    "PRVerificationError",
    "ProcessingSystem",
    "ResourceVector",
    "Slot",
    "SlotKind",
    "SlotOccupancy",
    "SlotState",
    "build_slots",
    "connect_boards",
    "fabric_capacity",
]
