"""The FPGA board: PS + PL assembled.

A :class:`FPGABoard` bundles the ARM cores, the PCAP, the SD-card bitstream
library and the slot set for one static-region configuration.  Boards are
deliberately policy-free — all scheduling intelligence lives in
``repro.schedulers`` and ``repro.core``.
"""

from __future__ import annotations

from typing import List, Optional

from ..config import DEFAULT_PARAMETERS, SystemParameters
from ..sim import Engine
from .bitstream import BitstreamLibrary, SlotKind
from .cpu import ProcessingSystem
from .interconnect import AuroraLink
from .pcap import PCAP
from .slots import BoardConfig, Slot, SlotState, build_slots, fabric_capacity


class FPGABoard:
    """One ZCU216-class board with a fixed static-region configuration."""

    def __init__(
        self,
        engine: Engine,
        config: BoardConfig,
        params: SystemParameters = DEFAULT_PARAMETERS,
        name: str = "board",
        core_count: int = 2,
    ) -> None:
        self.engine = engine
        self.config = config
        self.params = params
        self.name = name
        self.ps = ProcessingSystem(engine, core_count=core_count)
        self.pcap = PCAP(engine, params)
        self.sd_card = BitstreamLibrary(params)
        self.slots: List[Slot] = build_slots(engine, config, params)
        self.link: Optional[AuroraLink] = None
        # The slot set is fixed for the board's lifetime; the per-kind
        # partition is asked for on every scheduler pass, so precompute it.
        self._slots_by_kind = {
            kind: [slot for slot in self.slots if slot.kind is kind]
            for kind in SlotKind
        }

    # ------------------------------------------------------------------
    # Slot queries used by every scheduler
    # ------------------------------------------------------------------
    def slots_of(self, kind: SlotKind) -> List[Slot]:
        """All slots of one shape, in index order."""
        return list(self._slots_by_kind[kind])

    def idle_slots(self, kind: SlotKind) -> List[Slot]:
        """Idle slots of one shape."""
        return [slot for slot in self._slots_by_kind[kind] if slot.is_idle]

    def idle_slot(self, kind: SlotKind) -> Optional[Slot]:
        """The first idle slot of one shape, or None."""
        for slot in self._slots_by_kind[kind]:
            if slot.state is SlotState.IDLE:
                return slot
        return None

    @property
    def big_slot_count(self) -> int:
        return len(self._slots_by_kind[SlotKind.BIG])

    @property
    def little_slot_count(self) -> int:
        return len(self._slots_by_kind[SlotKind.LITTLE])

    def fabric_capacity(self):
        """Total reconfigurable LUT/FF capacity of this board."""
        return fabric_capacity(self.slots)

    def attach_link(self, link: AuroraLink) -> None:
        """Connect the board's zSFP+ port to a cluster link."""
        self.link = link

    def __repr__(self) -> str:
        return (
            f"<FPGABoard {self.name} {self.config.value} "
            f"B={self.big_slot_count} L={self.little_slot_count}>"
        )


def connect_boards(board_a: FPGABoard, board_b: FPGABoard) -> AuroraLink:
    """Create a shared Aurora link between two boards."""
    if board_a.engine is not board_b.engine:
        raise ValueError("boards must share a simulation engine")
    link = AuroraLink(board_a.engine, board_a.params, name=f"{board_a.name}<->{board_b.name}")
    board_a.attach_link(link)
    board_b.attach_link(link)
    return link
