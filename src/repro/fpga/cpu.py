"""Processing-System CPU model.

The VersaSlot hypervisor runs bare-metal on the ARM cores of the ZynqMP PS.
The paper's central *task execution blocking* problem is a CPU-occupancy
effect: the PCAP suspends the core that issued a bitstream load, so on a
single-core scheduler the load also blocks task launching.  We therefore
model each core as a unit-capacity FIFO :class:`~repro.sim.Resource` — any
hypervisor action (scheduling pass, batch launch, PR issue) must hold a core
for its duration.
"""

from __future__ import annotations

from typing import List

from ..sim import Engine, Resource


class Core(Resource):
    """One ARM core of the PS, usable by one hypervisor activity at a time."""

    __slots__ = ("index",)

    def __init__(self, engine: Engine, index: int) -> None:
        super().__init__(engine, capacity=1, name=f"core{index}")
        self.index = index


class ProcessingSystem:
    """The PS side of a board: a small set of ARM cores.

    ``core(0)`` conventionally runs the scheduler; ``core(1)`` runs the
    dedicated PR server when dual-core scheduling is enabled.
    """

    def __init__(self, engine: Engine, core_count: int = 2) -> None:
        if core_count < 1:
            raise ValueError(f"need at least one core, got {core_count}")
        self.engine = engine
        self.cores: List[Core] = [Core(engine, i) for i in range(core_count)]

    def core(self, index: int) -> Core:
        """The core at ``index``."""
        return self.cores[index]

    @property
    def scheduler_core(self) -> Core:
        """The core hosting the scheduler loop (core 0)."""
        return self.cores[0]

    def pr_core(self, dual_core: bool) -> Core:
        """The core that executes PR loads.

        Dual-core systems dedicate core 1 to the PR server; single-core
        systems issue PR from the scheduler core, which is exactly what
        causes the blocking the paper analyses.
        """
        if dual_core and len(self.cores) > 1:
            return self.cores[1]
        return self.cores[0]
