"""The Processor Configuration Access Port (PCAP).

The PCAP is the serial choke point at the heart of the paper: it loads one
partial bitstream at a time and *suspends the issuing CPU core* until the
load completes.  Both properties are modelled directly:

* serialization — a unit-capacity FIFO mutex guards the port;
* CPU suspension — :meth:`PCAP.load` is a process fragment executed while
  the caller holds a :class:`~repro.fpga.cpu.Core`, so the core stays busy
  for the queueing delay plus the transfer.

The port keeps the contention statistics (`loads`, `contended_loads`,
`total_wait_ms`) that feed the ``D_switch`` metric and the evaluation.
"""

from __future__ import annotations

import random
from typing import Generator, List, Optional

from ..config import SystemParameters
from ..sim import Engine, Resource
from .bitstream import Bitstream


class PRVerificationError(RuntimeError):
    """A partial bitstream repeatedly failed DFX verification."""


class PCAP:
    """Serial partial-reconfiguration port of one board.

    DFX requires confirming that a partial bitstream loaded successfully;
    ``params.pr_failure_rate`` injects verification failures, each costing
    a full re-transfer (the fault-injection tests use this — real loads
    default to ideal hardware).
    """

    def __init__(self, engine: Engine, params: SystemParameters, seed: int = 0) -> None:
        self.engine = engine
        self.params = params
        self._port = Resource(engine, capacity=1, name="pcap")
        self._verify_rng = random.Random(f"pcap-verify/{seed}")
        #: Completed load count.
        self.loads = 0
        #: Loads that had to queue behind another load.
        self.contended_loads = 0
        #: Verification failures that forced a re-transfer.
        self.verification_retries = 0
        #: Total time loads spent queued (ms).
        self.total_wait_ms = 0.0
        #: Total time the port spent transferring (ms).
        self.total_transfer_ms = 0.0
        self._wait_log: List[float] = []

    @property
    def busy(self) -> bool:
        """True while a bitstream transfer is in flight."""
        return self._port.in_use > 0

    @property
    def queue_length(self) -> int:
        """Number of loads waiting behind the current transfer."""
        return self._port.queue_length

    def load(self, bitstream: Bitstream) -> Generator:
        """Process fragment: load ``bitstream`` through the port.

        The caller must already hold the CPU core issuing the load; the
        core remains held (suspended, in hardware terms) for the full
        duration.  Yields the queueing wait plus the transfer time and
        returns the wait experienced (ms), which the schedulers use for
        blocked-task accounting.
        """
        arrival = self.engine.now
        contended = self.busy or self._port.queue_length > 0
        request = self._port.acquire()
        yield request
        wait = self.engine.now - arrival
        transfer = bitstream.load_time_ms(self.params)
        spent = 0.0
        try:
            for attempt in range(self.params.pr_max_retries + 1):
                yield transfer
                spent += transfer
                if (
                    self.params.pr_failure_rate <= 0.0
                    or self._verify_rng.random() >= self.params.pr_failure_rate
                ):
                    break
                self.verification_retries += 1
            else:
                raise PRVerificationError(
                    f"bitstream {bitstream.name!r} failed verification "
                    f"{self.params.pr_max_retries + 1} times"
                )
        finally:
            self._port.release()
            self.loads += 1
            self.total_transfer_ms += spent
            self.total_wait_ms += wait
            self._wait_log.append(wait)
            if contended or wait > 0:
                self.contended_loads += 1
        return wait

    def mean_wait_ms(self) -> float:
        """Mean queueing delay per completed load."""
        if not self._wait_log:
            return 0.0
        return sum(self._wait_log) / len(self._wait_log)

    def utilization(self) -> float:
        """Fraction of elapsed time the port spent transferring."""
        if self.engine.now <= 0:
            return 0.0
        return self.total_transfer_ms / self.engine.now
