"""ASCII plotting for figure series.

Terminal-friendly renderings of the paper's figures: grouped horizontal
bar charts (Figs. 5, 6, 8-right) and metric traces (Fig. 8-left).  Used by
the examples and handy when inspecting experiment results over SSH.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

#: Glyph used for bar bodies.
BAR_GLYPH = "█"


def bar_chart(
    series: Mapping[str, float],
    width: int = 50,
    title: Optional[str] = None,
    reference: Optional[Mapping[str, float]] = None,
    unit: str = "x",
) -> str:
    """Render a horizontal bar chart of ``label -> value``.

    ``reference`` values (e.g. the paper's numbers) are annotated after
    each bar.  Bars are scaled to the largest value.
    """
    if not series:
        raise ValueError("nothing to plot")
    if width < 8:
        raise ValueError(f"width too small: {width}")
    peak = max(series.values())
    if peak <= 0:
        raise ValueError("bar chart needs at least one positive value")
    label_width = max(len(label) for label in series)
    lines = []
    if title:
        lines.append(title)
    for label, value in series.items():
        bar = BAR_GLYPH * max(1, round(value / peak * width)) if value > 0 else ""
        line = f"{label:<{label_width}}  {bar} {value:.2f}{unit}"
        if reference and label in reference:
            line += f"  (paper: {reference[label]:.2f}{unit})"
        lines.append(line)
    return "\n".join(lines)


def grouped_bar_chart(
    groups: Mapping[str, Mapping[str, float]],
    width: int = 40,
    title: Optional[str] = None,
    unit: str = "x",
) -> str:
    """Render grouped bars: ``group -> (label -> value)`` (Fig. 5 layout)."""
    if not groups:
        raise ValueError("nothing to plot")
    peak = max(value for group in groups.values() for value in group.values())
    if peak <= 0:
        raise ValueError("bar chart needs at least one positive value")
    label_width = max(len(label) for group in groups.values() for label in group)
    lines = []
    if title:
        lines.append(title)
    for group_name, group in groups.items():
        lines.append(f"[{group_name}]")
        for label, value in group.items():
            bar = BAR_GLYPH * max(1, round(value / peak * width)) if value > 0 else ""
            lines.append(f"  {label:<{label_width}}  {bar} {value:.2f}{unit}")
    return "\n".join(lines)


def trace_plot(
    values: Sequence[float],
    height: int = 8,
    width: int = 70,
    title: Optional[str] = None,
    thresholds: Optional[Mapping[str, float]] = None,
) -> str:
    """Render a metric trace as a block plot with threshold rulers.

    Used for the Fig. 8 D_switch trajectory; ``thresholds`` draws labelled
    horizontal markers (e.g. T1/T2).
    """
    if not values:
        raise ValueError("nothing to plot")
    if height < 2 or width < 10:
        raise ValueError("plot area too small")
    lo = 0.0
    hi = max(list(values) + list((thresholds or {}).values())) * 1.05 or 1.0
    if len(values) > width:
        stride = len(values) / width
        values = [values[int(i * stride)] for i in range(width)]
    columns = [round((v - lo) / (hi - lo) * (height - 1)) for v in values]
    threshold_rows = {
        round((t - lo) / (hi - lo) * (height - 1)): name
        for name, t in (thresholds or {}).items()
        if lo <= t <= hi
    }
    lines = []
    if title:
        lines.append(title)
    for row in range(height - 1, -1, -1):
        marker = threshold_rows.get(row)
        body = "".join("#" if c >= row else ("-" if marker else " ") for c in columns)
        suffix = f" <- {marker}" if marker else ""
        lines.append(f"{hi * row / (height - 1):7.3f} |{body}{suffix}")
    lines.append(" " * 8 + "+" + "-" * len(columns))
    return "\n".join(lines)
