"""Fabric utilization metrics (Fig. 7).

Two views are provided:

* **Static** (:func:`bundling_gain`) — the paper's Fig. 7 compares the
  mean per-slot utilization of 3-in-1 bundles in Big slots against the
  same tasks spread over Little slots, straight from the synthesis
  tables.
* **Dynamic** (:class:`UtilizationTracker`) — a time-weighted integral of
  occupied LUT/FF over a simulation run, sampled through slot observers;
  used to verify that the static gains materialize during execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..apps.application import ApplicationSpec
from ..fpga.board import FPGABoard
from ..fpga.resvec import ResourceVector
from ..fpga.slots import Slot, SlotOccupancy


@dataclass(frozen=True)
class BundlingGain:
    """Fig. 7 left panel: utilization increase of 3-in-1 tasks."""

    app_name: str
    little_util: ResourceVector
    big_util: ResourceVector

    @property
    def lut_increase_pct(self) -> float:
        return (self.big_util.lut / self.little_util.lut - 1.0) * 100.0

    @property
    def ff_increase_pct(self) -> float:
        return (self.big_util.ff / self.little_util.ff - 1.0) * 100.0


def bundling_gain(app: ApplicationSpec) -> BundlingGain:
    """Static utilization gain of running ``app`` bundled vs in Little slots."""
    if not app.can_bundle:
        raise ValueError(f"application {app.name!r} has no bundles")
    return BundlingGain(
        app_name=app.name,
        little_util=app.mean_little_utilization(),
        big_util=app.mean_big_utilization(),
    )


def ic_detail(app: ApplicationSpec) -> Tuple[List[float], float, float]:
    """Fig. 7 right panel: first three task LUT utils, their mean, bundle LUT.

    Returns ``(task_utils, mean_util, bundle_util)`` for the app's first
    bundle (DCT / Quantize / BDQ for Image Compression).
    """
    if not app.can_bundle:
        raise ValueError(f"application {app.name!r} has no bundles")
    bundle = app.bundles[0]
    task_utils = [app.tasks[i].usage.lut for i in bundle.task_indices]
    mean_util = sum(task_utils) / len(task_utils)
    return task_utils, mean_util, bundle.usage_big.lut


class UtilizationTracker:
    """Time-weighted LUT/FF occupancy of a board's reconfigurable fabric.

    Construction subscribes to every slot's observers and integrates
    occupied resources over time.  ``mean_*`` normalizes by the capacity of
    the *occupied* slots (matching the paper's per-slot utilization) or by
    the whole fabric.

    Every slot load/unload lands here, so the handler is O(1): the slot →
    index map is precomputed at attach time (no ``list.index`` scan per
    event) and the integrals are plain float accumulators updated in place
    (no :class:`ResourceVector` allocation per event).
    """

    __slots__ = (
        "board", "engine", "_slot_index", "_current", "_last_time",
        "_cur_usage_lut", "_cur_usage_ff", "_cur_cap_lut", "_cur_cap_ff",
        "_wu_lut", "_wu_ff", "_wc_lut", "_wc_ff", "_elapsed",
    )

    def __init__(self, board: FPGABoard) -> None:
        self.board = board
        self.engine = board.engine
        self._slot_index: Dict[Slot, int] = {}
        self._current: Dict[int, SlotOccupancy] = {}
        self._last_time = self.engine.now
        # Running usage/capacity of the currently occupied slots, and the
        # time-weighted integrals of both (component-wise).
        self._cur_usage_lut = self._cur_usage_ff = 0.0
        self._cur_cap_lut = self._cur_cap_ff = 0.0
        self._wu_lut = self._wu_ff = 0.0
        self._wc_lut = self._wc_ff = 0.0
        self._elapsed = 0.0
        for index, slot in enumerate(board.slots):
            self._slot_index[slot] = index
            slot.observers.append(self._on_slot_event)

    def _advance(self) -> None:
        now = self.engine.now
        dt = now - self._last_time
        if dt > 0:
            self._wu_lut += self._cur_usage_lut * dt
            self._wu_ff += self._cur_usage_ff * dt
            self._wc_lut += self._cur_cap_lut * dt
            self._wc_ff += self._cur_cap_ff * dt
            self._elapsed += dt
        self._last_time = now

    def _on_slot_event(self, slot: Slot, occupancy: Optional[SlotOccupancy]) -> None:
        self._advance()
        index = self._slot_index[slot]
        previous = self._current.pop(index, None)
        if previous is not None:
            self._cur_usage_lut -= previous.usage.lut
            self._cur_usage_ff -= previous.usage.ff
            self._cur_cap_lut -= slot.capacity.lut
            self._cur_cap_ff -= slot.capacity.ff
        if occupancy is not None:
            self._current[index] = occupancy
            self._cur_usage_lut += occupancy.usage.lut
            self._cur_usage_ff += occupancy.usage.ff
            self._cur_cap_lut += slot.capacity.lut
            self._cur_cap_ff += slot.capacity.ff

    def mean_occupied_utilization(self) -> ResourceVector:
        """Mean usage / capacity over *occupied* slots, time-weighted."""
        self._advance()
        if self._wc_lut <= 0 or self._wc_ff <= 0:
            return ResourceVector.zero()
        return ResourceVector(self._wu_lut / self._wc_lut, self._wu_ff / self._wc_ff)

    def elapsed_ms(self) -> float:
        """Observed span (now - attach time), advancing the integrals."""
        self._advance()
        return self._elapsed

    def mean_fabric_utilization(self) -> ResourceVector:
        """Mean usage over the whole fabric capacity, time-weighted."""
        self._advance()
        if self._elapsed <= 0:
            return ResourceVector.zero()
        fabric = self.board.fabric_capacity()
        return ResourceVector(
            self._wu_lut / (fabric.lut * self._elapsed),
            self._wu_ff / (fabric.ff * self._elapsed),
        )
