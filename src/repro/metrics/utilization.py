"""Fabric utilization metrics (Fig. 7).

Two views are provided:

* **Static** (:func:`bundling_gain`) — the paper's Fig. 7 compares the
  mean per-slot utilization of 3-in-1 bundles in Big slots against the
  same tasks spread over Little slots, straight from the synthesis
  tables.
* **Dynamic** (:class:`UtilizationTracker`) — a time-weighted integral of
  occupied LUT/FF over a simulation run, sampled through slot observers;
  used to verify that the static gains materialize during execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..apps.application import ApplicationSpec
from ..fpga.board import FPGABoard
from ..fpga.resvec import ResourceVector
from ..fpga.slots import Slot, SlotOccupancy


@dataclass(frozen=True)
class BundlingGain:
    """Fig. 7 left panel: utilization increase of 3-in-1 tasks."""

    app_name: str
    little_util: ResourceVector
    big_util: ResourceVector

    @property
    def lut_increase_pct(self) -> float:
        return (self.big_util.lut / self.little_util.lut - 1.0) * 100.0

    @property
    def ff_increase_pct(self) -> float:
        return (self.big_util.ff / self.little_util.ff - 1.0) * 100.0


def bundling_gain(app: ApplicationSpec) -> BundlingGain:
    """Static utilization gain of running ``app`` bundled vs in Little slots."""
    if not app.can_bundle:
        raise ValueError(f"application {app.name!r} has no bundles")
    return BundlingGain(
        app_name=app.name,
        little_util=app.mean_little_utilization(),
        big_util=app.mean_big_utilization(),
    )


def ic_detail(app: ApplicationSpec) -> Tuple[List[float], float, float]:
    """Fig. 7 right panel: first three task LUT utils, their mean, bundle LUT.

    Returns ``(task_utils, mean_util, bundle_util)`` for the app's first
    bundle (DCT / Quantize / BDQ for Image Compression).
    """
    if not app.can_bundle:
        raise ValueError(f"application {app.name!r} has no bundles")
    bundle = app.bundles[0]
    task_utils = [app.tasks[i].usage.lut for i in bundle.task_indices]
    mean_util = sum(task_utils) / len(task_utils)
    return task_utils, mean_util, bundle.usage_big.lut


class UtilizationTracker:
    """Time-weighted LUT/FF occupancy of a board's reconfigurable fabric.

    Attach with :meth:`attach`; it subscribes to every slot's observers
    and integrates occupied resources over time.  ``mean_utilization``
    normalizes by the capacity of the *occupied* slots (matching the
    paper's per-slot utilization) or by the whole fabric.
    """

    def __init__(self, board: FPGABoard) -> None:
        self.board = board
        self.engine = board.engine
        self._current: Dict[int, SlotOccupancy] = {}
        self._last_time = self.engine.now
        self._weighted_usage = ResourceVector.zero()
        self._weighted_capacity = ResourceVector.zero()
        self._elapsed = 0.0
        for slot in board.slots:
            slot.observers.append(self._on_slot_event)

    def _advance(self) -> None:
        now = self.engine.now
        dt = now - self._last_time
        if dt > 0:
            usage = ResourceVector.total(occ.usage for occ in self._current.values())
            capacity = ResourceVector.total(
                self.board.slots[i].capacity for i in self._current
            )
            self._weighted_usage = self._weighted_usage + usage.scale(dt)
            self._weighted_capacity = self._weighted_capacity + capacity.scale(dt)
            self._elapsed += dt
        self._last_time = now

    def _on_slot_event(self, slot: Slot, occupancy: Optional[SlotOccupancy]) -> None:
        self._advance()
        index = self.board.slots.index(slot)
        if occupancy is None:
            self._current.pop(index, None)
        else:
            self._current[index] = occupancy

    def mean_occupied_utilization(self) -> ResourceVector:
        """Mean usage / capacity over *occupied* slots, time-weighted."""
        self._advance()
        if self._weighted_capacity.lut <= 0 or self._weighted_capacity.ff <= 0:
            return ResourceVector.zero()
        return ResourceVector(
            self._weighted_usage.lut / self._weighted_capacity.lut,
            self._weighted_usage.ff / self._weighted_capacity.ff,
        )

    def mean_fabric_utilization(self) -> ResourceVector:
        """Mean usage over the whole fabric capacity, time-weighted."""
        self._advance()
        if self._elapsed <= 0:
            return ResourceVector.zero()
        fabric = self.board.fabric_capacity()
        return ResourceVector(
            self._weighted_usage.lut / (fabric.lut * self._elapsed),
            self._weighted_usage.ff / (fabric.ff * self._elapsed),
        )
