"""ASCII reporting helpers for experiment tables and figure series.

Every experiment prints its results through these helpers, so the bench
output lines up visually with the paper's tables/figures and EXPERIMENTS.md
can quote them directly.  :func:`summarize_records` renders persisted
campaign records (``results/*.jsonl``), so ``python -m repro replay``
re-reports a run without re-simulating.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..campaign.results import RunRecord


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render a simple fixed-width table."""
    columns = len(headers)
    for row in rows:
        if len(row) != columns:
            raise ValueError(f"row {row!r} does not match {columns} headers")
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(columns)]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(cells[0])))
    lines.append("  ".join("-" * widths[i] for i in range(columns)))
    for row in cells[1:]:
        lines.append("  ".join(row[i].rjust(widths[i]) for i in range(columns)))
    return "\n".join(lines)


def format_series(
    name: str,
    pairs: Mapping[str, float],
    reference: Optional[Mapping[str, float]] = None,
) -> str:
    """Render one figure series, optionally next to the paper's values."""
    lines = [name]
    for key, value in pairs.items():
        line = f"  {key:<14s} {value:8.2f}"
        if reference and key in reference:
            line += f"   (paper: {reference[key]:.2f})"
        lines.append(line)
    return "\n".join(lines)


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """A coarse ASCII sparkline for metric traces (e.g. D_switch)."""
    if not values:
        return ""
    glyphs = " .:-=+*#%@"
    lo, hi = min(values), max(values)
    span = hi - lo or 1.0
    if len(values) > width:
        stride = len(values) / width
        values = [values[int(i * stride)] for i in range(width)]
    return "".join(glyphs[int((v - lo) / span * (len(glyphs) - 1))] for v in values)


def summarize_records(records: Iterable["RunRecord"]) -> str:
    """One table row per (condition, system) over persisted campaign records.

    Reports run counts, mean/P95/P99 response, mean makespan and PR
    counters — everything needed to sanity-check a campaign file without
    replaying the simulations.  Failure records (cells whose worker
    crashed or timed out — ``record.failed``) carry no samples; they are
    kept out of the aggregates and tallied in the table title instead.

    The aggregation is the store layer's
    :class:`~repro.store.projections.RecordSummaryProjection`: the same
    incremental fold that renders from a notification-log watermark runs
    here over an in-memory record list (exact pooled samples when records
    carry them, merged bounded-error digests otherwise), so the batch
    table and the projection cannot drift apart.
    """
    from ..store.projections import RecordSummaryProjection

    projection = RecordSummaryProjection()
    for record in records:
        projection.fold_record(record)
    return projection.render()


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)
