"""ASCII reporting helpers for experiment tables and figure series.

Every experiment prints its results through these helpers, so the bench
output lines up visually with the paper's tables/figures and EXPERIMENTS.md
can quote them directly.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render a simple fixed-width table."""
    columns = len(headers)
    for row in rows:
        if len(row) != columns:
            raise ValueError(f"row {row!r} does not match {columns} headers")
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(columns)]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(cells[0])))
    lines.append("  ".join("-" * widths[i] for i in range(columns)))
    for row in cells[1:]:
        lines.append("  ".join(row[i].rjust(widths[i]) for i in range(columns)))
    return "\n".join(lines)


def format_series(
    name: str,
    pairs: Mapping[str, float],
    reference: Optional[Mapping[str, float]] = None,
) -> str:
    """Render one figure series, optionally next to the paper's values."""
    lines = [name]
    for key, value in pairs.items():
        line = f"  {key:<14s} {value:8.2f}"
        if reference and key in reference:
            line += f"   (paper: {reference[key]:.2f})"
        lines.append(line)
    return "\n".join(lines)


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """A coarse ASCII sparkline for metric traces (e.g. D_switch)."""
    if not values:
        return ""
    glyphs = " .:-=+*#%@"
    lo, hi = min(values), max(values)
    span = hi - lo or 1.0
    if len(values) > width:
        stride = len(values) / width
        values = [values[int(i * stride)] for i in range(width)]
    return "".join(glyphs[int((v - lo) / span * (len(glyphs) - 1))] for v in values)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)
