"""Response-time statistics (Figs. 5 and 6).

Response time of an application is completion minus arrival.  The paper
reports *relative response-time reduction* (baseline mean over system
mean, higher is better) and *relative tail latency* (system percentile
over baseline percentile, lower is better).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence

import numpy as np


@dataclass
class ResponseStats:
    """Summary statistics of one run's response times."""

    samples_ms: List[float] = field(default_factory=list)

    def extend(self, values: Iterable[float]) -> None:
        """Append ``values`` after one vectorized validation pass."""
        values = values if isinstance(values, list) else list(values)
        if not values:
            return
        arr = np.asarray(values, dtype=float)
        if arr.ndim != 1:
            raise ValueError(f"expected a flat sample sequence, got shape {arr.shape}")
        negative = np.where(arr < 0)[0]
        if negative.size:
            value = values[int(negative[0])]
            raise ValueError(f"negative response time {value}")
        self.samples_ms.extend(values)

    @property
    def count(self) -> int:
        return len(self.samples_ms)

    def mean(self) -> float:
        self._require_samples()
        return float(np.mean(self.samples_ms))

    def percentile(self, q: float) -> float:
        """The q-th percentile (q in [0, 100])."""
        self._require_samples()
        if not (0.0 <= q <= 100.0):
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        return float(np.percentile(self.samples_ms, q))

    def p95(self) -> float:
        return self.percentile(95.0)

    def p99(self) -> float:
        return self.percentile(99.0)

    def _require_samples(self) -> None:
        if not self.samples_ms:
            raise ValueError("no response samples recorded")


def relative_reduction(baseline: ResponseStats, system: ResponseStats) -> float:
    """Fig. 5 metric: baseline mean / system mean (higher is better)."""
    return baseline.mean() / system.mean()


def relative_tail(baseline: ResponseStats, system: ResponseStats, q: float) -> float:
    """Fig. 6 metric: system percentile / baseline percentile (lower is better)."""
    return system.percentile(q) / baseline.percentile(q)


def summarize_runs(runs: Sequence[ResponseStats]) -> Dict[str, float]:
    """Aggregate a set of per-sequence stats into one summary dict."""
    if not runs:
        raise ValueError("no runs to summarize")
    means = [run.mean() for run in runs]
    p95s = [run.p95() for run in runs]
    p99s = [run.p99() for run in runs]
    return {
        "mean_ms": float(np.mean(means)),
        "p95_ms": float(np.mean(p95s)),
        "p99_ms": float(np.mean(p99s)),
        "runs": float(len(runs)),
        "samples": float(sum(run.count for run in runs)),
    }


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean, the conventional aggregate for speedup ratios."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("no values")
    if np.any(arr <= 0):
        raise ValueError("geometric mean requires positive values")
    return float(np.exp(np.mean(np.log(arr))))
