"""Response-time statistics (Figs. 5 and 6).

Response time of an application is completion minus arrival.  The paper
reports *relative response-time reduction* (baseline mean over system
mean, higher is better) and *relative tail latency* (system percentile
over baseline percentile, lower is better).

numpy is optional here (the core package must import without the
``repro[fast]`` extra).  The pure-python fallbacks are not approximations:
``_pairwise_sum`` replicates numpy's pairwise summation (8-way unrolled
blocks of 128, halved recursion above) and ``_percentile_linear``
replicates ``np.percentile``'s linear-interpolation ``_lerp``, so means
and percentiles are **bit-identical** with and without numpy — the fig5
golden pins exact equality and the no-numpy CI job runs the same golden.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    np = None

#: numpy's pairwise-summation block size (PW_BLOCKSIZE).
_PW_BLOCKSIZE = 128


def _pairwise_sum(values: Sequence[float], start: int, n: int) -> float:
    """numpy's pairwise summation over ``values[start:start+n]``.

    Mirrors ``pairwise_sum_@TYPE@`` in numpy's umath loops: a plain
    accumulation below 8 elements, an 8-accumulator unrolled loop up to
    the block size, and above that a recursive halving aligned down to a
    multiple of 8 — the exact operation order, hence the exact float.
    """
    if n < 8:
        res = 0.0
        for i in range(start, start + n):
            res += values[i]
        return res
    if n <= _PW_BLOCKSIZE:
        r0, r1, r2, r3 = values[start], values[start + 1], values[start + 2], values[start + 3]
        r4, r5, r6, r7 = values[start + 4], values[start + 5], values[start + 6], values[start + 7]
        i = start + 8
        end = start + n - (n % 8)
        while i < end:
            r0 += values[i]
            r1 += values[i + 1]
            r2 += values[i + 2]
            r3 += values[i + 3]
            r4 += values[i + 4]
            r5 += values[i + 5]
            r6 += values[i + 6]
            r7 += values[i + 7]
            i += 8
        res = ((r0 + r1) + (r2 + r3)) + ((r4 + r5) + (r6 + r7))
        for i in range(end, start + n):
            res += values[i]
        return res
    half = n // 2
    half -= half % 8
    return _pairwise_sum(values, start, half) + _pairwise_sum(values, start + half, n - half)


def _mean(values: Sequence[float]) -> float:
    """``float(np.mean(values))``, numpy-free but bit-identical."""
    if np is not None:
        return float(np.mean(values))
    values = [float(v) for v in values]
    return _pairwise_sum(values, 0, len(values)) / len(values)


def _percentile_linear(values: Sequence[float], q: float) -> float:
    """``float(np.percentile(values, q))`` (method="linear"), bit-identical.

    numpy computes the virtual index ``q/100 * (n-1)``, splits it into
    floor and fractional parts, and lerps between the two neighbouring
    order statistics with ``a + t*(b-a)`` — switching to ``b - (b-a)*(1-t)``
    when ``t >= 0.5`` (the symmetric form it uses to cut rounding error).
    """
    if np is not None:
        return float(np.percentile(values, q))
    data = sorted(float(v) for v in values)
    n = len(data)
    virtual = (q / 100.0) * (n - 1)
    previous = math.floor(virtual)
    gamma = virtual - previous
    lo = min(max(int(previous), 0), n - 1)
    hi = min(lo + 1, n - 1)
    a, b = data[lo], data[hi]
    diff = b - a
    if gamma >= 0.5:
        return b - diff * (1.0 - gamma)
    return a + diff * gamma


@dataclass
class ResponseStats:
    """Summary statistics of one run's response times."""

    samples_ms: List[float] = field(default_factory=list)

    def extend(self, values: Iterable[float]) -> None:
        """Append ``values`` after one validation pass."""
        values = values if isinstance(values, list) else list(values)
        if not values:
            return
        if np is not None:
            arr = np.asarray(values, dtype=float)
            if arr.ndim != 1:
                raise ValueError(f"expected a flat sample sequence, got shape {arr.shape}")
            negative = np.where(arr < 0)[0]
            if negative.size:
                value = values[int(negative[0])]
                raise ValueError(f"negative response time {value}")
        else:
            for value in values:
                if isinstance(value, (list, tuple)):
                    raise ValueError("expected a flat sample sequence")
                if float(value) < 0:
                    raise ValueError(f"negative response time {value}")
        self.samples_ms.extend(values)

    @property
    def count(self) -> int:
        return len(self.samples_ms)

    def mean(self) -> float:
        self._require_samples()
        return _mean(self.samples_ms)

    def percentile(self, q: float) -> float:
        """The q-th percentile (q in [0, 100])."""
        self._require_samples()
        if not (0.0 <= q <= 100.0):
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        return _percentile_linear(self.samples_ms, q)

    def p95(self) -> float:
        return self.percentile(95.0)

    def p99(self) -> float:
        return self.percentile(99.0)

    def _require_samples(self) -> None:
        if not self.samples_ms:
            raise ValueError("no response samples recorded")


def relative_reduction(baseline: ResponseStats, system: ResponseStats) -> float:
    """Fig. 5 metric: baseline mean / system mean (higher is better)."""
    return baseline.mean() / system.mean()


def relative_tail(baseline: ResponseStats, system: ResponseStats, q: float) -> float:
    """Fig. 6 metric: system percentile / baseline percentile (lower is better)."""
    return system.percentile(q) / baseline.percentile(q)


def summarize_runs(runs: Sequence[ResponseStats]) -> Dict[str, float]:
    """Aggregate a set of per-sequence stats into one summary dict."""
    if not runs:
        raise ValueError("no runs to summarize")
    means = [run.mean() for run in runs]
    p95s = [run.p95() for run in runs]
    p99s = [run.p99() for run in runs]
    return {
        "mean_ms": _mean(means),
        "p95_ms": _mean(p95s),
        "p99_ms": _mean(p99s),
        "runs": float(len(runs)),
        "samples": float(sum(run.count for run in runs)),
    }


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean, the conventional aggregate for speedup ratios."""
    values = [float(v) for v in values]
    if not values:
        raise ValueError("no values")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    # math.log/exp, not np.log/exp: scalar libm calls round identically
    # everywhere, while numpy's SIMD transcendentals may differ by a ULP
    # between builds — and then the two environments would disagree.
    logs = [math.log(v) for v in values]
    return math.exp(_mean(logs))
