"""Metrics: response times, tail latency, utilization, reporting."""

from .response import (
    ResponseStats,
    geometric_mean,
    relative_reduction,
    relative_tail,
    summarize_runs,
)
from .plots import bar_chart, grouped_bar_chart, trace_plot
from .report import format_series, format_table, sparkline, summarize_records
from .utilization import BundlingGain, UtilizationTracker, bundling_gain, ic_detail

__all__ = [
    "BundlingGain",
    "bar_chart",
    "grouped_bar_chart",
    "trace_plot",
    "ResponseStats",
    "UtilizationTracker",
    "bundling_gain",
    "format_series",
    "format_table",
    "geometric_mean",
    "ic_detail",
    "relative_reduction",
    "relative_tail",
    "sparkline",
    "summarize_records",
    "summarize_runs",
]
