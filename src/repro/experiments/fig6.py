"""Figure 6: tail response time (P95/P99) normalized to the baseline.

Six systems over Standard / Stress / Real-time; each bar is the system's
percentile divided by the Baseline's percentile for the same sequences,
so lower is better and Baseline is 1.0.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Union

from ..campaign import ResultsStore
from ..config import SystemParameters
from ..metrics.report import format_table
from ..workloads.generator import Condition
from .fig5 import Fig5Result, run_fig5
from .runner import SYSTEMS

#: Conditions shown in Fig. 6 (Loose omitted, as in the paper).
TAIL_CONDITIONS: Sequence[Condition] = (
    Condition.STANDARD,
    Condition.STRESS,
    Condition.REAL_TIME,
)

#: Paper values read off Fig. 6 (relative tail, lower is better).
PAPER_FIG6: Dict[str, Dict[str, float]] = {
    "Nimblock": {
        "Standard-95": 0.55, "Standard-99": 1.25,
        "Stress-95": 0.75, "Stress-99": 1.30,
        "Real-Time-95": 0.72, "Real-Time-99": 1.25,
    },
    "VersaSlot-BL": {
        "Standard-95": 0.45, "Standard-99": 1.05,
        "Stress-95": 0.41, "Stress-99": 0.89,
        "Real-Time-95": 0.46, "Real-Time-99": 0.84,
    },
}


@dataclass
class Fig6Result:
    """Relative P95/P99 per condition per system."""

    relative_tails: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def table(self) -> str:
        keys = sorted(self.relative_tails)
        headers = ["system"] + keys
        rows = []
        systems = {s for col in self.relative_tails.values() for s in col}
        for system in SYSTEMS:
            if system not in systems or system == "Baseline":
                continue
            rows.append([system] + [self.relative_tails[k][system] for k in keys])
        return format_table(
            headers, rows,
            title="Fig. 6 — relative tail response time (lower is better)",
        )


def run_fig6(
    seed: int = 1,
    sequence_count: int = 10,
    n_apps: int = 20,
    params: Optional[SystemParameters] = None,
    systems: Optional[Sequence[str]] = None,
    fig5_result: Optional[Fig5Result] = None,
    jobs: int = 1,
    store: Optional[Union[ResultsStore, str]] = None,
) -> Fig6Result:
    """Regenerate Fig. 6; reuses Fig. 5's runs (or records) when provided."""
    if fig5_result is None:
        fig5_result = run_fig5(
            seed=seed,
            sequence_count=sequence_count,
            n_apps=n_apps,
            params=params,
            systems=systems,
            conditions=TAIL_CONDITIONS,
            jobs=jobs,
            store=store,
        )
    result = Fig6Result()
    for condition in TAIL_CONDITIONS:
        label = condition.label
        if label not in fig5_result.runs:
            continue
        matrix = fig5_result.runs[label]
        baseline_runs = matrix["Baseline"]
        for q, tag in ((95.0, "95"), (99.0, "99")):
            column: Dict[str, float] = {}
            for system, runs in matrix.items():
                ratios = [
                    run.responses.percentile(q) / base.responses.percentile(q)
                    for base, run in zip(baseline_runs, runs)
                ]
                column[system] = sum(ratios) / len(ratios)
            result.relative_tails[f"{label}-{tag}"] = column
    return result


def fig6_from_records(records) -> Fig6Result:
    """Replay Fig. 6 from persisted campaign records (no simulation)."""
    return run_fig6(fig5_result=Fig5Result.from_records(records))


def main() -> None:  # pragma: no cover - CLI entry
    print(run_fig6(sequence_count=3).table())


if __name__ == "__main__":  # pragma: no cover
    main()
