"""Figure 8: cross-board switching — D_switch trace and response gains.

Left panel: the D_switch trajectory over a long workload on a two-board
cluster, with the Schmitt trigger switching Only.Little -> Big.Little at
``T1 = 0.1``.  Right panel: relative response-time reduction of the
Switching cluster and of an Only-Big.Little board, both normalized to an
Only.Little board serving the identical workload.  The paper also reports
an average switching overhead of ~1.13 ms.

The paper drives this with three 80-application workloads at standard
intervals on real hardware; on the simulator the same PR-contention level
is reached with a denser long-run interval (see EXPERIMENTS.md), which is
exposed as a parameter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import random

from ..apps.application import reset_instance_ids
from ..campaign import CampaignCell, CampaignRunner, ResultsStore
from ..cluster.cluster import FPGACluster
from ..cluster.monitor import ContentionMonitor
from ..config import DEFAULT_PARAMETERS, SystemParameters
from ..core.dswitch import DSwitchSample
from ..core.versaslot import make_versaslot
from ..fpga.slots import BoardConfig
from ..metrics.report import format_series, sparkline
from ..metrics.response import ResponseStats
from ..sim import DEFAULT_ENGINE
from ..workloads.generator import Arrival, Condition, drive
from .runner import RUN_HORIZON_MS, record_to_run_result

#: Paper right-panel values (reduction vs Only.Little, higher is better).
PAPER_FIG8: Dict[str, float] = {"Switching": 2.98, "Only Big.Little": 6.65}

#: Paper switching overhead (ms).
PAPER_SWITCH_OVERHEAD_MS = 1.13


def long_workload(
    seed: int,
    n_apps: int = 80,
    interval_range: Tuple[float, float] = (400.0, 900.0),
) -> List[Arrival]:
    """A long mixed workload whose congestion ramps up, peaks, then relaxes.

    Arrivals start at the relaxed end of ``interval_range``, tighten to
    the dense end through the middle third (PR contention builds and
    ``D_switch`` rises through the buffer zone — pre-warming the standby
    board — until it crosses T1), and relax again afterwards.  This is
    the rise-then-fall trajectory of the paper's Fig. 8 trace.
    """
    from ..apps.benchmarks import BENCHMARKS

    rng = random.Random(seed)
    names = list(BENCHMARKS)
    lo, hi = interval_range
    arrivals: List[Arrival] = []
    t = 0.0
    for index in range(n_apps):
        phase = index / max(1, n_apps - 1)
        if phase < 1.0 / 3.0:
            low, high = (lo + hi) / 2, hi  # relaxed opening
        elif phase < 2.0 / 3.0:
            low, high = lo, lo * 1.3  # dense middle: contention builds
        else:
            low, high = (lo + hi) / 2, hi  # relaxed tail
        arrivals.append(
            Arrival(
                app_name=rng.choice(names),
                batch_size=rng.randint(5, 30),
                time_ms=t,
            )
        )
        t += rng.uniform(low, high)
    return arrivals


@dataclass
class Fig8Result:
    """Trace, trigger events and the three-mode comparison."""

    samples: List[DSwitchSample] = field(default_factory=list)
    switch_times_ms: List[float] = field(default_factory=list)
    mean_switch_overhead_ms: float = 0.0
    reductions: Dict[str, float] = field(default_factory=dict)

    def trace(self) -> str:
        values = [sample.value for sample in self.samples]
        lines = [
            "Fig. 8 (left) — D_switch vs completed applications",
            f"  samples={len(values)}  max={max(values) if values else 0:.4f}  "
            f"switches at t={['%.0f' % t for t in self.switch_times_ms]}",
            "  " + sparkline(values),
        ]
        return "\n".join(lines)

    def comparison(self) -> str:
        return format_series(
            "Fig. 8 (right) — response reduction vs Only.Little",
            self.reductions,
            reference=PAPER_FIG8,
        )


def run_cluster(
    arrivals: Sequence[Arrival],
    params: Optional[SystemParameters] = None,
    switching_enabled: bool = True,
    initial: BoardConfig = BoardConfig.ONLY_LITTLE,
) -> Tuple[ResponseStats, FPGACluster, ContentionMonitor]:
    """Serve ``arrivals`` on a two-board cluster with the switch loop."""
    if params is None:
        params = DEFAULT_PARAMETERS
    reset_instance_ids()
    engine = DEFAULT_ENGINE()
    cluster = FPGACluster(
        engine,
        scheduler_factory=lambda board, p, tracer: make_versaslot(board, p, tracer),
        params=params,
        initial=initial,
    )
    monitor = ContentionMonitor(cluster, params, enabled=switching_enabled)
    engine.process(drive(engine, cluster, arrivals))
    engine.run(until=RUN_HORIZON_MS)
    if not cluster.is_drained:
        raise RuntimeError("cluster did not drain the workload")
    responses = ResponseStats()
    responses.extend(cluster.response_times_ms())
    return responses, cluster, monitor


def run_fig8(
    seed: int = 1,
    n_apps: int = 80,
    interval_range: Tuple[float, float] = (400.0, 900.0),
    params: Optional[SystemParameters] = None,
    jobs: int = 1,
    store: Optional[ResultsStore] = None,
) -> Fig8Result:
    """Regenerate Fig. 8: trace, switch overhead and mode comparison.

    The switching-cluster run stays in-process (the cluster layer is not a
    single-board campaign cell), but the two single-board reference runs
    go through the campaign backend and fan out when ``jobs > 1``.
    """
    arrivals = long_workload(seed, n_apps, interval_range)
    result = Fig8Result()

    switching, cluster, monitor = run_cluster(arrivals, params, switching_enabled=True)
    result.samples = list(monitor.samples)
    result.switch_times_ms = [record.start_ms for record in cluster.migration_stats.records]
    result.mean_switch_overhead_ms = cluster.migration_stats.mean_overhead_ms()

    runner = CampaignRunner(jobs=jobs, store=store)
    resolved = params if params is not None else DEFAULT_PARAMETERS
    cells = [
        CampaignCell(
            scenario="fig8-boards",
            system=system,
            sequence_index=0,
            seed=seed,
            params=resolved,
            arrivals=tuple(arrivals),
        )
        for system in ("VersaSlot-OL", "VersaSlot-BL")
    ]
    records = runner.run_cells(cells)
    only_little = record_to_run_result(records[0]).responses
    only_big = record_to_run_result(records[1]).responses

    base = only_little.mean()
    result.reductions = {
        "Only.Little": 1.0,
        "Switching": base / switching.mean(),
        "Only Big.Little": base / only_big.mean(),
    }
    return result


def main() -> None:  # pragma: no cover - CLI entry
    result = run_fig8()
    print(result.trace())
    print(result.comparison())
    print(f"mean switching overhead: {result.mean_switch_overhead_ms:.2f} ms "
          f"(paper: {PAPER_SWITCH_OVERHEAD_MS} ms)")


if __name__ == "__main__":  # pragma: no cover
    main()
