"""Figure 7: resource-utilization improvement of 3-in-1 tasks.

Left panel: per-application LUT/FF utilization increase of bundles in Big
slots over the same tasks in Little slots.  Right panel: the Image
Compression detail — the first three task utilizations, their average,
and the bundled utilization.

Both panels derive from the synthesis tables; :func:`run_fig7_dynamic`
additionally verifies the gain on a live simulation via the time-weighted
utilization tracker.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..apps.benchmarks import BENCHMARKS, FIG7_APPS, IC_DETAIL_TASKS
from ..config import DEFAULT_PARAMETERS, SystemParameters
from typing import Optional
from ..core.versaslot import VersaSlotBigLittle
from ..fpga.board import FPGABoard
from ..fpga.slots import BoardConfig
from ..fpga.resvec import ResourceVector
from ..metrics.report import format_table
from ..metrics.utilization import UtilizationTracker, bundling_gain, ic_detail
from ..apps.application import ApplicationInstance, reset_instance_ids
from ..schedulers.nimblock import NimblockScheduler
from ..sim import DEFAULT_ENGINE

#: Fig. 7 left-panel values from the paper (percent increase).
PAPER_FIG7: Dict[str, Tuple[float, float]] = {
    "IC": (42.2, 48.0),
    "AN": (36.4, 41.4),
    "3DR": (9.9, 17.7),
    "OF": (9.6, 14.1),
}

#: Fig. 7 right-panel values (LUT utilizations).
PAPER_IC_DETAIL: Tuple[Tuple[float, ...], float, float] = ((0.57, 0.38, 0.28), 0.41, 0.6)


@dataclass
class Fig7Result:
    """Static bundling gains plus the IC detail panel."""

    gains: Dict[str, Tuple[float, float]] = field(default_factory=dict)
    detail_tasks: List[float] = field(default_factory=list)
    detail_mean: float = 0.0
    detail_bundle: float = 0.0

    @property
    def mean_lut_pct(self) -> float:
        return sum(v[0] for v in self.gains.values()) / len(self.gains)

    @property
    def mean_ff_pct(self) -> float:
        return sum(v[1] for v in self.gains.values()) / len(self.gains)

    def table(self) -> str:
        headers = ["app", "LUT +%", "FF +%", "paper LUT", "paper FF"]
        rows = []
        for app in FIG7_APPS:
            lut, ff = self.gains[app]
            paper_lut, paper_ff = PAPER_FIG7[app]
            rows.append([app, lut, ff, paper_lut, paper_ff])
        rows.append(["mean", self.mean_lut_pct, self.mean_ff_pct, 24.5, 30.3])
        body = format_table(
            headers, rows,
            title="Fig. 7 — utilization increase of 3-in-1 tasks",
        )
        names = ", ".join(IC_DETAIL_TASKS)
        detail = (
            f"IC detail ({names}): tasks="
            + "/".join(f"{u:.2f}" for u in self.detail_tasks)
            + f" mean={self.detail_mean:.2f} bundle={self.detail_bundle:.2f}"
            f"  (paper: 0.57/0.38/0.28 mean=0.41 bundle=0.60)"
        )
        return body + "\n" + detail


def run_fig7() -> Fig7Result:
    """Regenerate Fig. 7 from the synthesis tables."""
    result = Fig7Result()
    for name in FIG7_APPS:
        gain = bundling_gain(BENCHMARKS[name])
        result.gains[name] = (gain.lut_increase_pct, gain.ff_increase_pct)
    tasks, mean, bundle = ic_detail(BENCHMARKS["IC"])
    result.detail_tasks = tasks
    result.detail_mean = mean
    result.detail_bundle = bundle
    return result


def run_fig7_dynamic(
    app_name: str = "IC",
    batch_size: int = 20,
    params: Optional[SystemParameters] = None,
) -> Tuple[ResourceVector, ResourceVector]:
    """Verify the static gain on a live run: (little_util, big_util).

    Runs one application to completion under Nimblock (all tasks in Little
    slots) and under VersaSlot Big.Little (bundled), and returns the
    time-weighted occupied-slot utilizations of both runs.
    """
    spec = BENCHMARKS[app_name]
    if params is None:
        params = DEFAULT_PARAMETERS
    utils = []
    for scheduler_cls, config in (
        (NimblockScheduler, BoardConfig.ONLY_LITTLE),
        (VersaSlotBigLittle, BoardConfig.BIG_LITTLE),
    ):
        reset_instance_ids()
        engine = DEFAULT_ENGINE()
        board = FPGABoard(engine, config, params, name="fig7")
        tracker = UtilizationTracker(board)
        scheduler = scheduler_cls(board, params)
        scheduler.submit(ApplicationInstance(spec, batch_size, 0.0))
        engine.run(until=60_000_000)
        if scheduler.stats.completions != 1:
            raise RuntimeError(f"{scheduler_cls.__name__} did not finish {app_name}")
        utils.append(tracker.mean_occupied_utilization())
    return utils[0], utils[1]


def main() -> None:  # pragma: no cover - CLI entry
    print(run_fig7().table())


if __name__ == "__main__":  # pragma: no cover
    main()
