"""Figure 5: relative average response-time reduction vs the baseline.

Six systems x four congestion conditions; each cell is the mean over N
random 20-application sequences of (baseline mean response / system mean
response), so higher is better and the Baseline column is 1.0 by
construction.

The heavy lifting is a campaign per condition: ``run_fig5`` enumerates
(system × sequence) cells through :class:`repro.campaign.CampaignRunner`
(optionally over ``jobs`` worker processes, optionally persisted as
JSONL), and the figure itself is computed from the records — so
:meth:`Fig5Result.from_records` can replay a persisted campaign without
re-simulating.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Union

from ..campaign import CampaignRunner, ResultsStore, RunRecord, Scenario, group_by_system
from ..config import SystemParameters
from ..metrics.report import format_table
from ..workloads.generator import Condition, WorkloadSpec
from .runner import RunResult, SYSTEMS, record_to_run_result

#: The paper's Fig. 5 values (reduction vs baseline, higher is better).
PAPER_FIG5: Dict[str, Dict[str, float]] = {
    "FCFS": {"Loose": 0.81, "Standard": 1.57, "Stress": 1.47, "Real-Time": 1.45},
    "RR": {"Loose": 0.79, "Standard": 1.80, "Stress": 1.47, "Real-Time": 1.46},
    "Nimblock": {"Loose": 1.06, "Standard": 6.23, "Stress": 3.04, "Real-Time": 2.91},
    "VersaSlot-OL": {"Loose": 1.08, "Standard": 8.39, "Stress": 4.13, "Real-Time": 3.84},
    "VersaSlot-BL": {"Loose": 1.49, "Standard": 13.66, "Stress": 5.23, "Real-Time": 4.76},
}

#: Conditions in the figure's x-axis order.
CONDITIONS: Sequence[Condition] = (
    Condition.LOOSE,
    Condition.STANDARD,
    Condition.STRESS,
    Condition.REAL_TIME,
)


def reductions_from_records(
    records: Iterable[RunRecord],
    baseline: str = "Baseline",
) -> Dict[str, float]:
    """Fig. 5 metric over one condition's records: mean over sequences of
    (baseline mean response / system mean response)."""
    grouped = group_by_system(records)
    if baseline not in grouped:
        raise KeyError(
            f"no {baseline!r} records to normalize against; have: "
            f"{', '.join(grouped) or 'none'}"
        )
    # Refuse to silently average incompatible runs — e.g. a results file
    # that accumulated appends from differently-parameterized campaigns.
    fingerprints = {r.fingerprint for runs in grouped.values() for r in runs}
    if len(fingerprints) > 1:
        raise ValueError(
            f"records mix {len(fingerprints)} parameter fingerprints "
            f"({', '.join(sorted(fingerprints))}); refusing to aggregate "
            "(was the results file appended to by incompatible campaigns?)"
        )
    for system, runs in grouped.items():
        keys = [(r.seed, r.sequence_index) for r in runs]
        if len(set(keys)) != len(keys):
            raise ValueError(
                f"{system} has duplicate (seed, sequence) cells; pairing "
                "would be ambiguous — aggregate one campaign at a time"
            )
    baseline_runs = grouped[baseline]
    reductions: Dict[str, float] = {}
    for system, runs in grouped.items():
        if len(runs) != len(baseline_runs):
            raise ValueError(
                f"{system} has {len(runs)} records but {baseline} has "
                f"{len(baseline_runs)}; cannot pair sequences"
            )
        ratios = []
        for base, run in zip(baseline_runs, runs):
            # Refuse to silently average incompatible runs — e.g. a results
            # file that accumulated appends from differently-parameterized
            # campaigns.  A pair is comparable iff it simulated the same
            # workload cell under the same configuration.
            mismatched = [
                field
                for field in ("seed", "sequence_index", "n_apps", "fingerprint")
                if getattr(base, field) != getattr(run, field)
            ]
            if mismatched:
                raise ValueError(
                    f"cannot pair {system} with {baseline}: records disagree "
                    f"on {', '.join(mismatched)} (was the results file "
                    "appended to by incompatible campaigns?)"
                )
            ratios.append(base.mean_response_ms() / run.mean_response_ms())
        reductions[system] = sum(ratios) / len(ratios)
    return reductions


@dataclass
class Fig5Result:
    """Reductions per condition per system, plus the raw runs/records."""

    reductions: Dict[str, Dict[str, float]] = field(default_factory=dict)
    runs: Dict[str, Dict[str, List[RunResult]]] = field(default_factory=dict)
    records: List[RunRecord] = field(default_factory=list)

    @classmethod
    def from_records(cls, records: Iterable[RunRecord]) -> "Fig5Result":
        """Rebuild the figure from persisted records (no simulation)."""
        result = cls()
        by_condition: Dict[str, List[RunRecord]] = {}
        for record in records:
            by_condition.setdefault(record.condition, []).append(record)
        for label, condition_records in by_condition.items():
            result.records.extend(condition_records)
            result.runs[label] = {
                system: [record_to_run_result(r) for r in runs]
                for system, runs in group_by_system(condition_records).items()
            }
            result.reductions[label] = reductions_from_records(condition_records)
        return result

    def table(self) -> str:
        order = [c.label for c in CONDITIONS]
        labels = [label for label in order if label in self.reductions]
        labels += [label for label in self.reductions if label not in order]
        headers = ["system"] + labels + ["paper (Std)"]
        rows = []
        for system in SYSTEMS:
            if system == "Baseline" or not all(
                system in self.reductions[label] for label in labels
            ):
                continue
            row: List[object] = [system]
            for label in labels:
                row.append(self.reductions[label][system])
            row.append(PAPER_FIG5.get(system, {}).get("Standard", float("nan")))
            rows.append(row)
        return format_table(
            headers, rows,
            title="Fig. 5 — relative avg response-time reduction (higher is better)",
        )


def run_fig5(
    seed: int = 1,
    sequence_count: int = 10,
    n_apps: int = 20,
    params: Optional[SystemParameters] = None,
    systems: Optional[Sequence[str]] = None,
    conditions: Sequence[Condition] = CONDITIONS,
    jobs: int = 1,
    store: Optional[Union[ResultsStore, str]] = None,
) -> Fig5Result:
    """Regenerate Fig. 5 (and the raw data Fig. 6 reuses)."""
    chosen = list(systems) if systems else list(SYSTEMS)
    if "Baseline" not in chosen:
        chosen = ["Baseline"] + chosen
    runner = CampaignRunner(jobs=jobs, store=store, base_params=params)
    # Enumerate every condition's cells up front and fan them out in ONE
    # backend call: a single worker pool, no synchronization barrier at
    # condition boundaries.
    cells = []
    for condition in conditions:
        scenario = Scenario(
            name=f"fig5-{condition.label.lower()}",
            workload=WorkloadSpec(
                condition, n_apps=n_apps, sequence_count=sequence_count
            ),
            systems=tuple(chosen),
            seeds=(seed,),
        )
        cells.extend(runner.cells_for(scenario))
    return Fig5Result.from_records(runner.run_cells(cells))


def main() -> None:  # pragma: no cover - CLI entry
    result = run_fig5(sequence_count=3)
    print(result.table())


if __name__ == "__main__":  # pragma: no cover
    main()
