"""Figure 5: relative average response-time reduction vs the baseline.

Six systems x four congestion conditions; each cell is the mean over N
random 20-application sequences of (baseline mean response / system mean
response), so higher is better and the Baseline column is 1.0 by
construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..config import DEFAULT_PARAMETERS, SystemParameters
from ..metrics.report import format_table
from ..workloads.generator import Condition, WorkloadGenerator
from .runner import RunResult, SYSTEMS, run_matrix

#: The paper's Fig. 5 values (reduction vs baseline, higher is better).
PAPER_FIG5: Dict[str, Dict[str, float]] = {
    "FCFS": {"Loose": 0.81, "Standard": 1.57, "Stress": 1.47, "Real-Time": 1.45},
    "RR": {"Loose": 0.79, "Standard": 1.80, "Stress": 1.47, "Real-Time": 1.46},
    "Nimblock": {"Loose": 1.06, "Standard": 6.23, "Stress": 3.04, "Real-Time": 2.91},
    "VersaSlot-OL": {"Loose": 1.08, "Standard": 8.39, "Stress": 4.13, "Real-Time": 3.84},
    "VersaSlot-BL": {"Loose": 1.49, "Standard": 13.66, "Stress": 5.23, "Real-Time": 4.76},
}

#: Conditions in the figure's x-axis order.
CONDITIONS: Sequence[Condition] = (
    Condition.LOOSE,
    Condition.STANDARD,
    Condition.STRESS,
    Condition.REAL_TIME,
)


@dataclass
class Fig5Result:
    """Reductions per condition per system, plus the raw runs."""

    reductions: Dict[str, Dict[str, float]] = field(default_factory=dict)
    runs: Dict[str, Dict[str, List[RunResult]]] = field(default_factory=dict)

    def table(self) -> str:
        labels = [c.label for c in CONDITIONS if c.label in self.reductions]
        headers = ["system"] + labels + ["paper (Std)"]
        rows = []
        for system in SYSTEMS:
            if system == "Baseline":
                continue
            row: List[object] = [system]
            for label in labels:
                row.append(self.reductions[label][system])
            row.append(PAPER_FIG5.get(system, {}).get("Standard", float("nan")))
            rows.append(row)
        return format_table(
            headers, rows,
            title="Fig. 5 — relative avg response-time reduction (higher is better)",
        )


def run_fig5(
    seed: int = 1,
    sequence_count: int = 10,
    n_apps: int = 20,
    params: SystemParameters = DEFAULT_PARAMETERS,
    systems: Optional[Sequence[str]] = None,
    conditions: Sequence[Condition] = CONDITIONS,
) -> Fig5Result:
    """Regenerate Fig. 5 (and the raw data Fig. 6 reuses)."""
    result = Fig5Result()
    chosen = list(systems) if systems else list(SYSTEMS)
    if "Baseline" not in chosen:
        chosen = ["Baseline"] + chosen
    for condition in conditions:
        sequences = WorkloadGenerator(seed).sequences(
            condition, count=sequence_count, n_apps=n_apps
        )
        matrix = run_matrix(sequences, systems=chosen, params=params)
        result.runs[condition.label] = matrix
        reductions: Dict[str, float] = {}
        baseline_runs = matrix["Baseline"]
        for system, runs in matrix.items():
            ratios = [
                base.responses.mean() / run.responses.mean()
                for base, run in zip(baseline_runs, runs)
            ]
            reductions[system] = sum(ratios) / len(ratios)
        result.reductions[condition.label] = reductions
    return result


def main() -> None:  # pragma: no cover - CLI entry
    result = run_fig5(sequence_count=3)
    print(result.table())


if __name__ == "__main__":  # pragma: no cover
    main()
