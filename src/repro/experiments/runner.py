"""Shared experiment harness: thin wrappers over the campaign layer.

Historically this module owned the hardcoded ``SYSTEMS`` dict and the
serial simulation loop; both now live in :mod:`repro.campaign`.
:data:`SYSTEMS` is a live read-only view of the campaign system registry
(kept for the figure modules, benches and downstream users), and
:func:`run_sequence` / :func:`run_matrix` delegate to
:func:`repro.campaign.simulate_run` and the execution backends.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..campaign.backend import (
    DEFAULT_HORIZON_MS,
    CampaignCell,
    make_backend,
    simulate_run,
)
from ..campaign.results import RunRecord
from ..campaign.scenario import SYSTEM_REGISTRY, get_system
from ..config import DEFAULT_PARAMETERS, SystemParameters
from ..fpga.slots import BoardConfig
from ..metrics.response import ResponseStats
from ..schedulers.base import SchedulerStats
from ..workloads.generator import Arrival

#: Safety horizon: every sequence must drain well before this (ms).
RUN_HORIZON_MS = DEFAULT_HORIZON_MS


class _SystemsView(Mapping):
    """Read-only live view of the campaign system registry.

    Preserves the historical ``{name: (factory, board_config)}`` shape, so
    ``SYSTEMS["FCFS"]`` and ``list(SYSTEMS)`` keep working while new
    systems registered via ``repro.campaign.register_system`` appear
    automatically.
    """

    def __getitem__(self, name: str) -> Tuple[type, BoardConfig]:
        spec = get_system(name)
        return (spec.factory, spec.board_config)

    def __iter__(self) -> Iterator[str]:
        return iter(SYSTEM_REGISTRY)

    def __len__(self) -> int:
        return len(SYSTEM_REGISTRY)

    def __repr__(self) -> str:
        return f"SYSTEMS({', '.join(SYSTEM_REGISTRY)})"


#: Evaluated systems in the paper's legend order (live registry view).
SYSTEMS: Mapping = _SystemsView()


@dataclass
class RunResult:
    """Outcome of one (system, sequence) simulation.

    ``responses`` is either an exact :class:`ResponseStats` (live runs and
    raw-sample records) or a bounded-error
    :class:`~repro.telemetry.digest.ResponseDigest` (digest-only records);
    both expose ``count`` / ``mean()`` / ``percentile()`` / ``p95()`` /
    ``p99()``, so the figure pipelines are representation-agnostic.
    """

    system: str
    responses: object
    stats: SchedulerStats
    makespan_ms: float


def record_to_run_result(record: RunRecord) -> RunResult:
    """Rebuild a :class:`RunResult` from a persisted campaign record.

    The reconstructed ``stats`` carries the persisted counters; the
    per-application ``responses`` list inside it is not recoverable from a
    record and stays empty (use ``result.responses`` for the summary).
    """
    if record.response_times_ms:
        responses: object = ResponseStats()
        responses.extend(record.response_times_ms)  # type: ignore[attr-defined]
    else:
        responses = record.response_summary()
    stats = SchedulerStats()
    for name, value in record.counters.items():
        if hasattr(stats, name):
            setattr(stats, name, value)
    return RunResult(
        system=record.system,
        responses=responses,
        stats=stats,
        makespan_ms=record.makespan_ms,
    )


def run_sequence(
    system: str,
    arrivals: Sequence[Arrival],
    params: Optional[SystemParameters] = None,
    digest_only: bool = False,
) -> RunResult:
    """Simulate ``system`` serving ``arrivals`` on a fresh board.

    ``digest_only`` runs the production campaign-cell telemetry config —
    a completion-only streaming sink building the response digest online,
    no retained per-request records — so memory is O(1) in the number of
    requests and ``responses`` is a bounded-error digest.  The default
    keeps exact per-sample :class:`ResponseStats` (the goldens and the
    round-trip tests pin that representation).
    """
    if digest_only:
        from ..telemetry import StreamingAggregationSink, TelemetryBus

        def configure_retention(engine, board, scheduler) -> None:
            scheduler.stats.retain_responses = False

        bus = TelemetryBus()
        sink = StreamingAggregationSink(kinds=("completion",))
        bus.attach(sink)
        try:
            outcome = simulate_run(
                system,
                arrivals,
                params,
                instruments=(configure_retention,),
                telemetry=bus,
            )
        finally:
            bus.close()
        return RunResult(
            system=system,
            responses=sink.digest,
            stats=outcome.stats,
            makespan_ms=outcome.makespan_ms,
        )
    outcome = simulate_run(system, arrivals, params)
    responses = ResponseStats()
    responses.extend(outcome.stats.response_times_ms())
    return RunResult(
        system=system,
        responses=responses,
        stats=outcome.stats,
        makespan_ms=outcome.makespan_ms,
    )


def run_matrix(
    sequences: Sequence[Sequence[Arrival]],
    systems: Optional[Sequence[str]] = None,
    params: Optional[SystemParameters] = None,
    jobs: int = 1,
) -> Dict[str, List[RunResult]]:
    """Run every system over every sequence; keyed by system name.

    With ``jobs > 1`` the (system × sequence) cells fan out over worker
    processes; the aggregate is bit-identical to the serial path.
    """
    chosen = list(systems) if systems else list(SYSTEMS)
    results: Dict[str, List[RunResult]] = {name: [] for name in chosen}
    if jobs <= 1:
        for arrivals in sequences:
            for name in chosen:
                results[name].append(run_sequence(name, arrivals, params))
        return results
    resolved = params if params is not None else DEFAULT_PARAMETERS
    cells = [
        CampaignCell(
            scenario="run-matrix",
            system=name,
            sequence_index=index,
            seed=0,
            params=resolved,
            arrivals=tuple(arrivals),
            # run_matrix returns per-sample RunResults, matching the
            # serial path bit for bit — so workers keep raw samples.
            keep_raw_samples=True,
        )
        for index, arrivals in enumerate(sequences)
        for name in chosen
    ]
    for record in make_backend(jobs).run(cells):
        results[record.system].append(record_to_run_result(record))
    return results
