"""Shared experiment harness: run one system over one arrival sequence.

The six evaluated systems (Fig. 5's legend) are registered here with their
board configurations; every figure module builds on :func:`run_sequence`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..apps.application import reset_instance_ids
from ..config import DEFAULT_PARAMETERS, SystemParameters
from ..core.versaslot import VersaSlotBigLittle, VersaSlotOnlyLittle
from ..fpga.board import FPGABoard
from ..fpga.slots import BoardConfig
from ..metrics.response import ResponseStats
from ..schedulers.base import SchedulerStats
from ..schedulers.baseline import BaselineScheduler
from ..schedulers.fcfs import FCFSScheduler
from ..schedulers.nimblock import NimblockScheduler
from ..schedulers.round_robin import RoundRobinScheduler
from ..sim import Engine
from ..workloads.generator import Arrival, drive

#: Safety horizon: every sequence must drain well before this (ms).
RUN_HORIZON_MS = 500_000_000.0

#: Evaluated systems in the paper's legend order.
SYSTEMS: Dict[str, Tuple[Callable, BoardConfig]] = {
    "Baseline": (BaselineScheduler, BoardConfig.ONLY_LITTLE),
    "FCFS": (FCFSScheduler, BoardConfig.ONLY_LITTLE),
    "RR": (RoundRobinScheduler, BoardConfig.ONLY_LITTLE),
    "Nimblock": (NimblockScheduler, BoardConfig.ONLY_LITTLE),
    "VersaSlot-OL": (VersaSlotOnlyLittle, BoardConfig.ONLY_LITTLE),
    "VersaSlot-BL": (VersaSlotBigLittle, BoardConfig.BIG_LITTLE),
}


@dataclass
class RunResult:
    """Outcome of one (system, sequence) simulation."""

    system: str
    responses: ResponseStats
    stats: SchedulerStats
    makespan_ms: float


def run_sequence(
    system: str,
    arrivals: Sequence[Arrival],
    params: SystemParameters = DEFAULT_PARAMETERS,
) -> RunResult:
    """Simulate ``system`` serving ``arrivals`` on a fresh board."""
    try:
        scheduler_cls, config = SYSTEMS[system]
    except KeyError:
        raise KeyError(
            f"unknown system {system!r}; available: {', '.join(SYSTEMS)}"
        ) from None
    reset_instance_ids()
    engine = Engine()
    board = FPGABoard(engine, config, params, name="eval")
    scheduler = scheduler_cls(board, params)
    engine.process(drive(engine, scheduler, arrivals))
    engine.run(until=RUN_HORIZON_MS)
    stats: SchedulerStats = scheduler.stats
    if stats.completions != len(arrivals):
        raise RuntimeError(
            f"{system} finished {stats.completions}/{len(arrivals)} apps — "
            "the simulation did not drain"
        )
    responses = ResponseStats()
    responses.extend(stats.response_times_ms())
    return RunResult(
        system=system,
        responses=responses,
        stats=stats,
        makespan_ms=engine.now,
    )


def run_matrix(
    sequences: Sequence[Sequence[Arrival]],
    systems: Optional[Sequence[str]] = None,
    params: SystemParameters = DEFAULT_PARAMETERS,
) -> Dict[str, List[RunResult]]:
    """Run every system over every sequence; keyed by system name."""
    chosen = list(systems) if systems else list(SYSTEMS)
    results: Dict[str, List[RunResult]] = {name: [] for name in chosen}
    for arrivals in sequences:
        for name in chosen:
            results[name].append(run_sequence(name, arrivals, params))
    return results
