"""Experiment modules regenerating every table/figure of the paper."""

from .fig5 import (
    CONDITIONS,
    Fig5Result,
    PAPER_FIG5,
    reductions_from_records,
    run_fig5,
)
from .fig6 import Fig6Result, PAPER_FIG6, TAIL_CONDITIONS, fig6_from_records, run_fig6
from .fig7 import Fig7Result, PAPER_FIG7, PAPER_IC_DETAIL, run_fig7, run_fig7_dynamic
from .fig8 import Fig8Result, PAPER_FIG8, PAPER_SWITCH_OVERHEAD_MS, long_workload, run_cluster, run_fig8
from .runner import RunResult, SYSTEMS, record_to_run_result, run_matrix, run_sequence

__all__ = [
    "fig6_from_records",
    "record_to_run_result",
    "reductions_from_records",
    "CONDITIONS",
    "Fig5Result",
    "Fig6Result",
    "Fig7Result",
    "Fig8Result",
    "PAPER_FIG5",
    "PAPER_FIG6",
    "PAPER_FIG7",
    "PAPER_FIG8",
    "PAPER_IC_DETAIL",
    "PAPER_SWITCH_OVERHEAD_MS",
    "RunResult",
    "SYSTEMS",
    "TAIL_CONDITIONS",
    "long_workload",
    "run_cluster",
    "run_fig7_dynamic",
    "run_fig5",
    "run_fig6",
    "run_fig7",
    "run_fig8",
    "run_matrix",
    "run_sequence",
]
