"""Command-line interface: ``python -m repro <figure> [options]``.

Regenerates any of the paper's figures from the terminal:

.. code-block:: sh

    python -m repro fig5 --sequences 3
    python -m repro fig6
    python -m repro fig7
    python -m repro fig8 --apps 80 --seed 2
    python -m repro list
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .experiments import (
    PAPER_SWITCH_OVERHEAD_MS,
    run_fig5,
    run_fig6,
    run_fig7,
    run_fig8,
)
from .experiments.runner import SYSTEMS
from .metrics.plots import bar_chart, trace_plot


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="VersaSlot (DAC 2025) reproduction: regenerate the paper's figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fig5 = sub.add_parser("fig5", help="relative response-time reduction")
    fig5.add_argument("--sequences", type=int, default=2)
    fig5.add_argument("--apps", type=int, default=20)
    fig5.add_argument("--seed", type=int, default=1)

    fig6 = sub.add_parser("fig6", help="tail latency (P95/P99)")
    fig6.add_argument("--sequences", type=int, default=2)
    fig6.add_argument("--seed", type=int, default=1)

    sub.add_parser("fig7", help="3-in-1 utilization gains")

    fig8 = sub.add_parser("fig8", help="cross-board switching")
    fig8.add_argument("--apps", type=int, default=60)
    fig8.add_argument("--seed", type=int, default=1)

    sub.add_parser("list", help="list the evaluated systems")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for name, (cls, config) in SYSTEMS.items():
            print(f"{name:<14s} {cls.__name__:<22s} board={config.value}")
        return 0
    if args.command == "fig5":
        result = run_fig5(seed=args.seed, sequence_count=args.sequences, n_apps=args.apps)
        print(result.table())
        return 0
    if args.command == "fig6":
        print(run_fig6(seed=args.seed, sequence_count=args.sequences).table())
        return 0
    if args.command == "fig7":
        print(run_fig7().table())
        return 0
    if args.command == "fig8":
        result = run_fig8(seed=args.seed, n_apps=args.apps)
        print(trace_plot(
            [s.value for s in result.samples],
            title="D_switch trajectory",
            thresholds={"T1": 0.1, "T2": 0.0125},
        ))
        print()
        print(bar_chart(
            result.reductions,
            title="Response reduction vs Only.Little",
            reference={"Switching": 2.98, "Only Big.Little": 6.65},
        ))
        print(f"\nmean switching overhead: {result.mean_switch_overhead_ms:.2f} ms "
              f"(paper: {PAPER_SWITCH_OVERHEAD_MS:.2f} ms)")
        return 0
    return 1  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
