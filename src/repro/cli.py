"""Command-line interface: ``python -m repro <command> [options]``.

Regenerates any of the paper's figures, runs registered campaigns over a
parallel backend, and replays persisted results:

.. code-block:: sh

    python -m repro fig5 --sequences 3 --jobs 4 --out results/fig5.jsonl
    python -m repro fig6
    python -m repro fig7
    python -m repro fig8 --apps 80 --seed 2 --jobs 2
    python -m repro campaign list
    python -m repro campaign run fig5-standard --jobs 4
    python -m repro campaign replay results/repros/repro-smoke-3.json
    python -m repro fleet list
    python -m repro fleet run fleet-diurnal --shards 4 --jobs 4
    python -m repro replay results/fig5.jsonl --figure fig5
    python -m repro campaign run smoke --events-dir results/events
    python -m repro telemetry summarize results/events/smoke-FCFS-seed1-seq0.jsonl
    python -m repro verify --fuzz 50 --seed 0
    python -m repro bench --quick --baseline BENCH_kernel.json
    python -m repro list
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from .bench import add_bench_arguments, run_bench_command
from .campaign import (
    CampaignRunner,
    ResultsStore,
    get_scenario,
    scenario_names,
)
from .store import DEFAULT_SNAPSHOT_EVERY
from .experiments import (
    PAPER_SWITCH_OVERHEAD_MS,
    Fig5Result,
    fig6_from_records,
    run_fig5,
    run_fig6,
    run_fig7,
    run_fig8,
)
from .fleet import Fleet, fleet_scenario_names, get_fleet_scenario, policy_names
from .experiments.runner import SYSTEMS
from .metrics.plots import bar_chart, trace_plot
from .metrics.report import format_table, summarize_records
from .telemetry import (
    EVENT_TYPES,
    sniff_event_log,
    summarize_event_log,
)
from .verify.cli import add_verify_arguments, run_verify_command
from .verify.fuzz import parse_repro_payload, replay_case, sniff_repro_file


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="VersaSlot (DAC 2025) reproduction: regenerate the paper's figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_parallel_options(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--jobs", type=int, default=1,
            help="worker processes for the campaign backend (default: 1, serial)",
        )
        p.add_argument(
            "--cell-timeout", type=float, default=None, metavar="S",
            help="with --jobs N: wall-clock bound per campaign cell in "
                 "seconds; a hung worker is killed, the cell retried once "
                 "in isolation, and a persistent failure is surfaced as a "
                 "failure record instead of hanging the campaign",
        )
        p.add_argument(
            "--out", type=str, default=None, metavar="PATH",
            help="append per-run JSONL records to PATH (replayable via `replay`)",
        )

    def add_durability_options(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--resume", action="store_true",
            help="skip cells the store already holds a successful record "
                 "for (continue an interrupted run; the resumed results are "
                 "bit-identical to an uninterrupted run)",
        )
        p.add_argument(
            "--snapshot-every", type=int, default=None, metavar="N",
            help="checkpoint a resumable campaign snapshot into the store "
                 "every N completed cells (default: off; --resume implies "
                 f"{DEFAULT_SNAPSHOT_EVERY})",
        )
        p.add_argument(
            "--store-backend", choices=("jsonl", "sqlite"), default=None,
            help="durable store format for --out (default: jsonl; paths "
                 "ending in .sqlite/.db auto-select sqlite)",
        )

    fig5 = sub.add_parser("fig5", help="relative response-time reduction")
    fig5.add_argument("--sequences", type=int, default=2)
    fig5.add_argument("--apps", type=int, default=20)
    fig5.add_argument("--seed", type=int, default=1)
    add_parallel_options(fig5)

    fig6 = sub.add_parser("fig6", help="tail latency (P95/P99)")
    fig6.add_argument("--sequences", type=int, default=2)
    fig6.add_argument("--seed", type=int, default=1)
    add_parallel_options(fig6)

    sub.add_parser("fig7", help="3-in-1 utilization gains")

    fig8 = sub.add_parser("fig8", help="cross-board switching")
    fig8.add_argument("--apps", type=int, default=60)
    fig8.add_argument("--seed", type=int, default=1)
    add_parallel_options(fig8)

    campaign = sub.add_parser("campaign", help="run registered scenario campaigns")
    campaign_sub = campaign.add_subparsers(dest="campaign_command", required=True)
    campaign_list = campaign_sub.add_parser("list", help="list registered scenarios")
    campaign_list.add_argument("--json", action="store_true",
                               help="machine-readable JSON instead of a table")
    run = campaign_sub.add_parser("run", help="run one registered scenario")
    run.add_argument("scenario", help="registered scenario name")
    run.add_argument("--sequences", type=int, default=None,
                     help="override the scenario's sequence count")
    run.add_argument("--apps", type=int, default=None,
                     help="override the scenario's per-sequence app count")
    run.add_argument("--seed", type=int, default=None,
                     help="replace the scenario's seed set with one seed")
    run.add_argument("--raw-samples", action="store_true",
                     help="persist raw per-request response samples on each "
                          "record (default: compact bounded-memory digest)")
    run.add_argument("--events-dir", type=str, default=None, metavar="DIR",
                     help="write each cell's typed telemetry event stream as "
                          "a replayable JSONL log under DIR")
    add_parallel_options(run)
    add_durability_options(run)
    campaign_replay = campaign_sub.add_parser(
        "replay",
        help="replay persisted results or a fuzzer repro file",
    )
    campaign_replay.add_argument(
        "path",
        help="JSONL records file, SQLite event store, or a verify-repro "
             "JSON file",
    )
    campaign_replay.add_argument(
        "--figure", choices=("summary", "fig5", "fig6"), default="summary",
        help="rendering for records files (ignored for repro files)",
    )
    campaign_replay.add_argument(
        "--json", action="store_true",
        help="machine-readable JSON (records/skipped-line counts included) "
             "instead of a table",
    )

    fleet = sub.add_parser(
        "fleet", help="run sharded multi-cluster fleet scenarios"
    )
    fleet_sub = fleet.add_subparsers(dest="fleet_command", required=True)
    fleet_list = fleet_sub.add_parser("list", help="list registered fleet scenarios")
    fleet_list.add_argument("--json", action="store_true",
                            help="machine-readable JSON instead of a table")
    fleet_run = fleet_sub.add_parser("run", help="run one fleet scenario")
    fleet_run.add_argument("scenario", help="registered fleet scenario name")
    fleet_run.add_argument("--shards", type=int, default=None,
                           help="override the scenario's shard count")
    fleet_run.add_argument("--apps", type=int, default=None,
                           help="override the global arrival-stream size")
    fleet_run.add_argument("--seed", type=int, default=None,
                           help="replace the scenario's seed set with one seed")
    fleet_run.add_argument("--raw-samples", action="store_true",
                           help="persist raw per-request samples per shard "
                                "record (default: mergeable digests)")
    fleet_run.add_argument("--events-dir", type=str, default=None, metavar="DIR",
                           help="write admission + per-shard telemetry event "
                                "logs under DIR")
    add_parallel_options(fleet_run)
    add_durability_options(fleet_run)

    store = sub.add_parser(
        "store",
        help="inspect and maintain durable event stores (notification "
             "logs, snapshots, incremental projections)",
    )
    store_sub = store.add_subparsers(dest="store_command", required=True)
    store_inspect = store_sub.add_parser(
        "inspect", help="summarize a store's notification log and snapshots"
    )
    store_inspect.add_argument("path", help="results JSONL file or SQLite store")
    store_inspect.add_argument("--json", action="store_true",
                               help="machine-readable JSON instead of a table")
    store_verify = store_sub.add_parser(
        "verify",
        help="audit a store: log shape, snapshot consistency, and every "
             "incremental projection against a full rebuild",
    )
    store_verify.add_argument("path", help="results JSONL file or SQLite store")
    store_export = store_sub.add_parser(
        "export",
        help="copy every record of one store into another (format "
             "conversion: jsonl <-> sqlite)",
    )
    store_export.add_argument("path", help="source store")
    store_export.add_argument("dest", help="destination store path")
    store_export.add_argument(
        "--store-backend", choices=("jsonl", "sqlite"), default=None,
        help="destination format (default: sniffed from the path)",
    )
    store_ingest = store_sub.add_parser(
        "ingest",
        help="append the events of telemetry JSONL log(s) to a store's "
             "notification log",
    )
    store_ingest.add_argument("path", help="destination store")
    store_ingest.add_argument(
        "events", nargs="+", help="telemetry event log(s) written by --events-dir"
    )

    telemetry = sub.add_parser(
        "telemetry",
        help="inspect and replay typed telemetry event logs",
    )
    telemetry_sub = telemetry.add_subparsers(dest="telemetry_command", required=True)
    summarize = telemetry_sub.add_parser(
        "summarize",
        help="re-derive response statistics and counters from an event log",
    )
    summarize.add_argument("path", help="JSONL event log written by --events-dir")
    summarize.add_argument("--json", action="store_true",
                           help="machine-readable JSON instead of a table")
    schema = telemetry_sub.add_parser(
        "schema", help="list the typed event kinds and their fields"
    )
    schema.add_argument("--json", action="store_true",
                        help="machine-readable JSON instead of a table")

    verify = sub.add_parser(
        "verify",
        help="differential oracle: run scenarios on the reference and the "
             "optimized kernel and demand bit-identical outcomes",
    )
    add_verify_arguments(verify)

    bench = sub.add_parser(
        "bench",
        help="run the kernel/scheduler micro-benchmarks and update the "
             "BENCH_kernel.json throughput trajectory",
    )
    add_bench_arguments(bench)

    replay = sub.add_parser("replay", help="re-render results from persisted records")
    replay.add_argument(
        "path", help="records file (JSONL or SQLite store) written by --out"
    )
    replay.add_argument(
        "--figure", choices=("summary", "fig5", "fig6"), default="summary",
        help="rendering: raw summary table or a figure recomputation",
    )
    replay.add_argument(
        "--json", action="store_true",
        help="machine-readable JSON (records/skipped-line counts included) "
             "instead of a table",
    )

    sub.add_parser("list", help="list the evaluated systems")
    return parser


def _operator_error(exc: Exception) -> int:
    """Print a clean one-line message for a user-input error (exit 2).

    Reserved for lookup/load failures (unknown scenario, missing or
    malformed records file) — simulation errors propagate with their
    traceback so internal bugs stay debuggable.
    """
    if isinstance(exc, FileNotFoundError):
        print(f"error: {exc.strerror}: {exc.filename}", file=sys.stderr)
    else:
        print(f"error: {exc.args[0] if exc.args else exc}", file=sys.stderr)
    return 2


def _effective_snapshot_every(args: argparse.Namespace) -> int:
    """Resolve ``--snapshot-every`` (``--resume`` implies the default)."""
    if args.snapshot_every is not None:
        if args.snapshot_every < 1:
            raise ValueError(
                f"--snapshot-every must be >= 1, got {args.snapshot_every}"
            )
        return args.snapshot_every
    return DEFAULT_SNAPSHOT_EVERY if args.resume else 0


def _default_out(scenario_name: str, args: argparse.Namespace) -> str:
    """The results path when ``--out`` is absent (backend picks the suffix)."""
    if args.out:
        return args.out
    suffix = "sqlite" if args.store_backend == "sqlite" else "jsonl"
    return f"results/{scenario_name}.{suffix}"


def _cmd_campaign(args: argparse.Namespace) -> int:
    if args.campaign_command == "replay":
        return _cmd_replay(args)
    if args.campaign_command == "list":
        if args.json:
            entries = []
            for name in scenario_names():
                scenario = get_scenario(name)
                entries.append({
                    "name": name,
                    "systems": list(scenario.system_names()),
                    "sequences": scenario.workload.sequence_count,
                    "seeds": list(scenario.seeds),
                    "condition": scenario.workload.condition.label,
                    "n_apps": scenario.workload.n_apps,
                    "description": scenario.description,
                })
            print(json.dumps(entries, indent=1))
            return 0
        for name in scenario_names():
            scenario = get_scenario(name)
            workload = scenario.workload
            print(
                f"{name:<20s} {len(scenario.system_names())} systems x "
                f"{workload.sequence_count} seq x {len(scenario.seeds)} seeds "
                f"({workload.condition.label}, {workload.n_apps} apps)"
                + (f"  — {scenario.description}" if scenario.description else "")
            )
        return 0
    try:
        scenario = get_scenario(args.scenario).scaled(
            sequence_count=args.sequences,
            n_apps=args.apps,
            seeds=(args.seed,) if args.seed is not None else None,
        )
    except (KeyError, ValueError) as exc:
        # Unknown scenario name, or scale flags the workload rejects
        # (e.g. --sequences 0).
        return _operator_error(exc)
    try:
        snapshot_every = _effective_snapshot_every(args)
    except ValueError as exc:
        return _operator_error(exc)
    runner = CampaignRunner(
        jobs=args.jobs,
        store=_default_out(scenario.name, args),
        raw_samples=args.raw_samples,
        events_dir=args.events_dir,
        timeout_s=getattr(args, "cell_timeout", None),
        snapshot_every=snapshot_every,
        resume=args.resume,
        store_backend=args.store_backend,
    )
    records = runner.run(scenario)
    print(summarize_records(records))
    outcome = runner.last_outcome
    if outcome is not None and outcome.resumed:
        print(
            f"\nresume: {outcome.resumed} cell(s) already persisted, "
            f"{outcome.executed} executed this run"
        )
    print(f"\n{len(records)} records appended to {runner.store.path}")
    if args.events_dir:
        print(f"telemetry event logs written under {args.events_dir}")
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    if args.fleet_command == "list":
        if args.json:
            entries = []
            for name in fleet_scenario_names():
                scenario = get_fleet_scenario(name)
                entries.append({
                    "name": name,
                    "system": scenario.system,
                    "n_shards": scenario.n_shards,
                    "policy": scenario.policy,
                    "policies": policy_names(),
                    "cell_count": scenario.cell_count(),
                    "faults": len(scenario.faults),
                    "seeds": list(scenario.seeds),
                    "workload": scenario.workload.kind,
                    "condition": scenario.workload.condition.label,
                    "n_apps": scenario.workload.n_apps,
                    "description": scenario.description,
                })
            print(json.dumps(entries, indent=1))
            return 0
        for name in fleet_scenario_names():
            scenario = get_fleet_scenario(name)
            workload = scenario.workload
            print(
                f"{name:<20s} {scenario.n_shards} shards x "
                f"{len(scenario.seeds)} seeds, policy {scenario.policy:<12s} "
                f"({workload.kind}, {workload.condition.label}, "
                f"{workload.n_apps} apps, {scenario.system})"
                + (f"  — {scenario.description}" if scenario.description else "")
            )
        return 0
    try:
        scenario = get_fleet_scenario(args.scenario).scaled(
            n_shards=args.shards,
            n_apps=args.apps,
            seeds=(args.seed,) if args.seed is not None else None,
        )
    except (KeyError, ValueError) as exc:
        return _operator_error(exc)
    try:
        snapshot_every = _effective_snapshot_every(args)
    except ValueError as exc:
        return _operator_error(exc)
    out = _default_out(scenario.name, args)
    result = Fleet(scenario).run(
        jobs=args.jobs,
        store=out,
        keep_raw_samples=args.raw_samples,
        events_dir=args.events_dir,
        timeout_s=getattr(args, "cell_timeout", None),
        snapshot_every=snapshot_every,
        resume=args.resume,
        store_backend=args.store_backend,
    )
    print(result.rollup.table())
    if result.resumed_cells:
        print(
            f"\nresume: {result.resumed_cells} shard cell(s) already "
            f"persisted, {len(result.records) - result.resumed_cells} "
            "executed this run"
        )
    print(f"\n{len(result.records)} shard records appended to {out}")
    if args.events_dir:
        print(f"telemetry event logs written under {args.events_dir}")
    return 0


def _cmd_telemetry(args: argparse.Namespace) -> int:
    if args.telemetry_command == "schema":
        if args.json:
            print(json.dumps(
                {kind: list(cls._fields) for kind, cls in EVENT_TYPES.items()},
                indent=1,
            ))
            return 0
        print(format_table(
            ["kind", "fields"],
            [[kind, ", ".join(cls._fields)] for kind, cls in EVENT_TYPES.items()],
            title="Telemetry event schema (every event also carries `t`, ms)",
        ))
        return 0
    try:
        summary = summarize_event_log(args.path)
    except (ValueError, FileNotFoundError) as exc:
        return _operator_error(exc)
    if args.json:
        print(json.dumps(summary, indent=1, sort_keys=True))
        return 0
    meta = summary.get("meta") or {}
    if meta:
        print("event log:", ", ".join(f"{k}={v}" for k, v in sorted(meta.items())))
    counters = summary["counters"]
    print(format_table(
        ["counter", "value"],
        [[name, value] for name, value in counters.items()],
        title=f"Telemetry counters — {args.path}",
    ))
    response = summary.get("response")
    if response:
        print()
        print(format_table(
            ["count", "mean (ms)", "p50 (ms)", "p95 (ms)", "p99 (ms)",
             "min (ms)", "max (ms)"],
            [[response["count"], response["mean_ms"], response["p50_ms"],
              response["p95_ms"], response["p99_ms"], response["min_ms"],
              response["max_ms"]]],
            title="Response distribution (streaming digest)",
        ))
    return 0


def _load_replay_records(path: str):
    """Load RunRecords + skipped-line count from a JSONL file or SQLite store.

    SQLite stores are binary, so they are detected *before* any text-mode
    sniffing; a dropped (truncated) line in a JSONL file is surfaced in
    the count rather than hidden behind a warning.
    """
    from .store import is_sqlite_path, open_store

    if is_sqlite_path(path):
        if not Path(path).exists():
            raise FileNotFoundError(2, "No such file or directory", str(path))
        with open_store(path, backend="sqlite") as store:
            return store.load(), store.skipped_lines
    store = ResultsStore(path)
    return store.load(), store.skipped_lines


def _cmd_replay(args: argparse.Namespace) -> int:
    # A fuzzer-found repro replays as a fresh oracle comparison — the
    # one-command reproduction of a persisted kernel divergence.  All
    # other inputs are RunRecord files and replay without simulating, so
    # their failures are input problems (missing/malformed file, records
    # that don't form the figure).  Exit codes: 0 clean, 1 empty/failed
    # replay, 2 operator error, 3 rendered but with dropped line(s).
    as_json = bool(getattr(args, "json", False))
    try:
        from .store import is_sqlite_path

        if not is_sqlite_path(args.path):
            repro_payload = sniff_repro_file(args.path)
            if repro_payload is not None:
                case, _ = parse_repro_payload(repro_payload, source=args.path)
                report = replay_case(case)
                print(report.summary())
                return 0 if report.ok else 1
            if sniff_event_log(args.path):
                # A telemetry event log: re-derive the report from the
                # typed event stream alone (no records, no simulation).
                if getattr(args, "figure", "summary") != "summary":
                    print(
                        f"error: {args.path} is a telemetry event log (one "
                        "run's stream); --figure needs a multi-run records "
                        "file — replay it without --figure for the stream "
                        "summary",
                        file=sys.stderr,
                    )
                    return 2
                telemetry_args = argparse.Namespace(
                    telemetry_command="summarize", path=args.path,
                    json=as_json,
                )
                return _cmd_telemetry(telemetry_args)
        records, skipped = _load_replay_records(args.path)
        figure = getattr(args, "figure", "summary")
        payload = {
            "path": str(args.path),
            "figure": figure,
            "records": len(records),
            "skipped_lines": skipped,
        }
        if not records:
            if as_json:
                print(json.dumps(payload, indent=1, sort_keys=True))
            else:
                print(f"no records in {args.path}")
                if skipped:
                    print(
                        f"note: {skipped} truncated trailing line(s) "
                        f"skipped while loading {args.path}"
                    )
            return 3 if skipped else 1
        if figure == "fig5":
            result = Fig5Result.from_records(records)
            rendered = result.table()
            payload["reductions"] = result.reductions
        elif figure == "fig6":
            result = fig6_from_records(records)
            rendered = result.table()
            payload["relative_tails"] = result.relative_tails
        else:
            rendered = summarize_records(records)
        if as_json:
            payload["rendered"] = rendered
            print(json.dumps(payload, indent=1, sort_keys=True))
        else:
            print(rendered)
            if skipped:
                print(
                    f"note: {skipped} truncated trailing line(s) "
                    f"skipped while loading {args.path}"
                )
        return 3 if skipped else 0
    except (KeyError, ValueError, FileNotFoundError) as exc:
        return _operator_error(exc)


def _cmd_store(args: argparse.Namespace) -> int:
    from .store import default_projections, open_store
    from .verify.cli import _run_store_audit

    if args.store_command == "verify":
        return _run_store_audit(args.path)
    try:
        if args.store_command == "inspect":
            if not Path(args.path).exists():
                raise FileNotFoundError(
                    2, "No such file or directory", str(args.path)
                )
            with open_store(args.path) as store:
                counts = store.counts()
                max_id = store.max_id()
                snapshot = store.latest_snapshot()
                watermarks = {}
                for projection in default_projections():
                    watermark, state = store.get_projection(projection.name)
                    if state is not None:
                        watermarks[projection.name] = watermark
            summary = {
                "path": str(args.path),
                "notifications": max_id,
                "counts": counts,
                "snapshot": None,
                "projections": watermarks,
            }
            if snapshot is not None:
                summary["snapshot"] = {
                    "completed_cells": len(snapshot.completed),
                    "covered_id": snapshot.covered_id,
                    "response_count": int(
                        (snapshot.digest or {}).get("count", 0)
                    ),
                }
            if args.json:
                print(json.dumps(summary, indent=1, sort_keys=True))
                return 0
            rows = [["notifications", max_id]]
            rows += [[f"kind:{kind}", n] for kind, n in sorted(counts.items())]
            if snapshot is not None:
                rows.append(
                    ["latest snapshot",
                     f"{len(snapshot.completed)} cell(s) through "
                     f"notification {snapshot.covered_id}"]
                )
            else:
                rows.append(["latest snapshot", "none"])
            for name, watermark in sorted(watermarks.items()):
                rows.append([f"projection:{name}", f"watermark {watermark}"])
            print(format_table(
                ["field", "value"], rows, title=f"Event store — {args.path}"
            ))
            return 0
        if args.store_command == "export":
            if not Path(args.path).exists():
                raise FileNotFoundError(
                    2, "No such file or directory", str(args.path)
                )
            with open_store(args.path) as source:
                notifications = list(source.select())
            copied = {"record": 0, "event": 0, "snapshot": 0}
            for notification in notifications:
                copied[notification.kind] = copied.get(notification.kind, 0) + 1
            with open_store(args.dest, backend=args.store_backend) as dest:
                dest.recorder.append(
                    (n.kind, n.payload) for n in notifications
                )
                from .store import update_projections

                update_projections(dest)
            print(
                f"exported {copied['record']} record(s), "
                f"{copied['event']} event(s), "
                f"{copied['snapshot']} snapshot(s): "
                f"{args.path} -> {args.dest}"
            )
            return 0
        if args.store_command == "ingest":
            from .telemetry import load_events

            total = 0
            with open_store(args.path) as store:
                for events_path in args.events:
                    events = load_events(events_path)
                    store.append_events(events)
                    total += len(events)
                    print(f"  {events_path}: {len(events)} event(s)")
            print(f"ingested {total} event(s) into {args.path}")
            return 0
    except (KeyError, ValueError, FileNotFoundError) as exc:
        return _operator_error(exc)
    return 2  # pragma: no cover - argparse enforces the choices


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _dispatch(args)


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "list":
        for name, (cls, config) in SYSTEMS.items():
            print(f"{name:<14s} {cls.__name__:<22s} board={config.value}")
        return 0
    if args.command == "campaign":
        return _cmd_campaign(args)
    if args.command == "fleet":
        return _cmd_fleet(args)
    if args.command == "store":
        return _cmd_store(args)
    if args.command == "telemetry":
        return _cmd_telemetry(args)
    if args.command == "verify":
        return run_verify_command(args)
    if args.command == "bench":
        return run_bench_command(args)
    if args.command == "replay":
        return _cmd_replay(args)
    if args.command == "fig5":
        result = run_fig5(
            seed=args.seed, sequence_count=args.sequences, n_apps=args.apps,
            jobs=args.jobs, store=args.out,
        )
        print(result.table())
        return 0
    if args.command == "fig6":
        print(run_fig6(
            seed=args.seed, sequence_count=args.sequences,
            jobs=args.jobs, store=args.out,
        ).table())
        return 0
    if args.command == "fig7":
        print(run_fig7().table())
        return 0
    if args.command == "fig8":
        result = run_fig8(
            seed=args.seed, n_apps=args.apps, jobs=args.jobs,
            store=ResultsStore(args.out) if args.out else None,
        )
        print(trace_plot(
            [s.value for s in result.samples],
            title="D_switch trajectory",
            thresholds={"T1": 0.1, "T2": 0.0125},
        ))
        print()
        print(bar_chart(
            result.reductions,
            title="Response reduction vs Only.Little",
            reference={"Switching": 2.98, "Only Big.Little": 6.65},
        ))
        print(f"\nmean switching overhead: {result.mean_switch_overhead_ms:.2f} ms "
              f"(paper: {PAPER_SWITCH_OVERHEAD_MS:.2f} ms)")
        return 0
    return 1  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
