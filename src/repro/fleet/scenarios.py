"""Built-in fleet scenario families.

Each family pairs a fleet workload shape with the routing policy it
stresses: diurnal traffic behind the consistent-hash ring, heavy-tailed
bursts behind least-loaded admission, Zipf-skewed popularity deliberately
behind the hash ring (the hot-shard case), and a multi-tenant mix behind
power-of-two-choices.  Sizes are CI-friendly; scale with
``repro fleet run NAME --apps N --shards K --seed S``.
"""

from __future__ import annotations

from ..workloads.generator import Condition
from .fleet import FleetScenario, register_fleet_scenario
from .workload import FleetWorkload

register_fleet_scenario(FleetScenario(
    name="fleet-smoke",
    system="VersaSlot-OL",
    n_shards=2,
    policy="hash",
    workload=FleetWorkload(kind="uniform", condition=Condition.STRESS, n_apps=8),
    description="Tiny two-shard fleet for CI smoke runs.",
))

register_fleet_scenario(FleetScenario(
    name="fleet-diurnal",
    system="VersaSlot-BL",
    n_shards=4,
    policy="hash",
    workload=FleetWorkload(kind="diurnal", condition=Condition.STANDARD, n_apps=32),
    description="Day/night rate swings over a four-shard hash ring.",
))

register_fleet_scenario(FleetScenario(
    name="fleet-bursty",
    system="VersaSlot-OL",
    n_shards=4,
    policy="least-loaded",
    workload=FleetWorkload(kind="bursty", condition=Condition.STRESS, n_apps=32),
    description="Heavy-tailed arrival clumps absorbed by least-loaded admission.",
))

register_fleet_scenario(FleetScenario(
    name="fleet-hot-shard",
    system="Nimblock",
    n_shards=4,
    policy="hash",
    workload=FleetWorkload(kind="hot-skew", condition=Condition.STANDARD, n_apps=32),
    description="Zipf-skewed app popularity concentrating load on few shards.",
))

register_fleet_scenario(FleetScenario(
    name="fleet-chaos",
    system="VersaSlot-OL",
    n_shards=4,
    policy="least-loaded",
    workload=FleetWorkload(kind="uniform", condition=Condition.STANDARD, n_apps=24),
    description=(
        "Rolling three-shard outage: staggered kills push live capacity "
        "to 1/4 (degraded-mode shedding engages below 1/2), then "
        "supervised restarts bring the shards back and shedding "
        "disengages."
    ),
    faults=(
        ("kill", 8000.0, 0, 1.0, 0.0),
        ("kill", 10000.0, 1, 1.0, 0.0),
        ("kill", 12000.0, 2, 1.0, 0.0),
        ("recover", 18000.0, 0, 1.0, 0.0),
        ("recover", 20000.0, 1, 1.0, 0.0),
        ("recover", 22000.0, 2, 1.0, 0.0),
    ),
))

register_fleet_scenario(FleetScenario(
    name="fleet-multi-tenant",
    system="VersaSlot-BL",
    n_shards=4,
    policy="p2c",
    workload=FleetWorkload(
        kind="multi-tenant", condition=Condition.STANDARD, n_apps=32
    ),
    description="Batch/interactive/realtime tenant mix under power-of-two routing.",
))
