"""Fleet-scale arrival streams over the paper's workload generators.

A fleet serves one *global* arrival stream that the routing front-end
splits across shards, so these generators produce traffic shapes a single
two-board cluster never sees:

* **uniform** — the paper's interval regime, scaled up (control family);
* **diurnal** — sinusoidal rate modulation around the base regime, the
  day/night cycle of a public service;
* **bursty** — heavy-tailed (Pareto) inter-arrival gaps: long quiet
  stretches punctuated by arrival clumps;
* **hot-skew** — Zipf-skewed application popularity, concentrating load
  on few benchmarks (the hot-shard case under hash routing);
* **multi-tenant** — independent tenant streams under different
  congestion regimes, merged into one admission queue.

Every stream is generated from a string-seeded ``random.Random`` (seeded
via SHA-512 inside CPython, independent of ``PYTHONHASHSEED``), so a
worker process regenerating a stream always reproduces it bit-identically.
The shape knobs (period, peak factor, tail index, skew exponent) are
module constants: a workload is fully described by
``(kind, condition, n_apps, batch_range, apps)``, which keeps fleet cases
representable in the verify fuzzer's flat repro files.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Tuple

from ..apps.benchmarks import BENCHMARKS
from ..workloads.generator import BATCH_RANGE, Arrival, Condition

#: The recognized stream shapes, in registry order.
FLEET_WORKLOAD_KINDS = (
    "uniform", "diurnal", "bursty", "hot-skew", "multi-tenant",
)

#: Diurnal cycle length and peak-to-trough arrival-rate ratio.
DIURNAL_PERIOD_MS = 60_000.0
DIURNAL_PEAK_FACTOR = 4.0

#: Pareto tail index of bursty inter-arrival gaps (lower == heavier tail;
#: must stay > 1 so the mean gap exists).
BURSTY_TAIL_ALPHA = 1.6

#: Zipf exponent of hot-skew application popularity.
HOT_SKEW_EXPONENT = 1.4

#: Multi-tenant mix: (tenant label, congestion regime, share of n_apps).
TENANT_MIX: Tuple[Tuple[str, Condition, float], ...] = (
    ("batch", Condition.LOOSE, 0.3),
    ("interactive", Condition.STANDARD, 0.4),
    ("realtime", Condition.STRESS, 0.3),
)


@dataclass(frozen=True)
class FleetWorkload:
    """Declarative, picklable spec of one global fleet arrival stream."""

    kind: str = "uniform"
    condition: Condition = Condition.STANDARD
    n_apps: int = 32
    batch_range: Tuple[int, int] = BATCH_RANGE
    apps: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "apps", tuple(self.apps))
        if self.kind not in FLEET_WORKLOAD_KINDS:
            raise ValueError(
                f"unknown fleet workload kind {self.kind!r}; "
                f"available: {', '.join(FLEET_WORKLOAD_KINDS)}"
            )
        if self.n_apps < 1:
            raise ValueError(f"n_apps must be >= 1, got {self.n_apps}")
        lo, hi = self.batch_range
        if not (1 <= lo <= hi):
            raise ValueError(f"bad batch range {self.batch_range}")
        unknown = [name for name in self.apps if name not in BENCHMARKS]
        if unknown:
            raise KeyError(f"unknown benchmark(s): {', '.join(unknown)}")

    # ------------------------------------------------------------------
    def app_names(self) -> List[str]:
        return list(self.apps) if self.apps else list(BENCHMARKS)

    def arrivals(self, seed: int, index: int = 0) -> List[Arrival]:
        """The global arrival stream under ``(seed, index)``."""
        if self.kind == "multi-tenant":
            return self._multi_tenant(seed, index)
        rng = random.Random(f"fleet/{self.kind}/{seed}/{index}")
        names = self.app_names()
        lo_batch, hi_batch = self.batch_range
        interval_lo, interval_hi = self.condition.interval_range
        base_interval = (interval_lo + interval_hi) / 2.0
        if self.kind == "hot-skew":
            weights = [1.0 / (rank + 1) ** HOT_SKEW_EXPONENT
                       for rank in range(len(names))]
        arrivals: List[Arrival] = []
        t = 0.0
        for _ in range(self.n_apps):
            if self.kind == "hot-skew":
                name = rng.choices(names, weights=weights)[0]
            else:
                name = rng.choice(names)
            arrivals.append(
                Arrival(
                    app_name=name,
                    batch_size=rng.randint(lo_batch, hi_batch),
                    time_ms=t,
                )
            )
            if self.kind == "diurnal":
                # Arrival *rate* swings sinusoidally between 1x and the
                # peak factor; intervals divide by the current rate.
                phase = 2.0 * math.pi * t / DIURNAL_PERIOD_MS
                rate = 1.0 + (DIURNAL_PEAK_FACTOR - 1.0) * 0.5 * (1.0 - math.cos(phase))
                t += rng.uniform(interval_lo, interval_hi) / rate
            elif self.kind == "bursty":
                # Pareto gaps rescaled so the mean gap stays at the base
                # regime's mean interval (alpha/(alpha-1) is the Pareto mean).
                scale = base_interval * (BURSTY_TAIL_ALPHA - 1.0) / BURSTY_TAIL_ALPHA
                t += scale * rng.paretovariate(BURSTY_TAIL_ALPHA)
            else:  # uniform, hot-skew
                t += rng.uniform(interval_lo, interval_hi)
        return arrivals

    def _multi_tenant(self, seed: int, index: int) -> List[Arrival]:
        """Independent per-tenant streams merged by arrival time."""
        names = self.app_names()
        lo_batch, hi_batch = self.batch_range
        merged: List[Tuple[float, int, int, Arrival]] = []
        remaining = self.n_apps
        for tenant_index, (label, condition, share) in enumerate(TENANT_MIX):
            last = tenant_index == len(TENANT_MIX) - 1
            count = remaining if last else min(
                remaining, max(1, round(self.n_apps * share))
            )
            remaining -= count
            if count <= 0:
                continue
            rng = random.Random(f"fleet/multi-tenant/{seed}/{index}/{label}")
            interval_lo, interval_hi = condition.interval_range
            t = 0.0
            for order in range(count):
                arrival = Arrival(
                    app_name=rng.choice(names),
                    batch_size=rng.randint(lo_batch, hi_batch),
                    time_ms=t,
                )
                merged.append((t, tenant_index, order, arrival))
                t += rng.uniform(interval_lo, interval_hi)
        merged.sort(key=lambda entry: entry[:3])
        return [arrival for _, _, _, arrival in merged]
