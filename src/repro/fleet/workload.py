"""Fleet-scale arrival streams over the paper's workload generators.

A fleet serves one *global* arrival stream that the routing front-end
splits across shards, so these generators produce traffic shapes a single
two-board cluster never sees:

* **uniform** — the paper's interval regime, scaled up (control family);
* **diurnal** — sinusoidal rate modulation around the base regime, the
  day/night cycle of a public service;
* **bursty** — heavy-tailed (Pareto) inter-arrival gaps: long quiet
  stretches punctuated by arrival clumps;
* **hot-skew** — Zipf-skewed application popularity, concentrating load
  on few benchmarks (the hot-shard case under hash routing);
* **multi-tenant** — independent tenant streams under different
  congestion regimes, merged into one admission queue.

Every stream is generated from a string-seeded Mersenne-Twister stream
(seeded via SHA-512 inside CPython, independent of ``PYTHONHASHSEED``), so
a worker process regenerating a stream always reproduces it bit-identically.
The shape knobs (period, peak factor, tail index, skew exponent) are
module constants: a workload is fully described by
``(kind, condition, n_apps, batch_range, apps)``, which keeps fleet cases
representable in the verify fuzzer's flat repro files.

Generation is *phased*: all application names are drawn first, then all
batch sizes, then all inter-arrival gaps — each phase one contiguous block
of same-type draws from the stream.  That structure lets
:class:`~repro.workloads.sampling.BatchSampler` vectorize every phase with
numpy while its pure-python fallback consumes the identical draws, so the
two backends are sample-identical by construction (pinned in
``tests/test_sampling.py``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

from ..apps.benchmarks import BENCHMARKS
from ..workloads.generator import BATCH_RANGE, Arrival, Condition
from ..workloads.sampling import BatchSampler

#: The recognized stream shapes, in registry order.
FLEET_WORKLOAD_KINDS = (
    "uniform", "diurnal", "bursty", "hot-skew", "multi-tenant",
)

#: Diurnal cycle length and peak-to-trough arrival-rate ratio.
DIURNAL_PERIOD_MS = 60_000.0
DIURNAL_PEAK_FACTOR = 4.0

#: Pareto tail index of bursty inter-arrival gaps (lower == heavier tail;
#: must stay > 1 so the mean gap exists).
BURSTY_TAIL_ALPHA = 1.6

#: Zipf exponent of hot-skew application popularity.
HOT_SKEW_EXPONENT = 1.4

#: Multi-tenant mix: (tenant label, congestion regime, share of n_apps).
TENANT_MIX: Tuple[Tuple[str, Condition, float], ...] = (
    ("batch", Condition.LOOSE, 0.3),
    ("interactive", Condition.STANDARD, 0.4),
    ("realtime", Condition.STRESS, 0.3),
)


@dataclass(frozen=True)
class FleetWorkload:
    """Declarative, picklable spec of one global fleet arrival stream."""

    kind: str = "uniform"
    condition: Condition = Condition.STANDARD
    n_apps: int = 32
    batch_range: Tuple[int, int] = BATCH_RANGE
    apps: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "apps", tuple(self.apps))
        if self.kind not in FLEET_WORKLOAD_KINDS:
            raise ValueError(
                f"unknown fleet workload kind {self.kind!r}; "
                f"available: {', '.join(FLEET_WORKLOAD_KINDS)}"
            )
        if self.n_apps < 1:
            raise ValueError(f"n_apps must be >= 1, got {self.n_apps}")
        lo, hi = self.batch_range
        if not (1 <= lo <= hi):
            raise ValueError(f"bad batch range {self.batch_range}")
        unknown = [name for name in self.apps if name not in BENCHMARKS]
        if unknown:
            raise KeyError(f"unknown benchmark(s): {', '.join(unknown)}")

    # ------------------------------------------------------------------
    def app_names(self) -> List[str]:
        return list(self.apps) if self.apps else list(BENCHMARKS)

    def arrivals(
        self, seed: int, index: int = 0, backend: str = "auto"
    ) -> List[Arrival]:
        """The global arrival stream under ``(seed, index)``.

        Drawn in three phases (names, batch sizes, gaps) so the numpy
        backend vectorizes whole blocks; ``backend`` is passed through to
        :class:`BatchSampler` (``"auto"``/``"numpy"``/``"python"`` — all
        sample-identical).
        """
        if self.kind == "multi-tenant":
            return self._multi_tenant(seed, index, backend)
        sampler = BatchSampler(f"fleet/{self.kind}/{seed}/{index}", backend)
        names = self.app_names()
        n = self.n_apps
        lo_batch, hi_batch = self.batch_range
        interval_lo, interval_hi = self.condition.interval_range
        # Phase 1: application names.
        if self.kind == "hot-skew":
            weights = [1.0 / (rank + 1) ** HOT_SKEW_EXPONENT
                       for rank in range(len(names))]
            name_indices = sampler.weighted_indices(weights, n)
        else:
            name_indices = sampler.choice_indices(len(names), n)
        # Phase 2: batch sizes.
        batch_sizes = sampler.randint_block(lo_batch, hi_batch, n)
        # Phase 3: inter-arrival gaps (one block draw; the diurnal rate
        # modulation is a sequential transform of the drawn block, not
        # extra stream consumption).
        times: List[float] = []
        t = 0.0
        if self.kind == "diurnal":
            raw_gaps = sampler.uniform_block(interval_lo, interval_hi, n)
            for gap in raw_gaps:
                times.append(t)
                # Arrival *rate* swings sinusoidally between 1x and the
                # peak factor; intervals divide by the current rate.
                phase = 2.0 * math.pi * t / DIURNAL_PERIOD_MS
                rate = 1.0 + (DIURNAL_PEAK_FACTOR - 1.0) * 0.5 * (1.0 - math.cos(phase))
                t += gap / rate
        elif self.kind == "bursty":
            # Pareto gaps rescaled so the mean gap stays at the base
            # regime's mean interval (alpha/(alpha-1) is the Pareto mean).
            base_interval = (interval_lo + interval_hi) / 2.0
            scale = base_interval * (BURSTY_TAIL_ALPHA - 1.0) / BURSTY_TAIL_ALPHA
            for variate in sampler.pareto_block(BURSTY_TAIL_ALPHA, n):
                times.append(t)
                t += scale * variate
        else:  # uniform, hot-skew
            for gap in sampler.uniform_block(interval_lo, interval_hi, n):
                times.append(t)
                t += gap
        return [
            Arrival(app_name=names[name_indices[i]],
                    batch_size=batch_sizes[i],
                    time_ms=times[i])
            for i in range(n)
        ]

    def _multi_tenant(
        self, seed: int, index: int, backend: str = "auto"
    ) -> List[Arrival]:
        """Independent per-tenant phased streams merged by arrival time."""
        names = self.app_names()
        lo_batch, hi_batch = self.batch_range
        merged: List[Tuple[float, int, int, Arrival]] = []
        remaining = self.n_apps
        for tenant_index, (label, condition, share) in enumerate(TENANT_MIX):
            last = tenant_index == len(TENANT_MIX) - 1
            count = remaining if last else min(
                remaining, max(1, round(self.n_apps * share))
            )
            remaining -= count
            if count <= 0:
                continue
            sampler = BatchSampler(
                f"fleet/multi-tenant/{seed}/{index}/{label}", backend
            )
            interval_lo, interval_hi = condition.interval_range
            name_indices = sampler.choice_indices(len(names), count)
            batch_sizes = sampler.randint_block(lo_batch, hi_batch, count)
            gaps = sampler.uniform_block(interval_lo, interval_hi, count)
            t = 0.0
            for order in range(count):
                arrival = Arrival(
                    app_name=names[name_indices[order]],
                    batch_size=batch_sizes[order],
                    time_ms=t,
                )
                merged.append((t, tenant_index, order, arrival))
                t += gaps[order]
        merged.sort(key=lambda entry: entry[:3])
        return [arrival for _, _, _, arrival in merged]
