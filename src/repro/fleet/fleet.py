"""The sharded fleet: N independent clusters behind a routing front-end.

A :class:`FleetScenario` declares the whole deployment — shard count,
routing policy, the global arrival stream and the per-shard system — and
:class:`Fleet` turns it into executable work: the front-end routes the
stream into per-shard sub-streams (:func:`repro.fleet.routing.partition_arrivals`),
and every (seed × shard) pair becomes one explicit-arrival
:class:`~repro.campaign.backend.CampaignCell`.  Each cell rebuilds its own
engine, RNG streams and instance-id space, so the campaign backends run
shards serially or fanned out over worker processes with bit-identical
per-shard records; the dispatch plan itself is a pure function of
``(scenario, seed)`` and reproduces in any process (no ``hash()``, no
``id()`` anywhere on the path).

Results persist through the campaign results layer — one
:class:`~repro.campaign.results.RunRecord` per shard, tagged with its
shard index — and roll up into per-shard and global response/utilization
aggregates via the existing metrics layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Tuple, Union

from ..campaign.backend import DEFAULT_HORIZON_MS, CampaignCell, make_backend
from ..campaign.results import ResultsStore, RunRecord
from ..campaign.scenario import SYSTEM_REGISTRY, get_system
from ..chaos import FaultSchedule, FaultSpec
from ..config import DEFAULT_PARAMETERS, SystemParameters
from ..metrics.report import format_table
from .control import ServingPlan, supervised_partition
from .routing import ROUTING_POLICIES, load_imbalance, partition_arrivals
from .workload import FleetWorkload

from ..workloads.generator import Arrival


@dataclass(frozen=True)
class FleetScenario:
    """A declarative, picklable fleet deployment spec."""

    name: str
    system: str
    n_shards: int
    policy: str
    workload: FleetWorkload
    seeds: Tuple[int, ...] = (1,)
    #: ``SystemParameters`` overrides, sorted pairs (hashable, like
    #: :class:`~repro.campaign.scenario.Scenario`).
    overrides: Tuple[Tuple[str, float], ...] = ()
    description: str = ""
    #: Declared fault schedule, flat-tuple form (``FaultSpec.to_tuple``):
    #: hashable, picklable, reviewable in the scenario definition.  Also
    #: accepts a :class:`FaultSchedule` or ``FaultSpec`` iterables.
    faults: Tuple[Tuple[str, float, int, float, float], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "seeds", tuple(self.seeds))
        pairs = (
            sorted(self.overrides.items())
            if isinstance(self.overrides, Mapping)
            else sorted(tuple(pair) for pair in self.overrides)
        )
        object.__setattr__(self, "overrides", tuple(pairs))
        schedule = (
            self.faults
            if isinstance(self.faults, FaultSchedule)
            else FaultSchedule(
                fault if isinstance(fault, FaultSpec)
                else FaultSpec.from_tuple(fault)
                for fault in self.faults
            )
        )
        object.__setattr__(self, "faults", schedule.to_tuples())
        if self.n_shards < 1:
            raise ValueError(f"fleet {self.name!r} needs >= 1 shard")
        if not self.seeds:
            raise ValueError(f"fleet {self.name!r} has no seeds")
        if self.system not in SYSTEM_REGISTRY:
            raise KeyError(
                f"fleet {self.name!r}: unknown system {self.system!r}; "
                f"available: {', '.join(SYSTEM_REGISTRY)}"
            )
        if self.policy not in ROUTING_POLICIES:
            raise KeyError(
                f"fleet {self.name!r}: unknown routing policy "
                f"{self.policy!r}; available: {', '.join(ROUTING_POLICIES)}"
            )
        self.fault_schedule().validate_for(self.n_shards)

    def fault_schedule(self) -> FaultSchedule:
        """The declared faults as a typed, validated schedule."""
        return FaultSchedule.from_tuples(self.faults)

    def system_names(self) -> Tuple[str, ...]:
        """The (single) system every shard runs — campaign-Scenario shape."""
        return (self.system,)

    def parameters(self, base: Optional[SystemParameters] = None) -> SystemParameters:
        resolved = base if base is not None else DEFAULT_PARAMETERS
        if self.overrides:
            resolved = resolved.with_overrides(**dict(self.overrides))
        return resolved

    def scaled(
        self,
        n_shards: Optional[int] = None,
        n_apps: Optional[int] = None,
        seeds: Optional[Tuple[int, ...]] = None,
    ) -> "FleetScenario":
        """A copy with the shard count / stream size / seeds adjusted.

        Shrinking the shard count drops faults (and their recoveries)
        naming shards outside the new range rather than rejecting the
        scaled scenario.
        """
        import dataclasses

        workload = self.workload
        if n_apps is not None:
            workload = dataclasses.replace(workload, n_apps=n_apps)
        target_shards = n_shards if n_shards is not None else self.n_shards
        faults = tuple(
            fault for fault in self.faults if fault[2] < target_shards
        )
        return dataclasses.replace(
            self,
            n_shards=target_shards,
            workload=workload,
            seeds=tuple(seeds) if seeds is not None else self.seeds,
            faults=faults,
        )

    def cell_count(self) -> int:
        return self.n_shards * len(self.seeds)


#: Registered fleet scenarios by name (insertion-ordered dict).
FLEET_SCENARIOS: Dict[str, FleetScenario] = {}


def register_fleet_scenario(scenario: FleetScenario) -> FleetScenario:
    if scenario.name in FLEET_SCENARIOS:
        raise ValueError(f"fleet scenario {scenario.name!r} is already registered")
    FLEET_SCENARIOS[scenario.name] = scenario
    return scenario


def get_fleet_scenario(name: str) -> FleetScenario:
    try:
        return FLEET_SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown fleet scenario {name!r}; "
            f"available: {', '.join(FLEET_SCENARIOS)}"
        ) from None


def fleet_scenario_names() -> List[str]:
    return list(FLEET_SCENARIOS)


# ---------------------------------------------------------------------------
# Rollups
# ---------------------------------------------------------------------------


@dataclass
class ShardRollup:
    """Aggregates of one shard (or the whole fleet, ``shard == -1``)."""

    shard: int
    runs: int
    n_apps: int
    mean_ms: float
    p95_ms: float
    p99_ms: float
    mean_makespan_ms: float
    pr_count: int
    fabric_lut: float

    @property
    def label(self) -> str:
        return "fleet" if self.shard < 0 else f"shard{self.shard}"


@dataclass
class FleetRollup:
    """Per-shard plus global aggregates of one fleet run."""

    scenario: str
    system: str
    policy: str
    n_shards: int
    per_shard: List[ShardRollup] = field(default_factory=list)
    overall: Optional[ShardRollup] = None
    #: Max/mean estimated shard load of the dispatch plan (mean over seeds).
    imbalance: float = 1.0
    #: Requests refused by the degraded-mode front-end (sum over seeds).
    shed: int = 0
    #: Reroute hops taken off dead shards (sum over seeds).
    rerouted: int = 0

    def table(self) -> str:
        rows = [
            [
                rollup.label, rollup.runs, rollup.n_apps, rollup.mean_ms,
                rollup.p95_ms, rollup.p99_ms, rollup.mean_makespan_ms,
                rollup.pr_count, rollup.fabric_lut,
            ]
            for rollup in [*self.per_shard, *([self.overall] if self.overall else [])]
        ]
        return format_table(
            ["shard", "runs", "apps", "mean (ms)", "p95 (ms)", "p99 (ms)",
             "makespan (ms)", "PRs", "fabric LUT"],
            rows,
            title=(
                f"Fleet {self.scenario} — {self.system}, "
                f"{self.n_shards} shards, policy {self.policy} "
                f"(load imbalance {self.imbalance:.2f}"
                + (
                    f", shed {self.shed}, rerouted {self.rerouted}"
                    if self.shed or self.rerouted
                    else ""
                )
                + ")"
            ),
        )


def rollup_records(
    scenario: FleetScenario,
    records: List[RunRecord],
    imbalance: float = 1.0,
    serving_plans: Optional[Mapping[int, ServingPlan]] = None,
) -> FleetRollup:
    """Per-shard + global rollups of one fleet run's records.

    The aggregation itself is the store layer's
    :class:`~repro.store.projections.FleetRollupProjection` — the same
    incremental fold that runs over a notification log runs here over an
    in-memory record list, so the batch rollup and the projection cannot
    drift apart.  Digests merge (or raw samples pool) per shard instead
    of concatenating per-request lists: O(#shards), not O(#requests).
    """
    from ..store.projections import FleetRollupProjection

    projection = FleetRollupProjection()
    for record in records:
        projection.fold_record(record)
    per_shard, overall = projection.render_rollups()
    rollup = FleetRollup(
        scenario=scenario.name,
        system=scenario.system,
        policy=scenario.policy,
        n_shards=scenario.n_shards,
        imbalance=imbalance,
        shed=sum(p.shed_count for p in (serving_plans or {}).values()),
        rerouted=sum(
            p.reroute_count for p in (serving_plans or {}).values()
        ),
    )
    rollup.per_shard = per_shard
    rollup.overall = overall if overall is not None else ShardRollup(
        shard=-1, runs=0, n_apps=0, mean_ms=0.0, p95_ms=0.0, p99_ms=0.0,
        mean_makespan_ms=0.0, pr_count=0, fabric_lut=0.0,
    )
    return rollup


# ---------------------------------------------------------------------------
# The fleet itself
# ---------------------------------------------------------------------------


@dataclass
class FleetResult:
    """Everything one fleet run produced."""

    scenario: FleetScenario
    records: List[RunRecord]
    rollup: FleetRollup
    #: Per-seed supervised serving plans (empty for fault-free runs).
    serving_plans: Dict[int, ServingPlan] = field(default_factory=dict)
    #: Shard cells skipped by ``resume=True`` (0 for fresh runs).
    resumed_cells: int = 0


class Fleet:
    """N cluster shards behind the routing/admission front-end.

    The fleet object is the *orchestrator*: it owns the dispatch plan and
    delegates shard execution to the campaign backends so one shard ==
    one campaign cell (each cell rebuilds its own engine and RNG streams).
    """

    def __init__(
        self,
        scenario: FleetScenario,
        base_params: Optional[SystemParameters] = None,
    ) -> None:
        get_system(scenario.system)  # fail fast on an unknown system
        self.scenario = scenario
        self.params = scenario.parameters(base_params)

    # ------------------------------------------------------------------
    def serving_plan(
        self, seed: int, telemetry=None, check: bool = True
    ) -> Optional[ServingPlan]:
        """The supervised serving plan of one seed (``None`` fault-free).

        With ``check`` the plan is audited against the no-lost-requests
        invariants before anything simulates from it — a control-plane
        bug fails loudly at planning time, never as silent request loss.
        """
        scenario = self.scenario
        if not scenario.faults:
            return None
        arrivals = scenario.workload.arrivals(seed)
        plan = supervised_partition(
            arrivals, scenario.n_shards, scenario.policy, seed,
            scenario.fault_schedule(), telemetry=telemetry,
        )
        if check:
            from ..verify.invariants import check_serving_plan

            violations = check_serving_plan(plan, arrivals)
            if violations:
                raise ValueError(
                    f"fleet {scenario.name!r} seed {seed}: serving plan "
                    f"violates no-lost-requests invariants: "
                    + "; ".join(str(v) for v in violations[:5])
                )
        return plan

    def shard_plan(self, seed: int, telemetry=None) -> List[List[Arrival]]:
        """The dispatch plan: the global stream routed into shards.

        Fault-free scenarios use the frozen admission front-end; with a
        declared fault schedule the supervised control plane plans the
        run (rerouting and shedding included) and the streams here are
        its final per-shard arrival streams.
        """
        scenario = self.scenario
        if scenario.faults:
            return self.serving_plan(seed, telemetry=telemetry).streams
        arrivals = scenario.workload.arrivals(seed)
        return partition_arrivals(
            arrivals, scenario.n_shards, scenario.policy, seed,
            telemetry=telemetry,
        )

    def plan_bundle(
        self, events_dir: Optional[Union[str, Path]] = None
    ) -> Tuple[Dict[int, List[List[Arrival]]], Dict[int, "ServingPlan"]]:
        """Per-seed dispatch streams plus serving plans, computed once.

        With ``events_dir`` the front-end writes one admission event log
        per seed (the routed stream's source of truth — including any
        shard-down/reroute/shed control events under faults).
        """
        plans: Dict[int, List[List[Arrival]]] = {}
        serving_plans: Dict[int, ServingPlan] = {}
        for seed in self.scenario.seeds:
            telemetry = None
            if events_dir is not None:
                from ..telemetry import JsonlEventLogSink, TelemetryBus

                telemetry = TelemetryBus()
                telemetry.attach(
                    JsonlEventLogSink(
                        Path(events_dir)
                        / f"{self.scenario.name}-admission-seed{seed}.jsonl",
                        meta={
                            "scenario": self.scenario.name,
                            "policy": self.scenario.policy,
                            "n_shards": self.scenario.n_shards,
                            "seed": seed,
                        },
                    )
                )
            try:
                if self.scenario.faults:
                    plan = self.serving_plan(seed, telemetry=telemetry)
                    serving_plans[seed] = plan
                    plans[seed] = plan.streams
                else:
                    plans[seed] = self.shard_plan(seed, telemetry=telemetry)
            finally:
                if telemetry is not None:
                    telemetry.close()
        return plans, serving_plans

    def plans(
        self, events_dir: Optional[Union[str, Path]] = None
    ) -> Dict[int, List[List[Arrival]]]:
        """The dispatch plan of every seed, computed once."""
        plans, _ = self.plan_bundle(events_dir=events_dir)
        return plans

    def cells(
        self,
        kernel: str = "default",
        plans: Optional[Dict[int, List[List[Arrival]]]] = None,
        keep_raw_samples: bool = False,
        events_dir: Optional[Union[str, Path]] = None,
    ) -> List[CampaignCell]:
        """One explicit-arrival campaign cell per (seed × shard)."""
        scenario = self.scenario
        if plans is None:
            plans = self.plans()
        label = scenario.workload.condition.label
        cells: List[CampaignCell] = []
        for seed in scenario.seeds:
            for shard, arrivals in enumerate(plans[seed]):
                events_path = None
                if events_dir is not None:
                    events_path = str(
                        Path(events_dir)
                        / f"{scenario.name}-seed{seed}-shard{shard}.jsonl"
                    )
                cells.append(
                    CampaignCell(
                        scenario=scenario.name,
                        system=scenario.system,
                        sequence_index=0,
                        seed=seed,
                        params=self.params,
                        arrivals=tuple(arrivals),
                        horizon_ms=DEFAULT_HORIZON_MS,
                        kernel=kernel,
                        shard=shard,
                        condition_label=label,
                        keep_raw_samples=keep_raw_samples,
                        events_path=events_path,
                    )
                )
        return cells

    def run(
        self,
        jobs: int = 1,
        store: Optional[Union[ResultsStore, str, Path]] = None,
        kernel: str = "default",
        keep_raw_samples: bool = False,
        events_dir: Optional[Union[str, Path]] = None,
        timeout_s: Optional[float] = None,
        snapshot_every: int = 0,
        resume: bool = False,
        store_backend: Optional[str] = None,
    ) -> FleetResult:
        """Execute every shard cell and roll the records up.

        ``jobs=1`` runs shards serially in-process (the determinism
        reference); ``jobs=N`` fans shards out over N worker processes
        with bit-identical records — ``timeout_s`` bounds each cell's
        wall-clock there (hung workers killed, cell retried, persistent
        failure surfaced as a failure record).  ``events_dir`` persists
        the full telemetry stream: one admission log per seed from the
        front-end plus one event log per (seed × shard) cell.

        ``snapshot_every`` / ``resume`` / ``store_backend`` opt the run
        into the durable event store (:mod:`repro.store`): records append
        in checkpointed chunks and an interrupted run resumed with
        ``resume=True`` skips finished shard cells, producing records and
        rollups bit-identical to an uninterrupted run.
        """
        backend = make_backend(jobs, timeout_s=timeout_s)
        plans, serving_plans = self.plan_bundle(events_dir=events_dir)
        cells = self.cells(
            kernel=kernel,
            plans=plans,
            keep_raw_samples=keep_raw_samples,
            events_dir=events_dir,
        )
        if isinstance(store, (str, Path)):
            from ..store import is_sqlite_path, open_store

            if (
                resume
                or snapshot_every > 0
                or store_backend is not None
                or is_sqlite_path(store)
            ):
                store = open_store(store, backend=store_backend)
            else:
                store = ResultsStore(store)
        from ..store.resume import execute_with_store

        outcome = execute_with_store(
            backend,
            cells,
            store=store,
            snapshot_every=snapshot_every,
            resume=resume,
        )
        records = outcome.records
        imbalances = [load_imbalance(plan) for plan in plans.values()]
        rollup = rollup_records(
            self.scenario, records, sum(imbalances) / len(imbalances),
            serving_plans=serving_plans,
        )
        return FleetResult(
            scenario=self.scenario, records=records, rollup=rollup,
            serving_plans=serving_plans, resumed_cells=outcome.resumed,
        )
