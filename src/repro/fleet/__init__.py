"""Sharded multi-cluster fleet: routing front-end over campaign shards."""

from .fleet import (
    FLEET_SCENARIOS,
    Fleet,
    FleetResult,
    FleetRollup,
    FleetScenario,
    ShardRollup,
    fleet_scenario_names,
    get_fleet_scenario,
    register_fleet_scenario,
    rollup_records,
)
from .routing import (
    ADMISSION_BATCH,
    ROUTING_POLICIES,
    ConsistentHashPolicy,
    LeastLoadedPolicy,
    PowerOfTwoPolicy,
    RoutingPolicy,
    estimated_work_ms,
    get_policy,
    load_imbalance,
    partition_arrivals,
    policy_names,
    register_policy,
    stable_digest,
)
from .workload import FLEET_WORKLOAD_KINDS, FleetWorkload

from . import scenarios  # noqa: F401  (registers the built-in fleet scenarios)

__all__ = [
    "ADMISSION_BATCH",
    "ConsistentHashPolicy",
    "FLEET_SCENARIOS",
    "FLEET_WORKLOAD_KINDS",
    "Fleet",
    "FleetResult",
    "FleetRollup",
    "FleetScenario",
    "FleetWorkload",
    "LeastLoadedPolicy",
    "PowerOfTwoPolicy",
    "ROUTING_POLICIES",
    "RoutingPolicy",
    "ShardRollup",
    "estimated_work_ms",
    "fleet_scenario_names",
    "get_fleet_scenario",
    "get_policy",
    "load_imbalance",
    "partition_arrivals",
    "policy_names",
    "register_fleet_scenario",
    "register_policy",
    "rollup_records",
    "stable_digest",
]
