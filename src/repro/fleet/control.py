"""The supervised fleet control plane: actors, supervision, serving plans.

This module turns a :class:`~repro.chaos.FaultSchedule` into a *serving
plan*: the same pure-function-of-``(scenario, seed)`` dispatch plan the
frozen front-end produces (:func:`repro.fleet.routing.partition_arrivals`),
but computed by a deterministic sim-clock event loop in which shards can
die, drain, degrade, recover — and every admitted request is provably
served exactly once, rerouted, or explicitly shed.

Design
------
* **Actors with an explicit transition table.**  Each shard is a
  :class:`ShardActor` in one of five named states::

      WARMING -> SERVING -> DRAINING -> DEAD -> RECOVERING -> WARMING
                    `------------------^

  Transitions outside :data:`TRANSITIONS` raise — an illegal state walk
  is a control-plane bug, never silent drift.  Every transition is
  recorded in the actor's history with its sim time and reason.

* **Supervision with capped deterministic backoff.**  When a shard goes
  DEAD the :class:`FleetSupervisor` schedules restart probes at
  ``RESTART_BACKOFF_MS`` doubling up to ``BACKOFF_CAP_MS``, at most
  ``MAX_RESTART_ATTEMPTS`` times — all in *sim time*, so the restart
  story replays bit-identically.  A probe succeeds once the fault
  schedule marks the shard recoverable; the shard then walks
  DEAD -> RECOVERING -> WARMING -> SERVING and a ``shard-up`` event
  carries the exact downtime.

* **Admission-time virtual service.**  The control plane models each
  request's residency as ``estimated_work_ms x slow / capacity`` from
  admission — consistent with the front-end's route-on-estimates design
  (routing never sees live simulation telemetry).  A kill mid-residency
  reroutes the request to a live shard (``REROUTE_DELAY_MS`` later); a
  drain lets residents finish and then downs the shard.  The *final*
  per-shard arrival streams are ordinary time-sorted streams, so shards
  still simulate as independent campaign cells on any kernel, serial or
  fanned out, with bit-identical results.

* **Degraded-mode shedding.**  While the live capacity fraction (sum of
  SERVING shards' capacity factors / total shards) sits strictly below
  ``SHED_CAPACITY_THRESHOLD``, fresh admissions are refused with a typed
  ``shed`` event.  Reroutes of already-admitted requests bypass the
  threshold — an accepted request is only ever shed when *zero* shards
  are live.

* **A ledger, not hope.**  Every input arrival gets exactly one
  :class:`RequestRecord` disposition.  The verify layer
  (:func:`repro.verify.invariants.check_serving_plan`) audits the ledger
  against the streams and histories: no lost requests, no serving on a
  dead shard, no shedding outside a degraded window.

With an *empty* fault schedule the supervisor makes the same routing
decisions (including identical RNG draw sequences for ``p2c``) as
:func:`partition_arrivals`, so the fault-free serving plan is
bit-identical to the frozen-admission plan.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Dict, List, Optional, Sequence, Tuple

from ..chaos import FaultSchedule, FaultSpec
from ..sim import SeededStreams
from ..telemetry.events import (
    RequestReroutedEvent,
    RequestShedEvent,
    ShardAdmissionEvent,
    ShardDownEvent,
    ShardRecoveredEvent,
    TelemetryEvent,
)
from ..workloads.generator import Arrival
from .routing import ADMISSION_BATCH, estimated_work_ms, get_policy

# ---------------------------------------------------------------------------
# Control-plane constants (all sim-time milliseconds)
# ---------------------------------------------------------------------------

#: Fresh admissions are shed while live capacity fraction < this.
SHED_CAPACITY_THRESHOLD = 0.5
#: First restart probe fires this long after a shard dies.
RESTART_BACKOFF_MS = 2000.0
#: Probe backoff doubles up to this cap.
BACKOFF_CAP_MS = 16000.0
#: A dead shard is probed at most this many times per death.
MAX_RESTART_ATTEMPTS = 8
#: DEAD -> RECOVERING -> WARMING takes this long (process restart).
RESTART_MS = 500.0
#: WARMING -> SERVING takes this long (bitstream/cache warmup).
WARMUP_MS = 1000.0
#: In-flight requests land on their new shard this long after a kill.
REROUTE_DELAY_MS = 1.0

# ---------------------------------------------------------------------------
# Shard states and the transition table
# ---------------------------------------------------------------------------

WARMING = "warming"
SERVING = "serving"
DRAINING = "draining"
DEAD = "dead"
RECOVERING = "recovering"

#: All named shard states, in lifecycle order.
SHARD_STATES = (WARMING, SERVING, DRAINING, DEAD, RECOVERING)

#: The legal state walk.  ``transition`` raises on anything else.
TRANSITIONS: Dict[str, Tuple[str, ...]] = {
    WARMING: (SERVING, DEAD),
    SERVING: (DRAINING, DEAD),
    DRAINING: (DEAD,),
    DEAD: (RECOVERING,),
    RECOVERING: (WARMING, DEAD),
}

# Event-queue phases: at one sim instant, virtual completions happen
# before faults, faults before supervision timers, timers before fresh
# arrivals.  (A request completing exactly at its shard's kill time was
# served; an arrival exactly at a kill time sees the shard already dead.)
_PHASE_COMPLETION = 0
_PHASE_FAULT = 1
_PHASE_TIMER = 2
_PHASE_ARRIVAL = 3


class ShardActor:
    """One shard's failure-domain state machine.

    Owns the named state, capacity/latency factors, the set of resident
    (virtually in-flight) requests, and the full transition history.  The
    ``epoch`` counter invalidates stale supervision timers: every death
    bumps it, and a timer scheduled under an older epoch is dropped.
    """

    __slots__ = (
        "shard", "state", "capacity_factor", "slow_factor", "attempts",
        "down_since_ms", "epoch", "in_flight", "history",
        "_recover_times", "_recover_ptr",
    )

    def __init__(self, shard: int, recover_times: Sequence[float] = ()) -> None:
        self.shard = shard
        self.state = SERVING
        self.capacity_factor = 1.0
        self.slow_factor = 1.0
        self.attempts = 0
        self.down_since_ms = -1.0
        self.epoch = 0
        #: request seq -> admission generation (resident requests).
        self.in_flight: Dict[int, int] = {}
        #: (time_ms, state, reason) — boots straight into SERVING.
        self.history: List[Tuple[float, str, str]] = [(0.0, SERVING, "boot")]
        self._recover_times = tuple(sorted(recover_times))
        self._recover_ptr = 0

    def transition(self, to_state: str, time_ms: float, reason: str = "") -> None:
        """Walk to ``to_state``; raises on a move outside the table."""
        if to_state not in TRANSITIONS[self.state]:
            raise ValueError(
                f"shard {self.shard}: illegal transition "
                f"{self.state} -> {to_state} at t={time_ms:g} ({reason or 'no reason'}); "
                f"allowed: {', '.join(TRANSITIONS[self.state])}"
            )
        self.state = to_state
        self.history.append((time_ms, to_state, reason))

    def state_at(self, time_ms: float) -> str:
        """The shard's state at sim time ``time_ms`` (audit helper)."""
        state = self.history[0][1]
        for at_ms, to_state, _ in self.history:
            if at_ms > time_ms:
                break
            state = to_state
        return state

    def next_recoverable(self, after_ms: float) -> Optional[float]:
        """The first unconsumed recover time strictly after ``after_ms``."""
        ptr = self._recover_ptr
        while ptr < len(self._recover_times):
            if self._recover_times[ptr] > after_ms:
                return self._recover_times[ptr]
            ptr += 1
        return None

    def consume_recoverable(self, after_ms: float) -> None:
        while self._recover_ptr < len(self._recover_times):
            recover_at = self._recover_times[self._recover_ptr]
            self._recover_ptr += 1
            if recover_at > after_ms:
                return


@dataclass
class RequestRecord:
    """One admitted arrival's ledger entry (exactly-once disposition)."""

    seq: int
    app: str
    batch: int
    submitted_ms: float
    #: ``served`` or ``shed`` — every input arrival ends as exactly one.
    disposition: str = ""
    #: Final serving shard (-1 when shed).
    shard: int = -1
    #: Admission time on the final shard (the stream timestamp).
    time_ms: float = -1.0
    #: Shards this request was bumped off, in order.
    rerouted_from: Tuple[int, ...] = ()
    shed_reason: str = ""
    #: Admission generation; stale virtual completions are dropped.
    gen: int = 0


@dataclass
class ServingPlan:
    """The supervised dispatch plan plus its full audit trail."""

    n_shards: int
    policy: str
    seed: int
    faults: FaultSchedule
    #: Final time-sorted per-shard arrival streams (campaign-cell input).
    streams: List[List[Arrival]] = field(default_factory=list)
    #: One record per input arrival, in submission order.
    ledger: Tuple[RequestRecord, ...] = ()
    #: Every control-plane event, in sim-time order.
    events: List[TelemetryEvent] = field(default_factory=list)
    #: Per-shard transition histories ((time_ms, state, reason) lists).
    histories: Dict[int, List[Tuple[float, str, str]]] = field(default_factory=dict)
    #: Closed/open intervals when capacity sat below the shed threshold.
    shed_windows: List[Tuple[float, Optional[float]]] = field(default_factory=list)
    shed_threshold: float = SHED_CAPACITY_THRESHOLD

    @property
    def served_count(self) -> int:
        return sum(1 for r in self.ledger if r.disposition == "served")

    @property
    def shed_count(self) -> int:
        return sum(1 for r in self.ledger if r.disposition == "shed")

    @property
    def reroute_count(self) -> int:
        return sum(len(r.rerouted_from) for r in self.ledger)

    def summary(self) -> Dict[str, object]:
        """Flat counters for CLI/JSON surfaces."""
        return {
            "policy": self.policy,
            "seed": self.seed,
            "n_shards": self.n_shards,
            "faults": len(self.faults),
            "served": self.served_count,
            "shed": self.shed_count,
            "reroutes": self.reroute_count,
            "shed_windows": len(self.shed_windows),
        }


class FleetSupervisor:
    """Deterministic admission-time control loop over the shard actors.

    One instance plans one ``(arrival stream, fault schedule)`` pair.  The
    loop merges virtual completions, faults, supervision timers and fresh
    arrivals into a single sim-clock priority queue with fixed intra-tick
    phase ordering and an insertion-order tiebreak, so the plan is a pure
    function of its inputs.
    """

    def __init__(
        self,
        n_shards: int,
        policy: str,
        seed: int,
        faults: FaultSchedule,
        shed_threshold: float = SHED_CAPACITY_THRESHOLD,
        admission_batch: int = ADMISSION_BATCH,
        telemetry=None,
    ) -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        faults.validate_for(n_shards)
        self.n_shards = n_shards
        self.policy = policy
        self.seed = seed
        self.faults = faults
        self.shed_threshold = shed_threshold
        self.admission_batch = admission_batch
        self.telemetry = telemetry
        # Same RNG family and policy construction as partition_arrivals,
        # so the fault-free plan is bit-identical to the frozen one.
        streams = SeededStreams(seed).spawn("fleet-router")
        self.router = get_policy(policy, n_shards, streams)
        recover_times = faults.recover_times()
        self.actors = [
            ShardActor(shard, recover_times.get(shard, ()))
            for shard in range(n_shards)
        ]
        self.loads = [0.0] * n_shards
        self._events: List[TelemetryEvent] = []
        self._windows: List[Tuple[float, Optional[float]]] = []
        self._window_start: Optional[float] = None
        self._last_time = 0.0

    # -- helpers -------------------------------------------------------

    def _live(self) -> Tuple[int, ...]:
        return tuple(
            actor.shard for actor in self.actors if actor.state == SERVING
        )

    def _capacity_fraction(self) -> float:
        return sum(
            actor.capacity_factor
            for actor in self.actors
            if actor.state == SERVING
        ) / self.n_shards

    def _emit(self, event: TelemetryEvent) -> None:
        self._events.append(event)
        if self.telemetry is not None and self.telemetry.wants(event.kind):
            self.telemetry.emit(event)

    def _update_shed_window(self, time_ms: float) -> None:
        below = self._capacity_fraction() < self.shed_threshold
        if below and self._window_start is None:
            self._window_start = time_ms
        elif not below and self._window_start is not None:
            self._windows.append((self._window_start, time_ms))
            self._window_start = None

    # -- the loop ------------------------------------------------------

    def plan(self, arrivals: Sequence[Arrival]) -> ServingPlan:
        """Run the control loop over ``arrivals``; returns the plan."""
        arrivals = list(arrivals)
        records = [
            RequestRecord(
                seq=index, app=arrival.app_name, batch=arrival.batch_size,
                submitted_ms=arrival.time_ms,
            )
            for index, arrival in enumerate(arrivals)
        ]
        heap: List[Tuple[float, int, int, Tuple]] = []
        tick = itertools.count()
        for index, arrival in enumerate(arrivals):
            heappush(
                heap,
                (arrival.time_ms, _PHASE_ARRIVAL, next(tick), ("arrival", index)),
            )
        for fault in self.faults:
            heappush(
                heap, (fault.at_ms, _PHASE_FAULT, next(tick), ("fault", fault))
            )
        admitted = 0
        snapshot: Tuple[float, ...] = tuple(self.loads)

        def admit(record: RequestRecord, shard: int, time_ms: float) -> None:
            actor = self.actors[shard]
            arrival = arrivals[record.seq]
            record.disposition = "served"
            record.shard = shard
            record.time_ms = time_ms
            record.gen += 1
            actor.in_flight[record.seq] = record.gen
            self.loads[shard] += estimated_work_ms(arrival)
            duration = (
                estimated_work_ms(arrival)
                * actor.slow_factor
                / actor.capacity_factor
            )
            heappush(heap, (
                time_ms + duration, _PHASE_COMPLETION, next(tick),
                ("complete", (shard, record.seq, record.gen)),
            ))

        def shed(record: RequestRecord, time_ms: float, reason: str) -> None:
            if record.shard >= 0:
                record.rerouted_from = record.rerouted_from + (record.shard,)
            record.disposition = "shed"
            record.shard = -1
            record.time_ms = time_ms
            record.shed_reason = reason
            self._emit(RequestShedEvent(time_ms, record.app, record.batch, reason))

        def mark_dead(actor: ShardActor, time_ms: float, reason: str) -> None:
            actor.transition(DEAD, time_ms, reason)
            actor.down_since_ms = time_ms
            actor.epoch += 1
            actor.attempts = 0
            self._emit(ShardDownEvent(time_ms, actor.shard, reason))
            self._update_shed_window(time_ms)
            # Always probe: a schedule may leave the shard permanently
            # dead, in which case the probes exhaust deterministically.
            heappush(heap, (
                time_ms + RESTART_BACKOFF_MS, _PHASE_TIMER, next(tick),
                ("probe", (actor.shard, actor.epoch)),
            ))

        while heap:
            time_ms, phase, _, item = heappop(heap)
            self._last_time = time_ms
            kind, payload = item

            if kind == "complete":
                shard, seq, gen = payload
                actor = self.actors[shard]
                if actor.in_flight.get(seq) != gen:
                    continue  # rerouted or re-admitted elsewhere
                del actor.in_flight[seq]
                if actor.state == DRAINING and not actor.in_flight:
                    mark_dead(actor, time_ms, "drain")

            elif kind == "fault":
                fault: FaultSpec = payload
                actor = self.actors[fault.shard]
                if fault.kind == "kill":
                    if actor.state == DEAD:
                        continue
                    residents = sorted(actor.in_flight)
                    actor.in_flight.clear()
                    mark_dead(actor, time_ms, "kill")
                    for seq in residents:
                        heappush(heap, (
                            time_ms + REROUTE_DELAY_MS, _PHASE_TIMER,
                            next(tick), ("reroute", seq),
                        ))
                elif fault.kind == "drain":
                    if actor.state != SERVING:
                        continue
                    actor.transition(DRAINING, time_ms, "drain")
                    self._update_shed_window(time_ms)
                    if not actor.in_flight:
                        mark_dead(actor, time_ms, "drain")
                elif fault.kind == "degrade":
                    actor.capacity_factor = fault.factor
                    self._update_shed_window(time_ms)
                    heappush(heap, (
                        time_ms + fault.duration_ms, _PHASE_FAULT,
                        next(tick), ("degrade-end", fault.shard),
                    ))
                elif fault.kind == "slow":
                    actor.slow_factor = fault.factor
                    heappush(heap, (
                        time_ms + fault.duration_ms, _PHASE_FAULT,
                        next(tick), ("slow-end", fault.shard),
                    ))
                # "recover" is data for the probes, not a queue action.

            elif kind == "degrade-end":
                self.actors[payload].capacity_factor = 1.0
                self._update_shed_window(time_ms)

            elif kind == "slow-end":
                self.actors[payload].slow_factor = 1.0

            elif kind == "probe":
                shard, epoch = payload
                actor = self.actors[shard]
                if actor.epoch != epoch or actor.state != DEAD:
                    continue
                recover_at = actor.next_recoverable(actor.down_since_ms)
                if recover_at is not None and time_ms >= recover_at:
                    actor.consume_recoverable(actor.down_since_ms)
                    actor.transition(RECOVERING, time_ms, "probe-ok")
                    heappush(heap, (
                        time_ms + RESTART_MS, _PHASE_TIMER, next(tick),
                        ("restart-done", (shard, actor.epoch)),
                    ))
                else:
                    actor.attempts += 1
                    if actor.attempts < MAX_RESTART_ATTEMPTS:
                        backoff = min(
                            RESTART_BACKOFF_MS * (2.0 ** actor.attempts),
                            BACKOFF_CAP_MS,
                        )
                        heappush(heap, (
                            time_ms + backoff, _PHASE_TIMER, next(tick),
                            ("probe", (shard, epoch)),
                        ))

            elif kind == "restart-done":
                shard, epoch = payload
                actor = self.actors[shard]
                if actor.epoch != epoch or actor.state != RECOVERING:
                    continue
                actor.transition(WARMING, time_ms, "restart-done")
                heappush(heap, (
                    time_ms + WARMUP_MS, _PHASE_TIMER, next(tick),
                    ("warmup-done", (shard, epoch)),
                ))

            elif kind == "warmup-done":
                shard, epoch = payload
                actor = self.actors[shard]
                if actor.epoch != epoch or actor.state != WARMING:
                    continue
                actor.transition(SERVING, time_ms, "warmup-done")
                self._emit(ShardRecoveredEvent(
                    time_ms, shard, time_ms - actor.down_since_ms
                ))
                self._update_shed_window(time_ms)

            elif kind == "reroute":
                record = records[payload]
                live = self._live()
                if not live:
                    # The only way an *admitted* request is ever refused.
                    shed(record, time_ms, "no-live-shards")
                    continue
                from_shard = record.shard
                record.rerouted_from = record.rerouted_from + (from_shard,)
                # Reroutes consult the live cumulative loads (the
                # supervisor reacts to failures with fresh accounting)
                # and never consume a batch slot or the shed budget.
                to_shard = self.router.route_live(
                    arrivals[record.seq], tuple(self.loads), live
                )
                admit(record, to_shard, time_ms)
                self._emit(RequestReroutedEvent(
                    time_ms, record.app, record.batch, from_shard, to_shard
                ))

            elif kind == "arrival":
                record = records[payload]
                arrival = arrivals[payload]
                live = self._live()
                if not live:
                    shed(record, time_ms, "no-live-shards")
                    continue
                if self._capacity_fraction() < self.shed_threshold:
                    shed(record, time_ms, "degraded-capacity")
                    continue
                # Fresh admissions replicate the frozen front-end's
                # batch-snapshot accounting exactly.
                if admitted % self.admission_batch == 0:
                    snapshot = tuple(self.loads)
                shard = self.router.route_live(arrival, snapshot, live)
                admit(record, shard, time_ms)
                admitted += 1
                self._emit(ShardAdmissionEvent(
                    arrival.time_ms, arrival.app_name,
                    arrival.batch_size, shard,
                ))

            else:  # pragma: no cover - closed dispatch
                raise AssertionError(f"unknown control event {kind!r}")

        if self._window_start is not None:
            self._windows.append((self._window_start, None))
            self._window_start = None

        for record in records:
            if record.disposition not in ("served", "shed"):
                raise AssertionError(
                    f"request {record.seq} finished the loop without a "
                    f"disposition (control-plane bug)"
                )

        streams: List[List[Arrival]] = [[] for _ in range(self.n_shards)]
        for record in sorted(
            (r for r in records if r.disposition == "served"),
            key=lambda r: (r.time_ms, r.seq),
        ):
            streams[record.shard].append(
                Arrival(
                    app_name=record.app, batch_size=record.batch,
                    time_ms=record.time_ms,
                )
            )
        return ServingPlan(
            n_shards=self.n_shards,
            policy=self.policy,
            seed=self.seed,
            faults=self.faults,
            streams=streams,
            ledger=tuple(records),
            events=self._events,
            histories={
                actor.shard: list(actor.history) for actor in self.actors
            },
            shed_windows=list(self._windows),
            shed_threshold=self.shed_threshold,
        )


def supervised_partition(
    arrivals: Sequence[Arrival],
    n_shards: int,
    policy: str,
    seed: int,
    faults: FaultSchedule,
    shed_threshold: float = SHED_CAPACITY_THRESHOLD,
    admission_batch: int = ADMISSION_BATCH,
    telemetry=None,
) -> ServingPlan:
    """The fault-aware dispatch plan (supervised analogue of
    :func:`repro.fleet.routing.partition_arrivals`).

    Pure and deterministic in every argument; with an empty schedule the
    ``streams`` equal the frozen-admission plan bit for bit.
    """
    supervisor = FleetSupervisor(
        n_shards=n_shards, policy=policy, seed=seed, faults=faults,
        shed_threshold=shed_threshold, admission_batch=admission_batch,
        telemetry=telemetry,
    )
    return supervisor.plan(arrivals)


__all__ = [
    "BACKOFF_CAP_MS",
    "DEAD",
    "DRAINING",
    "FleetSupervisor",
    "MAX_RESTART_ATTEMPTS",
    "RECOVERING",
    "REROUTE_DELAY_MS",
    "RESTART_BACKOFF_MS",
    "RESTART_MS",
    "RequestRecord",
    "SERVING",
    "SHARD_STATES",
    "SHED_CAPACITY_THRESHOLD",
    "ServingPlan",
    "ShardActor",
    "TRANSITIONS",
    "WARMING",
    "WARMUP_MS",
    "supervised_partition",
]
