"""Routing and admission policies for the sharded fleet front-end.

The fleet front-end assigns every arriving application to one of N
independent cluster shards.  Routing runs at *admission time*, against the
front-end's own load accounting (estimated slot-work routed to each shard
so far), never against live simulation telemetry — that is what makes a
dispatch plan a pure function of the arrival stream, so shards simulate as
independent campaign cells with bit-identical results whether they run
serially or fanned out over worker processes.

Every policy is seeded through :class:`~repro.sim.rng.SeededStreams` and
every hash is a SHA-256 digest (:func:`stable_digest`), never the builtin
``hash()``: a routing decision must come out the same in every worker
process regardless of ``PYTHONHASHSEED``.

Arrivals are admitted in small *batches* (:data:`ADMISSION_BATCH`): the
load snapshot the policies see is frozen at batch start, modelling a
front-end that folds telemetry in periodically rather than per request.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..apps.benchmarks import BENCHMARKS
from ..sim import SeededStreams
from ..telemetry.bus import TelemetryBus
from ..telemetry.events import ShardAdmissionEvent
from ..workloads.generator import Arrival

#: Arrivals admitted per routing batch; the per-shard load snapshot the
#: policies consult refreshes only at batch boundaries.
ADMISSION_BATCH = 4

#: Virtual nodes per shard on the consistent-hash ring.
VNODES = 64


def stable_digest(text: str) -> int:
    """A 63-bit integer digest of ``text``, stable across processes."""
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") & 0x7FFFFFFFFFFFFFFF


def estimated_work_ms(arrival: Arrival) -> float:
    """Admission-time work estimate of one arrival (total slot-work)."""
    spec = BENCHMARKS[arrival.app_name]
    return sum(task.exec_time_ms for task in spec.tasks) * arrival.batch_size


class RoutingPolicy:
    """Base class: map an arrival to a shard index.

    ``loads`` is the front-end's per-shard estimated-work snapshot, frozen
    at the start of the current admission batch.
    """

    name = "?"

    def __init__(self, n_shards: int, streams: SeededStreams) -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        self.n_shards = n_shards
        self.streams = streams

    def route(self, arrival: Arrival, loads: Sequence[float]) -> int:
        raise NotImplementedError

    def route_live(
        self,
        arrival: Arrival,
        loads: Sequence[float],
        live: Sequence[int],
    ) -> int:
        """Route among the ``live`` shard subset (failure-aware admission).

        ``live`` is the sorted tuple of currently-serving shard indices.
        With every shard live this must make the *same decision (and the
        same RNG draws)* as :meth:`route`, so a fault-free supervised plan
        is bit-identical to the frozen-admission plan.  The base fallback
        keeps the :meth:`route` choice when it is live and otherwise walks
        cyclically upward to the next live shard.
        """
        if not live:
            raise ValueError("route_live needs at least one live shard")
        shard = self.route(arrival, loads)
        if shard in live:
            return shard
        for offset in range(1, self.n_shards + 1):
            candidate = (shard + offset) % self.n_shards
            if candidate in live:
                return candidate
        raise ValueError("route_live: no live shard found")  # pragma: no cover


#: Registered policies by name (insertion-ordered dict).
ROUTING_POLICIES: Dict[str, Callable[..., RoutingPolicy]] = {}


def register_policy(cls):
    """Class decorator adding a routing policy to the registry."""
    if cls.name in ROUTING_POLICIES:
        raise ValueError(f"routing policy {cls.name!r} is already registered")
    ROUTING_POLICIES[cls.name] = cls
    return cls


def get_policy(name: str, n_shards: int, streams: SeededStreams) -> RoutingPolicy:
    """Instantiate a registered policy; KeyError names the alternatives."""
    try:
        factory = ROUTING_POLICIES[name]
    except KeyError:
        raise KeyError(
            f"unknown routing policy {name!r}; "
            f"available: {', '.join(ROUTING_POLICIES)}"
        ) from None
    return factory(n_shards, streams)


def policy_names() -> List[str]:
    return list(ROUTING_POLICIES)


@register_policy
class ConsistentHashPolicy(RoutingPolicy):
    """Consistent-hash ring keyed by application name.

    All arrivals of one benchmark land on one shard (cache/bitstream
    affinity), and adding a shard only remaps ~1/N of the key space.
    ``VNODES`` virtual nodes per shard keep the ring balanced.
    """

    name = "hash"

    def __init__(self, n_shards: int, streams: SeededStreams) -> None:
        super().__init__(n_shards, streams)
        points: List[Tuple[int, int]] = []
        for shard in range(n_shards):
            for vnode in range(VNODES):
                points.append((stable_digest(f"shard{shard}/vnode{vnode}"), shard))
        points.sort()
        self._ring = [point for point, _ in points]
        self._owner = [shard for _, shard in points]

    def route(self, arrival: Arrival, loads: Sequence[float]) -> int:
        point = stable_digest(f"app/{arrival.app_name}")
        index = bisect_right(self._ring, point) % len(self._ring)
        return self._owner[index]

    def route_live(
        self,
        arrival: Arrival,
        loads: Sequence[float],
        live: Sequence[int],
    ) -> int:
        # Ring-walk past dead owners: the first live vnode clockwise of
        # the key.  Keys whose owner stays live keep their shard, so a
        # leave/rejoin remaps only the dead shard's key range (classic
        # consistent-hashing stability, now under failures).
        if not live:
            raise ValueError("route_live needs at least one live shard")
        live_set = frozenset(live)
        point = stable_digest(f"app/{arrival.app_name}")
        index = bisect_right(self._ring, point) % len(self._ring)
        for step in range(len(self._ring)):
            owner = self._owner[(index + step) % len(self._ring)]
            if owner in live_set:
                return owner
        raise ValueError("route_live: no live shard found")  # pragma: no cover


@register_policy
class LeastLoadedPolicy(RoutingPolicy):
    """Route to the shard with the least estimated work (ties: lowest index)."""

    name = "least-loaded"

    def route(self, arrival: Arrival, loads: Sequence[float]) -> int:
        best = 0
        best_load = loads[0]
        for shard in range(1, self.n_shards):
            if loads[shard] < best_load:
                best = shard
                best_load = loads[shard]
        return best

    def route_live(
        self,
        arrival: Arrival,
        loads: Sequence[float],
        live: Sequence[int],
    ) -> int:
        if not live:
            raise ValueError("route_live needs at least one live shard")
        best = live[0]
        best_load = loads[best]
        for shard in live[1:]:
            if loads[shard] < best_load:
                best = shard
                best_load = loads[shard]
        return best


@register_policy
class PowerOfTwoPolicy(RoutingPolicy):
    """Pick two random candidate shards, route to the less loaded one.

    The candidate stream comes from the fleet's seeded RNG family, so the
    choice sequence is reproducible in every process; with one shard it
    degenerates to that shard.
    """

    name = "p2c"

    def __init__(self, n_shards: int, streams: SeededStreams) -> None:
        super().__init__(n_shards, streams)
        self._rng = streams.stream("p2c")

    def route(self, arrival: Arrival, loads: Sequence[float]) -> int:
        first = self._rng.randrange(self.n_shards)
        second = self._rng.randrange(self.n_shards)
        return first if loads[first] <= loads[second] else second

    def route_live(
        self,
        arrival: Arrival,
        loads: Sequence[float],
        live: Sequence[int],
    ) -> int:
        # Candidates are drawn from the *live* index space, so the draw
        # count per decision is fixed (two) and, with every shard live,
        # the sequence is identical to :meth:`route` — the sorted live
        # tuple is then (0..n-1) and ``live[i] == i``.
        if not live:
            raise ValueError("route_live needs at least one live shard")
        first = live[self._rng.randrange(len(live))]
        second = live[self._rng.randrange(len(live))]
        return first if loads[first] <= loads[second] else second


def partition_arrivals(
    arrivals: Sequence[Arrival],
    n_shards: int,
    policy: str,
    seed: int,
    admission_batch: int = ADMISSION_BATCH,
    telemetry: Optional[TelemetryBus] = None,
) -> List[List[Arrival]]:
    """The fleet dispatch plan: arrivals routed to per-shard sub-streams.

    Pure and deterministic in ``(arrivals, n_shards, policy, seed)`` —
    recomputing the plan in a worker process yields the identical split.
    An attached ``telemetry`` bus receives one shard-admission event per
    routed arrival (timestamped with the arrival time).
    """
    streams = SeededStreams(seed).spawn("fleet-router")
    router = get_policy(policy, n_shards, streams)
    loads = [0.0] * n_shards
    shards: List[List[Arrival]] = [[] for _ in range(n_shards)]
    emit_admission = (
        telemetry is not None and telemetry.wants("admission")
    )
    for start in range(0, len(arrivals), admission_batch):
        snapshot = tuple(loads)
        for arrival in arrivals[start:start + admission_batch]:
            shard = router.route(arrival, snapshot)
            if not 0 <= shard < n_shards:
                raise ValueError(
                    f"policy {policy!r} routed to shard {shard} "
                    f"outside [0, {n_shards})"
                )
            shards[shard].append(arrival)
            loads[shard] += estimated_work_ms(arrival)
            if emit_admission:
                telemetry.emit(
                    ShardAdmissionEvent(
                        arrival.time_ms, arrival.app_name,
                        arrival.batch_size, shard,
                    )
                )
    return shards


def shard_loads(shards: Sequence[Sequence[Arrival]]) -> List[float]:
    """Estimated per-shard work of a dispatch plan (rollup/imbalance input)."""
    return [
        sum(estimated_work_ms(arrival) for arrival in shard) for shard in shards
    ]


def load_imbalance(shards: Sequence[Sequence[Arrival]]) -> float:
    """Max/mean estimated shard load (1.0 == perfectly balanced)."""
    loads = shard_loads(shards)
    total = sum(loads)
    if not loads or total <= 0:
        return 1.0
    return max(loads) / (total / len(loads))
