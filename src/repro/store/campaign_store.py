"""The high-level campaign store: records, events and snapshots on one log.

:class:`CampaignStore` is what the persistence layer hands the campaign
runner and the fleet: a :class:`~repro.store.recorder.EventRecorder`
wrapped in the domain vocabulary — append :class:`RunRecord` batches,
ingest telemetry events, checkpoint :class:`CampaignSnapshot`\\ s, read
everything back as one ordered notification log.  It is
``ResultsStore``-compatible (``extend`` / ``load`` / ``path`` /
``skipped_lines``), so every existing call site keeps working while
gaining snapshots, resume and incremental projections.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

from .notification import (
    KIND_EVENT,
    KIND_RECORD,
    KIND_SNAPSHOT,
    Notification,
    NotificationLog,
)
from .recorder import (
    EventRecorder,
    JsonlRecorder,
    SqliteRecorder,
    is_sqlite_path,
)
from .snapshot import CampaignSnapshot

#: Recorder constructors by backend tag (the ``--store-backend`` choices).
RECORDER_BACKENDS = {
    "jsonl": JsonlRecorder,
    "sqlite": SqliteRecorder,
}


class CampaignStore:
    """Domain surface over one durable notification log."""

    def __init__(self, recorder: EventRecorder) -> None:
        self.recorder = recorder
        self.log = NotificationLog(recorder)

    # -- ResultsStore-compatible surface ---------------------------------
    @property
    def path(self) -> Path:
        return self.recorder.path

    @property
    def skipped_lines(self) -> int:
        return getattr(self.recorder, "skipped_lines", 0)

    def extend(self, records: Iterable) -> Path:
        """Durably append records (the ``ResultsStore.extend`` contract)."""
        self.append_records(records)
        return self.path

    def load(self) -> List:
        """Every persisted :class:`RunRecord`, in notification order."""
        from ..campaign.results import RunRecord  # lazy: avoids a cycle

        return [
            RunRecord.from_dict(n.payload)
            for n in self.recorder.select()
            if n.kind == KIND_RECORD
        ]

    # -- notification-log surface ----------------------------------------
    def select(
        self, start: int = 1, limit: Optional[int] = None
    ) -> List[Notification]:
        return self.recorder.select(start=start, limit=limit)

    def max_id(self) -> int:
        return self.recorder.max_id()

    def counts(self) -> Dict[str, int]:
        return self.recorder.counts()

    def append_records(self, records: Iterable) -> List[int]:
        return self.recorder.append(
            (KIND_RECORD, record.to_dict()) for record in records
        )

    def append_events(self, events: Iterable) -> List[int]:
        """Flow typed telemetry events through the notification log."""
        return self.recorder.append(
            (KIND_EVENT, event.to_dict()) for event in events
        )

    def record_snapshot(self, snapshot: CampaignSnapshot) -> int:
        (nid,) = self.recorder.append([(KIND_SNAPSHOT, snapshot.to_dict())])
        return nid

    def latest_snapshot(self) -> Optional[CampaignSnapshot]:
        """The newest persisted snapshot (None when there is none)."""
        newest: Optional[CampaignSnapshot] = None
        for notification in self.recorder.select():
            if notification.kind == KIND_SNAPSHOT:
                newest = CampaignSnapshot.from_dict(notification.payload)
        return newest

    def completed_cells(self) -> Tuple[Dict[str, object], int]:
        """Completed cell keys -> record payloads, plus the resume read size.

        The resume contract: start from the latest snapshot's completed
        set, then fold only record notifications with ``id >
        snapshot.covered_id`` — the second element counts how many
        notifications that tail read actually touched, so tests can
        assert resume never re-reads the snapshotted prefix.  Failure
        records (``error`` non-empty) never count as completed: a resumed
        run re-executes them.
        """
        from ..campaign.results import RunRecord  # lazy: avoids a cycle
        from .snapshot import cell_key

        snapshot = self.latest_snapshot()
        completed: Dict[str, object] = {}
        start = 1
        if snapshot is not None:
            start = snapshot.covered_id + 1
            # Payloads for the snapshotted prefix still come from the log
            # (the snapshot carries keys, not full records) — but the
            # *tail* scan below is bounded by the snapshot watermark.
            for notification in self.recorder.select(limit=None):
                if notification.id > snapshot.covered_id:
                    break
                if notification.kind != KIND_RECORD:
                    continue
                record = RunRecord.from_dict(notification.payload)
                if not record.failed:
                    completed[cell_key(record)] = record
        tail = self.recorder.select(start=start)
        for notification in tail:
            if notification.kind != KIND_RECORD:
                continue
            record = RunRecord.from_dict(notification.payload)
            if not record.failed:
                completed[cell_key(record)] = record
        return completed, len(tail)

    def get_projection(
        self, name: str
    ) -> Tuple[int, Optional[Dict[str, object]]]:
        return self.recorder.get_projection(name)

    def set_projection(
        self, name: str, watermark: int, state: Dict[str, object]
    ) -> None:
        self.recorder.set_projection(name, watermark, state)

    def close(self) -> None:
        self.recorder.close()

    def __enter__(self) -> "CampaignStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def open_store(
    path: Union[str, Path], backend: Optional[str] = None
) -> CampaignStore:
    """Open (or create) the campaign store at ``path``.

    ``backend`` forces an adapter (``"jsonl"`` / ``"sqlite"``); when
    omitted the path is sniffed — a ``.sqlite``/``.db`` suffix or SQLite
    file magic selects :class:`SqliteRecorder`, anything else (including
    every legacy ``results/*.jsonl`` file) the wrapping
    :class:`JsonlRecorder`.
    """
    if backend is None:
        backend = "sqlite" if is_sqlite_path(path) else "jsonl"
    try:
        recorder_cls = RECORDER_BACKENDS[backend]
    except KeyError:
        raise ValueError(
            f"unknown store backend {backend!r}; "
            f"available: {', '.join(RECORDER_BACKENDS)}"
        ) from None
    return CampaignStore(recorder_cls(path))


def as_campaign_store(store) -> CampaignStore:
    """Upgrade any store-like argument to a :class:`CampaignStore`.

    Accepts an existing :class:`CampaignStore`, a plain
    :class:`~repro.campaign.results.ResultsStore` (wrapped on the same
    path, records preserved), or a path.
    """
    if isinstance(store, CampaignStore):
        return store
    if isinstance(store, (str, Path)):
        return open_store(store)
    path = getattr(store, "path", None)
    if path is None:
        raise TypeError(
            f"cannot upgrade {type(store).__name__} to a CampaignStore"
        )
    return open_store(path)


__all__ = [
    "CampaignStore",
    "RECORDER_BACKENDS",
    "as_campaign_store",
    "open_store",
]
