"""Snapshot-aware campaign execution: chunked appends, checkpoints, resume.

:func:`execute_with_store` is the one orchestration path between "a list
of campaign cells" and "records durably in a store".  It appends results
in cell order in chunks of ``snapshot_every``, records a
:class:`~repro.store.snapshot.CampaignSnapshot` after each chunk, keeps
the built-in projections folded up to the log head, and — under
``resume`` — skips every cell the store already holds a successful record
for.  Because cells are deterministic and independent, and records are
always appended in cell order, an interrupted-then-resumed campaign
produces a byte-identical results file (and equal rollups/reports) to an
uninterrupted one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..telemetry.digest import ResponseDigest
from .campaign_store import CampaignStore, as_campaign_store
from .snapshot import CampaignSnapshot, cell_key, cell_spec

#: Default checkpoint cadence (cells per snapshot) for the CLI surface.
DEFAULT_SNAPSHOT_EVERY = 25


@dataclass
class ExecutionOutcome:
    """What :func:`execute_with_store` did."""

    #: One record per input cell, in cell order (resumed cells carry the
    #: previously persisted record).
    records: List
    #: Cells skipped because the store already held their record.
    resumed: int
    #: Cells actually executed by the backend this call.
    executed: int
    #: Snapshots recorded this call.
    snapshots: int


def _merged_digest(records) -> Dict[str, object]:
    """One digest over the completed records (snapshot payload)."""
    merged = ResponseDigest()
    for record in records:
        if record.response_times_ms:
            merged.extend(record.response_times_ms)
        else:
            digest = record.digest()
            if digest is not None:
                merged.merge(digest)
    return merged.to_dict()


def execute_with_store(
    backend,
    cells: Sequence,
    store=None,
    snapshot_every: int = 0,
    resume: bool = False,
    refresh_projections: bool = True,
) -> ExecutionOutcome:
    """Run ``cells`` through ``backend`` with durable, resumable persistence.

    ``store`` may be None (no persistence), a plain
    :class:`~repro.campaign.results.ResultsStore` (legacy single-append
    path, byte-identical to the pre-store behavior), or anything
    :func:`~repro.store.campaign_store.as_campaign_store` accepts.
    Snapshots and resume require a store; asking for them without one is
    an error rather than a silent no-op.
    """
    if snapshot_every < 0:
        raise ValueError(f"snapshot_every must be >= 0, got {snapshot_every}")
    cells = list(cells)
    wants_features = resume or snapshot_every > 0
    if wants_features and store is None:
        raise ValueError(
            "snapshots/resume need a persistent store (pass --out)"
        )

    campaign_store: Optional[CampaignStore] = None
    if store is not None and (
        wants_features or isinstance(store, CampaignStore)
    ):
        campaign_store = as_campaign_store(store)

    if campaign_store is None:
        # Legacy path: one backend call, one append — bit-identical to the
        # pre-store runner for callers that never asked for durability.
        records = backend.run(cells)
        if store is not None:
            store.extend(records)
        return ExecutionOutcome(
            records=records, resumed=0, executed=len(cells), snapshots=0
        )

    keys = [cell_key(cell) for cell in cells]
    completed: Dict[str, object] = {}
    if resume:
        if len(set(keys)) != len(keys):
            raise ValueError(
                "cannot resume: the campaign enumerates duplicate cells "
                "(same scenario/system/sequence/seed/shard); matching "
                "persisted records to cells would be ambiguous"
            )
        completed, _ = campaign_store.completed_cells()

    results: Dict[int, object] = {}
    pending: List[int] = []
    for index, key in enumerate(keys):
        if resume and key in completed:
            results[index] = completed[key]
        else:
            pending.append(index)
    resumed = len(cells) - len(pending)

    chunk_size = snapshot_every if snapshot_every > 0 else len(pending)
    snapshots = 0
    for at in range(0, len(pending), max(chunk_size, 1)):
        chunk = pending[at : at + chunk_size]
        chunk_records = backend.run([cells[i] for i in chunk])
        for index, record in zip(chunk, chunk_records):
            results[index] = record
        # Records land before the snapshot that covers them: a crash
        # between the two appends only loses the checkpoint, never work —
        # resume's tail scan re-derives the uncovered records.
        campaign_store.append_records(chunk_records)
        if snapshot_every > 0:
            done = [i for i in range(len(cells)) if i in results]
            done_records = [
                results[i] for i in done if not results[i].failed
            ]
            campaign_store.record_snapshot(
                CampaignSnapshot(
                    completed=tuple(
                        keys[i] for i in done if not results[i].failed
                    ),
                    digest=_merged_digest(done_records),
                    cells=tuple(
                        cell_spec(cells[i])
                        for i in done
                        if not results[i].failed
                    ),
                    covered_id=campaign_store.max_id(),
                )
            )
            snapshots += 1
        if refresh_projections:
            from .projections import update_projections

            update_projections(campaign_store)

    if not pending and refresh_projections:
        from .projections import update_projections

        update_projections(campaign_store)

    return ExecutionOutcome(
        records=[results[i] for i in range(len(cells))],
        resumed=resumed,
        executed=len(pending),
        snapshots=snapshots,
    )


__all__ = [
    "DEFAULT_SNAPSHOT_EVERY",
    "ExecutionOutcome",
    "execute_with_store",
]
