"""Reports as incremental projections over the notification log.

A :class:`Projection` folds notifications into a compact, serializable
state and remembers the newest notification id it has folded (its
*watermark*), both persisted in the store.  ``apply`` reads only
notifications past the watermark — re-rendering a report after a
campaign appended N cells folds N notifications, not the whole history —
and ``rebuild`` re-folds from scratch, so every projection is
oracle-checkable against its own full rebuild
(:func:`verify_store_projections`) and against the batch reference
implementations it mirrors:

* :class:`RecordSummaryProjection` — the ``summarize_records`` table
  (``metrics.report`` now renders through it).
* :class:`FleetRollupProjection` — per-shard + global fleet rollups
  (``fleet.rollup_records`` now folds through it).
* :class:`FigureProjection` — the Fig. 5 reductions and Fig. 6 relative
  tails, from compact per-record entries.
* :class:`TelemetryCounterProjection` — streaming aggregation counters
  over *event* notifications (the same fold
  ``telemetry.replay.replay_aggregation`` runs over a JSONL event log).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from ..telemetry.digest import ResponseDigest
from .notification import KIND_EVENT, KIND_RECORD, KIND_SNAPSHOT, Notification


class Projection:
    """Base: watermark-tracked incremental fold over the notification log."""

    #: Stable name the state/watermark persist under in the store.
    name = "?"

    def __init__(self) -> None:
        self.watermark = 0
        #: Notifications consumed by the most recent :meth:`apply` — the
        #: incremental contract ("fold only what is newer than the
        #: watermark") is asserted on this counter in tests.
        self.last_fold_count = 0
        self.reset_state()

    # -- state contract (subclasses) -------------------------------------
    def reset_state(self) -> None:
        raise NotImplementedError

    def state_dict(self) -> Dict[str, object]:
        raise NotImplementedError

    def restore_state(self, state: Dict[str, object]) -> None:
        raise NotImplementedError

    def fold_record(self, record) -> None:
        """Fold one :class:`RunRecord` (default: ignore)."""

    def fold_event(self, event) -> None:
        """Fold one typed telemetry event (default: ignore)."""

    def fold_snapshot(self, snapshot) -> None:
        """Fold one :class:`CampaignSnapshot` (default: ignore)."""

    # -- folding ----------------------------------------------------------
    def fold(self, notification: Notification) -> None:
        if notification.kind == KIND_RECORD:
            from ..campaign.results import RunRecord  # lazy: avoids a cycle

            self.fold_record(RunRecord.from_dict(notification.payload))
        elif notification.kind == KIND_EVENT:
            from ..telemetry.events import event_from_dict

            self.fold_event(event_from_dict(notification.payload))
        elif notification.kind == KIND_SNAPSHOT:
            from .snapshot import CampaignSnapshot

            self.fold_snapshot(CampaignSnapshot.from_dict(notification.payload))
        self.watermark = notification.id

    def load(self, store) -> "Projection":
        """Restore the persisted watermark + state (no-op if never saved)."""
        watermark, state = store.get_projection(self.name)
        if state is not None:
            self.watermark = watermark
            self.restore_state(state)
        return self

    def save(self, store) -> None:
        store.set_projection(self.name, self.watermark, self.state_dict())

    def apply(self, store, save: bool = True) -> int:
        """Fold every notification newer than the watermark.

        Returns (and remembers in ``last_fold_count``) how many
        notifications were consumed; with ``save`` the advanced state
        persists back into the store.
        """
        fresh = store.select(start=self.watermark + 1)
        for notification in fresh:
            self.fold(notification)
        self.last_fold_count = len(fresh)
        if save and fresh:
            self.save(store)
        return len(fresh)

    def rebuild(self, store, save: bool = False) -> int:
        """Drop all state and re-fold the whole log from notification 1."""
        self.watermark = 0
        self.reset_state()
        return self.apply(store, save=save)


# ---------------------------------------------------------------------------
# Shared response pooling (mirrors campaign.results.merged_response_summary)
# ---------------------------------------------------------------------------


def _new_pool() -> Dict[str, object]:
    """Accumulator mirroring ``merged_response_summary`` fold-by-fold.

    ``raw`` concatenates raw samples while every folded record is
    raw-carrying (or empty); the first digest-only record flips the group
    onto the digest path permanently (``raw`` becomes None), exactly the
    branch the batch helper takes over a full record list.  ``digest``
    accumulates in record order on both paths so the digest-path result
    is bit-identical to a batch merge.
    """
    return {"raw": [], "digest": ResponseDigest().to_dict()}


def _pool_fold(pool: Dict[str, object], record) -> None:
    digest = ResponseDigest.from_dict(pool["digest"])  # type: ignore[arg-type]
    if record.response_times_ms:
        digest.extend(record.response_times_ms)
    else:
        own = record.digest()
        if own is not None:
            digest.merge(own)
    pool["digest"] = digest.to_dict()
    if pool["raw"] is not None:
        if record.response_digest and not record.response_times_ms:
            pool["raw"] = None  # digest-only record: exact pooling is off
        else:
            pool["raw"] = list(pool["raw"]) + list(record.response_times_ms)


def _pool_stats(pool: Dict[str, object]):
    """The pooled summary object (exact stats or merged digest)."""
    if pool["raw"] is not None:
        from ..metrics.response import ResponseStats  # lazy: avoids a cycle

        stats = ResponseStats()
        stats.extend(pool["raw"])  # type: ignore[arg-type]
        return stats
    return ResponseDigest.from_dict(pool["digest"])  # type: ignore[arg-type]


# ---------------------------------------------------------------------------
# Campaign summary
# ---------------------------------------------------------------------------


class RecordSummaryProjection(Projection):
    """The ``summarize_records`` table as an incremental projection."""

    name = "summary"

    def reset_state(self) -> None:
        self._groups: Dict[str, Dict[str, object]] = {}
        self._scenarios: List[str] = []
        self._failed = 0

    def state_dict(self) -> Dict[str, object]:
        return {
            "groups": self._groups,
            "scenarios": self._scenarios,
            "failed": self._failed,
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        self._groups = dict(state["groups"])  # type: ignore[arg-type]
        self._scenarios = list(state["scenarios"])  # type: ignore[arg-type]
        self._failed = int(state["failed"])  # type: ignore[arg-type]

    def fold_record(self, record) -> None:
        if getattr(record, "failed", False):
            self._failed += 1
            return
        if record.scenario not in self._scenarios:
            self._scenarios.append(record.scenario)
        key = json.dumps([record.condition, record.system])
        group = self._groups.get(key)
        if group is None:
            group = self._groups[key] = {
                "runs": 0,
                "makespan_sum": 0.0,
                "pr_count": 0.0,
                "pr_blocked": 0.0,
                "pool": _new_pool(),
            }
        group["runs"] = int(group["runs"]) + 1
        group["makespan_sum"] = float(group["makespan_sum"]) + record.makespan_ms
        group["pr_count"] = float(group["pr_count"]) + record.counters.get(
            "pr_count", 0
        )
        group["pr_blocked"] = float(group["pr_blocked"]) + record.counters.get(
            "pr_blocked", 0
        )
        _pool_fold(group["pool"], record)  # type: ignore[arg-type]

    def rows(self) -> List[List[object]]:
        """The table rows, sorted by (condition, system) like the batch."""
        rows = []
        for key in sorted(self._groups, key=lambda k: tuple(json.loads(k))):
            condition, system = json.loads(key)
            group = self._groups[key]
            pooled = _pool_stats(group["pool"])  # type: ignore[arg-type]
            has_samples = pooled.count > 0
            runs = int(group["runs"])
            rows.append([
                condition,
                system,
                runs,
                pooled.mean() if has_samples else float("nan"),
                pooled.p95() if has_samples else float("nan"),
                pooled.p99() if has_samples else float("nan"),
                float(group["makespan_sum"]) / runs,
                int(float(group["pr_count"])),
                int(float(group["pr_blocked"])),
            ])
        return rows

    def render(self) -> str:
        """The summary table (bit-identical to batch ``summarize_records``)."""
        from ..metrics.report import format_table  # lazy: avoids a cycle

        if not self._groups:
            if self._failed:
                return f"no usable records ({self._failed} failed cell(s))"
            return "no records"
        return format_table(
            ["condition", "system", "runs", "mean (ms)", "p95 (ms)",
             "p99 (ms)", "makespan (ms)", "PRs", "blocked"],
            self.rows(),
            title=(
                f"Campaign records — {', '.join(self._scenarios)}"
                + (
                    f" ({self._failed} failed cell(s) excluded)"
                    if self._failed
                    else ""
                )
            ),
        )


# ---------------------------------------------------------------------------
# Fleet rollups
# ---------------------------------------------------------------------------


class FleetRollupProjection(Projection):
    """Per-shard + global fleet rollup aggregates as a projection."""

    name = "fleet-rollup"

    def reset_state(self) -> None:
        self._shards: Dict[str, Dict[str, object]] = {}
        self._overall = self._new_group()

    @staticmethod
    def _new_group() -> Dict[str, object]:
        return {
            "runs": 0,
            "n_apps": 0,
            "makespan_sum": 0.0,
            "pr_count": 0.0,
            "elapsed_sum": 0.0,
            "fabric_weighted": 0.0,
            "pool": _new_pool(),
        }

    def state_dict(self) -> Dict[str, object]:
        return {"shards": self._shards, "overall": self._overall}

    def restore_state(self, state: Dict[str, object]) -> None:
        self._shards = dict(state["shards"])  # type: ignore[arg-type]
        self._overall = dict(state["overall"])  # type: ignore[arg-type]

    @staticmethod
    def _fold_group(group: Dict[str, object], record) -> None:
        group["runs"] = int(group["runs"]) + 1
        group["n_apps"] = int(group["n_apps"]) + record.n_apps
        group["makespan_sum"] = float(group["makespan_sum"]) + record.makespan_ms
        group["pr_count"] = float(group["pr_count"]) + record.counters.get(
            "pr_count", 0
        )
        elapsed = record.utilization.get("elapsed_ms", 0.0)
        group["elapsed_sum"] = float(group["elapsed_sum"]) + elapsed
        group["fabric_weighted"] = (
            float(group["fabric_weighted"])
            + record.utilization.get("fabric_lut", 0.0) * elapsed
        )
        _pool_fold(group["pool"], record)  # type: ignore[arg-type]

    def fold_record(self, record) -> None:
        key = str(record.shard)
        group = self._shards.get(key)
        if group is None:
            group = self._shards[key] = self._new_group()
        self._fold_group(group, record)
        self._fold_group(self._overall, record)

    def _rollup(self, shard: int, group: Dict[str, object]):
        from ..fleet.fleet import ShardRollup  # lazy: avoids a cycle

        stats = _pool_stats(group["pool"])  # type: ignore[arg-type]
        has_samples = stats.count > 0
        runs = int(group["runs"])
        elapsed = float(group["elapsed_sum"])
        fabric_lut = (
            float(group["fabric_weighted"]) / elapsed if elapsed > 0 else 0.0
        )
        return ShardRollup(
            shard=shard,
            runs=runs,
            n_apps=int(group["n_apps"]),
            mean_ms=stats.mean() if has_samples else 0.0,
            p95_ms=stats.p95() if has_samples else 0.0,
            p99_ms=stats.p99() if has_samples else 0.0,
            mean_makespan_ms=(
                float(group["makespan_sum"]) / runs if runs else 0.0
            ),
            pr_count=int(float(group["pr_count"])),
            fabric_lut=fabric_lut,
        )

    def render_rollups(self) -> Tuple[List, Optional[object]]:
        """``(per_shard, overall)`` :class:`ShardRollup` aggregates."""
        per_shard = [
            self._rollup(int(key), self._shards[key])
            for key in sorted(self._shards, key=int)
        ]
        overall = (
            self._rollup(-1, self._overall)
            if int(self._overall["runs"])
            else None
        )
        return per_shard, overall


# ---------------------------------------------------------------------------
# Figure reductions
# ---------------------------------------------------------------------------


class FigureProjection(Projection):
    """Fig. 5 reductions + Fig. 6 relative tails from per-record entries.

    State is one compact entry per record (identity fields for the
    pairing validations plus the three response scalars the figures
    consume) — O(#cells), never O(#requests) — grouped condition-first
    then system in first-appearance order, mirroring
    ``Fig5Result.from_records``.
    """

    name = "figures"

    def reset_state(self) -> None:
        self._conditions: Dict[str, Dict[str, List[Dict[str, object]]]] = {}

    def state_dict(self) -> Dict[str, object]:
        return {"conditions": self._conditions}

    def restore_state(self, state: Dict[str, object]) -> None:
        self._conditions = dict(state["conditions"])  # type: ignore[arg-type]

    def fold_record(self, record) -> None:
        systems = self._conditions.setdefault(record.condition, {})
        entries = systems.setdefault(record.system, [])
        if record.response_times_ms:
            from ..metrics.response import ResponseStats

            responses: object = ResponseStats()
            responses.extend(record.response_times_ms)  # type: ignore[attr-defined]
        else:
            responses = record.response_summary()
        has_samples = responses.count > 0
        try:
            mean = record.mean_response_ms()
        except ValueError:
            mean = None
        entries.append({
            "scenario": record.scenario,
            "seed": record.seed,
            "seq": record.sequence_index,
            "n_apps": record.n_apps,
            "fingerprint": record.fingerprint,
            "mean": mean,
            "p95": responses.percentile(95.0) if has_samples else None,
            "p99": responses.percentile(99.0) if has_samples else None,
        })

    @staticmethod
    def _sorted(entries: List[Dict[str, object]]) -> List[Dict[str, object]]:
        return sorted(entries, key=lambda e: (e["seed"], e["seq"]))

    def _mean_of(self, system: str, entry: Dict[str, object]) -> float:
        if entry["mean"] is None:
            raise ValueError(
                f"record {entry['scenario']}/{system} has no samples"
            )
        return float(entry["mean"])  # type: ignore[arg-type]

    def render_fig5(
        self, baseline: str = "Baseline"
    ) -> Dict[str, Dict[str, float]]:
        """Per-condition reductions, mirroring ``reductions_from_records``."""
        reductions: Dict[str, Dict[str, float]] = {}
        for label, systems in self._conditions.items():
            grouped = {
                system: self._sorted(entries)
                for system, entries in systems.items()
            }
            if baseline not in grouped:
                raise KeyError(
                    f"no {baseline!r} records to normalize against; have: "
                    f"{', '.join(grouped) or 'none'}"
                )
            fingerprints = {
                e["fingerprint"] for runs in grouped.values() for e in runs
            }
            if len(fingerprints) > 1:
                raise ValueError(
                    f"records mix {len(fingerprints)} parameter fingerprints "
                    f"({', '.join(sorted(fingerprints))}); refusing to "
                    "aggregate (was the results file appended to by "
                    "incompatible campaigns?)"
                )
            for system, runs in grouped.items():
                keys = [(e["seed"], e["seq"]) for e in runs]
                if len(set(keys)) != len(keys):
                    raise ValueError(
                        f"{system} has duplicate (seed, sequence) cells; "
                        "pairing would be ambiguous — aggregate one campaign "
                        "at a time"
                    )
            baseline_runs = grouped[baseline]
            column: Dict[str, float] = {}
            for system, runs in grouped.items():
                if len(runs) != len(baseline_runs):
                    raise ValueError(
                        f"{system} has {len(runs)} records but {baseline} "
                        f"has {len(baseline_runs)}; cannot pair sequences"
                    )
                ratios = []
                for base, run in zip(baseline_runs, runs):
                    mismatched = [
                        name
                        for name, field in (
                            ("seed", "seed"),
                            ("sequence_index", "seq"),
                            ("n_apps", "n_apps"),
                            ("fingerprint", "fingerprint"),
                        )
                        if base[field] != run[field]
                    ]
                    if mismatched:
                        raise ValueError(
                            f"cannot pair {system} with {baseline}: records "
                            f"disagree on {', '.join(mismatched)} (was the "
                            "results file appended to by incompatible "
                            "campaigns?)"
                        )
                    ratios.append(
                        self._mean_of(baseline, base) / self._mean_of(system, run)
                    )
                column[system] = sum(ratios) / len(ratios)
            reductions[label] = column
        return reductions

    def render_fig6(
        self, baseline: str = "Baseline"
    ) -> Dict[str, Dict[str, float]]:
        """Relative P95/P99 tails, mirroring ``fig6_from_records``."""
        from ..experiments.fig6 import TAIL_CONDITIONS

        # from_records computes every condition's reductions before the
        # tails; run the same validations here so failure modes match.
        self.render_fig5(baseline=baseline)
        relative_tails: Dict[str, Dict[str, float]] = {}
        for condition in TAIL_CONDITIONS:
            label = condition.label
            if label not in self._conditions:
                continue
            matrix = {
                system: self._sorted(entries)
                for system, entries in self._conditions[label].items()
            }
            baseline_runs = matrix[baseline]
            for key, tag in (("p95", "95"), ("p99", "99")):
                column: Dict[str, float] = {}
                for system, runs in matrix.items():
                    ratios = []
                    for base, run in zip(baseline_runs, runs):
                        if run[key] is None or base[key] is None:
                            # The batch path would hit percentile() on an
                            # empty summary; raise its exact message.
                            raise ValueError("no response samples recorded")
                        ratios.append(float(run[key]) / float(base[key]))  # type: ignore[arg-type]
                    column[system] = sum(ratios) / len(ratios)
                relative_tails[f"{label}-{tag}"] = column
        return relative_tails


# ---------------------------------------------------------------------------
# Telemetry counters over event notifications
# ---------------------------------------------------------------------------


class TelemetryCounterProjection(Projection):
    """Streaming-aggregation counters over *event* notifications.

    The same fold :func:`repro.telemetry.replay.replay_aggregation` runs
    over a JSONL event log, applied to events that flowed through the
    notification log instead — so one store answers "what happened"
    without re-reading the per-cell event files.
    """

    name = "telemetry"

    def reset_state(self) -> None:
        from ..telemetry.sinks import StreamingAggregationSink

        self._sink = StreamingAggregationSink()

    def state_dict(self) -> Dict[str, object]:
        sink = self._sink
        state = {
            slot: getattr(sink, slot)
            for slot in sink.__slots__
            if slot not in ("kinds", "digest")
        }
        state["digest"] = sink.digest.to_dict()
        return state

    def restore_state(self, state: Dict[str, object]) -> None:
        self.reset_state()
        for slot, value in state.items():
            if slot == "digest":
                self._sink.digest = ResponseDigest.from_dict(value)  # type: ignore[arg-type]
            else:
                setattr(self._sink, slot, value)

    def fold_event(self, event) -> None:
        self._sink.handle(event)

    def counters(self) -> Dict[str, float]:
        return self._sink.counters()

    @property
    def digest(self) -> ResponseDigest:
        return self._sink.digest


# ---------------------------------------------------------------------------
# The projection registry + the rebuild oracle
# ---------------------------------------------------------------------------


def default_projections() -> List[Projection]:
    """Fresh instances of every built-in projection."""
    return [
        RecordSummaryProjection(),
        FleetRollupProjection(),
        FigureProjection(),
        TelemetryCounterProjection(),
    ]


def update_projections(store, projections: Optional[List[Projection]] = None) -> Dict[str, int]:
    """Catch every (given or built-in) projection up to the log head.

    Each projection restores its persisted watermark, folds only the
    newer notifications, and saves.  Returns ``{name: folded}``.
    """
    folded: Dict[str, int] = {}
    for projection in projections if projections is not None else default_projections():
        projection.load(store)
        folded[projection.name] = projection.apply(store, save=True)
    return folded


def verify_store_projections(store) -> List[str]:
    """Oracle-check every projection against its own full rebuild.

    For each built-in projection: restore the persisted incremental
    state, catch it up to the log head, rebuild a sibling from
    notification 1, and demand identical watermark and state.  Returns
    human-readable divergence strings (empty = all equal).
    """
    divergences: List[str] = []
    for projection in default_projections():
        incremental = type(projection)()
        incremental.load(store)
        incremental.apply(store, save=False)
        full = type(projection)()
        full.rebuild(store)
        if incremental.watermark != full.watermark:
            divergences.append(
                f"{projection.name}: incremental watermark "
                f"{incremental.watermark} != rebuilt {full.watermark}"
            )
        if incremental.state_dict() != full.state_dict():
            divergences.append(
                f"{projection.name}: incremental state diverges from a "
                "full rebuild (stale or corrupted persisted projection?)"
            )
    return divergences


__all__ = [
    "FigureProjection",
    "FleetRollupProjection",
    "Projection",
    "RecordSummaryProjection",
    "TelemetryCounterProjection",
    "default_projections",
    "update_projections",
    "verify_store_projections",
]
