"""Notifications: the globally ordered unit of the durable event store.

Everything the store persists — campaign :class:`~repro.campaign.results
.RunRecord` rows, typed telemetry events, periodic campaign snapshots —
flows through one monotonically numbered *notification log* (the
recorder/notification-log split of classic event-sourcing systems).  A
:class:`Notification` is a ``(id, kind, payload)`` triple: ``id`` is
assigned by the recorder at append time and is dense and strictly
increasing, so any consumer can resume from a watermark with
``select(start, limit)`` and never re-read what it already folded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

#: A persisted campaign run record (payload = ``RunRecord.to_dict()``).
KIND_RECORD = "record"
#: A typed telemetry event (payload = ``TelemetryEvent.to_dict()``).
KIND_EVENT = "event"
#: A periodic campaign snapshot (payload = ``CampaignSnapshot.to_dict()``).
KIND_SNAPSHOT = "snapshot"

#: The closed set of notification kinds a recorder will accept.
NOTIFICATION_KINDS = (KIND_RECORD, KIND_EVENT, KIND_SNAPSHOT)


@dataclass(frozen=True)
class Notification:
    """One globally ordered entry of the notification log."""

    id: int
    kind: str
    payload: Dict[str, object]

    def __post_init__(self) -> None:
        if self.kind not in NOTIFICATION_KINDS:
            raise ValueError(
                f"unknown notification kind {self.kind!r}; "
                f"known: {', '.join(NOTIFICATION_KINDS)}"
            )


class NotificationLog:
    """The ordered read surface over a recorder.

    ``select(start, limit)`` returns notifications with ``id >= start``
    in id order — the only read primitive projections and resume need.
    A thin view object (rather than the recorder itself) so consumers
    that should only *read* never see the append surface.
    """

    def __init__(self, recorder) -> None:
        self._recorder = recorder

    def select(
        self, start: int = 1, limit: Optional[int] = None
    ) -> List[Notification]:
        """Notifications with ``id >= start``, oldest first."""
        return self._recorder.select(start=start, limit=limit)

    def max_id(self) -> int:
        """The id of the newest notification (0 when empty)."""
        return self._recorder.max_id()

    def counts(self) -> Dict[str, int]:
        """Notification counts per kind."""
        return self._recorder.counts()

    def __iter__(self) -> Iterable[Notification]:
        return iter(self.select())


__all__ = [
    "KIND_EVENT",
    "KIND_RECORD",
    "KIND_SNAPSHOT",
    "NOTIFICATION_KINDS",
    "Notification",
    "NotificationLog",
]
