"""Durable event store: recorders, notification log, snapshots, projections.

The persistence spine of the repo (PR 9): every campaign record, telemetry
event and periodic snapshot flows through one monotonically numbered
notification log behind a pluggable :class:`EventRecorder` —
single-file SQLite (:class:`SqliteRecorder`) or the legacy campaign JSONL
format (:class:`JsonlRecorder`, bit-compatible with existing
``results/*.jsonl`` files).  On top of the log: ``--resume`` via
:class:`CampaignSnapshot` checkpoints (:mod:`repro.store.resume`) and
reports as watermark-tracked incremental projections
(:mod:`repro.store.projections`).
"""

from .campaign_store import (
    CampaignStore,
    RECORDER_BACKENDS,
    as_campaign_store,
    open_store,
)
from .notification import (
    KIND_EVENT,
    KIND_RECORD,
    KIND_SNAPSHOT,
    NOTIFICATION_KINDS,
    Notification,
    NotificationLog,
)
from .projections import (
    FigureProjection,
    FleetRollupProjection,
    Projection,
    RecordSummaryProjection,
    TelemetryCounterProjection,
    default_projections,
    update_projections,
    verify_store_projections,
)
from .recorder import (
    EventRecorder,
    JsonlRecorder,
    SqliteRecorder,
    is_sqlite_path,
)
from .resume import (
    DEFAULT_SNAPSHOT_EVERY,
    ExecutionOutcome,
    execute_with_store,
)
from .snapshot import CampaignSnapshot, SNAPSHOT_SCHEMA, cell_key, cell_spec

__all__ = [
    "CampaignSnapshot",
    "CampaignStore",
    "DEFAULT_SNAPSHOT_EVERY",
    "EventRecorder",
    "ExecutionOutcome",
    "FigureProjection",
    "FleetRollupProjection",
    "JsonlRecorder",
    "KIND_EVENT",
    "KIND_RECORD",
    "KIND_SNAPSHOT",
    "NOTIFICATION_KINDS",
    "Notification",
    "NotificationLog",
    "Projection",
    "RECORDER_BACKENDS",
    "RecordSummaryProjection",
    "SNAPSHOT_SCHEMA",
    "SqliteRecorder",
    "TelemetryCounterProjection",
    "as_campaign_store",
    "cell_key",
    "cell_spec",
    "default_projections",
    "execute_with_store",
    "is_sqlite_path",
    "open_store",
    "update_projections",
    "verify_store_projections",
]
