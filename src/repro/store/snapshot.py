"""Campaign snapshots: the periodic run-state checkpoints resume uses.

After every N completed cells the orchestrator records a
:class:`CampaignSnapshot` notification: the keys of every completed cell,
the merged :class:`~repro.telemetry.digest.ResponseDigest` over their
responses, and the RNG-free specs of the covered cells.  ``--resume``
reads the latest snapshot plus any record notifications past its
watermark, skips the finished cells, and continues — the resumed run's
records and rollups are bit-identical to an uninterrupted one because
cells are deterministic and independent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

#: Bumped whenever the snapshot payload shape changes incompatibly.
SNAPSHOT_SCHEMA = 1


def cell_key(cell) -> str:
    """The stable identity of one campaign cell within its campaign.

    ``(scenario, system, sequence_index, seed, shard)`` uniquely names a
    cell in every campaign enumeration (fleet cells vary seed × shard;
    registry campaigns vary system × sequence × seed), and every
    persisted record carries the same five fields — so completed work is
    matched to pending cells without touching arrivals or RNG state.
    """
    return (
        f"{cell.scenario}|{cell.system}|seq{cell.sequence_index}"
        f"|seed{cell.seed}|shard{cell.shard}"
    )


def cell_spec(cell) -> Dict[str, object]:
    """An RNG-free, JSON-ready description of one cell (no arrivals)."""
    spec: Dict[str, object] = {
        "scenario": cell.scenario,
        "system": cell.system,
        "sequence_index": cell.sequence_index,
        "seed": cell.seed,
        "shard": cell.shard,
        "kernel": getattr(cell, "kernel", "default"),
    }
    workload = getattr(cell, "workload", None)
    if workload is not None:
        spec["n_apps"] = workload.n_apps
    arrivals = getattr(cell, "arrivals", None)
    if arrivals is not None:
        spec["n_apps"] = len(arrivals)
    return spec


@dataclass
class CampaignSnapshot:
    """One periodic checkpoint of a running campaign."""

    #: Keys of every cell completed so far, in completion order.
    completed: Tuple[str, ...]
    #: Merged response digest over every completed cell
    #: (``ResponseDigest.to_dict()``; empty dict when no responses yet).
    digest: Dict[str, object] = field(default_factory=dict)
    #: RNG-free specs of the completed cells (diagnostics / audit).
    cells: Tuple[Dict[str, object], ...] = ()
    #: Newest notification id this snapshot covers: resume reads record
    #: notifications with ``id > covered_id`` to catch the tail the next
    #: snapshot never summarized.
    covered_id: int = 0
    schema: int = SNAPSHOT_SCHEMA

    def __post_init__(self) -> None:
        self.completed = tuple(self.completed)
        self.cells = tuple(dict(c) for c in self.cells)

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": self.schema,
            "completed": list(self.completed),
            "digest": dict(self.digest),
            "cells": [dict(c) for c in self.cells],
            "covered_id": self.covered_id,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "CampaignSnapshot":
        schema = payload.get("schema", SNAPSHOT_SCHEMA)
        if schema != SNAPSHOT_SCHEMA:
            raise ValueError(
                f"snapshot schema {schema} not supported "
                f"(expected {SNAPSHOT_SCHEMA})"
            )
        return cls(
            completed=tuple(payload.get("completed", ())),  # type: ignore[arg-type]
            digest=dict(payload.get("digest", {})),  # type: ignore[arg-type]
            cells=tuple(payload.get("cells", ())),  # type: ignore[arg-type]
            covered_id=int(payload.get("covered_id", 0)),  # type: ignore[arg-type]
        )


__all__ = ["CampaignSnapshot", "SNAPSHOT_SCHEMA", "cell_key", "cell_spec"]
