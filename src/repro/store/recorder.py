"""Durable event recorders: the pluggable persistence behind the store.

An :class:`EventRecorder` owns one notification log — globally ordered,
monotonically numbered, append-only — plus a small projection-state table
(per-projection watermark + folded state).  Two production adapters:

* :class:`SqliteRecorder` — a single-file SQLite database in WAL mode.
  Batch appends are one transaction, so a killed writer leaves a clean
  prefix at transaction granularity: either the whole batch is visible
  after reopen or none of it is, never a torn record.
* :class:`JsonlRecorder` — wraps today's on-disk campaign results format.
  Record notifications live in the plain results JSONL file (existing
  ``results/*.jsonl`` files keep loading bit-identically and bootstrap
  into a log on first open); non-record notifications and the global
  ordering live in a ``.nlog`` sidecar, projection state in a
  ``.proj.json`` sidecar.  The results file is always written first, so
  a crash between the two files self-heals on the next open.

Recorders assume a single writer per store (the campaign orchestrator);
readers are free to open the same store concurrently.
"""

from __future__ import annotations

import json
import os
import sqlite3
from abc import ABC, abstractmethod
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

from .notification import (
    KIND_RECORD,
    NOTIFICATION_KINDS,
    Notification,
)

#: File suffixes recognized as SQLite stores without sniffing content.
SQLITE_SUFFIXES = (".sqlite", ".sqlite3", ".db")
#: The 16-byte magic prefix of every SQLite database file.
SQLITE_MAGIC = b"SQLite format 3\x00"


def is_sqlite_path(path: Union[str, Path]) -> bool:
    """True when ``path`` names an (existing or intended) SQLite store."""
    path = Path(path)
    if path.suffix.lower() in SQLITE_SUFFIXES:
        return True
    try:
        with path.open("rb") as handle:
            return handle.read(len(SQLITE_MAGIC)) == SQLITE_MAGIC
    except OSError:
        return False


class EventRecorder(ABC):
    """Append-only notification log + projection-state persistence."""

    #: Human-readable backend tag ("sqlite" / "jsonl").
    backend = "?"
    path: Path

    @abstractmethod
    def append(
        self, entries: Iterable[Tuple[str, Dict[str, object]]]
    ) -> List[int]:
        """Durably append ``(kind, payload)`` entries as one atomic batch.

        Returns the assigned notification ids, in entry order.  Ids are
        dense and strictly increasing across the log's whole lifetime.
        """

    @abstractmethod
    def select(
        self, start: int = 1, limit: Optional[int] = None
    ) -> List[Notification]:
        """Notifications with ``id >= start``, oldest first."""

    @abstractmethod
    def max_id(self) -> int:
        """The newest notification id (0 when the log is empty)."""

    @abstractmethod
    def counts(self) -> Dict[str, int]:
        """Notification counts per kind."""

    @abstractmethod
    def get_projection(
        self, name: str
    ) -> Tuple[int, Optional[Dict[str, object]]]:
        """A projection's persisted ``(watermark, state)`` (``(0, None)``
        when it has never been saved)."""

    @abstractmethod
    def set_projection(
        self, name: str, watermark: int, state: Dict[str, object]
    ) -> None:
        """Persist a projection's watermark and folded state."""

    def close(self) -> None:  # pragma: no cover - trivial default
        """Release any underlying handles (idempotent)."""

    # -- context manager sugar -------------------------------------------
    def __enter__(self) -> "EventRecorder":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @staticmethod
    def _check_kind(kind: str) -> None:
        if kind not in NOTIFICATION_KINDS:
            raise ValueError(
                f"unknown notification kind {kind!r}; "
                f"known: {', '.join(NOTIFICATION_KINDS)}"
            )


class SqliteRecorder(EventRecorder):
    """Single-file SQLite notification log (WAL mode, transactional)."""

    backend = "sqlite"

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        #: Parity with the JSONL results store: SQLite cannot tear lines.
        self.skipped_lines = 0
        self._conn = sqlite3.connect(str(self.path), isolation_level=None)
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS notifications ("
            " id INTEGER PRIMARY KEY AUTOINCREMENT,"
            " kind TEXT NOT NULL,"
            " payload TEXT NOT NULL)"
        )
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS projections ("
            " name TEXT PRIMARY KEY,"
            " watermark INTEGER NOT NULL,"
            " state TEXT NOT NULL)"
        )

    def append(
        self, entries: Iterable[Tuple[str, Dict[str, object]]]
    ) -> List[int]:
        rows = []
        for kind, payload in entries:
            self._check_kind(kind)
            rows.append((kind, json.dumps(payload, sort_keys=True)))
        if not rows:
            return []
        cur = self._conn.cursor()
        cur.execute("BEGIN IMMEDIATE")
        try:
            # One batched statement per append: the transaction already
            # held the write lock, so ids stay dense and the batch lands
            # (or rolls back) as a unit.  AUTOINCREMENT guarantees the
            # new ids follow the pre-insert maximum.
            row = cur.execute(
                "SELECT COALESCE(MAX(id), 0) FROM notifications"
            ).fetchone()
            first = int(row[0]) + 1
            cur.executemany(
                "INSERT INTO notifications (kind, payload) VALUES (?, ?)",
                rows,
            )
            cur.execute("COMMIT")
        except BaseException:
            cur.execute("ROLLBACK")
            raise
        return list(range(first, first + len(rows)))

    def select(
        self, start: int = 1, limit: Optional[int] = None
    ) -> List[Notification]:
        sql = (
            "SELECT id, kind, payload FROM notifications "
            "WHERE id >= ? ORDER BY id"
        )
        args: Tuple = (start,)
        if limit is not None:
            sql += " LIMIT ?"
            args = (start, limit)
        return [
            Notification(id=row[0], kind=row[1], payload=json.loads(row[2]))
            for row in self._conn.execute(sql, args)
        ]

    def max_id(self) -> int:
        row = self._conn.execute(
            "SELECT COALESCE(MAX(id), 0) FROM notifications"
        ).fetchone()
        return int(row[0])

    def counts(self) -> Dict[str, int]:
        return {
            row[0]: row[1]
            for row in self._conn.execute(
                "SELECT kind, COUNT(*) FROM notifications "
                "GROUP BY kind ORDER BY kind"
            )
        }

    def get_projection(
        self, name: str
    ) -> Tuple[int, Optional[Dict[str, object]]]:
        row = self._conn.execute(
            "SELECT watermark, state FROM projections WHERE name = ?", (name,)
        ).fetchone()
        if row is None:
            return 0, None
        return int(row[0]), json.loads(row[1])

    def set_projection(
        self, name: str, watermark: int, state: Dict[str, object]
    ) -> None:
        self._conn.execute(
            "INSERT INTO projections (name, watermark, state) "
            "VALUES (?, ?, ?) ON CONFLICT(name) DO UPDATE SET "
            "watermark = excluded.watermark, state = excluded.state",
            (name, watermark, json.dumps(state, sort_keys=True)),
        )

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None  # type: ignore[assignment]


class JsonlRecorder(EventRecorder):
    """Notification log wrapping the plain campaign results JSONL format.

    The results file at ``path`` stays byte-for-byte what
    :class:`~repro.campaign.results.ResultsStore` writes — an existing
    file opens as a log whose record notifications are its lines, in
    order.  The global ordering (and every non-record notification) lives
    in ``<path>.nlog``: one JSON line per notification, record entries as
    ``{"id": N, "kind": "record", "ref": R}`` references into the results
    file, other kinds carrying their payload inline.
    """

    backend = "jsonl"

    def __init__(self, path: Union[str, Path]) -> None:
        from ..campaign.results import ResultsStore  # lazy: avoids a cycle

        self.path = Path(path)
        self._results = ResultsStore(self.path)
        self._log_path = self.path.with_name(self.path.name + ".nlog")
        self._proj_path = self.path.with_name(self.path.name + ".proj.json")
        #: Writer-side bookkeeping (record count / newest id), refreshed
        #: from disk by every ``_sync`` and advanced in memory by
        #: ``append`` — the single-writer contract makes that exact, and
        #: it keeps a campaign's Nth chunk append from re-parsing the
        #: N-1 chunks already on disk.
        self._n_records = 0
        self._max_id = 0
        self._sync()

    # -- internal helpers ------------------------------------------------
    @property
    def skipped_lines(self) -> int:
        """Truncated lines the most recent record load skipped."""
        return self._results.skipped_lines

    def _load_log(self) -> List[Dict[str, object]]:
        """The sidecar's entries (tolerating a truncated final line)."""
        from ..telemetry.replay import iter_jsonl_payloads

        if not self._log_path.exists():
            return []
        entries: List[Dict[str, object]] = []
        with self._log_path.open("r", encoding="utf-8") as handle:
            for _line_no, payload in iter_jsonl_payloads(
                handle, self._log_path, what="notification",
                on_skip=lambda _no: None,
            ):
                entries.append(payload)
        return entries

    def _sync(self) -> None:
        """Reconcile the sidecar with the results file.

        Records are always written to the results file *first*, so after
        a crash the sidecar can only be behind: any record line not yet
        referenced gets a reference appended (which is also how a legacy
        results file bootstraps into a log on first open).
        """
        n_records = len(self._records()) if self.path.exists() else 0
        entries = self._load_log()
        referenced = sum(1 for e in entries if e.get("kind") == KIND_RECORD)
        if referenced > n_records:
            raise ValueError(
                f"{self._log_path}: references {referenced} records but "
                f"{self.path} holds {n_records} — the results file was "
                "truncated outside the store; rebuild the log by deleting "
                f"{self._log_path.name}"
            )
        max_id = int(entries[-1]["id"]) if entries else 0
        if referenced < n_records:
            next_id = max_id + 1
            healed = [
                {"id": next_id + i, "kind": KIND_RECORD, "ref": referenced + i}
                for i in range(n_records - referenced)
            ]
            self._append_log_lines(healed)
            max_id = next_id + len(healed) - 1
        self._n_records = n_records
        self._max_id = max_id

    def _records(self):
        return self._results.load()

    def _append_log_lines(self, entries: List[Dict[str, object]]) -> None:
        self._log_path.parent.mkdir(parents=True, exist_ok=True)
        with self._log_path.open("a", encoding="utf-8") as handle:
            for entry in entries:
                handle.write(json.dumps(entry, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    # -- EventRecorder surface -------------------------------------------
    def append(
        self, entries: Iterable[Tuple[str, Dict[str, object]]]
    ) -> List[int]:
        from ..campaign.results import RunRecord  # lazy: avoids a cycle

        entries = list(entries)
        for kind, _payload in entries:
            self._check_kind(kind)
        if not entries:
            return []
        # No re-sync here: the open-time ``_sync`` reconciled the files,
        # and this instance is the store's single writer, so the cached
        # count and id are authoritative — re-parsing both files on every
        # chunk append would make a campaign's persistence O(N^2).
        next_id = self._max_id + 1
        n_existing = self._n_records
        records = [
            RunRecord.from_dict(payload)
            for kind, payload in entries
            if kind == KIND_RECORD
        ]
        # Results file first: a crash after this point self-heals into
        # exactly these notifications on the next open.
        if records:
            self._results.extend(records)
        lines: List[Dict[str, object]] = []
        ids: List[int] = []
        ref = n_existing
        for kind, payload in entries:
            entry: Dict[str, object] = {"id": next_id, "kind": kind}
            if kind == KIND_RECORD:
                entry["ref"] = ref
                ref += 1
            else:
                entry["payload"] = payload
            lines.append(entry)
            ids.append(next_id)
            next_id += 1
        self._append_log_lines(lines)
        self._n_records = ref
        self._max_id = ids[-1]
        return ids

    def select(
        self, start: int = 1, limit: Optional[int] = None
    ) -> List[Notification]:
        self._sync()
        entries = self._load_log()
        records = None
        out: List[Notification] = []
        for entry in entries:
            nid = int(entry["id"])
            if nid < start:
                continue
            kind = str(entry["kind"])
            if kind == KIND_RECORD:
                if records is None:
                    records = self._records()
                payload = records[int(entry["ref"])].to_dict()
            else:
                payload = dict(entry["payload"])  # type: ignore[arg-type]
            out.append(Notification(id=nid, kind=kind, payload=payload))
            if limit is not None and len(out) >= limit:
                break
        return out

    def max_id(self) -> int:
        entries = self._load_log()
        return int(entries[-1]["id"]) if entries else 0

    def counts(self) -> Dict[str, int]:
        self._sync()
        tally: Dict[str, int] = {}
        for entry in self._load_log():
            kind = str(entry["kind"])
            tally[kind] = tally.get(kind, 0) + 1
        return dict(sorted(tally.items()))

    def _load_projections(self) -> Dict[str, Dict[str, object]]:
        if not self._proj_path.exists():
            return {}
        with self._proj_path.open("r", encoding="utf-8") as handle:
            return json.load(handle).get("projections", {})

    def get_projection(
        self, name: str
    ) -> Tuple[int, Optional[Dict[str, object]]]:
        entry = self._load_projections().get(name)
        if entry is None:
            return 0, None
        return int(entry["watermark"]), dict(entry["state"])  # type: ignore[arg-type]

    def set_projection(
        self, name: str, watermark: int, state: Dict[str, object]
    ) -> None:
        projections = self._load_projections()
        projections[name] = {"watermark": watermark, "state": state}
        tmp = self._proj_path.with_name(self._proj_path.name + ".tmp")
        self._proj_path.parent.mkdir(parents=True, exist_ok=True)
        with tmp.open("w", encoding="utf-8") as handle:
            json.dump({"projections": projections}, handle, sort_keys=True)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self._proj_path)

    def close(self) -> None:
        pass  # every operation opens and closes its own handles


__all__ = [
    "EventRecorder",
    "JsonlRecorder",
    "SQLITE_MAGIC",
    "SQLITE_SUFFIXES",
    "SqliteRecorder",
    "is_sqlite_path",
]
