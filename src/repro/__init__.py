"""VersaSlot reproduction: fine-grained FPGA sharing with Big.Little slots.

A complete, simulation-based reproduction of *VersaSlot: Efficient
Fine-grained FPGA Sharing with Big.Little Slots and Live Migration in FPGA
Cluster* (DAC 2025).  See DESIGN.md for the system inventory and
EXPERIMENTS.md for paper-vs-measured results.

Public API tour::

    from repro import Engine, FPGABoard, BoardConfig
    from repro.core import VersaSlotBigLittle
    from repro.workloads import WorkloadGenerator, Condition, drive

    engine = Engine()
    board = FPGABoard(engine, BoardConfig.BIG_LITTLE)
    scheduler = VersaSlotBigLittle(board)
    arrivals = WorkloadGenerator(seed=1).sequence(Condition.STANDARD)
    engine.process(drive(engine, scheduler, arrivals))
    engine.run()

Campaigns (registry-driven scenarios, parallel execution, persisted
results) live in :mod:`repro.campaign`::

    from repro.campaign import CampaignRunner, Scenario
    from repro.workloads import Condition, WorkloadSpec

    scenario = Scenario(
        name="sweep",
        workload=WorkloadSpec(Condition.STRESS, sequence_count=4),
    )
    records = CampaignRunner(jobs=4, store="results/sweep.jsonl").run(scenario)
"""

from .config import DEFAULT_PARAMETERS, ParameterSweep, SystemParameters
from .fpga import BoardConfig, FPGABoard, ResourceVector, SlotKind
from .sim import Engine

__version__ = "1.0.0"

__all__ = [
    "BoardConfig",
    "DEFAULT_PARAMETERS",
    "Engine",
    "FPGABoard",
    "ParameterSweep",
    "ResourceVector",
    "SlotKind",
    "SystemParameters",
    "__version__",
]
