"""Central timing and sizing parameters for the simulated FPGA cluster.

Every constant that maps a hardware quantity (bitstream size, PCAP
bandwidth, link speed) onto simulated milliseconds lives here, so an
experiment can be re-parameterized without touching model code.  Defaults
follow the ZCU216 / ZynqMP numbers cited in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict


@dataclass(frozen=True)
class SystemParameters:
    """All tunable platform constants (times in ms, sizes in MB)."""

    # --- PCAP / bitstreams -------------------------------------------------
    #: PCAP sustained configuration bandwidth (MB/s); ZynqMP TRM figure.
    pcap_bandwidth_mbps: float = 145.0
    #: Partial bitstream for one Little slot (an eighth of the fabric plus
    #: per-region configuration frames).
    little_bitstream_mb: float = 14.5
    #: Partial bitstream for one Big slot (twice the fabric of a Little).
    big_bitstream_mb: float = 29.0
    #: Full-fabric bitstream used by the exclusive (Baseline) scheduler.
    full_bitstream_mb: float = 47.0
    #: System restart cost on a full reconfiguration (the paper: a full
    #: bitstream reload "leads to system downtime and a full restart").
    full_restart_overhead_ms: float = 800.0

    # --- Slot layout -------------------------------------------------------
    #: Big.Little configuration: number of Big slots.
    big_little_big_slots: int = 2
    #: Big.Little configuration: number of Little slots.
    big_little_little_slots: int = 4
    #: Only.Little configuration: number of Little slots.
    only_little_slots: int = 8
    #: Big slot capacity relative to a Little slot (paper: exactly 2x).
    big_slot_scale: float = 2.0

    # --- Data movement -----------------------------------------------------
    #: Per-item AXI/DDR round-trip between pipeline stages in *separate*
    #: slots.  A 3-in-1 bundle streams internally on-chip and only pays
    #: this at its boundaries (Fig. 3: B*data/B*output cross DDR once per
    #: bundle, not once per member task).
    inter_slot_transfer_ms: float = 15.0

    # --- Hypervisor costs --------------------------------------------------
    #: CPU time for one scheduler pass (allocation + dispatch bookkeeping).
    scheduler_action_ms: float = 0.02
    #: CPU time to launch one batch-item execution (buffer setup + doorbell).
    launch_overhead_ms: float = 0.05
    #: CPU time to post an asynchronous PR request to the PR server.
    pr_request_post_ms: float = 0.005

    # --- Reliability ---------------------------------------------------------
    #: Probability that a partial bitstream load fails DFX verification and
    #: must be retried (fault-injection knob; 0 = ideal hardware).
    pr_failure_rate: float = 0.0
    #: Retries before a load is reported as a hard error.
    pr_max_retries: int = 3

    # --- Cluster / migration -----------------------------------------------
    #: Aurora 64B/66B effective payload bandwidth over zSFP+ (MB/s).
    aurora_bandwidth_mbps: float = 1250.0
    #: Fixed per-migration control-plane cost (channel setup, handshakes).
    migration_fixed_ms: float = 0.5
    #: Application context + buffer footprint moved per app (MB).
    app_context_mb: float = 0.08

    # --- Switch-loop (Schmitt trigger) --------------------------------------
    #: D_switch threshold Only.Little -> Big.Little (paper Fig. 8).
    switch_threshold_up: float = 0.1
    #: D_switch threshold Big.Little -> Only.Little (paper Fig. 8).
    switch_threshold_down: float = 0.0125
    #: Candidate-queue updates between D_switch recalculations (paper: 4).
    dswitch_update_period: int = 4

    # -----------------------------------------------------------------------
    def pr_time_ms(self, size_mb: float) -> float:
        """PCAP load latency for a bitstream of ``size_mb`` megabytes."""
        if size_mb <= 0:
            raise ValueError(f"bitstream size must be positive, got {size_mb}")
        return size_mb / self.pcap_bandwidth_mbps * 1000.0

    @property
    def little_pr_ms(self) -> float:
        """PR latency of a Little-slot bitstream."""
        return self.pr_time_ms(self.little_bitstream_mb)

    @property
    def big_pr_ms(self) -> float:
        """PR latency of a Big-slot bitstream."""
        return self.pr_time_ms(self.big_bitstream_mb)

    @property
    def full_pr_ms(self) -> float:
        """Full-fabric reconfiguration latency (Baseline scheduler)."""
        return self.pr_time_ms(self.full_bitstream_mb)

    def transfer_time_ms(self, size_mb: float) -> float:
        """Aurora/DMA transfer latency for ``size_mb`` megabytes."""
        if size_mb < 0:
            raise ValueError(f"transfer size must be non-negative, got {size_mb}")
        return size_mb / self.aurora_bandwidth_mbps * 1000.0

    def with_overrides(self, **overrides: float) -> "SystemParameters":
        """A copy with the given fields replaced."""
        return replace(self, **overrides)


#: Shared default parameter set.
DEFAULT_PARAMETERS = SystemParameters()


@dataclass
class ParameterSweep:
    """A named family of parameter variations for ablation benches."""

    base: SystemParameters = DEFAULT_PARAMETERS
    variations: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def add(self, name: str, **overrides: float) -> None:
        """Register a variation by name."""
        self.variations[name] = overrides

    def materialize(self) -> Dict[str, SystemParameters]:
        """Instantiate every registered variation."""
        out = {"default": self.base}
        for name, overrides in self.variations.items():
            out[name] = self.base.with_overrides(**overrides)
        return out
