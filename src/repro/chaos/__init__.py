"""Deterministic fault injection for the fleet serving layer.

Everything here is pure data + pure functions: fault *schedules* describe
what breaks and when, and the supervised control plane in
:mod:`repro.fleet.control` turns them into rerouted/shed serving plans.
Nothing in this package touches wall clocks, ``hash()`` or global state —
a schedule replays bit-identically in any process.
"""

from .faults import FAULT_KINDS, FaultSchedule, FaultSpec, sample_fault_schedule

__all__ = [
    "FAULT_KINDS",
    "FaultSchedule",
    "FaultSpec",
    "sample_fault_schedule",
]
