"""Deterministic fault injection: typed fault specs and schedules.

A :class:`FaultSchedule` is the full failure story of one fleet run — a
time-ordered tuple of :class:`FaultSpec` events (shard kill, recovery
window, capacity degradation, latency skew, graceful drain).  Schedules
are *data*, never behaviour: the control plane
(:mod:`repro.fleet.control`) folds them into its sim-clock event queue,
so the same ``(scenario, seed, schedule)`` triple yields bit-identical
serving plans in every process, on every kernel.

Two ways to obtain a schedule:

* **declared** — committed scenarios carry explicit ``FaultSpec`` tuples
  (:data:`repro.fleet.scenarios`), so a failure story is reviewable in
  the scenario definition;
* **sampled** — :func:`sample_fault_schedule` derives a schedule from a
  string-seeded RNG, a pure function of ``(seed, n_shards, span)``; the
  fault-aware fuzzer uses it to sweep failure schedules the same way it
  sweeps workloads.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

#: Recognized fault kinds, in schema order.
FAULT_KINDS = ("kill", "recover", "degrade", "slow", "drain")

#: Fraction of the arrival span faults are sampled inside (keeps a
#: sampled kill from landing after the stream already drained).
_SAMPLE_WINDOW = (0.1, 0.85)


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault, applied to one shard at one sim time.

    ``kind`` semantics:

    * ``kill`` — the shard dies abruptly at ``at_ms``; in-flight requests
      are rerouted by the supervisor.
    * ``recover`` — the shard becomes *recoverable* at ``at_ms``; the
      supervisor's next restart probe at or after this time succeeds.
    * ``degrade`` — capacity factor drops to ``factor`` for
      ``duration_ms`` (slower estimated service, smaller contribution to
      the shed-threshold capacity sum).
    * ``slow`` — estimated service time is multiplied by ``factor`` for
      ``duration_ms`` (latency skew without a capacity loss).
    * ``drain`` — graceful removal: no new admissions, in-flight requests
      finish, then the shard goes DEAD (recoverable via ``recover``).
    """

    kind: str
    at_ms: float
    shard: int
    factor: float = 1.0
    duration_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; "
                f"available: {', '.join(FAULT_KINDS)}"
            )
        if self.at_ms < 0:
            raise ValueError(f"fault time {self.at_ms} must be >= 0")
        if self.shard < 0:
            raise ValueError(f"fault shard {self.shard} must be >= 0")
        if self.kind == "degrade" and not 0.0 < self.factor <= 1.0:
            raise ValueError(
                f"degrade factor {self.factor} outside (0, 1]"
            )
        if self.kind == "slow" and self.factor < 1.0:
            raise ValueError(f"slow factor {self.factor} must be >= 1")
        if self.kind in ("degrade", "slow") and self.duration_ms <= 0:
            raise ValueError(
                f"{self.kind} fault needs a positive duration_ms"
            )

    # ------------------------------------------------------------------
    def to_tuple(self) -> Tuple[str, float, int, float, float]:
        """Flat tuple form (the fuzz-case / repro-file representation)."""
        return (self.kind, self.at_ms, self.shard, self.factor, self.duration_ms)

    @classmethod
    def from_tuple(cls, payload: Sequence[object]) -> "FaultSpec":
        if len(payload) != 5:
            raise ValueError(
                f"fault tuple needs 5 fields (kind, at_ms, shard, factor, "
                f"duration_ms), got {len(payload)}"
            )
        kind, at_ms, shard, factor, duration_ms = payload
        return cls(
            kind=str(kind), at_ms=float(at_ms), shard=int(shard),
            factor=float(factor), duration_ms=float(duration_ms),
        )

    def describe(self) -> str:
        extra = ""
        if self.kind == "degrade":
            extra = f" x{self.factor:g} for {self.duration_ms:g}ms"
        elif self.kind == "slow":
            extra = f" x{self.factor:g} for {self.duration_ms:g}ms"
        return f"{self.kind}@{self.at_ms:g}ms shard{self.shard}{extra}"


class FaultSchedule:
    """An immutable, time-ordered collection of :class:`FaultSpec` s.

    Hashable (usable as an ``lru_cache`` key next to the fleet workload)
    and validating: events sort by ``(at_ms, insertion order)``, and every
    ``recover`` must name a shard some earlier ``kill``/``drain`` touched —
    a recovery for a shard that never goes down is a schedule typo.
    """

    __slots__ = ("faults",)

    def __init__(self, faults: Iterable[FaultSpec] = ()) -> None:
        specs = []
        for fault in faults:
            if not isinstance(fault, FaultSpec):
                fault = FaultSpec.from_tuple(fault)
            specs.append(fault)
        specs.sort(key=lambda f: f.at_ms)
        object.__setattr__(self, "faults", tuple(specs))
        downable = {f.shard for f in self.faults if f.kind in ("kill", "drain")}
        for fault in self.faults:
            if fault.kind == "recover" and fault.shard not in downable:
                raise ValueError(
                    f"recover for shard {fault.shard} but no kill/drain "
                    "ever touches it"
                )

    def __setattr__(self, name, value):  # pragma: no cover - immutability
        raise AttributeError("FaultSchedule is immutable")

    def __bool__(self) -> bool:
        return bool(self.faults)

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self):
        return iter(self.faults)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FaultSchedule) and other.faults == self.faults

    def __hash__(self) -> int:
        return hash(self.faults)

    def __repr__(self) -> str:
        return f"FaultSchedule({', '.join(f.describe() for f in self.faults)})"

    # ------------------------------------------------------------------
    def shards_touched(self) -> Tuple[int, ...]:
        return tuple(sorted({fault.shard for fault in self.faults}))

    def recover_times(self) -> Dict[int, List[float]]:
        """Per-shard recoverable-at times, ascending (supervisor input)."""
        out: Dict[int, List[float]] = {}
        for fault in self.faults:
            if fault.kind == "recover":
                out.setdefault(fault.shard, []).append(fault.at_ms)
        return out

    def to_tuples(self) -> Tuple[Tuple[str, float, int, float, float], ...]:
        return tuple(fault.to_tuple() for fault in self.faults)

    @classmethod
    def from_tuples(
        cls, payload: Iterable[Sequence[object]]
    ) -> "FaultSchedule":
        return cls(FaultSpec.from_tuple(item) for item in payload)

    def validate_for(self, n_shards: int) -> None:
        """Reject faults naming shards outside ``[0, n_shards)``."""
        for fault in self.faults:
            if fault.shard >= n_shards:
                raise ValueError(
                    f"fault {fault.describe()} names shard {fault.shard} "
                    f"outside [0, {n_shards})"
                )


def sample_fault_schedule(
    seed: object,
    n_shards: int,
    span_ms: float,
    max_faults: int = 3,
) -> FaultSchedule:
    """A random schedule, pure in ``(seed, n_shards, span_ms, max_faults)``.

    Faults land inside the middle of the arrival span; every ``kill`` or
    ``drain`` independently gets a recovery with probability 0.7 (so both
    the restart path and the permanently-dead path stay exercised).  At
    most one fault sequence per shard keeps sampled schedules readable.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    rng = random.Random(f"chaos/{seed}/{n_shards}/{max_faults}")
    lo, hi = _SAMPLE_WINDOW
    count = rng.randint(1, max(1, max_faults))
    shards = list(range(n_shards))
    rng.shuffle(shards)
    specs: List[FaultSpec] = []
    for shard in shards[:count]:
        at_ms = round(span_ms * rng.uniform(lo, hi), 3)
        kind = rng.choice(("kill", "kill", "drain", "degrade", "slow"))
        if kind in ("kill", "drain"):
            specs.append(FaultSpec(kind=kind, at_ms=at_ms, shard=shard))
            if rng.random() < 0.7:
                recover_at = round(
                    at_ms + span_ms * rng.uniform(0.05, 0.3), 3
                )
                specs.append(
                    FaultSpec(kind="recover", at_ms=recover_at, shard=shard)
                )
        elif kind == "degrade":
            specs.append(FaultSpec(
                kind=kind, at_ms=at_ms, shard=shard,
                factor=round(rng.uniform(0.2, 0.8), 3),
                duration_ms=round(span_ms * rng.uniform(0.1, 0.4), 3),
            ))
        else:  # slow
            specs.append(FaultSpec(
                kind=kind, at_ms=at_ms, shard=shard,
                factor=round(rng.uniform(1.5, 4.0), 3),
                duration_ms=round(span_ms * rng.uniform(0.1, 0.4), 3),
            ))
    return FaultSchedule(specs)


__all__ = [
    "FAULT_KINDS",
    "FaultSchedule",
    "FaultSpec",
    "sample_fault_schedule",
]
