"""First-come-first-served spatio-temporal sharing.

The FCFS comparator from the paper's evaluation: a naive DPR-sharing
system.  Each application reserves one slot per task at admission and
*keeps the whole reservation until it completes* — there is no
pipeline-aware sizing (Nimblock's ILP) and no early release of slots whose
stage already finished its batch.  Admission is strict arrival order, so a
wide application at the head of the queue blocks everything behind it
(convoy effect).  Scheduling and PR share a single CPU core, so bitstream
loads also block task launches.
"""

from __future__ import annotations

from ..config import DEFAULT_PARAMETERS, SystemParameters
from ..fpga.board import FPGABoard
from ..sim import NULL_TRACER, Tracer
from .base import OnBoardScheduler


class FCFSScheduler(OnBoardScheduler):
    """Static one-slot-per-task reservations in strict arrival order."""

    __slots__ = ()

    name = "FCFS"

    #: Naive cross-slot streaming: coarse double-buffered chunks via DDR.
    pipeline_chunk_items = 2

    def __init__(
        self,
        board: FPGABoard,
        params: SystemParameters = DEFAULT_PARAMETERS,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        super().__init__(board, params, dual_core=False, preemption=False, tracer=tracer)

    def allocate(self) -> None:
        active = self.dispatch_order()
        free = self.little_total - sum(
            app.alloc_little for app in active if app.alloc_little > 0
        )
        for app in active:
            if app.alloc_little > 0:
                # Sticky reservation: grow toward the full want if slots
                # freed up, never shrink before completion.
                want = min(app.inst.task_count, self.little_total)
                if app.alloc_little < want and free > 0:
                    growth = min(want - app.alloc_little, free)
                    app.alloc_little += growth
                    free -= growth
                continue
            if free <= 0:
                break  # strict FIFO: no skipping past the queue head
            grant = min(app.inst.task_count, self.little_total, free)
            app.alloc_little = grant
            free -= grant
            if app in self.c_wait:
                self.c_wait.remove(app)
                self.s_little.append(app)
