"""Baseline scheduling systems and the shared on-board runtime."""

from .base import OnBoardScheduler, PRPlan, ResponseRecord, SchedulerStats
from .baseline import BaselineScheduler
from .fcfs import FCFSScheduler
from .ilp import allocate_slots_milp, optimal_big_slots, optimal_little_slots
from .nimblock import NimblockScheduler
from .round_robin import RoundRobinScheduler
from .runtime import AppRun, BundleRun, TaskRun

__all__ = [
    "AppRun",
    "BaselineScheduler",
    "BundleRun",
    "FCFSScheduler",
    "NimblockScheduler",
    "OnBoardScheduler",
    "PRPlan",
    "ResponseRecord",
    "RoundRobinScheduler",
    "SchedulerStats",
    "TaskRun",
    "allocate_slots_milp",
    "optimal_big_slots",
    "optimal_little_slots",
]
