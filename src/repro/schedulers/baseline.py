"""Exclusive temporal multiplexing (the traditional Baseline).

The classic cloud FPGA model (AWS F1 / Catapult style): one application
owns the whole fabric at a time, context switches are full-fabric
reconfigurations, and arrivals queue FIFO.  With all pipeline stages
resident simultaneously the application itself runs fast — the cost is the
huge reconfiguration and the total lack of sharing, which is what Fig. 5
normalizes against.
"""

from __future__ import annotations

from typing import Generator, List, Optional

from ..apps.application import ApplicationInstance, pipelined_exec_time
from ..config import DEFAULT_PARAMETERS, SystemParameters
from ..fpga.board import FPGABoard
from ..sim import NULL_TRACER, Store, Tracer
from ..telemetry.bus import TelemetryBus
from ..telemetry.events import ArrivalEvent, CompletionEvent
from .base import SchedulerStats


class BaselineScheduler:
    """Whole-FPGA FIFO multiplexing via full reconfiguration."""

    __slots__ = ("board", "engine", "params", "tracer", "stats", "_queue",
                 "_pending", "telemetry")

    name = "Baseline"

    def __init__(
        self,
        board: FPGABoard,
        params: SystemParameters = DEFAULT_PARAMETERS,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        self.board = board
        self.engine = board.engine
        self.params = params
        self.tracer = tracer
        self.stats = SchedulerStats()
        self._queue: Store = Store(self.engine, name=f"{board.name}-baseline")
        self._pending: List[ApplicationInstance] = []
        self.telemetry: Optional[TelemetryBus] = None
        self.engine.process(self._serve_loop())

    def submit(self, inst: ApplicationInstance) -> None:
        """Queue an application for exclusive execution."""
        self.stats.arrivals += 1
        telemetry = self.telemetry
        if telemetry is not None:
            telemetry.emit(
                ArrivalEvent(self.engine.now, inst.name, inst.app_id, inst.batch_size)
            )
        self._pending.append(inst)
        self.tracer.emit(self.engine.now, "submit", app=inst.name, batch=inst.batch_size)
        self._queue.put(inst)

    @property
    def is_drained(self) -> bool:
        return not self._pending

    def _serve_loop(self) -> Generator:
        core = self.board.ps.scheduler_core
        while True:
            inst = yield self._queue.get()
            # Full-fabric reconfiguration: the PCAP suspends the core.
            request = core.acquire()
            yield request
            bitstream = self.board.sd_card.full_fabric(inst.spec.name)
            try:
                yield from self.board.pcap.load(bitstream)
                # Full reconfiguration interrupts the whole system: the
                # shell and PS-side state must be brought up again.
                yield self.params.full_restart_overhead_ms
            finally:
                core.release()
            self.stats.note_pr(0.0)
            # All stages resident: ideal item-level pipeline across the app.
            duration = pipelined_exec_time(inst.spec.tasks, inst.batch_size)
            yield duration
            now = self.engine.now
            self.stats.note_completion(inst, now)
            telemetry = self.telemetry
            if telemetry is not None:
                telemetry.emit(
                    CompletionEvent(
                        now, inst.name, inst.app_id,
                        inst.arrival_time, now - inst.arrival_time,
                    )
                )
            self._pending.remove(inst)
            self.tracer.emit(
                now, "finish", app=inst.name,
                response_ms=now - inst.arrival_time,
            )
