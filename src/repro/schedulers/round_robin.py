"""Round-robin spatio-temporal sharing (the Coyote-style comparator).

Like FCFS this is a naive DPR-sharing system — reservations are static
(held until the application completes, no pipeline-aware sizing or early
slot release) — but slots are handed out breadth-first, one per waiting
application per round from a rotating cursor, so no single wide
application can monopolize the fabric.  Single-core: PR blocks launches.
"""

from __future__ import annotations

from ..config import DEFAULT_PARAMETERS, SystemParameters
from ..fpga.board import FPGABoard
from ..sim import NULL_TRACER, Tracer
from .base import OnBoardScheduler
from .runtime import TaskRun


class RoundRobinScheduler(OnBoardScheduler):
    """Static reservations granted breadth-first, single-core.

    When more applications are live than slots, RR *time-slices*: every
    ``rotation_quantum_ms`` the longest-resident task is evicted so a
    waiting application gets its turn.  Each eviction costs a later
    reconfiguration — the PR churn that caps RR's gains in the paper.
    """

    __slots__ = ("_rotation", "_last_rotate_ms")

    name = "RR"

    #: Naive cross-slot streaming: coarse double-buffered chunks via DDR.
    pipeline_chunk_items = 2

    #: Time slice before a slot is rotated to a waiting application.
    rotation_quantum_ms = 3000.0

    def __init__(
        self,
        board: FPGABoard,
        params: SystemParameters = DEFAULT_PARAMETERS,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        super().__init__(board, params, dual_core=False, preemption=False, tracer=tracer)
        self._rotation = 0
        self._last_rotate_ms = -1e12

    def maybe_preempt(self) -> None:
        """Quantum-expiry rotation: evict one run for the waiting apps."""
        waiters = [app for app in self.active_apps() if app.alloc_little == 0]
        if not waiters:
            return
        if self.engine.now - self._last_rotate_ms < self.rotation_quantum_ms:
            return
        runs = [
            (app, run)
            for app in self.s_little
            for run in app.loaded.values()
            if isinstance(run, TaskRun) and not run.preempt_requested
        ]
        if not runs:
            return
        # Evict from the app holding the most slots; oldest app first.
        victim_app, victim_run = max(
            runs, key=lambda pair: (pair[0].used_little, -pair[0].inst.app_id)
        )
        victim_run.request_preempt()
        victim_app.alloc_little = max(0, victim_app.alloc_little - 1)
        self._last_rotate_ms = self.engine.now
        self.tracer.emit(
            self.engine.now, "rotate", app=victim_app.inst.name, task=victim_run.task.name
        )

    def allocate(self) -> None:
        active = self.dispatch_order()
        free = self.little_total - sum(app.alloc_little for app in active)
        if free <= 0 or not active:
            return
        # One slot per app per round, rotating the starting point; apps
        # whose reservation already covers every task are skipped.
        count = len(active)
        cursor = self._rotation % count
        stale = 0
        while free > 0 and stale < count:
            app = active[cursor % count]
            cursor += 1
            want = min(app.inst.task_count, self.little_total)
            if app.alloc_little < want:
                if app.alloc_little == 0 and app in self.c_wait:
                    self.c_wait.remove(app)
                    self.s_little.append(app)
                app.alloc_little += 1
                free -= 1
                stale = 0
            else:
                stale += 1
        self._rotation += 1
