"""Nimblock-style scheduling (the state-of-the-art comparator).

Nimblock (ISCA'23) allocates each application its ILP-derived optimal slot
count for pipeline execution, shares leftover slots dynamically, and
preempts long-running applications so arrivals are not starved.  Crucially
— and this is the weakness VersaSlot attacks — all scheduling and PR run on
a single CPU core, so every bitstream load suspends task launching, and
uniform Little slots keep PR frequency high.
"""

from __future__ import annotations

from ..config import DEFAULT_PARAMETERS, SystemParameters
from ..fpga.board import FPGABoard
from ..sim import NULL_TRACER, Tracer
from .base import OnBoardScheduler
from .ilp import optimal_little_slots


class NimblockScheduler(OnBoardScheduler):
    """ILP-optimal slot counts + leftover sharing + preemption, single-core."""

    __slots__ = ()

    name = "Nimblock"

    def __init__(
        self,
        board: FPGABoard,
        params: SystemParameters = DEFAULT_PARAMETERS,
        tracer: Tracer = NULL_TRACER,
        dual_core: bool = False,
    ) -> None:
        super().__init__(
            board,
            params,
            dual_core=dual_core,
            preemption=True,
            preemption_quantum_ms=1200.0,
            tracer=tracer,
        )

    def optimal_for(self, app) -> int:
        """O_L of one application (memoised ILP result)."""
        return optimal_little_slots(
            app.spec, app.batch, self.params.little_pr_ms, self.little_total
        )

    def allocate(self) -> None:
        order = self.dispatch_order()
        free = self.little_total
        # Primary: optimal slot count per app, oldest arrival first.
        for app in order:
            demand = app.used_little + app.little_payload_count()
            target = min(self.optimal_for(app), demand)
            grant = max(app.used_little, min(target, max(free, 0)))
            app.alloc_little = grant
            free -= grant
            self._update_queues(app)
        # Dynamic sharing: leftover slots go to apps that can use more.
        if free > 0:
            for app in order:
                demand = app.used_little + app.little_payload_count()
                extra = min(free, max(0, demand - app.alloc_little))
                if extra:
                    app.alloc_little += extra
                    free -= extra
                    self._update_queues(app)
                if free <= 0:
                    break

    def _update_queues(self, app) -> None:
        if app.alloc_little > 0 and app in self.c_wait:
            self.c_wait.remove(app)
            self.s_little.append(app)
