"""On-board runtime state: application runs, task runs and bundle runs.

This module holds the execution machinery shared by every spatio-temporal
scheduler (FCFS, RR, Nimblock, VersaSlot):

* :class:`AppRun` — per-application bookkeeping: item-level completion
  state, the pipeline dependency events, slot allocation and binding.
* :class:`TaskRun` — one task loaded in a Little slot; a process that walks
  the batch item by item, honouring the cross-slot pipeline dependency and
  the launch gate (every item launch needs the scheduler CPU core — the
  coupling behind the paper's *task execution blocking* problem).
* :class:`BundleRun` — one 3-in-1 task loaded in a Big slot, executing its
  three member tasks in parallel (internal pipeline) or serial mode.

Preemption is cooperative at batch-item boundaries, matching the paper:
the scheduler raises a flag and the run exits after the current item; its
progress persists in the :class:`AppRun` so a later reload resumes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Generator, List, Optional, Tuple, Union

from ..apps.application import ApplicationInstance, BundleSpec, TaskSpec
from ..fpga.resvec import ResourceVector
from ..fpga.slots import Slot, SlotOccupancy
from ..sim import Event, Interrupt

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .base import OnBoardScheduler

#: A loadable payload: a single task (Little slot) or a bundle (Big slot).
Payload = Union[TaskSpec, BundleSpec]


class AppRun:
    """Runtime state of one application on one board."""

    def __init__(self, scheduler: "OnBoardScheduler", inst: ApplicationInstance) -> None:
        self.scheduler = scheduler
        self.inst = inst
        self.spec = inst.spec
        self.batch = inst.batch_size
        #: Items completed per task, in strict item order.
        self.done_counts: List[int] = [0] * self.spec.task_count
        self._item_events: Dict[Tuple[int, int], Event] = {}
        #: Allocated slots (R_Ai in the paper).
        self.alloc_big = 0
        self.alloc_little = 0
        #: Slots currently committed (loaded or reconfiguring), U_Ai.
        self.used_big = 0
        self.used_little = 0
        #: True once bound to Big slots; such apps finish entirely there.
        self.in_big = False
        #: True once any PR for this app has been issued (isAppStarted).
        self.started = False
        #: Payload names currently being reconfigured.
        self.pending_pr: set = set()
        #: Loaded runs keyed by payload name.
        self.loaded: Dict[str, Union["TaskRun", "BundleRun"]] = {}
        self.finished = False
        self.finish_time: Optional[float] = None
        #: Set by live migration: runs should not be extended on this board.
        self.frozen = False

    # ------------------------------------------------------------------
    # Pipeline dependency plumbing
    # ------------------------------------------------------------------
    def item_done(self, task_index: int, item: int) -> bool:
        """True once item ``item`` of task ``task_index`` has completed."""
        return self.done_counts[task_index] > item

    def item_event(self, task_index: int, item: int) -> Event:
        """Event firing when item ``item`` of task ``task_index`` completes."""
        engine = self.scheduler.engine
        if self.item_done(task_index, item):
            event = engine.event()
            event.succeed()
            return event
        key = (task_index, item)
        if key not in self._item_events:
            self._item_events[key] = engine.event()
        return self._item_events[key]

    def mark_item_done(self, task_index: int, item: int) -> None:
        """Record completion of one batch item; items complete in order."""
        expected = self.done_counts[task_index]
        if item != expected:
            raise RuntimeError(
                f"{self.inst.name}: task {task_index} completed item {item}, "
                f"expected {expected}"
            )
        self.done_counts[task_index] += 1
        event = self._item_events.pop((task_index, item), None)
        if event is not None and not event.triggered:
            event.succeed()

    # ------------------------------------------------------------------
    # Progress queries used by the allocation/scheduling policies
    # ------------------------------------------------------------------
    def task_complete(self, task_index: int) -> bool:
        """True once a task finished its whole batch."""
        return self.done_counts[task_index] >= self.batch

    @property
    def all_done(self) -> bool:
        return all(count >= self.batch for count in self.done_counts)

    def unfinished_task_count(self) -> int:
        """N_TAi: tasks that still have unfinished items."""
        return sum(1 for count in self.done_counts if count < self.batch)

    def unfinished_bundle_count(self) -> int:
        """Bundles with at least one unfinished member task."""
        if not self.spec.can_bundle:
            return 0
        return sum(
            1
            for bundle in self.spec.bundles
            if any(not self.task_complete(i) for i in bundle.task_indices)
        )

    def next_little_payloads(self) -> List[TaskSpec]:
        """Tasks eligible for loading into Little slots, pipeline order.

        A task is eligible when it is incomplete, not loaded and not
        currently being reconfigured.  Order matters: lowest index first
        guarantees the pipeline can always make progress (see the
        deadlock-freedom argument in the tests).

        When a loaded run has a pending preemption, no task *after* it is
        eligible: its slot must go back to the preempted stage first, or
        the app fills its allocation with downstream stages that starve on
        the missing upstream (a livelock observed under Real-time load).
        """
        preempt_floor = min(
            (
                run.task.index
                for run in self.loaded.values()
                if isinstance(run, TaskRun) and run.preempt_requested
            ),
            default=None,
        )
        eligible = []
        for task in self.spec.tasks:
            if preempt_floor is not None and task.index > preempt_floor:
                break
            if self.task_complete(task.index):
                continue
            if task.name in self.loaded or task.name in self.pending_pr:
                continue
            eligible.append(task)
        return eligible

    def next_big_payloads(self) -> List[BundleSpec]:
        """Bundles eligible for loading into Big slots, pipeline order."""
        eligible = []
        for bundle in self.spec.bundles:
            if all(self.task_complete(i) for i in bundle.task_indices):
                continue
            if bundle.name in self.loaded or bundle.name in self.pending_pr:
                continue
            eligible.append(bundle)
        return eligible

    @property
    def used_slots(self) -> int:
        return self.used_big + self.used_little

    def __repr__(self) -> str:
        return (
            f"<AppRun {self.inst.name} done={self.done_counts} "
            f"R=({self.alloc_big},{self.alloc_little}) "
            f"U=({self.used_big},{self.used_little})>"
        )


class TaskRun:
    """A task loaded in a Little slot, executing its batch item by item."""

    def __init__(self, scheduler: "OnBoardScheduler", app_run: AppRun, task: TaskSpec, slot: Slot) -> None:
        self.scheduler = scheduler
        self.app_run = app_run
        self.task = task
        self.slot = slot
        self.preempt_requested = False
        self.items_this_load = 0
        self._waiting_dependency = False
        self.process = scheduler.engine.process(self._run())

    @property
    def payload_name(self) -> str:
        return self.task.name

    def request_preempt(self) -> None:
        """Ask the run to vacate its slot at the next item boundary.

        A run parked on an upstream dependency event would otherwise hold
        its slot until that event fires — which may be never, if the
        upstream stage itself needs this slot — so dependency waits are
        interrupted immediately.
        """
        self.preempt_requested = True
        if self._waiting_dependency and self.process.is_alive:
            self.process.interrupt("preempted")

    def _run(self) -> Generator:
        app = self.app_run
        engine = self.scheduler.engine
        k = self.task.index
        while app.done_counts[k] < app.batch:
            if self.preempt_requested:
                break
            item = app.done_counts[k]
            # Cross-slot dependency: item-level pipeline for pipeline-aware
            # systems; naive ones stream coarser chunks (or whole batches),
            # so their slots idle while upstream stages drain — the
            # under-utilization the paper attributes to uniform sharing.
            if not self.scheduler.item_pipelining:
                upstream_item = app.batch - 1
            else:
                chunk = self.scheduler.pipeline_chunk_items
                upstream_item = min(app.batch - 1, (item // chunk + 1) * chunk - 1)
            if k > 0 and not app.item_done(k - 1, upstream_item):
                self._waiting_dependency = True
                try:
                    yield app.item_event(k - 1, upstream_item)
                except Interrupt:
                    break
                finally:
                    self._waiting_dependency = False
                continue  # re-check preemption after a potentially long wait
            yield from self.scheduler.launch_gate(app)
            # Execution plus the per-item AXI/DDR hop into this slot.
            hop = self.scheduler.params.inter_slot_transfer_ms
            yield engine.timeout(self.task.exec_time_ms + hop)
            app.mark_item_done(k, item)
            self.items_this_load += 1
        self.scheduler.on_run_finished(self, preempted=self.preempt_requested)
        return self.items_this_load


class BundleRun:
    """A 3-in-1 bundle loaded in a Big slot.

    Execution mode is chosen at bundling time (Algorithm 2's online
    bundling) via the paper's criterion: serial when
    ``Tmax * (B + 2) > sum(T) * B``, else parallel.

    * **Parallel** — the three member tasks form an internal pipeline; the
      first item pays the fill time ``sum(T)``, each further item completes
      every ``Tmax``.  All three member tasks' items are published when the
      item leaves the bundle (downstream only consumes the last member).
    * **Serial** — members run one full batch after another.
    """

    def __init__(
        self,
        scheduler: "OnBoardScheduler",
        app_run: AppRun,
        bundle: BundleSpec,
        slot: Slot,
        serial: bool,
    ) -> None:
        self.scheduler = scheduler
        self.app_run = app_run
        self.bundle = bundle
        self.slot = slot
        self.serial = serial
        self.preempt_requested = False  # bundles are never preempted
        self.process = scheduler.engine.process(
            self._run_serial() if serial else self._run_parallel()
        )

    @property
    def payload_name(self) -> str:
        return self.bundle.name

    def _upstream_ready(self, item: int) -> Optional[Event]:
        """Dependency of the bundle's first member on the previous bundle."""
        first = self.bundle.task_indices[0]
        if first == 0 or self.app_run.item_done(first - 1, item):
            return None
        return self.app_run.item_event(first - 1, item)

    def _run_parallel(self) -> Generator:
        app = self.app_run
        engine = self.scheduler.engine
        times = app.spec.bundle_exec_times(self.bundle)
        # Internal stages stream on-chip: the steady-state rate is set by
        # the slowest member alone; the boundary DDR hop is paid once, in
        # the fill, and thereafter overlaps the slowest member.
        hop = self.scheduler.params.inter_slot_transfer_ms
        fill = sum(times) + hop
        t_max = max(times)
        first = self.bundle.task_indices[0]
        start_item = app.done_counts[first]
        for item in range(start_item, app.batch):
            waiting = self._upstream_ready(item)
            if waiting is not None:
                yield waiting
            yield from self.scheduler.launch_gate(app)
            yield engine.timeout(fill if item == start_item else t_max)
            for member in self.bundle.task_indices:
                app.mark_item_done(member, item)
        self.scheduler.on_run_finished(self, preempted=False)
        return app.batch - start_item

    def _run_serial(self) -> Generator:
        app = self.app_run
        engine = self.scheduler.engine
        completed = 0
        # Serial mode buffers whole batches between members, so each
        # member's items pay the DDR hop like separate slots would.
        hop = self.scheduler.params.inter_slot_transfer_ms
        for member in self.bundle.task_indices:
            exec_ms = app.spec.tasks[member].exec_time_ms + hop
            for item in range(app.done_counts[member], app.batch):
                if member == self.bundle.task_indices[0]:
                    waiting = self._upstream_ready(item)
                    if waiting is not None:
                        yield waiting
                yield from self.scheduler.launch_gate(app)
                yield engine.timeout(exec_ms)
                app.mark_item_done(member, item)
                completed += 1
        self.scheduler.on_run_finished(self, preempted=False)
        return completed


def occupancy_for(app_run: AppRun, payload: Payload, slot: Slot) -> SlotOccupancy:
    """Build the slot-occupancy record for a payload about to be installed."""
    if isinstance(payload, BundleSpec):
        # usage_big is a fraction of the Big slot; convert to absolute units.
        usage = ResourceVector(
            payload.usage_big.lut * slot.capacity.lut,
            payload.usage_big.ff * slot.capacity.ff,
        )
    else:
        usage = payload.usage
    return SlotOccupancy(
        payload_name=payload.name,
        app_id=app_run.inst.app_id,
        usage=usage,
    )
