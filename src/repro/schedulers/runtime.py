"""On-board runtime state: application runs, task runs and bundle runs.

This module holds the execution machinery shared by every spatio-temporal
scheduler (FCFS, RR, Nimblock, VersaSlot):

* :class:`AppRun` — per-application bookkeeping: item-level completion
  state, the pipeline dependency events, slot allocation and binding.
* :class:`TaskRun` — one task loaded in a Little slot; a process that walks
  the batch item by item, honouring the cross-slot pipeline dependency and
  the launch gate (every item launch needs the scheduler CPU core — the
  coupling behind the paper's *task execution blocking* problem).
* :class:`BundleRun` — one 3-in-1 task loaded in a Big slot, executing its
  three member tasks in parallel (internal pipeline) or serial mode.

Preemption is cooperative at batch-item boundaries, matching the paper:
the scheduler raises a flag and the run exits after the current item; its
progress persists in the :class:`AppRun` so a later reload resumes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Generator, List, Optional, Tuple, Union

from ..apps.application import BUNDLE_SIZE, ApplicationInstance, BundleSpec, TaskSpec
from ..fpga.resvec import ResourceVector
from ..fpga.slots import Slot, SlotOccupancy
from ..sim import Event, Interrupt
from ..sim.events import PENDING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .base import OnBoardScheduler

#: A loadable payload: a single task (Little slot) or a bundle (Big slot).
Payload = Union[TaskSpec, BundleSpec]

#: Numeric tolerance when deciding whether a wait counts as blocking.
#: Defined here (the bottom of the scheduler import graph) and re-exported
#: by ``schedulers.base``; the inlined launch gates below apply it.
BLOCK_EPSILON_MS = 1e-6


class AppRun:
    """Runtime state of one application on one board."""

    __slots__ = (
        "scheduler", "inst", "spec", "batch", "done_counts", "_item_events",
        "alloc_big", "alloc_little", "used_big", "used_little", "in_big",
        "started", "pending_pr", "loaded", "finished", "finish_time",
        "frozen", "_unfinished_tasks", "_bundle_members_left",
        "_unfinished_bundles",
    )

    def __init__(self, scheduler: "OnBoardScheduler", inst: ApplicationInstance) -> None:
        self.scheduler = scheduler
        self.inst = inst
        self.spec = inst.spec
        self.batch = inst.batch_size
        #: Items completed per task, in strict item order.
        self.done_counts: List[int] = [0] * self.spec.task_count
        #: Tasks whose batch is not yet complete, maintained incrementally
        #: by :meth:`mark_item_done` so allocation policies query progress
        #: in O(1) instead of rescanning ``done_counts``.  The per-bundle
        #: member countdown gives the same O(1) answer for bundles
        #: (Algorithm 1 queries both on every pass).
        self._unfinished_tasks = self.spec.task_count if self.batch > 0 else 0
        if self.spec.bundles and self.batch > 0:
            self._bundle_members_left = [
                len(bundle.task_indices) for bundle in self.spec.bundles
            ]
            self._unfinished_bundles = len(self.spec.bundles)
        else:
            self._bundle_members_left = None
            self._unfinished_bundles = 0
        #: Pipeline waiters, keyed task index -> {item -> event}.  The
        #: nested shape lets the (very hot) completion path probe by int
        #: instead of allocating a key tuple per member per item.
        self._item_events: Dict[int, Dict[int, Event]] = {}
        #: Allocated slots (R_Ai in the paper).
        self.alloc_big = 0
        self.alloc_little = 0
        #: Slots currently committed (loaded or reconfiguring), U_Ai.
        self.used_big = 0
        self.used_little = 0
        #: True once bound to Big slots; such apps finish entirely there.
        self.in_big = False
        #: True once any PR for this app has been issued (isAppStarted).
        self.started = False
        #: Payload names currently being reconfigured.
        self.pending_pr: set = set()
        #: Loaded runs keyed by payload name.
        self.loaded: Dict[str, Union["TaskRun", "BundleRun"]] = {}
        self.finished = False
        self.finish_time: Optional[float] = None
        #: Set by live migration: runs should not be extended on this board.
        self.frozen = False

    # ------------------------------------------------------------------
    # Pipeline dependency plumbing
    # ------------------------------------------------------------------
    def item_done(self, task_index: int, item: int) -> bool:
        """True once item ``item`` of task ``task_index`` has completed."""
        return self.done_counts[task_index] > item

    def item_event(self, task_index: int, item: int) -> Event:
        """Event firing when item ``item`` of task ``task_index`` completes."""
        engine = self.scheduler.engine
        if self.done_counts[task_index] > item:
            return Event(engine).succeed()
        task_events = self._item_events.get(task_index)
        if task_events is None:
            task_events = self._item_events[task_index] = {}
        event = task_events.get(item)
        if event is None:
            # Flattened Event(engine): pipeline stages wait on one of
            # these per batch item.
            event = Event.__new__(Event)
            event.engine = engine
            event.callbacks = []
            event._value = PENDING
            event._ok = True
            event._fast_process = None
            task_events[item] = event
        return event

    def mark_item_done(self, task_index: int, item: int) -> None:
        """Record completion of one batch item; items complete in order."""
        expected = self.done_counts[task_index]
        if item != expected:
            raise RuntimeError(
                f"{self.inst.name}: task {task_index} completed item {item}, "
                f"expected {expected}"
            )
        self.done_counts[task_index] = done = expected + 1
        if done == self.batch:
            self._unfinished_tasks -= 1
            left = self._bundle_members_left
            if left is not None:
                # Bundles tile the task list consecutively (validated by
                # the spec), so the bundle index is a plain division.
                bundle_index = task_index // BUNDLE_SIZE
                left[bundle_index] -= 1
                if left[bundle_index] == 0:
                    self._unfinished_bundles -= 1
        if self._item_events:  # skip the dict work when nobody waits
            task_events = self._item_events.get(task_index)
            if task_events:
                event = task_events.pop(item, None)
                if event is not None and not event.triggered:
                    event.succeed()

    def mark_bundle_item_done(self, members: Tuple[int, ...], item: int) -> None:
        """Record one batch item for every member of one bundle at once.

        Equivalent to calling :meth:`mark_item_done` for each member (the
        bundle publishes all members together), folded into a single call
        because it runs once per batch item of every Big-slot run.
        """
        done_counts = self.done_counts
        next_count = item + 1
        for member in members:
            if done_counts[member] != item:
                raise RuntimeError(
                    f"{self.inst.name}: task {member} completed item {item}, "
                    f"expected {done_counts[member]}"
                )
            done_counts[member] = next_count
        if next_count == self.batch:
            self._unfinished_tasks -= len(members)
            left = self._bundle_members_left
            if left is not None:
                bundle_index = members[0] // BUNDLE_SIZE
                left[bundle_index] -= len(members)
                if left[bundle_index] == 0:
                    self._unfinished_bundles -= 1
        item_events = self._item_events
        if item_events:
            for member in members:
                task_events = item_events.get(member)
                if task_events:
                    event = task_events.pop(item, None)
                    if event is not None and not event.triggered:
                        event.succeed()

    # ------------------------------------------------------------------
    # Progress queries used by the allocation/scheduling policies
    # ------------------------------------------------------------------
    def task_complete(self, task_index: int) -> bool:
        """True once a task finished its whole batch."""
        return self.done_counts[task_index] >= self.batch

    @property
    def all_done(self) -> bool:
        return self._unfinished_tasks == 0

    def unfinished_task_count(self) -> int:
        """N_TAi: tasks that still have unfinished items."""
        return self._unfinished_tasks

    def unfinished_bundle_count(self) -> int:
        """Bundles with at least one unfinished member task."""
        return self._unfinished_bundles

    def next_little_payloads(self) -> List[TaskSpec]:
        """Tasks eligible for loading into Little slots, pipeline order.

        A task is eligible when it is incomplete, not loaded and not
        currently being reconfigured.  Order matters: lowest index first
        guarantees the pipeline can always make progress (see the
        deadlock-freedom argument in the tests).

        When a loaded run has a pending preemption, no task *after* it is
        eligible: its slot must go back to the preempted stage first, or
        the app fills its allocation with downstream stages that starve on
        the missing upstream (a livelock observed under Real-time load).
        """
        preempt_floor = None
        for run in self.loaded.values():
            if isinstance(run, TaskRun) and run.preempt_requested:
                index = run.task.index
                if preempt_floor is None or index < preempt_floor:
                    preempt_floor = index
        eligible = []
        batch = self.batch
        done_counts = self.done_counts
        loaded = self.loaded
        pending_pr = self.pending_pr
        for task in self.spec.tasks:
            if preempt_floor is not None and task.index > preempt_floor:
                break
            if done_counts[task.index] >= batch:
                continue
            if task.name in loaded or task.name in pending_pr:
                continue
            eligible.append(task)
        return eligible

    def next_big_payloads(self) -> List[BundleSpec]:
        """Bundles eligible for loading into Big slots, pipeline order."""
        eligible = []
        left = self._bundle_members_left
        loaded = self.loaded
        pending_pr = self.pending_pr
        for bundle_index, bundle in enumerate(self.spec.bundles):
            if left is not None and left[bundle_index] == 0:
                continue
            if bundle.name in loaded or bundle.name in pending_pr:
                continue
            eligible.append(bundle)
        return eligible

    def first_little_payload(self) -> Optional[TaskSpec]:
        """First element of :meth:`next_little_payloads`, without the list.

        The planning loop only ever consumes the head of the eligibility
        list (lowest index first), so an early-exit scan avoids building
        and discarding a list per scheduler pass.  Keep the eligibility
        rules in sync with :meth:`next_little_payloads`.
        """
        preempt_floor = None
        for run in self.loaded.values():
            if isinstance(run, TaskRun) and run.preempt_requested:
                index = run.task.index
                if preempt_floor is None or index < preempt_floor:
                    preempt_floor = index
        batch = self.batch
        done_counts = self.done_counts
        loaded = self.loaded
        pending_pr = self.pending_pr
        for task in self.spec.tasks:
            if preempt_floor is not None and task.index > preempt_floor:
                return None
            if done_counts[task.index] >= batch:
                continue
            if task.name in loaded or task.name in pending_pr:
                continue
            return task
        return None

    def little_payload_count(self) -> int:
        """``len(next_little_payloads())`` without building the list.

        Nimblock's allocator queries demand twice per pass; a counting
        scan keeps that O(tasks) but allocation-free.  Keep the
        eligibility rules in sync with :meth:`next_little_payloads`.
        """
        preempt_floor = None
        for run in self.loaded.values():
            if isinstance(run, TaskRun) and run.preempt_requested:
                index = run.task.index
                if preempt_floor is None or index < preempt_floor:
                    preempt_floor = index
        count = 0
        batch = self.batch
        done_counts = self.done_counts
        loaded = self.loaded
        pending_pr = self.pending_pr
        for task in self.spec.tasks:
            if preempt_floor is not None and task.index > preempt_floor:
                break
            if done_counts[task.index] >= batch:
                continue
            if task.name in loaded or task.name in pending_pr:
                continue
            count += 1
        return count

    def first_big_payload(self) -> Optional[BundleSpec]:
        """First element of :meth:`next_big_payloads`, without the list."""
        left = self._bundle_members_left
        loaded = self.loaded
        pending_pr = self.pending_pr
        for bundle_index, bundle in enumerate(self.spec.bundles):
            if left is not None and left[bundle_index] == 0:
                continue
            if bundle.name in loaded or bundle.name in pending_pr:
                continue
            return bundle
        return None

    @property
    def used_slots(self) -> int:
        return self.used_big + self.used_little

    def __repr__(self) -> str:
        return (
            f"<AppRun {self.inst.name} done={self.done_counts} "
            f"R=({self.alloc_big},{self.alloc_little}) "
            f"U=({self.used_big},{self.used_little})>"
        )


class TaskRun:
    """A task loaded in a Little slot, executing its batch item by item."""

    __slots__ = ("scheduler", "app_run", "task", "slot", "preempt_requested",
                 "items_this_load", "_waiting_dependency", "process")

    def __init__(self, scheduler: "OnBoardScheduler", app_run: AppRun, task: TaskSpec, slot: Slot) -> None:
        self.scheduler = scheduler
        self.app_run = app_run
        self.task = task
        self.slot = slot
        self.preempt_requested = False
        self.items_this_load = 0
        self._waiting_dependency = False
        self.process = scheduler.engine.process(self._run())

    @property
    def payload_name(self) -> str:
        return self.task.name

    def request_preempt(self) -> None:
        """Ask the run to vacate its slot at the next item boundary.

        A run parked on an upstream dependency event would otherwise hold
        its slot until that event fires — which may be never, if the
        upstream stage itself needs this slot — so dependency waits are
        interrupted immediately.
        """
        self.preempt_requested = True
        if self._waiting_dependency and self.process.is_alive:
            self.process.interrupt("preempted")

    def _run(self) -> Generator:
        app = self.app_run
        scheduler = self.scheduler
        engine = scheduler.engine
        k = self.task.index
        batch = app.batch
        done_counts = app.done_counts
        # Loop invariants hoisted out of the per-item path: the item time
        # (execution plus the per-item AXI/DDR hop into this slot), the
        # pipelining granularity, and the dependency base.
        item_ms = self.task.exec_time_ms + scheduler.params.inter_slot_transfer_ms
        chunk = scheduler.pipeline_chunk_items if scheduler.item_pipelining else None
        item_level = chunk == 1
        last_item = batch - 1
        item_event = app.item_event
        mark_item_done = app.mark_item_done
        core = scheduler._core
        try_acquire = core.try_acquire
        release = core.release
        stats = scheduler.stats
        pr_items = scheduler.pr_queue._items
        launch_overhead = scheduler._launch_overhead_ms
        # Telemetry fast lane: when no sink wants launch events the local
        # is None and the per-item cost is a single identity test.
        telemetry = scheduler.telemetry
        if telemetry is not None and not telemetry.wants_launch:
            telemetry = None
        app_id = app.inst.app_id
        while done_counts[k] < batch:
            if self.preempt_requested:
                break
            item = done_counts[k]
            # Cross-slot dependency: item-level pipeline for pipeline-aware
            # systems; naive ones stream coarser chunks (or whole batches),
            # so their slots idle while upstream stages drain — the
            # under-utilization the paper attributes to uniform sharing.
            if item_level:
                upstream_item = item
            elif chunk is None:
                upstream_item = last_item
            else:
                upstream_item = min(last_item, (item // chunk + 1) * chunk - 1)
            if k > 0 and done_counts[k - 1] <= upstream_item:
                self._waiting_dependency = True
                try:
                    yield item_event(k - 1, upstream_item)
                except Interrupt:
                    break
                finally:
                    self._waiting_dependency = False
                continue  # re-check preemption after a potentially long wait
            # Inlined launch gate (keep in sync with
            # OnBoardScheduler.launch_gate — the canonical, documented
            # form): every item launch needs the scheduler core.  The
            # uncontended case grants in place — no request object, no
            # dispatch round-trip — and only the contended branch pays
            # for the PR-busy scan.
            request = try_acquire()
            if request is None:
                wait = 0.0
                blocked = False
            else:
                started = engine.now
                busy_app = scheduler._inflight_app
                pr_busy = busy_app is not None and busy_app is not app
                if not pr_busy and pr_items:
                    pr_busy = any(q.app_run is not app for q in pr_items)
                yield request
                wait = engine.now - started
                blocked = wait > BLOCK_EPSILON_MS and pr_busy
            stats.launches += 1
            stats.launch_wait_ms += wait
            if blocked:
                stats.launch_blocked += 1
                stats.window_blocked += 1
            if telemetry is not None:
                telemetry.emit_launch(engine.now, app_id, wait, blocked)
            try:
                yield launch_overhead
            finally:
                release()
            # ``sleep`` recycles the timeout object: the batch loop runs
            # allocation-free in steady state.
            yield item_ms
            mark_item_done(k, item)
            self.items_this_load += 1
        self.scheduler.on_run_finished(self, preempted=self.preempt_requested)
        return self.items_this_load


class BundleRun:
    """A 3-in-1 bundle loaded in a Big slot.

    Execution mode is chosen at bundling time (Algorithm 2's online
    bundling) via the paper's criterion: serial when
    ``Tmax * (B + 2) > sum(T) * B``, else parallel.

    * **Parallel** — the three member tasks form an internal pipeline; the
      first item pays the fill time ``sum(T)``, each further item completes
      every ``Tmax``.  All three member tasks' items are published when the
      item leaves the bundle (downstream only consumes the last member).
    * **Serial** — members run one full batch after another.
    """

    __slots__ = ("scheduler", "app_run", "bundle", "slot", "serial",
                 "preempt_requested", "process")

    def __init__(
        self,
        scheduler: "OnBoardScheduler",
        app_run: AppRun,
        bundle: BundleSpec,
        slot: Slot,
        serial: bool,
    ) -> None:
        self.scheduler = scheduler
        self.app_run = app_run
        self.bundle = bundle
        self.slot = slot
        self.serial = serial
        self.preempt_requested = False  # bundles are never preempted
        self.process = scheduler.engine.process(
            self._run_serial() if serial else self._run_parallel()
        )

    @property
    def payload_name(self) -> str:
        return self.bundle.name

    def _upstream_ready(self, item: int) -> Optional[Event]:
        """Dependency of the bundle's first member on the previous bundle."""
        first = self.bundle.task_indices[0]
        if first == 0 or self.app_run.item_done(first - 1, item):
            return None
        return self.app_run.item_event(first - 1, item)

    def _run_parallel(self) -> Generator:
        app = self.app_run
        scheduler = self.scheduler
        engine = scheduler.engine
        # Bundle payloads always come from ``spec.bundles`` (validated at
        # spec construction), so index the frozen time table directly
        # instead of re-validating membership per load.
        times = app.spec._bundle_times[self.bundle.index]
        # Internal stages stream on-chip: the steady-state rate is set by
        # the slowest member alone; the boundary DDR hop is paid once, in
        # the fill, and thereafter overlaps the slowest member.
        hop = scheduler.params.inter_slot_transfer_ms
        fill = sum(times) + hop
        t_max = max(times)
        members = self.bundle.task_indices
        first = members[0]
        done_counts = app.done_counts
        mark_bundle_item_done = app.mark_bundle_item_done
        core = scheduler._core
        try_acquire = core.try_acquire
        release = core.release
        stats = scheduler.stats
        pr_items = scheduler.pr_queue._items
        launch_overhead = scheduler._launch_overhead_ms
        # Telemetry fast lane (see TaskRun._run).
        telemetry = scheduler.telemetry
        if telemetry is not None and not telemetry.wants_launch:
            telemetry = None
        app_id = app.inst.app_id
        start_item = done_counts[first]
        for item in range(start_item, app.batch):
            # Dependency of the bundle's first member on the previous
            # bundle (_upstream_ready, inlined for the per-item path).
            if first > 0 and done_counts[first - 1] <= item:
                yield app.item_event(first - 1, item)
            # Inlined launch gate (keep in sync with
            # OnBoardScheduler.launch_gate, the canonical form).
            request = try_acquire()
            if request is None:
                wait = 0.0
                blocked = False
            else:
                started = engine.now
                busy_app = scheduler._inflight_app
                pr_busy = busy_app is not None and busy_app is not app
                if not pr_busy and pr_items:
                    pr_busy = any(q.app_run is not app for q in pr_items)
                yield request
                wait = engine.now - started
                blocked = wait > BLOCK_EPSILON_MS and pr_busy
            stats.launches += 1
            stats.launch_wait_ms += wait
            if blocked:
                stats.launch_blocked += 1
                stats.window_blocked += 1
            if telemetry is not None:
                telemetry.emit_launch(engine.now, app_id, wait, blocked)
            try:
                yield launch_overhead
            finally:
                release()
            yield fill if item == start_item else t_max
            mark_bundle_item_done(members, item)
        scheduler.on_run_finished(self, preempted=False)
        return app.batch - start_item

    def _run_serial(self) -> Generator:
        app = self.app_run
        scheduler = self.scheduler
        engine = scheduler.engine
        core = scheduler._core
        try_acquire = core.try_acquire
        release = core.release
        stats = scheduler.stats
        pr_items = scheduler.pr_queue._items
        launch_overhead = scheduler._launch_overhead_ms
        # Telemetry fast lane (see TaskRun._run).
        telemetry = scheduler.telemetry
        if telemetry is not None and not telemetry.wants_launch:
            telemetry = None
        app_id = app.inst.app_id
        completed = 0
        # Serial mode buffers whole batches between members, so each
        # member's items pay the DDR hop like separate slots would.
        hop = scheduler.params.inter_slot_transfer_ms
        first = self.bundle.task_indices[0]
        for member in self.bundle.task_indices:
            exec_ms = app.spec.tasks[member].exec_time_ms + hop
            for item in range(app.done_counts[member], app.batch):
                if member == first:
                    waiting = self._upstream_ready(item)
                    if waiting is not None:
                        yield waiting
                # Inlined launch gate (keep in sync with
                # OnBoardScheduler.launch_gate, the canonical form).
                request = try_acquire()
                if request is None:
                    wait = 0.0
                    blocked = False
                else:
                    started = engine.now
                    busy_app = scheduler._inflight_app
                    pr_busy = busy_app is not None and busy_app is not app
                    if not pr_busy and pr_items:
                        pr_busy = any(q.app_run is not app for q in pr_items)
                    yield request
                    wait = engine.now - started
                    blocked = wait > BLOCK_EPSILON_MS and pr_busy
                stats.launches += 1
                stats.launch_wait_ms += wait
                if blocked:
                    stats.launch_blocked += 1
                    stats.window_blocked += 1
                if telemetry is not None:
                    telemetry.emit_launch(engine.now, app_id, wait, blocked)
                try:
                    yield launch_overhead
                finally:
                    release()
                yield exec_ms
                app.mark_item_done(member, item)
                completed += 1
        scheduler.on_run_finished(self, preempted=False)
        return completed


def occupancy_for(app_run: AppRun, payload: Payload, slot: Slot) -> SlotOccupancy:
    """Build the slot-occupancy record for a payload about to be installed."""
    if isinstance(payload, BundleSpec):
        # usage_big is a fraction of the Big slot; convert to absolute units.
        usage = ResourceVector(
            payload.usage_big.lut * slot.capacity.lut,
            payload.usage_big.ff * slot.capacity.ff,
        )
    else:
        usage = payload.usage
    return SlotOccupancy(
        payload_name=payload.name,
        app_id=app_run.inst.app_id,
        usage=usage,
    )
