"""Scheduler skeleton shared by all spatio-temporal sharing systems.

:class:`OnBoardScheduler` implements everything that is *mechanism* rather
than *policy*: the wake-driven scheduler loop on core 0, PR dispatch (inline
single-core or via the dedicated dual-core PR server), the launch gate,
cooperative preemption, slot bookkeeping, statistics, and the hooks used by
the cluster layer (intake control, waiting-app extraction for migration).

Concrete schedulers (FCFS, RR, Nimblock, VersaSlot) provide the
:meth:`OnBoardScheduler.allocate` policy and, where relevant, preemption
and bundling policies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Generator, List, Optional, Tuple

from ..apps.application import ApplicationInstance, BundleSpec
from ..config import DEFAULT_PARAMETERS, SystemParameters
from ..fpga.bitstream import Bitstream, SlotKind
from ..fpga.board import FPGABoard
from ..fpga.slots import Slot
from ..sim import Engine, Event, Store, Tracer, NULL_TRACER
from ..sim.events import PENDING
from ..telemetry.bus import TelemetryBus
from ..telemetry.events import (
    ArrivalEvent,
    CompletionEvent,
    MigrationEvent,
    PreemptionEvent,
)
from .runtime import (
    AppRun,
    BLOCK_EPSILON_MS,
    BundleRun,
    Payload,
    TaskRun,
    occupancy_for,
)


@dataclass(slots=True)
class ResponseRecord:
    """Response time of one completed application."""

    inst: ApplicationInstance
    finish_time: float

    @property
    def response_ms(self) -> float:
        return self.finish_time - self.inst.arrival_time


@dataclass(slots=True)
class SchedulerStats:
    """Counters every scheduler maintains; consumed by metrics and D_switch."""

    arrivals: int = 0
    completions: int = 0
    pr_count: int = 0
    pr_blocked: int = 0
    pr_wait_ms: float = 0.0
    launches: int = 0
    launch_blocked: int = 0
    launch_wait_ms: float = 0.0
    preemptions: int = 0
    migrations_out: int = 0
    #: Windowed counters, reset by the contention monitor (D_switch).
    window_pr: int = 0
    window_blocked: int = 0
    responses: List[ResponseRecord] = field(default_factory=list)
    #: Finish time of the latest completion (the makespan, since finishes
    #: are recorded in nondecreasing clock order).
    last_finish_ms: float = 0.0
    #: When False, completions update the counters and telemetry but no
    #: :class:`ResponseRecord` is retained — the O(1)-memory digest path
    #: used by campaign cells that persist digests instead of raw samples.
    retain_responses: bool = True

    def note_pr(self, queue_wait_ms: float, cross_app: bool = True) -> None:
        """Record a completed PR; only *cross-application* waits count as
        blocking (an app queueing behind its own preloads is pipeline
        fill, not the contention of Fig. 2)."""
        self.pr_count += 1
        self.window_pr += 1
        self.pr_wait_ms += queue_wait_ms
        if queue_wait_ms > BLOCK_EPSILON_MS and cross_app:
            self.pr_blocked += 1
            self.window_blocked += 1

    def note_launch(self, wait_ms: float, pr_in_flight: bool) -> None:
        self.launches += 1
        self.launch_wait_ms += wait_ms
        if wait_ms > BLOCK_EPSILON_MS and pr_in_flight:
            self.launch_blocked += 1
            self.window_blocked += 1

    def note_completion(self, inst: ApplicationInstance, finish_time: float) -> None:
        """Record one application completion (the only completion path)."""
        self.completions += 1
        self.last_finish_ms = finish_time
        if self.retain_responses:
            self.responses.append(ResponseRecord(inst, finish_time))

    def reset_window(self) -> Tuple[int, int]:
        """Return and clear the (PR, blocked) window counters."""
        window = (self.window_pr, self.window_blocked)
        self.window_pr = 0
        self.window_blocked = 0
        return window

    def response_times_ms(self) -> List[float]:
        return [record.response_ms for record in self.responses]


@dataclass(slots=True)
class PRPlan:
    """A planned partial reconfiguration, queued for the PCAP."""

    app_run: AppRun
    payload: Payload
    slot: Slot
    bitstream: Bitstream
    posted_at: float
    serial_bundle: bool = False
    #: Will this load queue behind another application's load?
    cross_app: bool = False


class OnBoardScheduler:
    """Base class for all slot-based (spatio-temporal) schedulers."""

    __slots__ = (
        "board", "engine", "params", "dual_core", "preemption",
        "preemption_quantum_ms", "tracer", "stats", "c_wait", "s_big",
        "s_little", "apps", "intake_open", "_wake_pending", "_wake_event",
        "_pr_inflight", "_inflight_app", "_last_preempt_ms",
        "candidate_listeners", "finish_listeners", "pr_queue", "_core",
        "_launch_overhead_ms", "_action_ms", "big_total", "little_total",
        "telemetry",
    )

    #: Human-readable system name, overridden by subclasses.
    name = "abstract"

    #: Pipeline-aware systems overlap batch items across slots; naive
    #: systems (FCFS, RR) only start a stage after its upstream batch.
    item_pipelining = True

    #: Granularity of cross-slot streaming: 1 = per-item credits
    #: (pipeline-aware systems); naive systems double-buffer coarse chunks
    #: through DDR, so a stage only sees upstream data chunk by chunk.
    pipeline_chunk_items = 1

    def __init__(
        self,
        board: FPGABoard,
        params: Optional[SystemParameters] = None,
        dual_core: bool = False,
        preemption: bool = False,
        preemption_quantum_ms: float = 400.0,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        self.board = board
        self.engine: Engine = board.engine
        # ``SystemParameters`` is frozen, so sharing the module default is
        # safe; resolving ``None`` here (instead of a module-level default
        # argument) keeps one run's override set from ever aliasing into
        # another's signature.
        self.params = params if params is not None else DEFAULT_PARAMETERS
        self.dual_core = dual_core
        self.preemption = preemption
        self.preemption_quantum_ms = preemption_quantum_ms
        self.tracer = tracer
        self.stats = SchedulerStats()
        # Policy state (names follow the paper's Algorithm 1).
        self.c_wait: List[AppRun] = []
        self.s_big: List[AppRun] = []
        self.s_little: List[AppRun] = []
        #: All live app runs, in arrival order (the runnable queue).
        self.apps: List[AppRun] = []
        self.intake_open = True
        self._wake_pending = False
        self._wake_event: Optional[Event] = None
        self._pr_inflight = 0
        self._inflight_app: Optional[AppRun] = None
        self._last_preempt_ms = -1e12
        #: Fired by the cluster layer on submit/finish (candidate updates).
        self.candidate_listeners: List[Callable[["OnBoardScheduler"], None]] = []
        self.finish_listeners: List[Callable[["OnBoardScheduler", AppRun], None]] = []
        self.pr_queue: Store = Store(self.engine, name=f"{board.name}-pr")
        #: Telemetry bus, attached by ``simulate_run(..., telemetry=...)``
        #: (or directly); ``None`` keeps every emission site free.
        self.telemetry: Optional[TelemetryBus] = None
        # Hot-path caches: the scheduler core and the two per-launch delay
        # parameters are immutable for the scheduler's lifetime, and the
        # launch gate runs once per batch item.
        self._core = board.ps.scheduler_core
        self._launch_overhead_ms = self.params.launch_overhead_ms
        self._action_ms = self.params.scheduler_action_ms
        #: Slot-kind capacities (fixed per board; queried every pass).
        self.big_total = board.big_slot_count
        self.little_total = board.little_slot_count
        self.engine.process(self._scheduler_loop())
        if self.dual_core:
            self.engine.process(self._pr_server_loop())

    # ------------------------------------------------------------------
    # Public interface (workload driver / cluster layer)
    # ------------------------------------------------------------------
    def submit(self, inst: ApplicationInstance) -> AppRun:
        """Accept a newly arrived application."""
        if not self.intake_open:
            raise RuntimeError(f"{self.board.name} intake is closed (migrating)")
        app_run = AppRun(self, inst)
        self.apps.append(app_run)
        self.c_wait.append(app_run)
        self.stats.arrivals += 1
        telemetry = self.telemetry
        if telemetry is not None:
            telemetry.emit(
                ArrivalEvent(self.engine.now, inst.name, inst.app_id, inst.batch_size)
            )
        if self.tracer.enabled:
            self.tracer.emit(self.engine.now, "submit", app=inst.name, batch=inst.batch_size)
        self._notify_candidates()
        self.kick()
        return app_run

    def active_apps(self) -> List[AppRun]:
        """Applications submitted here and not yet finished or migrated."""
        return [app for app in self.apps if not app.finished]

    @property
    def is_drained(self) -> bool:
        """True when no submitted application remains unfinished."""
        return not self.active_apps()

    def close_intake(self) -> None:
        """Stop accepting new applications (cross-board switching)."""
        self.intake_open = False

    def open_intake(self) -> None:
        self.intake_open = True

    def extract_waiting_apps(self) -> List[ApplicationInstance]:
        """Remove and return apps that have not started executing.

        Used by live migration: apps whose PR never began can move to the
        new board wholesale; started apps drain on this board (the paper
        lets ongoing tasks run to completion to avoid bitstream reloads).
        """
        movable = [
            app
            for app in self.active_apps()
            if not app.started and not app.pending_pr and not app.loaded
        ]
        telemetry = self.telemetry
        for app in movable:
            app.frozen = True
            self.apps.remove(app)
            for queue in (self.c_wait, self.s_big, self.s_little):
                if app in queue:
                    queue.remove(app)
            self.stats.migrations_out += 1
            if telemetry is not None:
                telemetry.emit(
                    MigrationEvent(self.engine.now, app.inst.name, app.inst.app_id)
                )
        if movable:
            self._notify_candidates()
        return [app.inst for app in movable]

    def kick(self) -> None:
        """Request a scheduler pass (idempotent within a time step)."""
        self._wake_pending = True
        event = self._wake_event
        if event is not None and event._value is PENDING:  # not yet triggered
            event.succeed()

    # ------------------------------------------------------------------
    # Policy hooks
    # ------------------------------------------------------------------
    def allocate(self) -> None:
        """Update ``alloc_big``/``alloc_little`` of live apps (policy)."""
        raise NotImplementedError

    def choose_serial_bundle(self, app_run: AppRun, bundle: BundleSpec) -> bool:
        """Pick the bundle execution mode; overridden by VersaSlot."""
        return False

    def maybe_preempt(self) -> None:
        """Preemption policy; default reclaims Little slots for waiters."""
        if not self.preemption or not self.c_wait:
            return
        self.preempt_little_for_waiters()

    # ------------------------------------------------------------------
    # Shared preemption helper
    # ------------------------------------------------------------------
    def preempt_little_for_waiters(self) -> None:
        """Reclaim one Little slot when arrivals are starved.

        Mirrors Nimblock's preemption: when applications wait and no Little
        slot is idle, the app holding the most Little slots vacates its
        highest-index task at the next item boundary.  The lowest loaded
        index is never preempted, so every app keeps making progress and
        the system stays deadlock-free.  A quantum bounds thrashing.
        """
        if not self.c_wait:
            return
        # Guard order is cheapest-first (all three are pure checks): the
        # quantum comparison costs two attribute reads, the idle-slot
        # probe walks the Little slots.
        if self.engine.now - self._last_preempt_ms < self.preemption_quantum_ms:
            return
        if self.board.idle_slot(SlotKind.LITTLE) is not None:
            return
        # max() over (used_little, app_id) without the tuple-key lambda;
        # this runs on every contended pass.
        victim_app = None
        best_used = 2  # only apps holding more than one Little slot
        best_id = -1
        for app in self.s_little:
            used = app.used_little
            if used < best_used:
                continue
            app_id = app.inst.app_id
            if used > best_used or app_id > best_id:
                victim_app = app
                best_used = used
                best_id = app_id
        if victim_app is None:
            return
        runs = [
            run
            for run in victim_app.loaded.values()
            if isinstance(run, TaskRun) and not run.preempt_requested
        ]
        if len(runs) < 2:
            return
        victim_run = runs[0]
        for run in runs:
            if run.task.index > victim_run.task.index:
                victim_run = run
        victim_run.request_preempt()
        self._last_preempt_ms = self.engine.now
        self.tracer.emit(
            self.engine.now,
            "preempt",
            app=victim_app.inst.name,
            task=victim_run.task.name,
        )

    # ------------------------------------------------------------------
    # The scheduler loop (core 0)
    # ------------------------------------------------------------------
    def _scheduler_loop(self) -> Generator:
        while True:
            if not self._wake_pending:
                self._wake_event = self.engine.event()
                yield self._wake_event
                self._wake_event = None
            self._wake_pending = False
            yield from self._pass()

    def _pass(self) -> Generator:
        core = self._core
        request = core.try_acquire()
        if request is not None:
            yield request
        yield self._action_ms
        core.release()
        self.maybe_preempt()
        self.allocate()
        plans = self.plan_dispatch()
        self._mark_cross_app(plans)
        if self.dual_core:
            for plan in plans:
                self.pr_queue.put(plan)
        else:
            for plan in plans:
                yield from self._inline_pr(plan)

    def _inline_pr(self, plan: PRPlan) -> Generator:
        """Single-core PR: the scheduler core is suspended during the load."""
        core = self._core
        request = core.try_acquire()
        if request is not None:
            yield request
        self._pr_inflight += 1
        self._inflight_app = plan.app_run
        try:
            yield from self.board.pcap.load(plan.bitstream)
        finally:
            self._pr_inflight -= 1
            self._inflight_app = None
            core.release()
        self._complete_pr(plan)

    def _pr_server_loop(self) -> Generator:
        """Dedicated PR server on core 1 (VersaSlot's dual-core design)."""
        core = self.board.ps.pr_core(dual_core=True)
        while True:
            plan = yield self.pr_queue.get()
            request = core.try_acquire()
            if request is not None:
                yield request
            self._pr_inflight += 1
            self._inflight_app = plan.app_run
            try:
                yield from self.board.pcap.load(plan.bitstream)
            finally:
                self._pr_inflight -= 1
                self._inflight_app = None
                core.release()
            self._complete_pr(plan)

    def _mark_cross_app(self, plans: List[PRPlan]) -> None:
        """Flag plans that will queue behind another application's PR."""
        if not plans:
            return
        queued = self.pr_queue._items  # live deque; items() would copy
        for index, plan in enumerate(plans):
            plan.cross_app = (
                (self._inflight_app is not None and self._inflight_app is not plan.app_run)
                or any(q.app_run is not plan.app_run for q in queued)
                or any(p.app_run is not plan.app_run for p in plans[:index])
            )

    # ------------------------------------------------------------------
    # Dispatch machinery
    # ------------------------------------------------------------------
    def dispatch_order(self) -> List[AppRun]:
        """Apps considered for PR dispatch, oldest arrival first."""
        apps = self.apps
        if len(apps) == 1:  # single-tenant fast path (no filtering garbage)
            app = apps[0]
            return apps if not app.finished and not app.frozen else []
        return [app for app in apps if not app.finished and not app.frozen]

    def plan_dispatch(self) -> List[PRPlan]:
        """Turn allocations into concrete PR plans against idle slots."""
        plans: List[PRPlan] = []
        for app in self.dispatch_order():
            if app.in_big:
                plans.extend(self._plan_for_kind(app, SlotKind.BIG))
            else:
                plans.extend(self._plan_for_kind(app, SlotKind.LITTLE))
        return plans

    def _plan_for_kind(self, app: AppRun, kind: SlotKind) -> List[PRPlan]:
        plans: List[PRPlan] = []
        while True:
            # Only the head of the eligibility order is ever dispatched,
            # so probe it directly instead of materializing the list.
            if kind is SlotKind.BIG:
                if app.used_big >= app.alloc_big:
                    break
                payload: Optional[Payload] = app.first_big_payload()
            else:
                if app.used_little >= app.alloc_little:
                    self._rotate_for_reload(app)
                    break
                payload = app.first_little_payload()
            if payload is None:
                break
            slot = self.board.idle_slot(kind)
            if slot is None:
                break
            plans.append(self._make_plan(app, payload, slot))
        return plans

    def _rotate_for_reload(self, app: AppRun) -> None:
        """Self-rotation: displace the highest stage for a missing lower one.

        If a preempted pipeline stage must be reloaded but the app has no
        allocation headroom (``used == alloc``), every loaded downstream
        stage is starved on the missing one.  Vacating the highest-index
        run makes room; the dispatch guard then reloads the missing stage
        first.  Without this, the app livelocks until the board drains.
        """
        loaded = app.loaded
        if not loaded:
            return
        runs = [run for run in loaded.values() if isinstance(run, TaskRun)]
        if not runs:
            return
        if any(run.preempt_requested for run in runs):
            return  # a rotation is already in flight
        head = app.first_little_payload()
        if head is None:
            return
        highest = max(runs, key=lambda run: run.task.index)
        if highest.task.index > head.index:
            highest.request_preempt()

    def _make_plan(self, app: AppRun, payload: Payload, slot: Slot) -> PRPlan:
        slot.begin_reconfiguration()
        app.pending_pr.add(payload.name)
        app.started = True
        serial = False
        if isinstance(payload, BundleSpec):
            app.used_big += 1
            serial = self.choose_serial_bundle(app, payload)
        else:
            app.used_little += 1
        bitstream = self.board.sd_card.register(payload.name, slot.kind)
        if self.tracer.enabled:
            self.tracer.emit(
                self.engine.now, "pr_plan", app=app.inst.name, payload=payload.name,
                slot=slot.name,
            )
        return PRPlan(
            app_run=app,
            payload=payload,
            slot=slot,
            bitstream=bitstream,
            posted_at=self.engine.now,
            serial_bundle=serial,
        )

    def _complete_pr(self, plan: PRPlan) -> None:
        transfer = plan.bitstream.load_time_ms(self.params)
        queue_wait = self.engine.now - plan.posted_at - transfer
        self.stats.note_pr(max(0.0, queue_wait), cross_app=plan.cross_app)
        app = plan.app_run
        plan.slot.complete_reconfiguration(occupancy_for(app, plan.payload, plan.slot))
        app.pending_pr.discard(plan.payload.name)
        if isinstance(plan.payload, BundleSpec):
            run: object = BundleRun(self, app, plan.payload, plan.slot, plan.serial_bundle)
        else:
            run = TaskRun(self, app, plan.payload, plan.slot)
        app.loaded[plan.payload.name] = run
        if self.tracer.enabled:
            self.tracer.emit(
                self.engine.now, "pr_done", app=app.inst.name, payload=plan.payload.name,
                wait_ms=max(0.0, queue_wait),
            )
        self.kick()

    # ------------------------------------------------------------------
    # Execution-side callbacks (task/bundle runs)
    # ------------------------------------------------------------------
    def launch_gate(self, app_run: Optional[AppRun] = None) -> Generator:
        """Process fragment run before every batch-item launch.

        The launch needs the scheduler core; on single-core systems a PR in
        flight therefore stalls it — the task execution blocking problem.
        Blocking is attributed to PR contention only when the in-flight or
        queued PR belongs to a *different* application (Fig. 2 semantics).

        This is the canonical form; the run loops in
        ``schedulers.runtime`` inline it (marked there) to spare a
        generator frame per batch item.  Keep them in sync.
        """
        engine = self.engine
        core = self._core
        request = core.try_acquire()
        if request is None:
            # Uncontended: granted in place, zero wait — skip the PR-busy
            # scan entirely (blocking needs a nonzero wait to count).
            wait = 0.0
            pr_busy = False
        else:
            started = engine.now
            pr_busy = (
                self._inflight_app is not None and self._inflight_app is not app_run
            )
            if not pr_busy and self.pr_queue._items:
                # Iterate the live deque: ``items()`` would copy per launch.
                pr_busy = any(q.app_run is not app_run for q in self.pr_queue._items)
            yield request
            wait = engine.now - started
        self.stats.note_launch(wait, pr_in_flight=pr_busy)
        telemetry = self.telemetry
        if telemetry is not None and telemetry.wants_launch:
            telemetry.emit_launch(
                engine.now,
                app_run.inst.app_id if app_run is not None else -1,
                wait,
                wait > BLOCK_EPSILON_MS and pr_busy,
            )
        try:
            yield self._launch_overhead_ms
        finally:
            core.release()

    def on_run_finished(self, run, preempted: bool) -> None:
        """A task/bundle vacated its slot (batch done or preempted)."""
        app: AppRun = run.app_run
        run.slot.release()
        app.loaded.pop(run.payload_name, None)
        if isinstance(run, BundleRun):
            app.used_big -= 1
        else:
            app.used_little -= 1
        if preempted:
            self.stats.preemptions += 1
            telemetry = self.telemetry
            if telemetry is not None:
                telemetry.emit(
                    PreemptionEvent(self.engine.now, app.inst.name, run.payload_name)
                )
        if app.all_done and not app.finished:
            self._finish_app(app)
        self.kick()

    def _finish_app(self, app: AppRun) -> None:
        app.finished = True
        now = self.engine.now
        app.finish_time = now
        for queue in (self.c_wait, self.s_big, self.s_little):
            if app in queue:
                queue.remove(app)
        self.stats.note_completion(app.inst, now)
        telemetry = self.telemetry
        if telemetry is not None:
            telemetry.emit(
                CompletionEvent(
                    now, app.inst.name, app.inst.app_id,
                    app.inst.arrival_time, now - app.inst.arrival_time,
                )
            )
        self.tracer.emit(
            self.engine.now, "finish", app=app.inst.name,
            response_ms=self.engine.now - app.inst.arrival_time,
        )
        for listener in self.finish_listeners:
            listener(self, app)
        self._notify_candidates()

    def _notify_candidates(self) -> None:
        for listener in self.candidate_listeners:
            listener(self)

    # ------------------------------------------------------------------
    # Capacity queries shared by allocation policies
    # ------------------------------------------------------------------
    def committed_little(self) -> int:
        """Little slots currently committed (loaded or reconfiguring)."""
        total = 0
        for app in self.apps:
            if not app.finished:
                total += app.used_little
        return total

    def committed_big(self) -> int:
        """Big slots currently committed (loaded or reconfiguring)."""
        total = 0
        for app in self.apps:
            if not app.finished:
                total += app.used_big
        return total

    def __repr__(self) -> str:
        return f"<{type(self).__name__} on {self.board.name}>"
