"""Optimal slot-count computation (the ILP of Nimblock/DML).

Prior work derives, per application, the most efficient slot count for
pipeline execution via integer linear programming; Algorithm 1 consumes the
result as ``O_Ai = (O_B, O_L)``.  Two implementations are provided:

* :func:`optimal_little_slots` / :func:`optimal_big_slots` — exact search
  over the (tiny) discrete domain using the analytic makespan estimators.
  This is what the schedulers use at runtime.
* :func:`allocate_slots_milp` — a scipy ``milp`` formulation that splits a
  fixed slot budget across competing applications, used by the cross-app
  redistribution benches and as a reference for tests.

Results are memoised: workloads re-use the same (application, batch)
pairs heavily.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List, Sequence, Tuple

from ..apps.application import ApplicationSpec
from ..apps.pipeline import estimate_big_makespan_ms, estimate_makespan_ms

#: Accept a slot count whose makespan is within this factor of the best —
#: the "efficiency" tie-break that keeps O below the task count.
EFFICIENCY_TOLERANCE = 0.05


@lru_cache(maxsize=4096)
def _optimal_little(
    app_key: str,
    task_count: int,
    batch_size: int,
    pr_time_ms: float,
    max_slots: int,
) -> int:
    from ..apps.benchmarks import BENCHMARKS  # local import to keep cache key small

    app = BENCHMARKS.get(app_key)
    if app is None or app.task_count != task_count:
        raise KeyError(app_key)
    return _search_little(app, batch_size, pr_time_ms, max_slots)


def _search_little(app: ApplicationSpec, batch_size: int, pr_time_ms: float, max_slots: int) -> int:
    limit = max(1, min(app.task_count, max_slots))
    spans = [
        estimate_makespan_ms(app, batch_size, s, pr_time_ms) for s in range(1, limit + 1)
    ]
    best = min(spans)
    for s, span in enumerate(spans, start=1):
        if span <= best * (1.0 + EFFICIENCY_TOLERANCE):
            return s
    return limit  # pragma: no cover - loop always returns


def optimal_little_slots(
    app: ApplicationSpec,
    batch_size: int,
    pr_time_ms: float,
    max_slots: int,
) -> int:
    """O_L: smallest Little-slot count within 5 % of the best makespan."""
    if batch_size < 1:
        raise ValueError(f"batch size must be >= 1, got {batch_size}")
    try:
        return _optimal_little(app.name, app.task_count, batch_size, pr_time_ms, max_slots)
    except KeyError:
        return _search_little(app, batch_size, pr_time_ms, max_slots)


@lru_cache(maxsize=4096)
def _optimal_big(
    app_key: str,
    bundle_count: int,
    batch_size: int,
    pr_time_ms: float,
    max_slots: int,
) -> int:
    from ..apps.benchmarks import BENCHMARKS  # local import to keep cache key small

    app = BENCHMARKS.get(app_key)
    if app is None or len(app.bundles) != bundle_count:
        raise KeyError(app_key)
    return _search_big(app, batch_size, pr_time_ms, max_slots)


def _search_big(app: ApplicationSpec, batch_size: int, pr_time_ms: float, max_slots: int) -> int:
    limit = max(1, min(len(app.bundles), max_slots))
    spans = [
        estimate_big_makespan_ms(app, batch_size, s, pr_time_ms)
        for s in range(1, limit + 1)
    ]
    best = min(spans)
    for s, span in enumerate(spans, start=1):
        if span <= best * (1.0 + EFFICIENCY_TOLERANCE):
            return s
    return limit  # pragma: no cover


def optimal_big_slots(
    app: ApplicationSpec,
    batch_size: int,
    big_pr_time_ms: float,
    max_slots: int,
) -> int:
    """O_B: smallest Big-slot count within 5 % of the best bundled makespan."""
    if not app.can_bundle:
        return 0
    try:
        return _optimal_big(
            app.name, len(app.bundles), batch_size, big_pr_time_ms, max_slots
        )
    except KeyError:
        return _search_big(app, batch_size, big_pr_time_ms, max_slots)


def allocate_slots_milp(
    apps: Sequence[Tuple[ApplicationSpec, int]],
    total_slots: int,
    pr_time_ms: float,
) -> List[int]:
    """Split ``total_slots`` Little slots across apps, minimizing summed makespan.

    ``apps`` is a list of ``(spec, batch_size)``.  The formulation uses one
    binary per (app, slot count) pair — exact for the problem sizes the
    paper handles (tens of apps, eight slots).  Every app receives at least
    one slot when the budget allows; surplus demand is truncated.
    """
    if total_slots < 1:
        raise ValueError(f"total_slots must be >= 1, got {total_slots}")
    if not apps:
        return []
    n_apps = len(apps)
    if n_apps > total_slots:
        raise ValueError(
            f"milp allocator needs slots >= apps ({n_apps} apps, {total_slots} slots); "
            "queue the surplus apps first"
        )
    # numpy/scipy are needed only by this reference formulation, never by
    # the runtime exact search above — import lazily so the core package
    # stays dependency-free without the repro[fast] extra.
    try:
        import numpy as np
        from scipy.optimize import Bounds, LinearConstraint, milp
    except ImportError as exc:  # pragma: no cover - exercised by no-numpy CI
        raise RuntimeError(
            "allocate_slots_milp requires numpy and scipy "
            "(pip install repro[fast] scipy)"
        ) from exc
    options: List[List[int]] = []
    costs: List[float] = []
    index: List[Tuple[int, int]] = []
    for i, (spec, batch) in enumerate(apps):
        counts = list(range(1, min(spec.task_count, total_slots) + 1))
        options.append(counts)
        for s in counts:
            costs.append(estimate_makespan_ms(spec, batch, s, pr_time_ms))
            index.append((i, s))
    n_vars = len(costs)
    # One slot-count choice per app.
    choice = np.zeros((n_apps, n_vars))
    for j, (i, _) in enumerate(index):
        choice[i, j] = 1.0
    # Total slots within budget.
    slots_row = np.array([[s for (_, s) in index]], dtype=float)
    constraints = [
        LinearConstraint(choice, lb=np.ones(n_apps), ub=np.ones(n_apps)),
        LinearConstraint(slots_row, lb=np.array([0.0]), ub=np.array([float(total_slots)])),
    ]
    result = milp(
        c=np.array(costs),
        constraints=constraints,
        integrality=np.ones(n_vars),
        bounds=Bounds(lb=np.zeros(n_vars), ub=np.ones(n_vars)),
    )
    if not result.success:  # pragma: no cover - tiny exact problems always solve
        raise RuntimeError(f"milp allocation failed: {result.message}")
    chosen = [0] * n_apps
    for j, picked in enumerate(result.x):
        if picked > 0.5:
            i, s = index[j]
            chosen[i] = s
    return chosen


def clear_caches() -> None:
    """Drop memoised optimal-slot results (test isolation)."""
    _optimal_little.cache_clear()
