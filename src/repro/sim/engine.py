"""The discrete-event simulation engine.

The engine owns the global clock and a time-ordered event queue.  Same-time
events dispatch in FIFO order (with an *urgent* lane used internally for
process start-up and interrupts), which keeps every simulation run fully
deterministic — a property the test suite checks.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Generator, Iterable, List, Optional

from .events import AllOf, AnyOf, Event, NORMAL, Process, Timeout


class EmptySchedule(Exception):
    """Raised by :meth:`Engine.step` when no events remain."""


class Engine:
    """Deterministic discrete-event simulation engine.

    Time is a float in *milliseconds* by convention throughout the VersaSlot
    models, though the engine itself is unit-agnostic.
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self.now: float = start_time
        self._heap: List[Any] = []
        self._sequence = count()
        self._active_process: Optional[Process] = None

    # ------------------------------------------------------------------
    # Event factories
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """Create a fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event firing ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        """Start ``generator`` as a simulation process."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """An event firing once every event in ``events`` has fired."""
        return AllOf(self, list(events))

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """An event firing once any event in ``events`` has fired."""
        return AnyOf(self, list(events))

    # ------------------------------------------------------------------
    # Scheduling and execution
    # ------------------------------------------------------------------
    def enqueue(self, event: Event, delay: float = 0.0, priority: int = NORMAL) -> None:
        """Queue a triggered event for dispatch at ``now + delay``."""
        heapq.heappush(self._heap, (self.now + delay, priority, next(self._sequence), event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Dispatch the single next event."""
        try:
            when, _, _, event = heapq.heappop(self._heap)
        except IndexError:
            raise EmptySchedule() from None
        self.now = when
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            # A failure nobody consumed: surface it instead of losing it.
            raise event._value

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or the clock reaches ``until``."""
        if until is not None and until < self.now:
            raise ValueError(f"until ({until}) is in the past (now={self.now})")
        while self._heap:
            if until is not None and self._heap[0][0] > until:
                break
            self.step()
        if until is not None:
            self.now = max(self.now, until)

    def run_until_complete(self, process: Process, limit: Optional[float] = None) -> Any:
        """Run until ``process`` finishes and return its value.

        Raises ``RuntimeError`` if the queue drains (or ``limit`` is hit)
        before the process completes.
        """
        self.run(until=limit)
        if process.is_alive:
            raise RuntimeError("simulation ended before the process completed")
        if not process.ok:
            raise process.value
        return process.value
