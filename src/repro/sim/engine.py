"""The discrete-event simulation engine.

The engine owns the global clock and a time-ordered event queue.  Same-time
events dispatch in FIFO order (with an *urgent* lane used internally for
process start-up and interrupts), which keeps every simulation run fully
deterministic — a property the test suite checks.

Dispatch is the hottest loop in the repository — a figure campaign pushes
millions of events through it — so :meth:`Engine.run` inlines the heap pop
and the *fast lane*: an event whose first (and usually only) waiter is a
process resumes that process directly, without touching the callback list.
:meth:`Engine.sleep` additionally recycles timeout objects through a free
list, so steady-state model loops schedule delays without allocating.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Generator, Iterable, List, Optional

from .events import AllOf, AnyOf, Event, NORMAL, PENDING, PooledTimeout, Process, Timeout


class EmptySchedule(Exception):
    """Raised by :meth:`Engine.step` when no events remain."""


class Engine:
    """Deterministic discrete-event simulation engine.

    Time is a float in *milliseconds* by convention throughout the VersaSlot
    models, though the engine itself is unit-agnostic.
    """

    __slots__ = ("now", "_heap", "_seq", "_timeout_pool")

    def __init__(self, start_time: float = 0.0) -> None:
        self.now: float = start_time
        self._heap: List[Any] = []
        self._seq = 0
        self._timeout_pool: List[Timeout] = []

    # ------------------------------------------------------------------
    # Event factories
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """Create a fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event firing ``delay`` time units from now."""
        # Inlined Timeout.__init__ (kept in sync): one call frame instead
        # of two on the most-constructed object in the system.
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        timeout = Timeout.__new__(Timeout)
        timeout.engine = self
        timeout.callbacks = []
        timeout._value = value
        timeout._ok = True
        timeout._fast_process = None
        timeout.delay = delay
        self._seq = seq = self._seq + 1
        heappush(self._heap, (self.now + delay, 1, seq, timeout))  # 1 == NORMAL
        return timeout

    def sleep(self, delay: float, value: Any = None) -> Timeout:
        """A pooled :meth:`timeout` for tight model loops.

        The returned timeout must be yielded immediately and not stored:
        once it resumes its waiting process through the fast lane it goes
        back to the engine's free list and will be handed out again.  Model
        code that keeps a reference (to inspect ``value`` later, or to pass
        into ``AnyOf``) must use :meth:`timeout` instead.

        Inside a process, ``yield delay`` (a bare non-negative number) is
        an even cheaper equivalent of ``yield engine.sleep(delay)``.
        """
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        pool = self._timeout_pool
        if pool:
            # Recycled instances keep their (empty) callbacks list and
            # ``_ok`` True; only the stale fast-lane waiter from the
            # previous cycle must be cleared before re-arming.
            timeout = pool.pop()
            timeout._fast_process = None
            timeout._value = value
            timeout.delay = delay
            self._seq = seq = self._seq + 1
            heappush(self._heap, (self.now + delay, 1, seq, timeout))  # 1 == NORMAL
        else:
            timeout = PooledTimeout(self, delay, value)
        return timeout

    def process(self, generator: Generator) -> Process:
        """Start ``generator`` as a simulation process."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """An event firing once every event in ``events`` has fired."""
        return AllOf(self, list(events))

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """An event firing once any event in ``events`` has fired."""
        return AnyOf(self, list(events))

    # ------------------------------------------------------------------
    # Scheduling and execution
    # ------------------------------------------------------------------
    def enqueue(self, event: Event, delay: float = 0.0, priority: int = NORMAL) -> None:
        """Queue a triggered event for dispatch at ``now + delay``."""
        self._seq = seq = self._seq + 1
        heappush(self._heap, (self.now + delay, priority, seq, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._heap[0][0] if self._heap else float("inf")

    def pending_count(self) -> int:
        """Number of scheduled entries the engine still holds.

        Backend-neutral: calendar kernels (:class:`~repro.sim.wheel.\
WheelEngine`) override this to count every custody stage, so invariant
        checkers must use it instead of reading ``_heap``.
        """
        return len(self._heap)

    def _dispatch(self, event: Event) -> None:
        """Run one popped event's waiters (kept in sync with ``run``).

        Unlike ``run`` this single-step path never recycles pooled
        timeouts — the pool is opportunistic, so skipping it only costs a
        future allocation.
        """
        fast = event._fast_process
        callbacks = event.callbacks
        event.callbacks = None
        if fast is not None:
            fast._resume(event)
        if callbacks:
            for callback in callbacks:
                callback(event)
        if not event._ok and not getattr(event, "_defused", False):
            # A failure nobody consumed: surface it instead of losing it.
            # (``_defused`` is lazily written by failure paths only, hence
            # the defaulted read.)
            raise event._value

    def step(self) -> None:
        """Dispatch the single next event."""
        try:
            when, _, _, event = heappop(self._heap)
        except IndexError:
            raise EmptySchedule() from None
        self.now = when
        self._dispatch(event)

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or the clock reaches ``until``."""
        if until is not None and until < self.now:
            raise ValueError(f"until ({until}) is in the past (now={self.now})")
        # Manually inlined dispatch loop.  This mirrors ``_dispatch`` and —
        # for the fast lane — ``Process._resume`` (both kept in sync): the
        # local bindings and skipped call frames are worth ~2x dispatch
        # rate, which dominates every figure campaign.  The determinism
        # goldens in tests/test_kernel_fastlane.py pin the equivalence.
        horizon = float("inf") if until is None else until
        heap = self._heap
        pool = self._timeout_pool
        pop = heappop
        push = heappush
        while heap:
            entry = pop(heap)
            when = entry[0]
            if when > horizon:
                push(heap, entry)  # beyond the horizon: put it back
                break
            popped = event = entry[3]
            self.now = when
            process = event._fast_process
            callbacks = event.callbacks
            event.callbacks = None
            if process is not None:
                # ``_fast_process`` stays set on the processed event: no
                # reader looks at it once ``callbacks`` is None, and the
                # pooled-reuse path resets it.
                # --- inlined Process._resume (the fast lane) ---
                while True:
                    try:
                        if event._ok:
                            target = process._send(event._value)
                        else:
                            event._defused = True
                            target = process._throw(event._value)
                    except StopIteration as stop:
                        process._ok = True
                        process._value = stop.value
                        self._seq = seq = self._seq + 1
                        push(heap, (when, 1, seq, process))  # 1 == NORMAL
                    except BaseException as error:  # noqa: BLE001
                        process._ok = False
                        process._value = error
                        self._seq = seq = self._seq + 1
                        push(heap, (when, 1, seq, process))
                    else:
                        # Bare-delay sleeps are the most common yield on
                        # the per-item path, so probe them before the
                        # Event isinstance check.
                        tcls = type(target)
                        if (tcls is float or tcls is int) and target >= 0:
                            # Bare-delay shorthand (see Process._resume):
                            # re-arm a pooled sleep with this process
                            # already on the fast lane.
                            if pool:
                                timeout = pool.pop()
                                timeout._fast_process = process
                                timeout._value = None
                                timeout.delay = target
                                self._seq = seq = self._seq + 1
                                push(heap, (when + target, 1, seq, timeout))
                            else:
                                timeout = PooledTimeout(self, target)
                                timeout._fast_process = process
                            process._target = timeout
                        elif isinstance(target, Event):
                            tcallbacks = target.callbacks
                            if tcallbacks is None:
                                # Already dispatched: feed its outcome back in.
                                event = target
                                continue
                            if target._fast_process is None and not tcallbacks:
                                target._fast_process = process
                            else:
                                tcallbacks.append(process._resume)
                            process._target = target
                        else:
                            if tcls is float or tcls is int:
                                err: BaseException = RuntimeError(
                                    f"process yielded a negative delay: {target!r}"
                                )
                            else:
                                err = RuntimeError(
                                    f"process yielded a non-event: {target!r}"
                                )
                            process._generator.close()
                            process._ok = False
                            process._value = err
                            self._seq = seq = self._seq + 1
                            push(heap, (when, 1, seq, process))
                    break
                if not callbacks:
                    if type(popped) is PooledTimeout:
                        # Sole waiter was the fast process: recycle for the
                        # next ``sleep`` call.  Restoring the (empty) list
                        # keeps reuse allocation-free; the pool is bounded
                        # by the peak number of concurrently pending
                        # sleeps, so no explicit cap is needed.
                        popped.callbacks = callbacks
                        pool.append(popped)
                    continue
            if callbacks:
                for callback in callbacks:
                    callback(popped)
            if not popped._ok and not getattr(popped, "_defused", False):
                # A failure nobody consumed: surface it instead of losing it.
                raise popped._value
        if until is not None and until > self.now:
            self.now = until

    def run_until_complete(self, process: Process, limit: Optional[float] = None) -> Any:
        """Run until ``process`` finishes and return its value.

        Raises ``RuntimeError`` if the queue drains (or ``limit`` is hit)
        before the process completes.
        """
        self.run(until=limit)
        if process._value is PENDING:
            raise RuntimeError("simulation ended before the process completed")
        if not process._ok:
            raise process._value
        return process._value
