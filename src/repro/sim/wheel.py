"""The calendar-queue kernel: a bucketed timing wheel behind ``Engine``.

:class:`WheelEngine` replaces the global binary heap with the classic
calendar-queue layout (Brown 1988): a ring of fixed-width buckets indexed
by ``int((t - base) / width)``, an *overflow* heap for entries beyond the
ring, and — the piece that actually pays on this workload — a one-entry
*slot register* for the dominant case of a single pending timeout.

Custody of a scheduled entry moves through three stages:

1. **Staging** — the inherited ``_heap`` list.  The flattened constructors
   in :mod:`repro.sim.events` push ``(time, priority, seq, event)`` tuples
   straight into ``engine._heap``; the wheel treats that list as an inbox
   and drains it at the top of every dispatch iteration, so the event
   classes need no knowledge of the backend.
2. **Slot** — when a timeout is created while *nothing else* is pending,
   it parks in three scalar slots (``_slot_t``/``_slot_s``/``_slot_e``)
   instead of any queue: no tuple, no heap discipline.  Model loops that
   ``yield engine.timeout(...)`` or a bare delay run entirely
   slot-to-slot, and :meth:`run` chains such dispatches without touching
   the outer loop.
3. **Wheel** — everything else lands in a bucket (O(1) append) or, past
   the ring horizon, in the overflow heap.  A min-heap of occupied bucket
   indices (``_occ``) finds the next bucket without scanning the ring;
   the chosen bucket is sorted once and consumed by index, and inserts
   that land in the bucket *while it drains* go to a side heap merged by
   tuple comparison — this is the batched same-timestamp dispatch: one
   sort resumes every co-scheduled waiter without re-entering a heap per
   event.

Ordering is bit-identical to :class:`~repro.sim.engine.Engine` because the
bucket index function is monotone in ``t`` under IEEE-754 (so cross-bucket
order is safe even with rounding), same-bucket entries compare as full
``(time, priority, seq)`` tuples (so FIFO/urgent tie-breaks are exact),
overflow entries are strictly later than every bucket entry (monotonicity
again), and the slot always holds a complete, eagerly-sequenced entry (a
deferred seq would mis-order against entries staged by callbacks at the
same timestamp).  The wheel re-anchors ``base`` — and retunes ``width``
from the observed spread of the batch being placed — only at moments when
it holds nothing, which is exactly when the index function may change
freely.

The differential oracle (``repro verify --kernel wheel``) pins all of the
above against the reference kernel; ``tests/test_wheel_kernel.py`` pins
the edge cases (bucket boundaries, overflow promotion, interrupts mid
chain, cancelled timeouts in drained buckets).
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, List, Optional

from .engine import EmptySchedule, Engine
from .events import Event, PooledTimeout, Timeout

#: Ring size.  Measured fig-campaign runs keep at most ~10 entries pending,
#: so the ring mostly provides headroom for fleet scenarios; 64 buckets
#: keep the lazy allocation cheap.
BUCKET_COUNT = 64

#: Floor guarding against zero/denormal widths (all-zero delays).
_MIN_WIDTH = 1e-9


class WheelEngine(Engine):
    """:class:`Engine` with a timing-wheel calendar instead of one heap.

    Drop-in compatible: the event factories, ``enqueue``, ``peek``,
    ``step`` and ``run`` keep their contracts, and traces are bit-identical
    to the heap kernel (the oracle's three-way sweep enforces this).

    The calendar is engaged *adaptively*: while fewer than
    :attr:`WHEEL_THRESHOLD` entries are pending, staged entries are popped
    straight off the staging heap (identical to the heap kernel, whose
    O(log n) is unbeatable at shallow depth); past the threshold, entries
    move into bucket custody where inserts are O(1) and a bucket drain
    costs one sort.  Tests pin both regimes by subclassing with a
    threshold of 1.
    """

    #: Pending-entry depth at which bucket custody starts paying for its
    #: constant factors.  Class attribute so tests can force either regime.
    WHEEL_THRESHOLD = 128

    __slots__ = (
        "_slot_t", "_slot_s", "_slot_e",
        "_wcount", "_buckets", "_occ", "_side", "_overflow",
        "_base", "_width", "_inv_width",
        "_active", "_active_i",
    )

    def __init__(self, start_time: float = 0.0) -> None:
        super().__init__(start_time)
        self._slot_t = 0.0
        self._slot_s = 0
        self._slot_e: Optional[Event] = None
        #: Entries under wheel custody (buckets + side + overflow).
        self._wcount = 0
        #: Bucket ring, allocated on first use so slot-only runs never pay.
        self._buckets: Optional[List[List[Any]]] = None
        self._occ: List[int] = []
        self._side: List[Any] = []
        self._overflow: List[Any] = []
        self._base = start_time
        self._width = 1.0
        self._inv_width = 1.0
        #: Index of the bucket currently being consumed, -1 when none.
        self._active = -1
        self._active_i = 0

    # ------------------------------------------------------------------
    # Event factories (slot-aware)
    # ------------------------------------------------------------------
    def timeout(
        self,
        delay: float,
        value: Any = None,
        _new=Timeout.__new__,
        _cls=Timeout,
    ) -> Timeout:
        """Create an event firing ``delay`` time units from now.

        Mirrors :meth:`Engine.timeout` (flattened constructor, kept in
        sync) but parks the entry in the slot register when nothing else
        is pending — the common case in sequential model loops.  The
        ``_new``/``_cls`` defaults are load-time bindings, not parameters.
        """
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        timeout = _new(_cls)
        timeout.engine = self
        timeout.callbacks = []
        timeout._value = value
        timeout._ok = True
        timeout._fast_process = None
        timeout.delay = delay
        # The seq is allocated eagerly even for the slot: entries staged
        # later at the same (time, priority) must order after this one.
        self._seq = seq = self._seq + 1
        wcount = self._wcount
        if self._slot_e is None and not wcount and not self._heap:
            self._slot_t = self.now + delay
            self._slot_s = seq
            self._slot_e = timeout
        elif wcount:
            # Engaged wheel: O(1) insert, no heap discipline (inlined
            # _wheel_insert, kept in sync).
            when = self.now + delay
            rel = int((when - self._base) * self._inv_width)
            if rel < 0:
                rel = 0
            if rel < BUCKET_COUNT:
                if rel <= self._active:
                    heappush(self._side, (when, 1, seq, timeout))
                else:
                    bucket = self._buckets[rel]
                    if not bucket:
                        heappush(self._occ, rel)
                    bucket.append((when, 1, seq, timeout))
            else:
                heappush(self._overflow, (when, 1, seq, timeout))
            self._wcount = wcount + 1
        else:
            heap = self._heap
            heappush(heap, (self.now + delay, 1, seq, timeout))  # 1 == NORMAL
            if len(heap) >= self.WHEEL_THRESHOLD:
                self._engage()
        return timeout

    def sleep(self, delay: float, value: Any = None) -> Timeout:
        """A pooled :meth:`timeout`; see :meth:`Engine.sleep` for the
        reuse contract.  Slot-aware like :meth:`timeout`."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        pool = self._timeout_pool
        if pool:
            timeout = pool.pop()
            timeout._fast_process = None
            timeout._value = value
            timeout.delay = delay
        else:
            timeout = PooledTimeout.__new__(PooledTimeout)
            timeout.engine = self
            timeout.callbacks = []
            timeout._value = value
            timeout._ok = True
            timeout._fast_process = None
            timeout.delay = delay
        self._seq = seq = self._seq + 1
        if self._slot_e is None and not self._wcount and not self._heap:
            self._slot_t = self.now + delay
            self._slot_s = seq
            self._slot_e = timeout
        else:
            self._schedule((self.now + delay, 1, seq, timeout))  # 1 == NORMAL
        return timeout

    # ------------------------------------------------------------------
    # Wheel internals
    # ------------------------------------------------------------------
    def _schedule(self, entry: Any) -> None:
        """Queue a non-slot entry: O(1) into bucket custody when the wheel
        is engaged, otherwise onto the staging heap (engaging the wheel
        once staging crosses the threshold)."""
        if self._wcount:
            self._wheel_insert(entry)
            return
        heap = self._heap
        heappush(heap, entry)
        if len(heap) >= self.WHEEL_THRESHOLD:
            self._engage()

    def _engage(self) -> None:
        """Move staging — and the slot, preserving the invariant "slot
        engaged => wheel empty" — into bucket custody."""
        event = self._slot_e
        if event is not None:
            self._slot_e = None
            heappush(self._heap, (self._slot_t, 1, self._slot_s, event))
        self._drain_staging()

    def _wheel_insert(self, entry: Any) -> None:
        """Place one entry into bucket custody (wheel already anchored)."""
        rel = int((entry[0] - self._base) * self._inv_width)
        if rel < 0:
            rel = 0
        if rel < BUCKET_COUNT:
            if rel <= self._active:
                heappush(self._side, entry)
            else:
                bucket = self._buckets[rel]
                if not bucket:
                    heappush(self._occ, rel)
                bucket.append(entry)
        else:
            heappush(self._overflow, entry)
        self._wcount += 1
    def _drain_staging(self) -> None:
        """Move every staged entry into wheel custody.

        Called only with a non-empty staging list and an empty slot (the
        caller spills the slot first so ordering is decided in one place).
        """
        heap = self._heap
        overflow = self._overflow
        buckets = self._buckets
        if buckets is None:
            self._buckets = buckets = [[] for _ in range(BUCKET_COUNT)]
        if not self._wcount:
            # Idle wheel: re-anchor at the earliest staged entry and size
            # the buckets from the observed spread of this batch, leaving
            # half the ring as headroom.  Only here — with entries in
            # flight the index function must not move.
            self._base = base = heap[0][0]
            span = max(heap)[0] - base
            if span > 0.0:
                width = span / (BUCKET_COUNT // 2)
                if width < _MIN_WIDTH:
                    width = _MIN_WIDTH
                self._width = width
                self._inv_width = 1.0 / width
            # span == 0 (single entry / all same time): keep the previous
            # width — any width maps one timestamp to one bucket.
        base = self._base
        inv = self._inv_width
        active = self._active
        side = self._side
        occ = self._occ
        count = self._wcount
        for entry in heap:  # placement needs no order: visit the raw list
            t = entry[0]
            rel = int((t - base) * inv)
            if rel < 0:
                # now (and thus t) can sit before base right after a run()
                # stopped at a horizon ahead of a re-anchored wheel; the
                # clamp keeps the index function monotone, which is all
                # ordering needs (bucket 0 sorts itself at activation).
                rel = 0
            if rel < BUCKET_COUNT:
                if rel <= active:
                    # Lands in (or before) the bucket being drained: merge
                    # through the side heap so tuple order decides.
                    heappush(side, entry)
                else:
                    bucket = buckets[rel]
                    if not bucket:
                        heappush(occ, rel)
                    bucket.append(entry)
            else:
                heappush(overflow, entry)
            count += 1
        heap.clear()
        self._wcount = count

    def _wheel_pop(self) -> Optional[Any]:
        """Remove and return the globally next entry, or None if empty."""
        while True:
            active = self._active
            if active >= 0:
                bucket = self._buckets[active]
                i = self._active_i
                side = self._side
                if i < len(bucket):
                    entry = bucket[i]
                    if side and side[0] < entry:
                        self._wcount -= 1
                        return heappop(side)
                    self._active_i = i + 1
                    self._wcount -= 1
                    return entry
                if side:
                    self._wcount -= 1
                    return heappop(side)
                bucket.clear()
                self._active = -1
                continue
            if not self._wcount:
                return None
            overflow = self._overflow
            if self._wcount > len(overflow):
                # Activate the earliest occupied bucket: sort once, then
                # consume by index (batched same-timestamp dispatch).
                occ = self._occ
                buckets = self._buckets
                while True:
                    idx = heappop(occ)
                    if buckets[idx]:
                        break
                bucket = buckets[idx]
                bucket.sort()
                self._active = idx
                self._active_i = 0
                continue
            # Only the overflow holds entries: re-anchor on its minimum,
            # retune from the overflow's spread, and promote everything
            # now inside the ring horizon.
            self._base = base = overflow[0][0]
            span = max(overflow)[0] - base
            if span > 0.0:
                width = span / (BUCKET_COUNT // 2)
                if width < _MIN_WIDTH:
                    width = _MIN_WIDTH
                self._width = width
                self._inv_width = 1.0 / width
            inv = self._inv_width
            buckets = self._buckets
            occ = self._occ
            while overflow:
                rel = int((overflow[0][0] - base) * inv)
                if rel >= BUCKET_COUNT:
                    # Heap order + monotone index: everything left is
                    # beyond the ring too.
                    break
                entry = heappop(overflow)
                bucket = buckets[rel]
                if not bucket:
                    heappush(occ, rel)
                bucket.append(entry)
            # base == overflow min, so at least one entry promoted.
            continue

    # ------------------------------------------------------------------
    # Scheduling and execution
    # ------------------------------------------------------------------
    def pending_count(self) -> int:
        """Scheduled entries across staging, slot and wheel."""
        return (
            len(self._heap)
            + (self._slot_e is not None)
            + self._wcount
        )

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        heap = self._heap
        best = heap[0][0] if heap else float("inf")
        if self._slot_e is not None and self._slot_t < best:
            best = self._slot_t
        if self._wcount:
            active = self._active
            if active >= 0:
                bucket = self._buckets[active]
                i = self._active_i
                if i < len(bucket) and bucket[i][0] < best:
                    best = bucket[i][0]
            side = self._side
            if side and side[0][0] < best:
                best = side[0][0]
            occ = self._occ
            buckets = self._buckets
            while occ and not buckets[occ[0]]:
                heappop(occ)  # stale index: discard (carries no info)
            if occ:
                earliest = min(buckets[occ[0]])[0]
                if earliest < best:
                    best = earliest
            overflow = self._overflow
            if overflow and overflow[0][0] < best:
                best = overflow[0][0]
        return best

    def step(self) -> None:
        """Dispatch the single next event."""
        event = self._slot_e
        if event is not None:
            self._slot_e = None
            heappush(self._heap, (self._slot_t, 1, self._slot_s, event))
        if self._wcount or len(self._heap) >= self.WHEEL_THRESHOLD:
            if self._heap:
                self._drain_staging()
            entry = self._wheel_pop()
            if entry is None:
                raise EmptySchedule()
        else:
            try:
                entry = heappop(self._heap)
            except IndexError:
                raise EmptySchedule() from None
        self.now = entry[0]
        self._dispatch(entry[3])

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queues drain or the clock reaches ``until``.

        Two dispatch bodies share the loop (both faithful copies of
        :meth:`Engine.run`'s inlined fast lane, kept in sync): the *chain*
        body below dispatches slot-to-slot without re-entering the outer
        loop, the *general* body serves everything the wheel holds.
        """
        if until is not None and until < self.now:
            raise ValueError(f"until ({until}) is in the past (now={self.now})")
        horizon = float("inf") if until is None else until
        heap = self._heap          # staging inbox
        pool = self._timeout_pool
        push = heappush
        pop = heappop
        threshold = self.WHEEL_THRESHOLD
        while True:
            if not heap:
                event = self._slot_e
                if event is not None:
                    when = self._slot_t
                    if when > horizon:
                        break  # parked beyond the horizon: stays in slot
                    # ---- slot chain fast path (inlined Process._resume) ----
                    self._slot_e = None
                    self.now = when
                    popped = event
                    process = event._fast_process
                    callbacks = event.callbacks
                    event.callbacks = None
                    if process is not None:
                        while True:
                            try:
                                if event._ok:
                                    target = process._send(event._value)
                                else:
                                    event._defused = True
                                    target = process._throw(event._value)
                            except StopIteration as stop:
                                process._ok = True
                                process._value = stop.value
                                self._seq = seq = self._seq + 1
                                push(heap, (when, 1, seq, process))  # 1 == NORMAL
                            except BaseException as error:  # noqa: BLE001
                                process._ok = False
                                process._value = error
                                self._seq = seq = self._seq + 1
                                push(heap, (when, 1, seq, process))
                            else:
                                # Bare-delay sleeps dominate the chain, so
                                # probe them before the Event isinstance
                                # check (mirrors Engine.run).
                                tcls = type(target)
                                if (tcls is float or tcls is int) and target >= 0:
                                    # Bare-delay shorthand: re-arm a pooled
                                    # sleep and — the slot is free and the
                                    # wheel empty here — chain directly.
                                    if pool:
                                        timeout = pool.pop()
                                        timeout._fast_process = process
                                        timeout._value = None
                                        timeout.delay = target
                                        process._target = timeout
                                        self._seq = seq = self._seq + 1
                                        nwhen = when + target
                                        if self._slot_e is not None or self._wcount:
                                            # The send parked its own
                                            # timeout in the slot (or
                                            # engaged the wheel): stage
                                            # ours, the outer loop sorts
                                            # them out.
                                            push(heap, (nwhen, 1, seq, timeout))
                                        elif (
                                            not heap
                                            and not callbacks
                                            and nwhen <= horizon
                                        ):
                                            if type(popped) is PooledTimeout:
                                                popped.callbacks = callbacks
                                                pool.append(popped)
                                            self.now = when = nwhen
                                            popped = event = timeout
                                            callbacks = event.callbacks
                                            event.callbacks = None
                                            continue
                                        else:
                                            self._slot_t = nwhen
                                            self._slot_s = seq
                                            self._slot_e = timeout
                                    else:
                                        timeout = PooledTimeout(self, target)
                                        timeout._fast_process = process
                                        process._target = timeout
                                elif isinstance(target, Event):
                                    tcallbacks = target.callbacks
                                    if tcallbacks is None:
                                        # Already dispatched: feed it back in.
                                        event = target
                                        continue
                                    if target._fast_process is None and not tcallbacks:
                                        target._fast_process = process
                                        process._target = target
                                        # Chain: the yielded event is the one
                                        # just parked in the slot and nothing
                                        # else is pending — dispatch it now.
                                        if (
                                            not callbacks
                                            and target is self._slot_e
                                            and not heap
                                        ):
                                            nwhen = self._slot_t
                                            if nwhen <= horizon:
                                                if type(popped) is PooledTimeout:
                                                    popped.callbacks = callbacks
                                                    pool.append(popped)
                                                self._slot_e = None
                                                self.now = when = nwhen
                                                popped = event = target
                                                callbacks = event.callbacks
                                                event.callbacks = None
                                                continue
                                    else:
                                        tcallbacks.append(process._resume)
                                        process._target = target
                                else:
                                    if tcls is float or tcls is int:
                                        err: BaseException = RuntimeError(
                                            f"process yielded a negative delay: {target!r}"
                                        )
                                    else:
                                        err = RuntimeError(
                                            f"process yielded a non-event: {target!r}"
                                        )
                                    process._generator.close()
                                    process._ok = False
                                    process._value = err
                                    self._seq = seq = self._seq + 1
                                    push(heap, (when, 1, seq, process))
                            break
                        if not callbacks:
                            if type(popped) is PooledTimeout:
                                popped.callbacks = callbacks
                                pool.append(popped)
                            continue
                    if callbacks:
                        for callback in callbacks:
                            callback(popped)
                    if not popped._ok and not getattr(popped, "_defused", False):
                        raise popped._value
                    continue
                if not self._wcount:
                    break
                entry = self._wheel_pop()
            else:
                # Staged entries exist: spill the slot so ordering is
                # decided by one structure.
                event = self._slot_e
                if event is not None:
                    self._slot_e = None
                    push(heap, (self._slot_t, 1, self._slot_s, event))
                if self._wcount or len(heap) >= threshold:
                    self._drain_staging()
                    entry = self._wheel_pop()
                else:
                    # Shallow pending set: the staging heap IS the queue —
                    # identical to the heap kernel, no custody transfer.
                    entry = pop(heap)
            when = entry[0]
            if when > horizon:
                push(heap, entry)  # beyond the horizon: back to staging
                break
            # ---- general dispatch (mirrors Engine.run, kept in sync) ----
            popped = event = entry[3]
            self.now = when
            process = event._fast_process
            callbacks = event.callbacks
            event.callbacks = None
            if process is not None:
                while True:
                    try:
                        if event._ok:
                            target = process._send(event._value)
                        else:
                            event._defused = True
                            target = process._throw(event._value)
                    except StopIteration as stop:
                        process._ok = True
                        process._value = stop.value
                        self._seq = seq = self._seq + 1
                        push(heap, (when, 1, seq, process))  # 1 == NORMAL
                    except BaseException as error:  # noqa: BLE001
                        process._ok = False
                        process._value = error
                        self._seq = seq = self._seq + 1
                        push(heap, (when, 1, seq, process))
                    else:
                        # Bare-delay sleeps dominate: probe them before
                        # the Event isinstance check (mirrors Engine.run).
                        tcls = type(target)
                        if (tcls is float or tcls is int) and target >= 0:
                            if pool:
                                timeout = pool.pop()
                                timeout._fast_process = process
                                timeout._value = None
                                timeout.delay = target
                                self._seq = seq = self._seq + 1
                                if (
                                    self._slot_e is None
                                    and not self._wcount
                                    and not heap
                                ):
                                    self._slot_t = when + target
                                    self._slot_s = seq
                                    self._slot_e = timeout
                                else:
                                    push(heap, (when + target, 1, seq, timeout))
                            else:
                                timeout = PooledTimeout(self, target)
                                timeout._fast_process = process
                            process._target = timeout
                        elif isinstance(target, Event):
                            tcallbacks = target.callbacks
                            if tcallbacks is None:
                                event = target
                                continue
                            if target._fast_process is None and not tcallbacks:
                                target._fast_process = process
                            else:
                                tcallbacks.append(process._resume)
                            process._target = target
                        else:
                            if tcls is float or tcls is int:
                                err = RuntimeError(
                                    f"process yielded a negative delay: {target!r}"
                                )
                            else:
                                err = RuntimeError(
                                    f"process yielded a non-event: {target!r}"
                                )
                            process._generator.close()
                            process._ok = False
                            process._value = err
                            self._seq = seq = self._seq + 1
                            push(heap, (when, 1, seq, process))
                    break
                if not callbacks:
                    if type(popped) is PooledTimeout:
                        popped.callbacks = callbacks
                        pool.append(popped)
                    continue
            if callbacks:
                for callback in callbacks:
                    callback(popped)
            if not popped._ok and not getattr(popped, "_defused", False):
                raise popped._value
        if until is not None and until > self.now:
            self.now = until
