"""Seeded random-stream management.

Simulation components that need randomness (PCAP verification failures,
synthetic workload generation, partitioning) must not share one global
RNG: interleaving order would then change results when an unrelated
component is added.  :class:`SeededStreams` derives an independent,
reproducible ``random.Random`` per named consumer from one root seed.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, Union


def derive_seed(root_seed: Union[int, str], name: str) -> int:
    """A child seed derived from ``(root_seed, name)`` by a stable digest.

    Built on SHA-256 rather than :func:`hash`: the builtin is salted by
    ``PYTHONHASHSEED``, so a ``hash()``-derived seed is *not* reproducible
    across interpreter processes — exactly the boundary campaign workers
    and fleet shards cross.
    """
    digest = hashlib.sha256(f"{root_seed}/{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") & 0x7FFFFFFF


class SeededStreams:
    """A family of independent named RNG streams under one root seed."""

    def __init__(self, root_seed: Union[int, str]) -> None:
        self.root_seed = root_seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """The stream for ``name`` (created deterministically on first use)."""
        if name not in self._streams:
            self._streams[name] = random.Random(f"{self.root_seed}/{name}")
        return self._streams[name]

    def spawn(self, name: str) -> "SeededStreams":
        """A child family, itself deterministic under the root seed.

        The child's root seed comes from :func:`derive_seed`, so spawning
        the same name under the same root yields identical streams in
        every process regardless of hash randomization.
        """
        return SeededStreams(derive_seed(self.root_seed, name))

    def __contains__(self, name: str) -> bool:
        return name in self._streams
