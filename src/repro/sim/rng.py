"""Seeded random-stream management.

Simulation components that need randomness (PCAP verification failures,
synthetic workload generation, partitioning) must not share one global
RNG: interleaving order would then change results when an unrelated
component is added.  :class:`SeededStreams` derives an independent,
reproducible ``random.Random`` per named consumer from one root seed.
"""

from __future__ import annotations

import random
from typing import Dict


class SeededStreams:
    """A family of independent named RNG streams under one root seed."""

    def __init__(self, root_seed: int) -> None:
        self.root_seed = root_seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """The stream for ``name`` (created deterministically on first use)."""
        if name not in self._streams:
            self._streams[name] = random.Random(f"{self.root_seed}/{name}")
        return self._streams[name]

    def spawn(self, name: str) -> "SeededStreams":
        """A child family, itself deterministic under the root seed."""
        return SeededStreams(hash((self.root_seed, name)) & 0x7FFFFFFF)

    def __contains__(self, name: str) -> bool:
        return name in self._streams
