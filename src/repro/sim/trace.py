"""Structured tracing for simulation runs.

A :class:`Tracer` records ``(time, category, payload)`` tuples.  The metrics
layer and several tests consume traces; experiment runners disable tracing
for speed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One trace entry."""

    time: float
    category: str
    payload: Dict[str, Any]

    def __getitem__(self, key: str) -> Any:
        return self.payload[key]


@dataclass(slots=True)
class Tracer:
    """Collects :class:`TraceRecord` entries when enabled."""

    enabled: bool = True
    records: List[TraceRecord] = field(default_factory=list)

    def emit(self, time: float, category: str, **payload: Any) -> None:
        """Record an event if tracing is enabled."""
        if self.enabled:
            self.records.append(TraceRecord(time, category, payload))

    def filter(self, category: str) -> Iterator[TraceRecord]:
        """Iterate over records of one category, in time order."""
        return (record for record in self.records if record.category == category)

    def count(self, category: Optional[str] = None) -> int:
        """Number of records, optionally restricted to one category."""
        if category is None:
            return len(self.records)
        return sum(1 for record in self.records if record.category == category)

    def clear(self) -> None:
        """Drop all recorded entries."""
        self.records.clear()


#: A tracer that drops everything; handy default for hot paths.
NULL_TRACER = Tracer(enabled=False)
