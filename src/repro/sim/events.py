"""Event primitives for the discrete-event simulation kernel.

The kernel follows the classic coroutine style: model code is written as
generator functions that ``yield`` events; the engine resumes a generator
when the event it waits on fires.  Three event flavours cover everything the
VersaSlot models need:

* :class:`Event` — a one-shot signal that can succeed with a value or fail
  with an exception.
* :class:`Timeout` — an event that fires after a simulated delay.
* :class:`Process` — a running generator; it is itself an event that fires
  when the generator returns, so processes can wait on each other.

:class:`AllOf` / :class:`AnyOf` compose events, and
:meth:`Process.interrupt` injects an :class:`Interrupt` exception into a
waiting process (used for preemption and live migration).
"""

from __future__ import annotations

from typing import Any, Callable, Generator, List, Optional

#: Sentinel marking an event that has not been triggered yet.
PENDING = object()

#: Scheduling priorities; lower sorts earlier among same-time events.
URGENT = 0
NORMAL = 1


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None


class Event:
    """A one-shot condition that processes can wait for.

    Events move through three states: *pending* (just created), *triggered*
    (a value or an exception has been set and the event is queued in the
    engine), and *processed* (the engine has run its callbacks).
    """

    def __init__(self, engine: "Engine") -> None:  # noqa: F821
        self.engine = engine
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok = True
        self._defused = False

    @property
    def triggered(self) -> bool:
        """True once the event has a value or an exception."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once the engine has dispatched the callbacks."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value; raises if the event is still pending."""
        if self._value is PENDING:
            raise RuntimeError("event value is not available yet")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.engine.enqueue(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        A waiting process receives the exception via ``throw``.  If nothing
        ever waits on a failed event the engine raises the exception at
        dispatch time so errors never pass silently.
        """
        if self.triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.engine.enqueue(self)
        return self

    def __repr__(self) -> str:
        state = "pending"
        if self.processed:
            state = "processed"
        elif self.triggered:
            state = "triggered"
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` simulated time units in the future."""

    def __init__(self, engine: "Engine", delay: float, value: Any = None) -> None:  # noqa: F821
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(engine)
        self.delay = delay
        self._ok = True
        self._value = value
        self.engine.enqueue(self, delay=delay)


class Initialize(Event):
    """Internal event that starts a freshly created process."""

    def __init__(self, engine: "Engine", process: "Process") -> None:  # noqa: F821
        super().__init__(engine)
        self._ok = True
        self._value = None
        self.callbacks.append(process._resume)
        self.engine.enqueue(self, priority=URGENT)


class Process(Event):
    """A running generator coroutine.

    The generator yields :class:`Event` instances.  When a yielded event
    fires, the generator is resumed with the event's value (or the event's
    exception is thrown into it).  The process itself is an event that
    succeeds with the generator's return value, so ``yield other_process``
    waits for completion.
    """

    def __init__(self, engine: "Engine", generator: Generator) -> None:  # noqa: F821
        if not hasattr(generator, "send"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(engine)
        self._generator = generator
        self._target: Optional[Event] = None
        Initialize(engine, self)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._value is PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process.

        The process is detached from whatever event it currently waits on;
        that event stays valid and may still fire for other waiters.
        Interrupting a finished process is an error.
        """
        if not self.is_alive:
            raise RuntimeError(f"{self!r} has terminated and cannot be interrupted")
        if self._target is None:
            raise RuntimeError(f"{self!r} is not yet waiting and cannot be interrupted")
        event = Event(self.engine)
        event._ok = False
        event._value = Interrupt(cause)
        event._defused = True
        if self._target.callbacks is not None and self._resume in self._target.callbacks:
            self._target.callbacks.remove(self._resume)
        self._target = None
        event.callbacks.append(self._resume)
        self.engine.enqueue(event, priority=URGENT)

    def _resume(self, event: Optional[Event]) -> None:
        """Advance the generator with the outcome of ``event``."""
        self.engine._active_process = self
        while True:
            try:
                if event is None:
                    target = self._generator.send(None)
                elif event._ok:
                    target = self._generator.send(event._value)
                else:
                    event._defused = True
                    target = self._generator.throw(event._value)
            except StopIteration as stop:
                self._ok = True
                self._value = stop.value
                self.engine.enqueue(self)
                break
            except BaseException as error:  # noqa: BLE001 - forwarded to waiters
                self._ok = False
                self._value = error
                self.engine.enqueue(self)
                break
            if not isinstance(target, Event):
                error = RuntimeError(f"process yielded a non-event: {target!r}")
                self._generator.close()
                self._ok = False
                self._value = error
                self.engine.enqueue(self)
                break
            if target.processed:
                # Already dispatched: resume immediately with its outcome.
                event = target
                continue
            target.callbacks.append(self._resume)
            self._target = target
            break
        self.engine._active_process = None


class ConditionEvent(Event):
    """Base for events composed of several child events."""

    def __init__(self, engine: "Engine", events: List[Event]) -> None:  # noqa: F821
        super().__init__(engine)
        self.events = list(events)
        for child in self.events:
            if child.engine is not engine:
                raise ValueError("cannot mix events from different engines")

    @staticmethod
    def _outcome(event: Event) -> Any:
        return event._value


class AllOf(ConditionEvent):
    """Fires when all child events have fired; value is the list of values.

    Fails fast with the first child failure.
    """

    def __init__(self, engine: "Engine", events: List[Event]) -> None:  # noqa: F821
        super().__init__(engine, events)
        self._remaining = 0
        for child in self.events:
            if child.processed:
                self._collect(child)
            else:
                self._remaining += 1
                child.callbacks.append(self._collect)
        if self._remaining == 0 and not self.triggered:
            self.succeed([self._outcome(child) for child in self.events])

    def _collect(self, child: Event) -> None:
        if self.triggered:
            return
        if not child._ok:
            child._defused = True
            self.fail(child._value)
            return
        self._remaining -= 1
        if self._remaining <= 0:
            pending = [c for c in self.events if not c.triggered]
            if not pending:
                self.succeed([self._outcome(child) for child in self.events])


class AnyOf(ConditionEvent):
    """Fires when the first child event fires; value is that child's value."""

    def __init__(self, engine: "Engine", events: List[Event]) -> None:  # noqa: F821
        super().__init__(engine, events)
        if not self.events:
            raise ValueError("AnyOf requires at least one event")
        done = next((c for c in self.events if c.processed), None)
        if done is not None:
            self._collect(done)
        else:
            for child in self.events:
                child.callbacks.append(self._collect)

    def _collect(self, child: Event) -> None:
        if self.triggered:
            return
        if child._ok:
            self.succeed(self._outcome(child))
        else:
            child._defused = True
            self.fail(child._value)
