"""Event primitives for the discrete-event simulation kernel.

The kernel follows the classic coroutine style: model code is written as
generator functions that ``yield`` events; the engine resumes a generator
when the event it waits on fires.  Three event flavours cover everything the
VersaSlot models need:

* :class:`Event` — a one-shot signal that can succeed with a value or fail
  with an exception.
* :class:`Timeout` — an event that fires after a simulated delay.
* :class:`Process` — a running generator; it is itself an event that fires
  when the generator returns, so processes can wait on each other.

:class:`AllOf` / :class:`AnyOf` compose events, and
:meth:`Process.interrupt` injects an :class:`Interrupt` exception into a
waiting process (used for preemption and live migration).

Everything here is hot-path code: a figure campaign dispatches millions of
events, so the classes use ``__slots__`` (no per-instance dict), the
constructors of the high-volume events are flattened (no ``super()``
chains), and a waiting process registers itself on the event's
``_fast_process`` slot instead of allocating into the callback list — the
engine resumes it directly at dispatch (the *fast lane*).  Same-time
ordering is identical to the callback path: the fast process is always the
first waiter, and the engine runs it before any listed callbacks.
"""

from __future__ import annotations

from heapq import heappush
from typing import Any, Callable, Generator, List, Optional

#: Sentinel marking an event that has not been triggered yet.
PENDING = object()

#: Scheduling priorities; lower sorts earlier among same-time events.
URGENT = 0
NORMAL = 1


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None


class Event:
    """A one-shot condition that processes can wait for.

    Events move through three states: *pending* (just created), *triggered*
    (a value or an exception has been set and the event is queued in the
    engine), and *processed* (the engine has run its callbacks).

    A process waiting on the event sits in ``_fast_process`` when it is the
    first waiter; any further waiters (or non-process listeners such as
    condition events) append to ``callbacks`` as before.
    """

    __slots__ = ("engine", "callbacks", "_value", "_ok", "_defused", "_fast_process")

    def __init__(self, engine: "Engine") -> None:  # noqa: F821
        # ``_defused`` stays unset until a failure path writes it: it is
        # only ever read after a failed dispatch, and those readers use a
        # defaulted getattr.  Skipping the store matters — this runs once
        # per simulated event.
        self.engine = engine
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok = True
        self._fast_process: Optional["Process"] = None

    @property
    def triggered(self) -> bool:
        """True once the event has a value or an exception."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once the engine has dispatched the callbacks."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value; raises if the event is still pending."""
        if self._value is PENDING:
            raise RuntimeError("event value is not available yet")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        # Inlined Engine.enqueue(self): succeed() fires per resource grant
        # and per pipeline-item completion.
        engine = self.engine
        engine._seq = seq = engine._seq + 1
        heappush(engine._heap, (engine.now, NORMAL, seq, self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        A waiting process receives the exception via ``throw``.  If nothing
        ever waits on a failed event the engine raises the exception at
        dispatch time so errors never pass silently.
        """
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.engine.enqueue(self)
        return self

    def __repr__(self) -> str:
        state = "pending"
        if self.callbacks is None:
            state = "processed"
        elif self._value is not PENDING:
            state = "triggered"
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` simulated time units in the future."""

    __slots__ = ("delay",)

    def __init__(self, engine: "Engine", delay: float, value: Any = None) -> None:  # noqa: F821
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        # Flattened Event.__init__ plus immediate self-scheduling: this
        # constructor runs once per simulated event in every model loop.
        # ``_defused`` stays unset: it is only ever read after ``fail()``,
        # which a born-triggered timeout rejects.
        self.engine = engine
        self.callbacks = []
        self._value = value
        self._ok = True
        self._fast_process = None
        self.delay = delay
        engine._seq = seq = engine._seq + 1
        heappush(engine._heap, (engine.now + delay, NORMAL, seq, self))


class PooledTimeout(Timeout):
    """A :class:`Timeout` from :meth:`Engine.sleep`'s free list.

    The subclass *is* the pool membership flag: the engine recycles
    instances after a fast-lane dispatch with no other listeners, without
    a per-instance attribute on the plain :class:`Timeout` hot path.
    """

    __slots__ = ()


class Initialize(Event):
    """Internal event that starts a freshly created process."""

    __slots__ = ()

    def __init__(self, engine: "Engine", process: "Process") -> None:  # noqa: F821
        self.engine = engine
        self.callbacks = []
        self._value = None
        self._ok = True
        # Start-up is just the first fast-lane resume of the process.
        self._fast_process = process
        engine._seq = seq = engine._seq + 1
        heappush(engine._heap, (engine.now, URGENT, seq, self))


class Process(Event):
    """A running generator coroutine.

    The generator yields :class:`Event` instances.  When a yielded event
    fires, the generator is resumed with the event's value (or the event's
    exception is thrown into it).  The process itself is an event that
    succeeds with the generator's return value, so ``yield other_process``
    waits for completion.
    """

    __slots__ = ("_generator", "_send", "_throw", "_target")

    def __init__(self, engine: "Engine", generator: Generator) -> None:  # noqa: F821
        if not hasattr(generator, "send"):
            raise TypeError(f"{generator!r} is not a generator")
        self.engine = engine
        self.callbacks = []
        self._value = PENDING
        self._ok = True
        self._fast_process = None
        self._generator = generator
        self._send = generator.send
        self._throw = generator.throw
        self._target: Optional[Event] = None
        Initialize(engine, self)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._value is PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process.

        The process is detached from whatever event it currently waits on;
        that event stays valid and may still fire for other waiters.
        Interrupting a finished process is an error.
        """
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has terminated and cannot be interrupted")
        target = self._target
        if target is None:
            raise RuntimeError(f"{self!r} is not yet waiting and cannot be interrupted")
        event = Event(self.engine)
        event._ok = False
        event._value = Interrupt(cause)
        event._defused = True
        if target._fast_process is self:
            target._fast_process = None
        elif target.callbacks is not None and self._resume in target.callbacks:
            target.callbacks.remove(self._resume)
        self._target = None
        event._fast_process = self
        self.engine.enqueue(event, priority=URGENT)

    def _resume(self, event: Event) -> None:
        """Advance the generator with the outcome of ``event``."""
        send = self._send
        while True:
            try:
                if event._ok:
                    target = send(event._value)
                else:
                    event._defused = True
                    target = self._throw(event._value)
            except StopIteration as stop:
                self._ok = True
                self._value = stop.value
                self.engine.enqueue(self)
                return
            except BaseException as error:  # noqa: BLE001 - forwarded to waiters
                self._ok = False
                self._value = error
                self.engine.enqueue(self)
                return
            if isinstance(target, Event):
                callbacks = target.callbacks
                if callbacks is None:
                    # Already dispatched: resume immediately with its outcome.
                    event = target
                    continue
                if target._fast_process is None and not callbacks:
                    # First waiter: take the fast lane — the engine resumes
                    # this process directly, no callback-list traffic.
                    target._fast_process = self
                else:
                    callbacks.append(self._resume)
                self._target = target
                return
            cls = type(target)
            if (cls is float or cls is int) and target >= 0:
                # Bare-delay shorthand: ``yield 3.5`` schedules a pooled
                # sleep with this process on the fast lane — the cheapest
                # way for model loops to advance simulated time.
                timeout = self.engine.sleep(target)
                timeout._fast_process = self
                self._target = timeout
                return
            if cls is float or cls is int:
                error: BaseException = RuntimeError(
                    f"process yielded a negative delay: {target!r}"
                )
            else:
                error = RuntimeError(f"process yielded a non-event: {target!r}")
            self._generator.close()
            self._ok = False
            self._value = error
            self.engine.enqueue(self)
            return


class ConditionEvent(Event):
    """Base for events composed of several child events."""

    __slots__ = ("events",)

    def __init__(self, engine: "Engine", events: List[Event]) -> None:  # noqa: F821
        super().__init__(engine)
        self.events = list(events)
        for child in self.events:
            if child.engine is not engine:
                raise ValueError("cannot mix events from different engines")

    @staticmethod
    def _outcome(event: Event) -> Any:
        return event._value


class AllOf(ConditionEvent):
    """Fires when all child events have fired; value is the list of values.

    Fails fast with the first child failure.  ``_remaining`` counts the
    children whose dispatch is still outstanding, so each completion is
    O(1) — no rescan of the child list.
    """

    __slots__ = ("_remaining",)

    def __init__(self, engine: "Engine", events: List[Event]) -> None:  # noqa: F821
        super().__init__(engine, events)
        remaining = 0
        for child in self.events:
            if child.callbacks is None:  # already dispatched
                if not child._ok:
                    child._defused = True
                    self._remaining = 0
                    self.fail(child._value)
                    return
            else:
                remaining += 1
                child.callbacks.append(self._collect)
        self._remaining = remaining
        if remaining == 0 and self._value is PENDING:
            self.succeed([child._value for child in self.events])

    def _collect(self, child: Event) -> None:
        if self._value is not PENDING:
            return
        if not child._ok:
            child._defused = True
            self.fail(child._value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([c._value for c in self.events])


class AnyOf(ConditionEvent):
    """Fires when the first child event fires; value is that child's value."""

    __slots__ = ()

    def __init__(self, engine: "Engine", events: List[Event]) -> None:  # noqa: F821
        super().__init__(engine, events)
        if not self.events:
            raise ValueError("AnyOf requires at least one event")
        done = next((c for c in self.events if c.callbacks is None), None)
        if done is not None:
            self._collect(done)
        else:
            for child in self.events:
                child.callbacks.append(self._collect)

    def _collect(self, child: Event) -> None:
        if self._value is not PENDING:
            return
        if child._ok:
            self.succeed(child._value)
        else:
            child._defused = True
            self.fail(child._value)
