"""Shared-resource primitives built on the event kernel.

:class:`Resource` models anything with finite capacity that processes
acquire and release — CPU cores, the PCAP port, DMA channels.  Requests are
granted strictly FIFO, which mirrors the hardware arbiters the paper
describes (the PCAP serializes bitstream loads in arrival order).

:class:`Store` is an unbounded FIFO of items with blocking ``get``; the
VersaSlot PR server consumes reconfiguration requests from one.
"""

from __future__ import annotations

from collections import deque
from heapq import heappush
from typing import Any, Deque, List, Optional

from .engine import Engine
from .events import Event, PENDING


class Request(Event):
    """A pending acquisition of one unit of a :class:`Resource`.

    The request fires when the unit is granted.  A waiter that gives up
    (e.g. a preempted process) must call :meth:`cancel` so the unit is not
    granted to a dead request.

    ``wait_started`` records the enqueue time directly on the request —
    keying a side table by ``id(request)`` would cross-wire wait-time
    accounting when the interpreter reuses object ids after GC.

    ``in_queue`` tracks live membership in the resource's waiting deque:
    abandoning a request clears the flag and leaves the entry in place
    (lazy removal), so a cancel is a pair of O(1) increments instead of an
    O(n) deque scan.
    """

    __slots__ = ("resource", "cancelled", "wait_started", "in_queue")

    def __init__(self, resource: "Resource") -> None:
        engine = resource.engine
        # Flattened Event.__init__: requests are created per batch-item
        # launch, squarely on the hot path.
        self.engine = engine
        self.callbacks = []
        self._value = PENDING
        self._ok = True
        self._fast_process = None
        self.resource = resource
        self.cancelled = False
        self.in_queue = False
        self.wait_started = engine.now

    def cancel(self) -> None:
        """Withdraw the request; releases the unit if already granted."""
        if self.cancelled:
            return
        self.cancelled = True
        if self.triggered:
            self.resource.release()
        else:
            self.resource._abandon(self)


class Resource:
    """A FIFO resource with integer capacity.

    Usage from a process::

        request = resource.acquire()
        yield request
        try:
            yield engine.timeout(10.0)
        finally:
            resource.release()
    """

    __slots__ = ("engine", "capacity", "name", "_in_use", "_waiting",
                 "_busy_time", "_last_change", "total_grants", "total_wait_time",
                 "total_abandoned", "abandon_misses", "_cancelled_waiting")

    def __init__(self, engine: Engine, capacity: int = 1, name: str = "") -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.engine = engine
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiting: Deque[Request] = deque()
        # Accounting for utilization metrics.
        self._busy_time = 0.0
        self._last_change = engine.now
        self.total_grants = 0
        self.total_wait_time = 0.0
        self.total_abandoned = 0
        self.abandon_misses = 0
        # Lazily-abandoned entries still physically present in _waiting.
        self._cancelled_waiting = 0

    # ------------------------------------------------------------------
    @property
    def in_use(self) -> int:
        """Number of currently granted units."""
        return self._in_use

    @property
    def available(self) -> int:
        """Number of free units."""
        return self.capacity - self._in_use

    @property
    def queue_length(self) -> int:
        """Number of live requests waiting for a unit.

        Abandoned requests stay in the deque until a release walks past
        them, so subtract the lazy-removal count.
        """
        return len(self._waiting) - self._cancelled_waiting

    def acquire(self) -> Request:
        """Request one unit; the returned event fires when granted."""
        # Inlined Request.__init__ (kept in sync): one call frame instead
        # of two on the per-item launch path.
        engine = self.engine
        request = Request.__new__(Request)
        request.engine = engine
        request.callbacks = []
        request._value = PENDING
        request._ok = True
        request._fast_process = None
        request.resource = self
        request.cancelled = False
        request.wait_started = engine.now
        if self._in_use < self.capacity:
            # Inlined _grant + Event.succeed for the uncontended case (the
            # per-item launch path): zero queue wait, trigger in place.
            now = engine.now
            self._busy_time += self._in_use * (now - self._last_change)
            self._last_change = now
            self._in_use += 1
            self.total_grants += 1
            request._value = self
            engine._seq = seq = engine._seq + 1
            heappush(engine._heap, (now, 1, seq, request))  # 1 == NORMAL
        else:
            request.in_queue = True
            self._waiting.append(request)
        return request

    def try_acquire(self) -> Optional[Request]:
        """Acquire one unit, granting in place when uncontended.

        Returns ``None`` when a unit was free: the grant is applied
        synchronously (same accounting as :meth:`acquire`) with no Request
        object, no heap push, and no dispatch round-trip — the caller must
        NOT yield and still owns a :meth:`release`.  When the resource is
        busy, returns a queued :class:`Request` the caller must yield on,
        exactly as :meth:`acquire` would.
        """
        if self._in_use < self.capacity:
            now = self.engine.now
            self._busy_time += self._in_use * (now - self._last_change)
            self._last_change = now
            self._in_use += 1
            self.total_grants += 1
            return None
        engine = self.engine
        request = Request.__new__(Request)
        request.engine = engine
        request.callbacks = []
        request._value = PENDING
        request._ok = True
        request._fast_process = None
        request.resource = self
        request.cancelled = False
        request.in_queue = True
        request.wait_started = engine.now
        self._waiting.append(request)
        return request

    def release(self) -> None:
        """Return one unit and grant the oldest live waiter, if any."""
        in_use = self._in_use
        if in_use <= 0:
            raise RuntimeError(f"release() on idle resource {self.name!r}")
        # Inlined _account(): release/grant pairs run per batch-item launch.
        now = self.engine.now
        self._busy_time += in_use * (now - self._last_change)
        self._last_change = now
        self._in_use = in_use - 1
        waiting = self._waiting
        while waiting:
            request = waiting.popleft()
            if request.in_queue:
                request.in_queue = False
                self._grant(request)
                break
            # Lazily-abandoned entry: drop it and fix the live count.
            self._cancelled_waiting -= 1

    def busy_fraction(self, horizon: Optional[float] = None) -> float:
        """Time-weighted mean utilization since creation.

        ``horizon`` defaults to the current simulation time.
        """
        end = self.engine.now if horizon is None else horizon
        if end <= 0:
            return 0.0
        busy = self._busy_time + self._in_use * (end - self._last_change)
        return busy / (end * self.capacity)

    # ------------------------------------------------------------------
    def _grant(self, request: Request) -> None:
        now = self.engine.now
        self._busy_time += self._in_use * (now - self._last_change)
        self._last_change = now
        self._in_use += 1
        self.total_grants += 1
        self.total_wait_time += now - request.wait_started
        request.succeed(self)

    def _abandon(self, request: Request) -> None:
        if request.in_queue:
            # Lazy removal: flag the entry dead and let release() discard
            # it in passing — two O(1) increments instead of an O(n)
            # deque scan on the cancel path.
            request.in_queue = False
            self.total_abandoned += 1
            self._cancelled_waiting += 1
        else:
            # A cancel for a request this resource is no longer holding.
            # cancel() is idempotent and release() only discards requests
            # that were already cancelled, so in a healthy simulation this
            # never fires — count it instead of swallowing it so the
            # invariant layer (and tests) can see the mismatch.
            self.abandon_misses += 1

    def _account(self) -> None:
        now = self.engine.now
        self._busy_time += self._in_use * (now - self._last_change)
        self._last_change = now


class Store:
    """An unbounded FIFO of items with blocking ``get``."""

    __slots__ = ("engine", "name", "_items", "_getters", "total_puts")

    def __init__(self, engine: Engine, name: str = "") -> None:
        self.engine = engine
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self.total_puts = 0

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Add ``item``; wakes the oldest waiting getter immediately."""
        self.total_puts += 1
        while self._getters:
            getter = self._getters.popleft()
            if not getter.triggered:
                getter.succeed(item)
                return
        self._items.append(item)

    def get(self) -> Event:
        """An event that fires with the next item (FIFO)."""
        event = Event(self.engine)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def items(self) -> List[Any]:
        """Snapshot of queued items (oldest first)."""
        return list(self._items)
