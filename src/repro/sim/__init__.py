"""Deterministic discrete-event simulation kernel used by every substrate."""

from .engine import EmptySchedule, Engine
from .events import AllOf, AnyOf, Event, Interrupt, Process, Timeout
from .resources import Request, Resource, Store
from .rng import SeededStreams, derive_seed
from .trace import NULL_TRACER, TraceRecord, Tracer
from .wheel import WheelEngine

__all__ = [
    "AllOf",
    "AnyOf",
    "EmptySchedule",
    "Engine",
    "Event",
    "Interrupt",
    "NULL_TRACER",
    "Process",
    "Request",
    "Resource",
    "SeededStreams",
    "Store",
    "Timeout",
    "TraceRecord",
    "Tracer",
    "WheelEngine",
    "derive_seed",
]
