"""Deterministic discrete-event simulation kernel used by every substrate."""

from .engine import EmptySchedule, Engine
from .events import AllOf, AnyOf, Event, Interrupt, Process, Timeout
from .resources import Request, Resource, Store
from .rng import SeededStreams, derive_seed
from .trace import NULL_TRACER, TraceRecord, Tracer
from .wheel import WheelEngine

#: The kernel production entry points instantiate when the caller does not
#: pick one (``simulate_run``, campaigns, fleet, fuzzing).  The wheel is
#: bit-identical to :class:`Engine` by construction (the oracle enforces
#: it), so this is purely a performance default; ``--kernel heap`` still
#: selects the binary-heap kernel everywhere.
DEFAULT_ENGINE = WheelEngine

__all__ = [
    "AllOf",
    "AnyOf",
    "DEFAULT_ENGINE",
    "EmptySchedule",
    "Engine",
    "Event",
    "Interrupt",
    "NULL_TRACER",
    "Process",
    "Request",
    "Resource",
    "SeededStreams",
    "Store",
    "Timeout",
    "TraceRecord",
    "Tracer",
    "WheelEngine",
    "derive_seed",
]
