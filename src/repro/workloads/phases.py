"""Phase-structured and Poisson workloads.

The Fig. 8 switching experiment needs workloads whose congestion varies
over time so the D_switch metric actually moves; :class:`PhasedWorkload`
composes arbitrary interval phases.  :func:`poisson_sequence` provides
memoryless arrivals as an alternative to the paper's uniform intervals
(used by robustness tests).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..apps.benchmarks import BENCHMARKS
from .generator import BATCH_RANGE, Arrival


@dataclass(frozen=True)
class Phase:
    """A span of arrivals with one interval distribution."""

    #: Number of applications arriving in this phase.
    count: int
    #: Uniform interval bounds between arrivals (ms).
    interval_lo_ms: float
    interval_hi_ms: float

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError(f"phase count must be >= 1, got {self.count}")
        if not (0 < self.interval_lo_ms <= self.interval_hi_ms):
            raise ValueError(
                f"bad interval bounds [{self.interval_lo_ms}, {self.interval_hi_ms}]"
            )


class PhasedWorkload:
    """A workload built from consecutive interval phases."""

    def __init__(self, phases: Sequence[Phase], seed: int,
                 batch_range: Tuple[int, int] = BATCH_RANGE) -> None:
        if not phases:
            raise ValueError("need at least one phase")
        self.phases = list(phases)
        self.seed = seed
        self.batch_range = batch_range

    @property
    def total_apps(self) -> int:
        return sum(phase.count for phase in self.phases)

    def generate(self) -> List[Arrival]:
        """Materialize the arrival sequence."""
        rng = random.Random(f"phased/{self.seed}")
        names = list(BENCHMARKS)
        lo_batch, hi_batch = self.batch_range
        arrivals: List[Arrival] = []
        t = 0.0
        for phase in self.phases:
            for _ in range(phase.count):
                arrivals.append(
                    Arrival(
                        app_name=rng.choice(names),
                        batch_size=rng.randint(lo_batch, hi_batch),
                        time_ms=t,
                    )
                )
                t += rng.uniform(phase.interval_lo_ms, phase.interval_hi_ms)
        return arrivals


def ramp_workload(seed: int, n_apps: int, relaxed_ms: Tuple[float, float],
                  dense_ms: Tuple[float, float]) -> List[Arrival]:
    """Relaxed -> dense -> relaxed, thirds; the Fig. 8 trace shape."""
    third = max(1, n_apps // 3)
    phases = [
        Phase(third, *relaxed_ms),
        Phase(third, *dense_ms),
        Phase(max(1, n_apps - 2 * third), *relaxed_ms),
    ]
    return PhasedWorkload(phases, seed).generate()


def poisson_sequence(seed: int, n_apps: int, mean_interval_ms: float,
                     batch_range: Tuple[int, int] = BATCH_RANGE) -> List[Arrival]:
    """Memoryless arrivals with exponential inter-arrival times."""
    if mean_interval_ms <= 0:
        raise ValueError(f"mean interval must be positive, got {mean_interval_ms}")
    if n_apps < 1:
        raise ValueError(f"n_apps must be >= 1, got {n_apps}")
    rng = random.Random(f"poisson/{seed}")
    names = list(BENCHMARKS)
    lo, hi = batch_range
    arrivals: List[Arrival] = []
    t = 0.0
    for _ in range(n_apps):
        arrivals.append(
            Arrival(app_name=rng.choice(names), batch_size=rng.randint(lo, hi), time_ms=t)
        )
        t += rng.expovariate(1.0 / mean_interval_ms)
    return arrivals
