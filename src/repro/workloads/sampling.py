"""Batched RNG sampling, bit-identical to ``random.Random`` streams.

Workload generation draws arrival names, batch sizes and inter-arrival
gaps from string-seeded ``random.Random`` streams.  :class:`BatchSampler`
reproduces those *exact* streams a block at a time, through one of two
backends:

* **python** — a scalar loop over the underlying ``random.Random``; by
  construction sample-identical to hand-written scalar code.
* **numpy** — the same Mersenne-Twister word stream generated in bulk via
  ``numpy.random.MT19937`` and transformed vectorized.  Equivalence rests
  on four facts (each pinned by ``tests/test_sampling.py``):

  1. CPython seeds ``random.Random(str_seed)`` by ``init_by_array`` over
     the little-endian 32-bit words of
     ``int.from_bytes(seed_bytes + sha512(seed_bytes).digest(), "big")``;
     numpy's legacy seeding runs the identical ``init_by_array`` for
     multi-word keys (string seeds always produce ≥ 16 words — the
     single-word path differs, so integer seeds are rejected here).
  2. ``MT19937.random_raw(n)`` emits the same 32-bit word stream as
     repeated ``getrandbits(32)``.
  3. ``random()`` folds two words as
     ``((a >> 5) * 2**26 + (b >> 6)) / 2**53`` — exact in float64.
  4. ``_randbelow(n)`` takes ``k = n.bit_length()`` top bits of one word
     and rejects values ``>= n``; rejection is per-word in stream order,
     so a vectorized mask-and-take over a word block accepts exactly the
     draws the scalar loop would.  Unconsumed words return to an internal
     buffer, keeping the stream position word-exact across blocks.

The numpy import is lazy and guarded: without numpy installed (the
``repro[fast]`` extra), every sampler silently runs the python backend
and produces byte-identical samples — only slower.

The one stream this module must *not* replace is
:meth:`WorkloadGenerator.sequence`, whose interleaved per-arrival draw
order is pinned by the PR-2 goldens; fleet streams (restructured into
phased blocks in PR 6) are the vectorization target.
"""

from __future__ import annotations

import random
from typing import List, Sequence

#: Sentinel distinguishing "never tried" from "tried and missing".
_UNSET = object()
_numpy_module = _UNSET


def numpy_or_none():
    """The ``numpy`` module, or None when the extra is not installed.

    Imported lazily on first call so that merely importing the workloads
    package never pays for (or requires) numpy.
    """
    global _numpy_module
    if _numpy_module is _UNSET:
        try:
            import numpy
        except ImportError:
            numpy = None
        _numpy_module = numpy
    return _numpy_module


def _seed_key_words(seed: str) -> List[int]:
    """CPython's ``random.Random(str)`` init_by_array key, LSW first."""
    import hashlib

    data = seed.encode()
    value = int.from_bytes(data + hashlib.sha512(data).digest(), "big")
    words = []
    while value:
        words.append(value & 0xFFFFFFFF)
        value >>= 32
    return words or [0]


class BatchSampler:
    """Block-at-a-time sampling from one string-seeded MT19937 stream.

    Draw methods must be called in the same order (and with the same
    counts) as the scalar code they replace; each consumes exactly the
    words the equivalent ``random.Random`` calls would.  ``backend`` is
    ``"auto"`` (numpy when available), ``"numpy"`` (raises without it) or
    ``"python"``.
    """

    def __init__(self, seed: str, backend: str = "auto") -> None:
        if not isinstance(seed, str):
            # Integer seeds take CPython's single-word seeding path, which
            # numpy's legacy seeding does not replicate.
            raise TypeError(f"BatchSampler requires a string seed, got {seed!r}")
        if backend not in ("auto", "numpy", "python"):
            raise ValueError(f"unknown sampler backend {backend!r}")
        np = numpy_or_none() if backend in ("auto", "numpy") else None
        if backend == "numpy" and np is None:
            raise RuntimeError(
                "numpy backend requested but numpy is not installed "
                "(pip install repro[fast])"
            )
        self.seed = seed
        self._np = np
        if np is not None:
            self.backend = "numpy"
            key = np.array(_seed_key_words(seed), dtype=np.uint32)
            bitgen = np.random.MT19937()
            bitgen._legacy_seeding(key)
            self._bitgen = bitgen
            #: Raw words drawn but not yet consumed (uint64, FIFO order).
            self._buffer = np.empty(0, dtype=np.uint64)
        else:
            self.backend = "python"
            self._rng = random.Random(seed)

    # ------------------------------------------------------------------
    # numpy word plumbing
    # ------------------------------------------------------------------
    def _take_words(self, n: int):
        """Exactly the next ``n`` raw 32-bit MT words, via the buffer."""
        np = self._np
        buffer = self._buffer
        if len(buffer) >= n:
            self._buffer = buffer[n:]
            return buffer[:n]
        fresh = self._bitgen.random_raw(n - len(buffer))
        self._buffer = np.empty(0, dtype=np.uint64)
        if len(buffer):
            return np.concatenate((buffer, fresh))
        return fresh

    def _unread_words(self, words) -> None:
        """Return unconsumed words to the front of the stream."""
        np = self._np
        if len(self._buffer):
            self._buffer = np.concatenate((words, self._buffer))
        else:
            self._buffer = words

    # ------------------------------------------------------------------
    # Block draws (mirror random.Random word consumption exactly)
    # ------------------------------------------------------------------
    def random_block(self, n: int) -> List[float]:
        """``n`` draws of ``rng.random()`` (two words each)."""
        if n <= 0:
            return []
        if self._np is None:
            rng_random = self._rng.random
            return [rng_random() for _ in range(n)]
        np = self._np
        words = self._take_words(2 * n)
        a = (words[0::2] >> np.uint64(5)).astype(np.float64)
        b = (words[1::2] >> np.uint64(6)).astype(np.float64)
        return ((a * 67108864.0 + b) / 9007199254740992.0).tolist()

    def uniform_block(self, lo: float, hi: float, n: int) -> List[float]:
        """``n`` draws of ``rng.uniform(lo, hi)``."""
        if n <= 0:
            return []
        if self._np is None:
            rng_uniform = self._rng.uniform
            return [rng_uniform(lo, hi) for _ in range(n)]
        # CPython computes lo + (hi - lo) * random() per element; the
        # identical grouping in the vector expression keeps every ULP.
        np = self._np
        words = self._take_words(2 * n)
        a = (words[0::2] >> np.uint64(5)).astype(np.float64)
        b = (words[1::2] >> np.uint64(6)).astype(np.float64)
        r = (a * 67108864.0 + b) / 9007199254740992.0
        return (lo + (hi - lo) * r).tolist()

    def randbelow_block(self, bound: int, n: int) -> List[int]:
        """``n`` draws of ``rng._randbelow(bound)`` (rejection-exact)."""
        if bound <= 0:
            raise ValueError(f"bound must be positive, got {bound}")
        if n <= 0:
            return []
        if self._np is None:
            randbelow = self._rng._randbelow
            return [randbelow(bound) for _ in range(n)]
        np = self._np
        shift = np.uint64(32 - bound.bit_length())
        out: List[int] = []
        need = n
        while need > 0:
            # Worst-case acceptance is just above 1/2 (bound barely past a
            # power of two); oversample so one round usually suffices.
            chunk = self._take_words(max(2 * need, 16))
            candidates = chunk >> shift
            mask = candidates < bound
            accepted = candidates[mask]
            if len(accepted) >= need:
                # Words past the need-th acceptance belong to future
                # draws: find how many raw words the scalar loop would
                # have consumed and put the rest back.
                consumed = int(np.searchsorted(
                    np.cumsum(mask), need, side="left"
                )) + 1
                self._unread_words(chunk[consumed:])
                out.extend(accepted[:need].tolist())
                return out
            out.extend(accepted.tolist())
            need -= len(accepted)
        return out

    def randint_block(self, lo: int, hi: int, n: int) -> List[int]:
        """``n`` draws of ``rng.randint(lo, hi)``."""
        return [lo + v for v in self.randbelow_block(hi - lo + 1, n)]

    def choice_indices(self, n_options: int, n: int) -> List[int]:
        """``n`` draws matching ``names.index(rng.choice(names))``."""
        return self.randbelow_block(n_options, n)

    def weighted_indices(self, weights: Sequence[float], n: int) -> List[int]:
        """``n`` draws matching ``rng.choices(range(len(w)), weights=w)``."""
        if n <= 0:
            return []
        if self._np is None:
            rng_choices = self._rng.choices
            population = range(len(weights))
            return [rng_choices(population, weights=weights)[0] for _ in range(n)]
        # CPython accumulates cum_weights in python floats and bisects
        # random() * total with hi = len - 1; replicate both exactly.
        from itertools import accumulate

        np = self._np
        cum = list(accumulate(weights))
        total = cum[-1] + 0.0
        r = np.array(self.random_block(n), dtype=np.float64)
        idx = np.searchsorted(np.array(cum, dtype=np.float64), r * total, side="right")
        hi = len(weights) - 1
        return [int(v) if v < hi else hi for v in idx]

    def pareto_block(self, alpha: float, n: int) -> List[float]:
        """``n`` draws of ``rng.paretovariate(alpha)``."""
        if n <= 0:
            return []
        if self._np is None:
            pareto = self._rng.paretovariate
            return [pareto(alpha) for _ in range(n)]
        # numpy's vectorized ** can differ from CPython pow by one ULP on
        # some inputs; the power is applied per element in python floats
        # (the expensive part — word generation — stays vectorized).
        exponent = -1.0 / alpha
        return [(1.0 - u) ** exponent for u in self.random_block(n)]
