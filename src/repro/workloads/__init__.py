"""Workload generation, arrival driving and trace record/replay."""

from .generator import (
    BATCH_RANGE,
    Arrival,
    Condition,
    WorkloadGenerator,
    WorkloadSpec,
    drive,
    instantiate,
    total_work_ms,
)
from .phases import Phase, PhasedWorkload, poisson_sequence, ramp_workload
from .sampling import BatchSampler, numpy_or_none
from .trace import dumps, load, loads, save

__all__ = [
    "Arrival",
    "BatchSampler",
    "numpy_or_none",
    "Phase",
    "PhasedWorkload",
    "poisson_sequence",
    "ramp_workload",
    "BATCH_RANGE",
    "Condition",
    "WorkloadGenerator",
    "WorkloadSpec",
    "drive",
    "dumps",
    "instantiate",
    "load",
    "loads",
    "save",
    "total_work_ms",
]
