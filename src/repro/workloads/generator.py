"""Workload generation matching the paper's evaluation setup.

The paper generates random application sequences (10 sequences of 20
applications for Fig. 5/6; 3 long sequences of 80 for Fig. 8) with random
batch sizes in [5, 30] and four arrival-interval regimes:

* **Loose** — 5000 ms
* **Standard** — uniform in [1500, 2000] ms
* **Stress** — uniform in [150, 200] ms
* **Real-time** — 50 ms

Generation is fully seeded so every experiment is reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from enum import Enum
from typing import Generator as GeneratorType
from typing import List, Optional, Sequence, Tuple, Union

from ..apps.application import ApplicationInstance, ApplicationSpec
from ..apps.benchmarks import BENCHMARKS
from ..sim import Engine

#: Batch-size range used throughout the paper's evaluation.
BATCH_RANGE: Tuple[int, int] = (5, 30)


class Condition(Enum):
    """Congestion conditions with their arrival-interval ranges (ms)."""

    LOOSE = (5000.0, 5000.0)
    STANDARD = (1500.0, 2000.0)
    STRESS = (150.0, 200.0)
    REAL_TIME = (50.0, 50.0)

    @property
    def interval_range(self) -> Tuple[float, float]:
        return self.value

    @property
    def label(self) -> str:
        return self.name.replace("_", "-").title()


@dataclass(frozen=True)
class Arrival:
    """One scheduled application arrival."""

    app_name: str
    batch_size: int
    time_ms: float


class WorkloadGenerator:
    """Seeded generator of arrival sequences over the benchmark set.

    ``seed`` may be an int or a composite string (the seed is only ever
    folded into RNG stream names); ``sequences`` requires an int seed.
    """

    def __init__(
        self, seed: Union[int, str], apps: Optional[Sequence[str]] = None
    ) -> None:
        self.seed = seed
        self.app_names: List[str] = list(apps) if apps else list(BENCHMARKS)
        unknown = [name for name in self.app_names if name not in BENCHMARKS]
        if unknown:
            raise KeyError(f"unknown benchmark(s): {', '.join(unknown)}")

    def sequence(
        self,
        condition: Condition,
        n_apps: int = 20,
        batch_range: Tuple[int, int] = BATCH_RANGE,
        start_ms: float = 0.0,
    ) -> List[Arrival]:
        """One arrival sequence under ``condition``."""
        if n_apps < 1:
            raise ValueError(f"n_apps must be >= 1, got {n_apps}")
        lo, hi = batch_range
        if not (1 <= lo <= hi):
            raise ValueError(f"bad batch range {batch_range}")
        rng = random.Random(f"{self.seed}/{condition.name}/{n_apps}")
        interval_lo, interval_hi = condition.interval_range
        arrivals: List[Arrival] = []
        t = start_ms
        for _ in range(n_apps):
            arrivals.append(
                Arrival(
                    app_name=rng.choice(self.app_names),
                    batch_size=rng.randint(lo, hi),
                    time_ms=t,
                )
            )
            t += rng.uniform(interval_lo, interval_hi)
        return arrivals

    def sequences(
        self,
        condition: Condition,
        count: int = 10,
        n_apps: int = 20,
    ) -> List[List[Arrival]]:
        """``count`` independent sequences (the paper uses 10)."""
        return [
            WorkloadGenerator(self.seed + offset, self.app_names).sequence(
                condition, n_apps
            )
            for offset in range(count)
        ]


@dataclass(frozen=True)
class WorkloadSpec:
    """Declarative, picklable description of a family of arrival sequences.

    The campaign layer ships these to worker processes, which regenerate
    the arrivals locally: only ``(spec, seed, index)`` crosses the process
    boundary, so serial and parallel campaigns see bit-identical
    workloads.  Unlike the legacy ``WorkloadGenerator.sequences`` offset
    scheme (where ``seed + 1`` overlaps ``seed``'s later sequences), the
    root seed and sequence index are threaded as independent components,
    so multi-seed scenarios never silently duplicate workloads.
    """

    condition: Condition
    n_apps: int = 20
    sequence_count: int = 1
    batch_range: Tuple[int, int] = BATCH_RANGE
    apps: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.n_apps < 1:
            raise ValueError(f"n_apps must be >= 1, got {self.n_apps}")
        if self.sequence_count < 1:
            raise ValueError(
                f"sequence_count must be >= 1, got {self.sequence_count}"
            )

    def sequence(self, seed: int, index: int = 0) -> List[Arrival]:
        """The ``index``-th arrival sequence under root ``seed``."""
        if not (0 <= index < self.sequence_count):
            raise IndexError(
                f"sequence index {index} out of range "
                f"[0, {self.sequence_count})"
            )
        # The composite string seed keeps (seed=1, index=1) distinct from
        # (seed=2, index=0); ``WorkloadGenerator`` only ever folds its
        # seed into RNG stream names, so a string seed is deterministic.
        generator = WorkloadGenerator(f"{seed}/{index}", self.apps or None)
        return generator.sequence(
            self.condition, self.n_apps, batch_range=self.batch_range
        )

    def sequences(self, seed: int) -> List[List[Arrival]]:
        """All ``sequence_count`` sequences under root ``seed``."""
        return [self.sequence(seed, index) for index in range(self.sequence_count)]


def instantiate(arrival: Arrival, now_ms: float) -> ApplicationInstance:
    """Materialize an arrival into a runtime application instance."""
    spec: ApplicationSpec = BENCHMARKS[arrival.app_name]
    return ApplicationInstance(spec, arrival.batch_size, now_ms)


def drive(engine: Engine, target, arrivals: Sequence[Arrival]) -> "GeneratorType":
    """Process: submit ``arrivals`` to ``target`` at their times.

    ``target`` is anything with a ``submit(ApplicationInstance)`` method —
    a board scheduler or a cluster.
    """
    now = engine.now
    for arrival in arrivals:
        if arrival.time_ms > now:
            yield arrival.time_ms - now
            now = arrival.time_ms
        target.submit(instantiate(arrival, engine.now))


def total_work_ms(arrivals: Sequence[Arrival]) -> float:
    """Aggregate slot-work of a sequence (sanity metric for tests)."""
    total = 0.0
    for arrival in arrivals:
        spec = BENCHMARKS[arrival.app_name]
        total += sum(task.exec_time_ms for task in spec.tasks) * arrival.batch_size
    return total
