"""Workload trace record/replay.

Experiments can serialize an arrival sequence to a plain-text trace and
replay it later — useful for comparing schedulers on byte-identical
workloads across processes, and for archiving the exact sequences behind
a published table.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Sequence, Union

from .generator import Arrival

#: Trace format version tag, first line of every file.
TRACE_HEADER = "# versaslot-trace v1"


def dumps(arrivals: Sequence[Arrival]) -> str:
    """Serialize a sequence to the trace text format."""
    lines = [TRACE_HEADER]
    for arrival in arrivals:
        # repr round-trips float precision exactly.
        lines.append(f"{arrival.time_ms!r} {arrival.app_name} {arrival.batch_size}")
    return "\n".join(lines) + "\n"


def loads(text: str) -> List[Arrival]:
    """Parse a trace produced by :func:`dumps`."""
    lines = [line.strip() for line in text.splitlines() if line.strip()]
    if not lines or lines[0] != TRACE_HEADER:
        raise ValueError(f"not a versaslot trace (expected {TRACE_HEADER!r})")
    arrivals: List[Arrival] = []
    previous = -1.0
    for lineno, line in enumerate(lines[1:], start=2):
        parts = line.split()
        if len(parts) != 3:
            raise ValueError(f"line {lineno}: expected 'time app batch', got {line!r}")
        time_ms = float(parts[0])
        batch = int(parts[2])
        if time_ms < previous:
            raise ValueError(f"line {lineno}: arrival times must be non-decreasing")
        previous = time_ms
        arrivals.append(Arrival(app_name=parts[1], batch_size=batch, time_ms=time_ms))
    return arrivals


def save(arrivals: Sequence[Arrival], path: Union[str, Path]) -> None:
    """Write a trace file."""
    Path(path).write_text(dumps(arrivals))


def load(path: Union[str, Path]) -> List[Arrival]:
    """Read a trace file."""
    return loads(Path(path).read_text())
